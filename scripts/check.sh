#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md) plus the harness-path lint gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo build --release --examples --offline
cargo test -q --offline

# The simulator, the experiment runner, and the trace subsystem are the
# fallible substrate everything else leans on: no unwrap()/expect() may
# land in their library code (this covers journal.rs — the crash-safety
# layer must itself surface faults, not panic — executor.rs, the
# parallel sweep executor, whose worker pool must degrade via
# poison-tolerant lock recovery instead of unwrap, and nqp-trace's
# artifact parser, which must reject malformed input with typed
# errors). The crate roots carry
#   #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
# (tests are exempt); this clippy pass makes the deny effective.
# nqp-query and nqp-storage joined the deny list with the vectorized
# operator path: both engines' operators are harness-path code.
cargo clippy -p nqp-sim -p nqp-core -p nqp-trace -p nqp-serve -p nqp-advisor -p nqp-tier \
  -p nqp-query -p nqp-storage --lib --offline

# Crash-safe resume smoke test: interrupt a journaled sweep after two
# cells, resume it from the journal, and require the resumed table to
# be byte-identical to an uninterrupted run of the same grid.
CLI=target/release/nqp-cli
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
ARGS=(sweep w2 --machine B --threads 4 --n 8000 --card 800 --trials 2
      --faults "offline@3:node=1")
"$CLI" "${ARGS[@]}" > "$SMOKE/full.txt"
"$CLI" "${ARGS[@]}" --journal "$SMOKE/j.jsonl" --max-cells 2 > "$SMOKE/part.txt" 2> "$SMOKE/part.err"
grep -q "interrupted" "$SMOKE/part.err"
"$CLI" "${ARGS[@]}" --resume "$SMOKE/j.jsonl" > "$SMOKE/resumed.txt" 2> "$SMOKE/resumed.err"
grep -q "resuming: 2 of 4" "$SMOKE/resumed.err"
diff "$SMOKE/full.txt" "$SMOKE/resumed.txt"
grep -q "degraded" "$SMOKE/full.txt"   # the outage run is salvage, not failure

# Parallel sweep smoke: --jobs 4 must produce stdout and CSV
# byte-identical to the serial run of the same grid (the determinism
# contract of the parallel executor, DESIGN.md §4c).
"$CLI" "${ARGS[@]}" --csv "$SMOKE/serial.csv" > /dev/null
"$CLI" "${ARGS[@]}" --jobs 4 --csv "$SMOKE/parallel.csv" > "$SMOKE/parallel.txt"
diff "$SMOKE/serial.csv" "$SMOKE/parallel.csv"
diff "$SMOKE/full.txt" "$SMOKE/parallel.txt"

# A journal written under --jobs resumes serially to the same bytes.
"$CLI" "${ARGS[@]}" --jobs 4 --journal "$SMOKE/jp.jsonl" --max-cells 2 > /dev/null 2>&1
"$CLI" "${ARGS[@]}" --resume "$SMOKE/jp.jsonl" > "$SMOKE/presumed.txt" 2> /dev/null
diff "$SMOKE/full.txt" "$SMOKE/presumed.txt"

# Trace determinism smoke: --trace-dir artifacts must be byte-identical
# between a serial and a --jobs 4 run of the same grid, and rendering
# one must produce a perf-stat report and Perfetto-loadable JSON.
"$CLI" "${ARGS[@]}" --trace-dir "$SMOKE/t1" > /dev/null
"$CLI" "${ARGS[@]}" --trace-dir "$SMOKE/t2" --jobs 4 > /dev/null
diff -r "$SMOKE/t1" "$SMOKE/t2"
ARTIFACT=$(ls "$SMOKE/t1"/*.trace | head -1)
"$CLI" trace "$ARTIFACT" --chrome "$SMOKE/t1.json" --report | grep -q "Performance counter stats"
grep -q '"traceEvents"' "$SMOKE/t1.json"

# Fast-path differential gate (DESIGN.md §4e): the page-granular fast
# path must be bit-identical to the per-line reference model
# (NQP_REFERENCE=1) — sweep stdout, CSV, and every trace artifact
# byte-for-byte, on a grid that exercises fault injection, AutoNUMA,
# THP, and node-offline evacuation.
"$CLI" "${ARGS[@]}" --csv "$SMOKE/fast.csv" --trace-dir "$SMOKE/tfast" > "$SMOKE/fastpath.txt"
NQP_REFERENCE=1 "$CLI" "${ARGS[@]}" --csv "$SMOKE/ref.csv" --trace-dir "$SMOKE/tref" > "$SMOKE/refpath.txt"
diff "$SMOKE/fastpath.txt" "$SMOKE/refpath.txt"
diff "$SMOKE/fast.csv" "$SMOKE/ref.csv"
diff -r "$SMOKE/tfast" "$SMOKE/tref"

# Sharded-trial smoke (DESIGN.md's sharded determinism): --shards N
# spreads one trial's simulated workers across N host threads and must
# be invisible in every output — stdout, CSV, and trace artifacts
# byte-identical to the serial run of the same grid — and compose with
# --jobs. The grid here includes the node-offline fault plan, so the
# merge path is exercised under evacuation too.
"$CLI" "${ARGS[@]}" --shards 2 --csv "$SMOKE/shards2.csv" --trace-dir "$SMOKE/ts2" > "$SMOKE/shards2.txt"
"$CLI" "${ARGS[@]}" --shards 4 --jobs 2 --csv "$SMOKE/shards4.csv" --trace-dir "$SMOKE/ts4" > "$SMOKE/shards4.txt"
diff "$SMOKE/fast.csv" "$SMOKE/shards2.csv"
diff "$SMOKE/fast.csv" "$SMOKE/shards4.csv"
diff "$SMOKE/fastpath.txt" "$SMOKE/shards2.txt"
diff "$SMOKE/fastpath.txt" "$SMOKE/shards4.txt"
diff -r "$SMOKE/tfast" "$SMOKE/ts2"
diff -r "$SMOKE/tfast" "$SMOKE/ts4"

# Shard count is not part of the grid fingerprint: a journal written at
# --shards 4 resumes at --shards 2 to the uninterrupted bytes.
"$CLI" "${ARGS[@]}" --shards 4 --journal "$SMOKE/js.jsonl" --max-cells 2 > /dev/null 2>&1
"$CLI" "${ARGS[@]}" --shards 2 --resume "$SMOKE/js.jsonl" > "$SMOKE/shresumed.txt" 2> /dev/null
diff "$SMOKE/full.txt" "$SMOKE/shresumed.txt"

# Bad shard counts are rejected up front.
if "$CLI" sweep w2 --machine B --trials 1 --shards 0 > /dev/null 2>&1; then
  echo "check.sh: --shards 0 must exit nonzero" >&2
  exit 1
fi

# An empty grid must fail loudly, not exit 0 with no output.
if "$CLI" sweep w2 --machine B --trials 0 > /dev/null 2>&1; then
  echo "check.sh: empty sweep grid must exit nonzero" >&2
  exit 1
fi

# Serve smoke (DESIGN.md §4f): run a short open-loop serve, kill it
# after one config cell, resume from the journal, and require the
# resumed report (stdout, CSV, JSON) to be byte-identical to the
# uninterrupted run — same discipline as the sweep gates above.
SARGS=(serve w1,w3 --machine B --threads 4 --duration 30 --seed 7
       --arrivals "burst:rate=2,x=4")
"$CLI" "${SARGS[@]}" --csv "$SMOKE/sa.csv" --json "$SMOKE/sa.json" > "$SMOKE/sfull.txt"
"$CLI" "${SARGS[@]}" --journal "$SMOKE/sj.jsonl" --max-cells 1 > /dev/null 2> "$SMOKE/spart.err"
grep -q "interrupted" "$SMOKE/spart.err"
"$CLI" "${SARGS[@]}" --resume "$SMOKE/sj.jsonl" --csv "$SMOKE/sb.csv" \
    --json "$SMOKE/sb.json" > "$SMOKE/sresumed.txt" 2> "$SMOKE/sresumed.err"
grep -q "resuming: 1 of 2" "$SMOKE/sresumed.err"
diff "$SMOKE/sfull.txt" "$SMOKE/sresumed.txt"
diff "$SMOKE/sa.csv" "$SMOKE/sb.csv"
diff "$SMOKE/sa.json" "$SMOKE/sb.json"

# Parallel serve is byte-identical to serial, and an empty serve spec
# fails loudly.
"$CLI" "${SARGS[@]}" > "$SMOKE/sparallel.txt" --jobs 2
diff "$SMOKE/sfull.txt" "$SMOKE/sparallel.txt"

# Serve calibrates its class profiles through the real engine, so
# --shards must be invisible there too.
"$CLI" "${SARGS[@]}" --shards 4 > "$SMOKE/sshards.txt"
diff "$SMOKE/sfull.txt" "$SMOKE/sshards.txt"
if "$CLI" serve w1 --machine B --tenants 0 > /dev/null 2>&1; then
  echo "check.sh: empty serve spec must exit nonzero" >&2
  exit 1
fi

# Online-advisor smoke (DESIGN.md §4g): the phase-shift sweep with the
# epoch-driven controller and the AutoNUMA contender must be
# byte-identical serial vs --jobs, and resume from a killed journal to
# the same bytes — the controller re-tunes mid-trial, so this pins that
# its decisions are a pure function of model-cycle state.
AARGS=(sweep wshift --machine S --threads 4 --trials 2
       --advisor online,autonuma)
"$CLI" "${AARGS[@]}" > "$SMOKE/afull.txt"
"$CLI" "${AARGS[@]}" --jobs 3 > "$SMOKE/ajobs.txt"
diff "$SMOKE/afull.txt" "$SMOKE/ajobs.txt"
"$CLI" "${AARGS[@]}" --journal "$SMOKE/aj.jsonl" --max-cells 3 > /dev/null 2> "$SMOKE/apart.err"
grep -q "interrupted" "$SMOKE/apart.err"
"$CLI" "${AARGS[@]}" --resume "$SMOKE/aj.jsonl" > "$SMOKE/aresumed.txt" 2> /dev/null
diff "$SMOKE/afull.txt" "$SMOKE/aresumed.txt"

# Tiering smoke (DESIGN.md §4i): a knobs × tiering-policies sweep on
# the CXL machine, killed mid-grid and resumed, must be byte-identical
# to the uninterrupted run — the tier daemon's decisions are epoch
# state, so kill-and-resume replays them exactly. `--tier` is part of
# the grid fingerprint (it changes what runs), so the resume must also
# reconstruct the crossed grid itself.
TARGS=(sweep w3 --machine machine_b_cxl --threads 4 --n 6000 --trials 2
       --tier none+hot-watermark:pwm=2)
"$CLI" "${TARGS[@]}" --csv "$SMOKE/ta.csv" > "$SMOKE/tfull.txt"
"$CLI" "${TARGS[@]}" --journal "$SMOKE/tj.jsonl" --max-cells 2 > /dev/null 2> "$SMOKE/tpart.err"
grep -q "interrupted" "$SMOKE/tpart.err"
"$CLI" "${TARGS[@]}" --resume "$SMOKE/tj.jsonl" --csv "$SMOKE/tb.csv" > "$SMOKE/tresumed.txt" 2> /dev/null
diff "$SMOKE/tfull.txt" "$SMOKE/tresumed.txt"
diff "$SMOKE/ta.csv" "$SMOKE/tb.csv"
grep -q "tier=hot-watermark" "$SMOKE/tfull.txt"

# Malformed --tier specs and unknown machines are typed BadSpec errors:
# nonzero exit, the flag and token named — never a panic.
if "$CLI" sweep w3 --machine machine_b_cxl --trials 1 --tier bogus > /dev/null 2> "$SMOKE/tbad.err"; then
  echo "check.sh: \`--tier bogus\` must exit nonzero" >&2
  exit 1
fi
grep -q -- "--tier" "$SMOKE/tbad.err"
grep -q "malformed" "$SMOKE/tbad.err"
if "$CLI" sweep w1 --machine machine_z --trials 1 > /dev/null 2> "$SMOKE/mbad.err"; then
  echo "check.sh: unknown --machine must exit nonzero" >&2
  exit 1
fi
grep -q "machine_z" "$SMOKE/mbad.err"
grep -q "machine_b_cxl" "$SMOKE/mbad.err"   # the error lists the valid names

# Malformed runtime specs must exit nonzero with a typed error naming
# the offending token — never a panic, never a silent default.
for bad in '--outage 12..junk:node=1' '--arrivals poisson:rate=wat' \
           '--arrivals burst:rate=1,on=18446744073709551615,off=1' \
           '--advisor offline'; do
  # shellcheck disable=SC2086
  if "$CLI" serve w1 --machine B --duration 10 $bad > /dev/null 2> "$SMOKE/bad.err"; then
    echo "check.sh: \`serve $bad\` must exit nonzero" >&2
    exit 1
  fi
  grep -q "malformed" "$SMOKE/bad.err"
done
("$CLI" serve w1 --machine B --duration 10 --outage "12..junk:node=1" 2>&1 || true) \
  | grep -q '`junk`'

# Serve outage recovery smoke: with --advisor online the run reports a
# re-tune cycle after the outage window; kill-and-resume must still be
# byte-identical with the advisor in the loop.
SOARGS=(serve w1,w3 --machine B --threads 4 --duration 40 --seed 7
        --arrivals "burst:rate=2,x=4" --outage "12..20:node=1" --advisor online)
"$CLI" "${SOARGS[@]}" > "$SMOKE/sofull.txt"
grep -q "re-tuned at" "$SMOKE/sofull.txt"
"$CLI" "${SOARGS[@]}" --journal "$SMOKE/soj.jsonl" --max-cells 1 > /dev/null 2>&1
"$CLI" "${SOARGS[@]}" --resume "$SMOKE/soj.jsonl" > "$SMOKE/soresumed.txt" 2> /dev/null
diff "$SMOKE/sofull.txt" "$SMOKE/soresumed.txt"

# Vectorized-path gates (DESIGN.md §4j): the batch-at-a-time engine is
# crossed into the sweep grid with --engine, and its outputs must be
# invariant under --jobs/--shards, tracing, the reference memory model,
# and kill-and-resume — the same identity discipline as every other
# executor knob.
VARGS=(sweep w3 --machine B --threads 4 --n 6000 --trials 2 --engine tuple+vec)
"$CLI" "${VARGS[@]}" --csv "$SMOKE/va.csv" --trace-dir "$SMOKE/vt1" > "$SMOKE/vfull.txt"
grep -q "engine=vec" "$SMOKE/vfull.txt"
"$CLI" "${VARGS[@]}" --jobs 2 --shards 2 --csv "$SMOKE/vb.csv" --trace-dir "$SMOKE/vt2" > "$SMOKE/vjobs.txt"
diff "$SMOKE/vfull.txt" "$SMOKE/vjobs.txt"
diff "$SMOKE/va.csv" "$SMOKE/vb.csv"
diff -r "$SMOKE/vt1" "$SMOKE/vt2"

# Kill-and-resume across the engine-crossed grid (--engine is part of
# the grid fingerprint, so the resume reconstructs the crossed grid).
"$CLI" "${VARGS[@]}" --journal "$SMOKE/vj.jsonl" --max-cells 2 > /dev/null 2> "$SMOKE/vpart.err"
grep -q "interrupted" "$SMOKE/vpart.err"
"$CLI" "${VARGS[@]}" --resume "$SMOKE/vj.jsonl" --csv "$SMOKE/vc.csv" > "$SMOKE/vresumed.txt" 2> /dev/null
diff "$SMOKE/vfull.txt" "$SMOKE/vresumed.txt"
diff "$SMOKE/va.csv" "$SMOKE/vc.csv"

# The vectorized path under the per-line reference model: bit-identical.
NQP_REFERENCE=1 "$CLI" "${VARGS[@]}" --csv "$SMOKE/vref.csv" > "$SMOKE/vrefpath.txt"
diff "$SMOKE/vfull.txt" "$SMOKE/vrefpath.txt"
diff "$SMOKE/va.csv" "$SMOKE/vref.csv"

# `--engine tuple` spelled out is the default: byte-identical stdout.
"$CLI" sweep w1 --machine B --threads 4 --n 6000 --card 600 --trials 2 > "$SMOKE/vdef.txt"
"$CLI" sweep w1 --machine B --threads 4 --n 6000 --card 600 --trials 2 --engine tuple > "$SMOKE/vtup.txt"
diff "$SMOKE/vdef.txt" "$SMOKE/vtup.txt"

# Result identity: each workload's checksum line — the query result —
# must match between engines, and --batch-size (host staging only) must
# never move a byte of the vectorized run's output.
for wk in w1 w2 w3 w4; do
  "$CLI" workload "$wk" --machine B --threads 4 --n 5000 --card 500 --engine tuple \
    | grep checksum > "$SMOKE/ck-t.txt"
  "$CLI" workload "$wk" --machine B --threads 4 --n 5000 --card 500 --engine vec \
    > "$SMOKE/ckv-full.txt"
  grep checksum "$SMOKE/ckv-full.txt" > "$SMOKE/ck-v.txt"
  diff "$SMOKE/ck-t.txt" "$SMOKE/ck-v.txt"
  "$CLI" workload "$wk" --machine B --threads 4 --n 5000 --card 500 --engine vec \
    --batch-size 7 > "$SMOKE/ckv-b7.txt"
  diff "$SMOKE/ckv-full.txt" "$SMOKE/ckv-b7.txt"
done

# Malformed --engine / --batch-size tokens are typed BadSpec errors:
# nonzero exit, the offending token named — never a panic.
for bad in '--engine bogus' '--batch-size 0' '--batch-size 99999999999'; do
  # shellcheck disable=SC2086
  if "$CLI" workload w1 --machine B --n 500 --card 50 $bad > /dev/null 2> "$SMOKE/vbad.err"; then
    echo "check.sh: \`workload $bad\` must exit nonzero" >&2
    exit 1
  fi
  grep -q "malformed" "$SMOKE/vbad.err"
done
("$CLI" workload w1 --machine B --n 500 --card 50 --engine bogus 2>&1 || true) \
  | grep -q '`bogus`'

echo "check.sh: all gates passed"
