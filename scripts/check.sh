#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md) plus the harness-path lint gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline

# The simulator and the experiment runner are the fallible substrate
# everything else leans on: no unwrap()/expect() may land in their
# library code. Both crate roots carry
#   #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
# (tests are exempt); this clippy pass makes the deny effective.
cargo clippy -p nqp-sim -p nqp-core --lib --offline
