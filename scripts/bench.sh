#!/usr/bin/env bash
# Perf baseline for the sweep harness (schema: EXPERIMENTS.md, "Bench
# baseline"). Runs a small fixed W1 sweep and emits BENCH_sweep.json:
#
#   - mean model cycles per headline config (deterministic: these two
#     numbers must not move unless the simulator's cost model changes),
#   - wall-clock overhead of --trace-dir on the same grid (host-time,
#     machine-dependent: compare trends, not absolutes).
#
# Usage: scripts/bench.sh [OUT.json]   (default: BENCH_sweep.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_sweep.json}
cargo build --release --offline >&2
CLI=target/release/nqp-cli
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# The fixed grid: large enough that tracing has real events to record,
# small enough to finish in seconds.
ARGS=(sweep w1 --machine B --threads 8 --n 20000 --card 2000 --trials 2)

now_ns() { date +%s%N; }

T0=$(now_ns)
"$CLI" "${ARGS[@]}" > "$WORK/plain.txt"
T1=$(now_ns)
"$CLI" "${ARGS[@]}" --trace-dir "$WORK/traces" > "$WORK/traced.txt"
T2=$(now_ns)
PLAIN_NS=$((T1 - T0))
TRACED_NS=$((T2 - T1))

# Tracing must not move the model-cycle results; the overhead is pure
# host time. Guard the invariant here so a regression fails the bench.
diff <(grep "mean" "$WORK/plain.txt") <(grep "mean" "$WORK/traced.txt") >&2

# "os-default (+flags): mean 123 cycles over successful trials" -> rows.
CONFIGS_JSON=$(awk -F': mean | cycles' '/: mean .* cycles/ {
  printf "%s    {\"name\": \"%s\", \"mean_cycles\": %s}", sep, $1, $2; sep=",\n"
}' "$WORK/plain.txt")

cat > "$OUT" <<EOF
{
  "schema": "nqp-bench-sweep-v1",
  "grid": "${ARGS[*]}",
  "configs": [
$CONFIGS_JSON
  ],
  "trace_overhead": {
    "plain_wall_ns": $PLAIN_NS,
    "traced_wall_ns": $TRACED_NS,
    "delta_ns": $((TRACED_NS - PLAIN_NS))
  }
}
EOF
echo "bench.sh: wrote $OUT" >&2
cat "$OUT"
