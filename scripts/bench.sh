#!/usr/bin/env bash
# Perf baseline for the sweep harness (schema: EXPERIMENTS.md, "Bench
# baseline"). Runs a small fixed W1 sweep and emits BENCH_sweep.json:
#
#   - mean model cycles per headline config (deterministic: these two
#     numbers must not move unless the simulator's cost model changes),
#   - wall-clock overhead of --trace-dir on the same grid (host-time,
#     machine-dependent: compare trends, not absolutes),
#   - hot-path microbench (DESIGN.md §4e): W1/W3 access streams replayed
#     through the simulator inner loop under the fast path and under
#     NQP_REFERENCE=1, best-of-N wall-ns each, with the model cycles
#     cross-checked for bit-identity before any speedup is published,
#   - online-advisor gain (DESIGN.md §4g): phase-shift sweep on the
#     scaled testbed, online mean vs the best static mean (model
#     cycles, deterministic),
#   - shard speedup: wall-clock of one large W3 trial at --shards 1 vs
#     --shards 4 (host-time), gated on byte-identical CSVs first,
#   - tiering study (DESIGN.md §4i): W3 on the CXL machine, untreated
#     vs the tiering policies — slow-tier hit ratios and the best
#     policy's mean cycles (model cycles, deterministic),
#   - vectorized-engine speedup (DESIGN.md §4j): tuple vs vectorized
#     wall-time on the W1/W3 hotpath streams and full sweeps, gated on
#     checksum equality first (host-time ratios).
#
# Usage: scripts/bench.sh [OUT.json]   (default: BENCH_sweep.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_sweep.json}
cargo build --release --offline >&2
CLI=target/release/nqp-cli
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# The fixed grid: large enough that tracing has real events to record,
# small enough to finish in seconds.
ARGS=(sweep w1 --machine B --threads 8 --n 20000 --card 2000 --trials 2)

now_ns() { date +%s%N; }

T0=$(now_ns)
"$CLI" "${ARGS[@]}" > "$WORK/plain.txt"
T1=$(now_ns)
"$CLI" "${ARGS[@]}" --trace-dir "$WORK/traces" > "$WORK/traced.txt"
T2=$(now_ns)
PLAIN_NS=$((T1 - T0))
TRACED_NS=$((T2 - T1))

# Tracing must not move the model-cycle results; the overhead is pure
# host time. Guard the invariant here so a regression fails the bench.
diff <(grep "mean" "$WORK/plain.txt") <(grep "mean" "$WORK/traced.txt") >&2

# "os-default (+flags): mean 123 cycles over successful trials" -> rows.
CONFIGS_JSON=$(awk -F': mean | cycles' '/: mean .* cycles/ {
  printf "%s    {\"name\": \"%s\", \"mean_cycles\": %s}", sep, $1, $2; sep=",\n"
}' "$WORK/plain.txt")

# Hot-path microbench: `nqp-cli hotpath` replays a deterministic
# W1/W3-shaped access stream through Worker::touch (the simulator inner
# loop) and prints `hotpath_ns=<best-of-reps> lines=... cycles=...`.
# The access stream is identical under both models, so `cycles=` MUST
# match — a mismatch means the fast path broke bit-identity, and the
# bench fails rather than publish a speedup for a wrong simulator.
# Wall-ns are host time; best-of-reps keeps them stable under host
# noise. The W1 cell is the acceptance gate: >= 1.2x with the fast
# path on (typical: ~1.35x W1, ~1.8x W3 on an otherwise idle host —
# the tuple streams now also charge the operator's per-tuple hash
# compute, which costs the same under both models and so dilutes the
# fast-vs-reference ratio below the old ~1.7x/~2x figures).
hotpath_cell() { # <label> <args...> -> "fast_ns ref_ns cycles lines"
  local label=$1; shift
  local fast ref
  fast=$("$CLI" hotpath "$@" | tail -1)
  ref=$(NQP_REFERENCE=1 "$CLI" hotpath "$@" | tail -1)
  local fast_cycles=${fast##*cycles=} ref_cycles=${ref##*cycles=}
  if [ "$fast_cycles" != "$ref_cycles" ]; then
    echo "bench.sh: $label model cycles diverge between fast ($fast_cycles) and reference ($ref_cycles)" >&2
    exit 1
  fi
  local fast_ns ref_ns lines
  fast_ns=$(sed -n 's/.*hotpath_ns=\([0-9]*\).*/\1/p' <<< "$fast")
  ref_ns=$(sed -n 's/.*hotpath_ns=\([0-9]*\).*/\1/p' <<< "$ref")
  lines=$(sed -n 's/.*lines=\([0-9]*\).*/\1/p' <<< "$fast")
  echo "$fast_ns $ref_ns $fast_cycles $lines"
}

W1_ARGS=(w1 --machine B --threads 8 --n 4000000 --card 400000 --reps 3)
W3_ARGS=(w3 --machine B --threads 8 --n 200000 --reps 3)
read -r W1_FAST_NS W1_REF_NS W1_CYCLES W1_LINES <<< "$(hotpath_cell w1 "${W1_ARGS[@]}")"
read -r W3_FAST_NS W3_REF_NS W3_CYCLES W3_LINES <<< "$(hotpath_cell w3 "${W3_ARGS[@]}")"
W1_SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $W1_REF_NS / $W1_FAST_NS }")
W3_SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $W3_REF_NS / $W3_FAST_NS }")
if awk "BEGIN { exit !($W1_SPEEDUP < 1.2) }"; then
  echo "bench.sh: WARNING: W1 hotpath speedup $W1_SPEEDUP below the 1.2x bar (noisy host?)" >&2
fi

# Shard speedup (DESIGN.md's sharded determinism): one large W3 trial
# whose load and probe phases shard across host threads. The CSVs must
# be byte-identical before any speedup is published — a divergence
# means the epoch merges broke, and the bench fails rather than time a
# wrong simulator. Wall-ns are host time; the acceptance bar is >= 1.5x
# at --shards 4 on an otherwise idle host (typical: ~1.9x).
SHARD_ARGS=(sweep w3 --machine B --threads 8 --n 150000 --trials 1)
S0=$(now_ns)
"$CLI" "${SHARD_ARGS[@]}" --csv "$WORK/shard1.csv" > /dev/null
S1=$(now_ns)
"$CLI" "${SHARD_ARGS[@]}" --shards 4 --csv "$WORK/shard4.csv" > /dev/null
S2=$(now_ns)
diff "$WORK/shard1.csv" "$WORK/shard4.csv" >&2
SHARD1_NS=$((S1 - S0))
SHARD4_NS=$((S2 - S1))
SHARD_SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $SHARD1_NS / $SHARD4_NS }")
# The bar only means something when the host can actually run 4 shards
# in parallel; on fewer cores the ratio is noise, so record it but
# don't warn.
CORES=$(nproc 2>/dev/null || echo 1)
if [ "$CORES" -ge 4 ] && awk "BEGIN { exit !($SHARD_SPEEDUP < 1.5) }"; then
  echo "bench.sh: WARNING: shard speedup $SHARD_SPEEDUP below the 1.5x bar at 4 shards on a ${CORES}-core host" >&2
fi

# Serve baseline (DESIGN.md §4f): a fixed open-loop burst grid; the
# tail percentiles and shed counts are pure model-clock results, so
# like mean_cycles they must not move unless the cost model, the
# calibration, or the admission policy changes.
SERVE_ARGS=(serve w1,w3 --machine B --threads 8 --duration 40 --seed 7
            --arrivals "burst:rate=2.5,x=4")
"$CLI" "${SERVE_ARGS[@]}" > "$WORK/serve.txt"
# Table rows end in 9 numeric columns: p50 p95 p99 p99.9 slo shed t/o
# degr maxq; the config name (may contain spaces) is everything before.
# Drain lines supply arrivals for the shed rate.
SERVE_JSON=$(awk '
  /^config / { hdr = 1; next }
  hdr && NF >= 10 && $NF ~ /^[0-9]+$/ {
    name = $1; for (i = 2; i <= NF - 9; i++) name = name " " $i
    p99[name] = $(NF - 6); shed[name] = $(NF - 3); order[n++] = name
  }
  /arrivals,/ {
    line = $0; sub(/: [0-9]+ arrivals,.*/, "", line)
    a = $0; sub(/.*: /, "", a); sub(/ arrivals,.*/, "", a)
    arrivals[line] = a
  }
  END {
    for (i = 0; i < n; i++) {
      name = order[i]
      rate = arrivals[name] > 0 ? shed[name] / arrivals[name] : 0
      printf "%s    {\"name\": \"%s\", \"serve_p99_cycles\": %s, \"shed\": %s, \"arrivals\": %s, \"shed_rate\": %.4f}", \
        sep, name, p99[name], shed[name], arrivals[name], rate
      sep = ",\n"
    }
  }' "$WORK/serve.txt")

# Online-advisor gain (DESIGN.md §4g): the phase-shift workload on the
# scaled testbed, static placements vs the epoch-driven controller and
# the AutoNUMA contender. Mean cycles are pure model-clock numbers; the
# gain is online over the best static mean and must stay above 1.0 —
# these move only with a declared cost-model or controller change.
ADV_ARGS=(sweep wshift --machine S --threads 4 --trials 2
          --advisor online,autonuma)
"$CLI" "${ADV_ARGS[@]}" > "$WORK/advisor.txt"
adv_mean() { # <exact config name> -> mean cycles (names contain regex
  awk -F': mean | cycles' -v n="$1" '$1 == n { print $2 }' "$WORK/advisor.txt"
}          # metacharacters, so match on the split field, never a regex)
OS_MEAN=$(adv_mean "os-default (+flags)")
TUNED_MEAN=$(adv_mean "tuned (+flags)")
ONLINE_MEAN=$(adv_mean "online (+flags)")
AUTONUMA_MEAN=$(adv_mean "autonuma (+flags)")
BEST_STATIC=$(( OS_MEAN < TUNED_MEAN ? OS_MEAN : TUNED_MEAN ))
ADVISOR_GAIN=$(awk "BEGIN { printf \"%.3f\", $BEST_STATIC / $ONLINE_MEAN }")
if awk "BEGIN { exit !($ADVISOR_GAIN < 1.0) }"; then
  echo "bench.sh: WARNING: online advisor gain $ADVISOR_GAIN fell below 1.0" >&2
fi

# Tiering study (DESIGN.md §4i): the knobs × tiering-policies sweep on
# the CXL machine. Under the tuned interleave placement one page in
# five lands on the expander; the daemon's worth is the untreated mean
# over the best policy's mean. Hit ratios come from single workload
# runs (the sweep table doesn't carry counters). All model-clock
# numbers — they move only with a declared cost-model or policy change.
TIER_ARGS=(sweep w3 --machine machine_b_cxl --threads 8 --n 50000 --trials 2
           --tier none+lru-epoch+hot-watermark)
"$CLI" "${TIER_ARGS[@]}" > "$WORK/tier.txt"
tier_mean() { # <exact config name> -> mean cycles
  awk -F': mean | cycles' -v n="$1" '$1 == n { print $2 }' "$WORK/tier.txt"
}
TIER_NONE_MEAN=$(tier_mean "tuned (+flags)")
TIER_LRU_MEAN=$(tier_mean "tuned (+flags) tier=lru-epoch:idle=2,budget=512")
TIER_HW_MEAN=$(tier_mean "tuned (+flags) tier=hot-watermark:dwm=128,pwm=4,budget=512")
if [ "$TIER_HW_MEAN" -le "$TIER_LRU_MEAN" ]; then
  TIER_BEST_NAME="hot-watermark"; TIER_BEST_MEAN=$TIER_HW_MEAN
else
  TIER_BEST_NAME="lru-epoch"; TIER_BEST_MEAN=$TIER_LRU_MEAN
fi
TIER_GAIN=$(awk "BEGIN { printf \"%.3f\", $TIER_NONE_MEAN / $TIER_BEST_MEAN }")
if awk "BEGIN { exit !($TIER_GAIN < 1.0) }"; then
  echo "bench.sh: WARNING: tiering gain $TIER_GAIN fell below 1.0 on the CXL machine" >&2
fi
TIERW_ARGS=(workload w3 --machine machine_b_cxl --threads 8 --policy interleave)
tier_ratio() { # <tier spec> -> slow-tier demand-hit ratio in percent
  "$CLI" "${TIERW_ARGS[@]}" --tier "$1" \
    | sed -n 's/.*slow-tier-hit-ratio=\([0-9.]*\)%.*/\1/p'
}
TIER_RATIO_NONE=$(tier_ratio none)
TIER_RATIO_BEST=$(tier_ratio "$TIER_BEST_NAME")

# Vectorized-engine speedup (DESIGN.md §4j): the batch-at-a-time
# operator path vs the tuple-at-a-time oracle. Two views:
#
#  * hotpath: the raw memory streams each engine drives through the
#    simulator inner loop (slot-array writes + ranged finalise vs
#    per-tuple chained-hash walks). W1 is the acceptance gate (>= 1.3x
#    with the vectorized stream; typical ~3x). W3's stream-only ratio
#    is recorded but NOT gated: the tuple probe already streams S with
#    ranged reads, so the stream delta is small (~1.2x) — the real W3
#    win is in the operator itself (no hash compute, no stripe locks,
#    no chain allocations), which only the full workload shows.
#  * sweep wall-time: the full W1/W3 workloads end to end, tuple vs
#    vectorized, gated on checksum equality first — a result divergence
#    means the engines disagree and no speedup may be published. Both
#    are acceptance gates at >= 1.3x (typical: ~1.3-1.5x W1, ~1.6-1.9x
#    W3; the W1 ratio is diluted by the shared datagen+load prefix).
read -r W1V_FAST_NS _ _ _ <<< "$(hotpath_cell w1-vec "${W1_ARGS[@]}" --engine vec)"
read -r W3V_FAST_NS _ _ _ <<< "$(hotpath_cell w3-vec "${W3_ARGS[@]}" --engine vec)"
VEC_W1_HOT=$(awk "BEGIN { printf \"%.2f\", $W1_FAST_NS / $W1V_FAST_NS }")
VEC_W3_HOT=$(awk "BEGIN { printf \"%.2f\", $W3_FAST_NS / $W3V_FAST_NS }")
if awk "BEGIN { exit !($VEC_W1_HOT < 1.3) }"; then
  echo "bench.sh: WARNING: vectorized W1 hotpath speedup $VEC_W1_HOT below the 1.3x bar (noisy host?)" >&2
fi

VEC_W1_SWEEP=(sweep w1 --machine B --threads 8 --n 1000000 --card 100000 --trials 1)
VEC_W3_SWEEP=(sweep w3 --machine B --threads 8 --n 250000 --trials 1)
vec_sweep_cell() { # <workload> <sweep args...> -> "tuple_ns vec_ns"
  local wk=$1; shift
  # Result identity first: the workload checksum must not move with the
  # engine, or the timing below would compare different computations.
  diff <("$CLI" workload "$wk" --machine B --threads 8 --n 20000 --card 2000 \
           --engine tuple | grep checksum) \
       <("$CLI" workload "$wk" --machine B --threads 8 --n 20000 --card 2000 \
           --engine vec | grep checksum) >&2
  local t0 t1 t2
  t0=$(now_ns)
  "$CLI" "$@" --engine tuple > /dev/null
  t1=$(now_ns)
  "$CLI" "$@" --engine vec > /dev/null
  t2=$(now_ns)
  echo "$((t1 - t0)) $((t2 - t1))"
}
read -r VEC_W1_TUPLE_NS VEC_W1_VEC_NS <<< "$(vec_sweep_cell w1 "${VEC_W1_SWEEP[@]}")"
read -r VEC_W3_TUPLE_NS VEC_W3_VEC_NS <<< "$(vec_sweep_cell w3 "${VEC_W3_SWEEP[@]}")"
VEC_W1_WALL=$(awk "BEGIN { printf \"%.2f\", $VEC_W1_TUPLE_NS / $VEC_W1_VEC_NS }")
VEC_W3_WALL=$(awk "BEGIN { printf \"%.2f\", $VEC_W3_TUPLE_NS / $VEC_W3_VEC_NS }")
for pair in "W1:$VEC_W1_WALL" "W3:$VEC_W3_WALL"; do
  if awk "BEGIN { exit !(${pair#*:} < 1.3) }"; then
    echo "bench.sh: WARNING: vectorized ${pair%%:*} sweep wall-time speedup ${pair#*:} below the 1.3x bar (noisy host?)" >&2
  fi
done

cat > "$OUT" <<EOF
{
  "schema": "nqp-bench-sweep-v1",
  "grid": "${ARGS[*]}",
  "serve_grid": "${SERVE_ARGS[*]}",
  "serve": [
$SERVE_JSON
  ],
  "configs": [
$CONFIGS_JSON
  ],
  "online_advisor_gain": {
    "grid": "${ADV_ARGS[*]}",
    "os_default_mean_cycles": $OS_MEAN,
    "tuned_mean_cycles": $TUNED_MEAN,
    "autonuma_mean_cycles": $AUTONUMA_MEAN,
    "online_mean_cycles": $ONLINE_MEAN,
    "gain_vs_best_static": $ADVISOR_GAIN
  },
  "tier": {
    "grid": "${TIER_ARGS[*]}",
    "none_mean_cycles": $TIER_NONE_MEAN,
    "lru_epoch_mean_cycles": $TIER_LRU_MEAN,
    "hot_watermark_mean_cycles": $TIER_HW_MEAN,
    "best_policy": "$TIER_BEST_NAME",
    "best_policy_mean_cycles": $TIER_BEST_MEAN,
    "gain_vs_none": $TIER_GAIN,
    "workload_grid": "${TIERW_ARGS[*]}",
    "slow_tier_hit_ratio_none_pct": $TIER_RATIO_NONE,
    "slow_tier_hit_ratio_best_pct": $TIER_RATIO_BEST
  },
  "shard_speedup": {
    "grid": "${SHARD_ARGS[*]}",
    "host_cores": $CORES,
    "shards1_wall_ns": $SHARD1_NS,
    "shards4_wall_ns": $SHARD4_NS,
    "speedup": $SHARD_SPEEDUP
  },
  "trace_overhead": {
    "plain_wall_ns": $PLAIN_NS,
    "traced_wall_ns": $TRACED_NS,
    "delta_ns": $((TRACED_NS - PLAIN_NS))
  },
  "hotpath_speedup": {
    "w1": {
      "grid": "hotpath ${W1_ARGS[*]}",
      "fast_wall_ns": $W1_FAST_NS,
      "reference_wall_ns": $W1_REF_NS,
      "speedup": $W1_SPEEDUP,
      "model_cycles": $W1_CYCLES,
      "lines_per_rep": $W1_LINES
    },
    "w3": {
      "grid": "hotpath ${W3_ARGS[*]}",
      "fast_wall_ns": $W3_FAST_NS,
      "reference_wall_ns": $W3_REF_NS,
      "speedup": $W3_SPEEDUP,
      "model_cycles": $W3_CYCLES,
      "lines_per_rep": $W3_LINES
    }
  },
  "vector_speedup": {
    "hotpath_w1": {
      "grid": "hotpath ${W1_ARGS[*]} --engine tuple|vec",
      "tuple_wall_ns": $W1_FAST_NS,
      "vec_wall_ns": $W1V_FAST_NS,
      "speedup": $VEC_W1_HOT
    },
    "hotpath_w3_stream_only": {
      "grid": "hotpath ${W3_ARGS[*]} --engine tuple|vec",
      "tuple_wall_ns": $W3_FAST_NS,
      "vec_wall_ns": $W3V_FAST_NS,
      "speedup": $VEC_W3_HOT,
      "note": "memory-stream delta only; the W3 operator win is the sweep row below"
    },
    "sweep_w1": {
      "grid": "${VEC_W1_SWEEP[*]} --engine tuple|vec",
      "tuple_wall_ns": $VEC_W1_TUPLE_NS,
      "vec_wall_ns": $VEC_W1_VEC_NS,
      "speedup": $VEC_W1_WALL
    },
    "sweep_w3": {
      "grid": "${VEC_W3_SWEEP[*]} --engine tuple|vec",
      "tuple_wall_ns": $VEC_W3_TUPLE_NS,
      "vec_wall_ns": $VEC_W3_VEC_NS,
      "speedup": $VEC_W3_WALL
    }
  }
}
EOF
echo "bench.sh: wrote $OUT" >&2
cat "$OUT"
