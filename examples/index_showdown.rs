//! Index showdown: the W4 index nested-loop join across ART, Masstree,
//! B+tree and Skip List, under two tuning regimes.
//!
//! ```sh
//! cargo run --release --example index_showdown
//! ```

use nqp::core::TuningConfig;
use nqp::datagen::JoinDataset;
use nqp::indexes::IndexKind;
use nqp::query::run_inl_join_on;
use nqp::topology::machines;

fn main() {
    let data = JoinDataset::generate(15_000, 9);
    println!(
        "W4: index nested-loop join, |R|={} |S|={} (1:16)\n",
        data.r.len(),
        data.s.len()
    );
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>9}",
        "index", "build", "join(default)", "join(tuned)", "speedup"
    );
    for kind in IndexKind::ALL {
        let default = TuningConfig::os_default(machines::machine_a());
        let tuned = TuningConfig::tuned(machines::machine_a());
        let d = run_inl_join_on(&default.env(16), kind, &data);
        let t = run_inl_join_on(&tuned.env(16), kind, &data);
        assert_eq!(d.checksum, t.checksum, "tuning must not change results");
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>8.2}x",
            kind.label(),
            t.build_cycles,
            d.join_cycles,
            t.join_cycles,
            d.join_cycles as f64 / t.join_cycles as f64
        );
    }
    println!(
        "\nEvery probe matched ({} join results per run); the pre-built index\n\
         keeps W4's allocator sensitivity below W3's, exactly as in §IV-F.",
        data.s.len()
    );
}
