//! Quickstart: measure a query workload under the OS defaults, ask the
//! Figure 10 advisor for a plan, and measure again.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nqp::core::advisor::{advise, WorkloadProfile};
use nqp::core::TuningConfig;
use nqp::datagen::{generate, Dataset};
use nqp::query::{run_aggregation_on, AggConfig, WorkloadEnv};
use nqp::topology::machines;

fn main() {
    // W1: holistic aggregation (SELECT groupkey, MEDIAN(val) ... GROUP BY)
    // over a moving-cluster dataset, on the paper's 8-node Machine A.
    let (n, cardinality, seed) = (300_000, 75_000, 7);
    let records = generate(Dataset::MovingCluster, n, cardinality, seed);
    let cfg = AggConfig::w1(n, cardinality, seed);
    let machine = machines::machine_a();

    println!("machine: {} ({} nodes, {} hw threads)", machine.cpu_model,
        machine.topology.num_nodes(), machine.total_hw_threads());

    // 1. Out of the box: no affinity, First Touch, AutoNUMA+THP on, ptmalloc.
    let default = TuningConfig::os_default(machine.clone());
    let before = run_aggregation_on(&default.env(16), &cfg, &records);
    println!("\nOS default:        {:>12} cycles", before.exec_cycles);

    // 2. Ask the flowchart what to change.
    let plan = advise(&WorkloadProfile::analytics_default());
    println!("\nthe advisor says:\n{}", plan.describe());

    // 3. Apply the plan and re-measure.
    let advised = WorkloadEnv {
        sim: plan.apply(default.sim.clone()),
        allocator: plan.allocator_or_default(),
        threads: 16,
        engine: nqp::query::EngineKind::Tuple,
        batch: nqp::query::DEFAULT_BATCH_SIZE,
    };
    let after = run_aggregation_on(&advised, &cfg, &records);
    println!("\ntuned:             {:>12} cycles", after.exec_cycles);
    println!(
        "speedup: {:.2}x   (results identical: {})",
        before.exec_cycles as f64 / after.exec_cycles as f64,
        before.checksum == after.checksum
    );
}
