//! NUMA playground: build a custom machine, place memory three ways, and
//! watch the counters — a tour of the simulator's mechanics.
//!
//! ```sh
//! cargo run --release --example numa_playground
//! ```

use nqp::sim::{MemPolicy, NumaSim, SimConfig, ThreadPlacement};
use nqp::topology::{ring, CacheSpec, MachineSpec, TlbSpec};

/// A hypothetical 6-node ring machine (not in the paper) to show the
/// library is not hard-wired to Table II.
fn ring_machine() -> MachineSpec {
    MachineSpec {
        name: "RING6".into(),
        cpu_model: "6x Hypothetical".into(),
        cpu_mhz: 2000,
        topology: ring(6, vec![1.0, 1.3, 1.6, 1.9]).expect("ring topology is valid"),
        threads_per_node: 4,
        cores_per_node: 4,
        llc: CacheSpec { size_bytes: 4 << 20, line_bytes: 64, hit_cycles: 40 },
        tlb_4k: TlbSpec { l1_entries: 64, l2_entries: 512 },
        tlb_2m: TlbSpec { l1_entries: 32, l2_entries: 0 },
        mem_per_node_bytes: 8 << 30,
        dram_latency_cycles: 250,
        controller_lines_per_cycle: 0.01,
        link_lines_per_cycle: 0.02,
        mem_tiers: vec![],
        memory_only_nodes: 0,
        slow_mem_per_node_bytes: None,
    }
}

fn main() {
    let machine = ring_machine();
    println!("{}", nqp::topology::render_ascii(&machine.topology));

    for policy in MemPolicy::ALL {
        let cfg = SimConfig::os_default(machine.clone())
            .with_threads(ThreadPlacement::Sparse)
            .with_policy(policy)
            .with_autonuma(false)
            .with_thp(false);
        let mut sim = NumaSim::new(cfg);
        // 24 threads each stream through a shared buffer.
        let mut buf = 0;
        sim.serial(&mut buf, |w, buf| {
            *buf = w.map_pages(8 << 20);
        });
        let stats = sim.parallel(24, &mut buf, |w, buf| {
            for i in 0..(1 << 13) {
                w.write_u64(*buf + (i * 997 * 64) % (8 << 20), i);
            }
        });
        let c = stats.counters;
        println!(
            "{:<12} elapsed={:>9}  LAR={:>4.0}%  peak-controller={:>4.0}%  bottleneck={:?}",
            policy.label(),
            stats.elapsed_cycles,
            c.local_access_ratio() * 100.0,
            stats.peak_controller_utilisation() * 100.0,
            stats.bottleneck
        );
    }
    println!(
        "\nPreferred(0) funnels everything through one controller; Interleave\n\
         spreads it; First Touch follows whoever faults a page first."
    );
}
