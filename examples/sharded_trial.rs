//! Sharded trial: run the same parallel region at several shard counts
//! and verify the simulator's promise — shard count changes host
//! wall-clock, never a single byte of the model's output (DESIGN.md
//! §4h). The CLI flag `--shards N` is this API surfaced on sweeps and
//! serve; here we drive `try_parallel_sharded` directly.
//!
//! ```sh
//! cargo run --release --example sharded_trial
//! ```

use nqp::sim::{Counters, NumaSim, SimConfig, VAddr, SMALL_PAGE};
use nqp::topology::machines;

const WORKERS: usize = 8;
const ARENA: u64 = SMALL_PAGE * 64;

/// One trial: map per-worker arenas serially, then hammer them in a
/// sharded region (random-ish reads, writes, and read-modify-writes),
/// merging per-worker checksums at the epoch boundary. Returns
/// everything the region observed, so the caller can diff runs.
fn trial(shards: usize) -> (u64, u64, Counters) {
    let cfg = SimConfig::tuned(machines::machine_b()).with_shards(shards);
    let mut sim = NumaSim::new(cfg);

    // Structural work (map/unmap) happens outside sharded regions —
    // inside one it would be a typed `SimError::Harness` fault.
    let mut bases: Vec<VAddr> = Vec::new();
    sim.parallel(1, &mut bases, |w, bases| {
        for _ in 0..WORKERS {
            bases.push(w.map_pages(ARENA));
        }
    });

    let (stats, partials) = sim
        .try_parallel_sharded(WORKERS, &bases[..], |w, bases| {
            let base = bases[w.tid()];
            let salt = w.tid() as u64 * 0x9e37_79b9;
            let mut sum = 0u64;
            for i in 0..512u64 {
                let at = base + (i * 1193) % (ARENA - 8);
                w.write_u64(at, i ^ salt);
                sum = sum.wrapping_add(w.read_u64(at));
                sum ^= w.rmw_u64(at, |v| v.rotate_left(7));
            }
            sum
        })
        .expect("the sharded region completes");

    let merged = partials
        .into_iter()
        .fold(0u64, |acc, p| acc.rotate_left(9) ^ p);
    (merged, stats.elapsed_cycles, stats.counters)
}

fn main() {
    let (sum1, cycles1, counters1) = trial(1);
    println!("shards=1: checksum {sum1:#018x}, {cycles1} model cycles");
    for shards in [2, 4, 7] {
        let (sum, cycles, counters) = trial(shards);
        let same = sum == sum1 && cycles == cycles1 && counters == counters1;
        println!(
            "shards={shards}: checksum {sum:#018x}, {cycles} model cycles — identical: {same}"
        );
        assert!(same, "shard count must be invisible in the model output");
    }
    println!("byte-identical at every shard count (host threads differ, bytes never)");
}
