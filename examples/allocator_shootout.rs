//! Allocator shootout: the §III-A8 microbenchmark plus a hash-join
//! rematch — which allocator should your analytics workload preload?
//!
//! ```sh
//! cargo run --release --example allocator_shootout
//! ```

use nqp::alloc::microbench::{run_microbench, MicrobenchConfig};
use nqp::alloc::AllocatorKind;
use nqp::core::TuningConfig;
use nqp::datagen::JoinDataset;
use nqp::query::run_hash_join_on;
use nqp::sim::ThreadPlacement;
use nqp::topology::machines;

fn main() {
    let machine = machines::machine_a();
    let cfg = MicrobenchConfig { ops_per_thread: 10_000, live_target: 3_000, seed: 3 };

    println!("== microbenchmark: 16 allocation-heavy threads on Machine A ==");
    println!("{:<12} {:>12} {:>10}", "allocator", "cycles", "overhead");
    for kind in AllocatorKind::ALL {
        let r = run_microbench(kind, &machine, 16, &cfg);
        println!("{:<12} {:>12} {:>9.2}x", kind.label(), r.elapsed_cycles, r.overhead);
    }

    println!("\n== rematch on a real workload: W3 hash join (build 20k x probe 320k) ==");
    let data = JoinDataset::generate(20_000, 3);
    println!("{:<12} {:>12} {:>12}", "allocator", "build", "probe");
    let mut best: Option<(AllocatorKind, u64)> = None;
    for kind in AllocatorKind::MAIN {
        let c = TuningConfig::tuned(machine.clone())
            .with_threads(ThreadPlacement::Sparse)
            .with_allocator(kind);
        let out = run_hash_join_on(&c.env(16), &data);
        let total = out.build_cycles + out.probe_cycles;
        println!("{:<12} {:>12} {:>12}", kind.label(), out.build_cycles, out.probe_cycles);
        if best.as_ref().is_none_or(|&(_, b)| total < b) {
            best = Some((kind, total));
        }
    }
    let (winner, _) = best.expect("allocators ran");
    println!("\nwinner on this workload: {}", winner.label());
    println!("(the paper's recommendation: evaluate allocators on *your* workload,");
    println!(" but tbbmalloc is the safe default and jemalloc when memory is tight)");
}
