//! A tiny TPC-H console: run any of the 22 queries against the five
//! engine architecture profiles and compare latencies and plans.
//!
//! ```sh
//! cargo run --release --example tpch_console            # Q1, Q5, Q6
//! cargo run --release --example tpch_console -- 3 18    # specific queries
//! ```

use nqp::datagen::tpch::TpchData;
use nqp::engines::{query_name, DbSystem, SystemKind};
use nqp::query::WorkloadEnv;
use nqp::topology::machines;

fn main() {
    let queries: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![1, 5, 6]
        } else {
            args
        }
    };
    let data = TpchData::generate(0.005, 42);
    println!(
        "TPC-H data: {} total rows ({} lineitems)",
        data.total_rows(),
        data.lineitem.l_orderkey.len()
    );
    let env = WorkloadEnv::tuned(machines::machine_a());

    for q in queries {
        println!("\n==== Q{q}: {} ====", query_name(q));
        let mut reference: Option<Vec<nqp::engines::Row>> = None;
        for system in SystemKind::ALL {
            let mut db = DbSystem::boot(system, &env, &data);
            let out = db.run(q);
            match &reference {
                None => reference = Some(out.rows.clone()),
                Some(r) => assert_eq!(r, &out.rows, "engines disagree!"),
            }
            println!(
                "{:<11} {:>12} cycles  ({} workers, {} rows)",
                system.label(),
                out.latency_cycles,
                db.profile().worker_threads_for(q, db.threads()),
                out.rows.len()
            );
        }
        let rows = reference.expect("at least one engine ran");
        for row in rows.iter().take(5) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("   | {}", cells.join(" | "));
        }
        if rows.len() > 5 {
            println!("   | ... {} more rows", rows.len() - 5);
        }
    }
}
