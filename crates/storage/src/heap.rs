//! A dynamic heap over one of the allocator models.

use nqp_alloc::{build, Allocator, AllocatorKind};
use nqp_sim::{NumaSim, VAddr, Worker};

/// The heap every simulated data structure allocates from.
///
/// Thin wrapper over a boxed [`Allocator`] model: switching the kind is
/// the "override the memory allocator" knob of the paper, applied to a
/// whole workload without touching the workload's code.
pub struct SimHeap {
    alloc: Box<dyn Allocator>,
}

impl SimHeap {
    /// Build a heap backed by `kind`, registering locks on `sim`.
    pub fn new(kind: AllocatorKind, sim: &mut NumaSim) -> Self {
        SimHeap { alloc: build(kind, sim) }
    }

    /// Which allocator model backs this heap.
    pub fn kind(&self) -> AllocatorKind {
        self.alloc.kind()
    }

    /// Allocate `size` bytes.
    #[inline]
    pub fn alloc(&mut self, w: &mut Worker<'_>, size: u64) -> VAddr {
        self.alloc.alloc(w, size)
    }

    /// Free a `size`-byte allocation at `addr`.
    #[inline]
    pub fn free(&mut self, w: &mut Worker<'_>, addr: VAddr, size: u64) {
        self.alloc.free(w, addr, size)
    }

    /// Peak resident set of the underlying allocator.
    pub fn peak_resident(&self) -> u64 {
        self.alloc.peak_resident()
    }

    /// Live application-requested bytes.
    pub fn live_requested(&self) -> u64 {
        self.alloc.live_requested()
    }
}

impl std::fmt::Debug for SimHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimHeap").field("kind", &self.kind()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    #[test]
    fn heap_allocates_and_frees_through_the_model() {
        let mut sim = NumaSim::new(
            SimConfig::os_default(machines::machine_b())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        );
        let heap = SimHeap::new(AllocatorKind::Jemalloc, &mut sim);
        assert_eq!(heap.kind(), AllocatorKind::Jemalloc);
        let mut heap = heap;
        sim.parallel(2, &mut heap, |w, heap| {
            let p = heap.alloc(w, 256);
            w.write_u64(p, 77);
            assert_eq!(w.read_u64(p), 77);
            heap.free(w, p, 256);
        });
        assert_eq!(heap.live_requested(), 0);
        assert!(heap.peak_resident() > 0);
    }
}
