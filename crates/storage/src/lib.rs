//! Storage primitives over the NUMA simulator.
//!
//! Everything the query workloads and indexes keep "in memory" lives in
//! the simulator's address space, so every structural access flows
//! through the cache/TLB/placement cost model:
//!
//! * [`SimHeap`] — a dynamic heap backed by one of the allocator models;
//!   swap the allocator and the whole structure's allocation behaviour
//!   changes, which is precisely the experiment of Figure 6.
//! * [`TupleArray`] — a dense array of 16-byte `(key, value)` tuples:
//!   the input relations of W1–W4.
//! * [`Chain`] — a chunked linked list of `u64` values allocated from a
//!   [`SimHeap`]: the per-group value lists of holistic aggregation.
//! * [`ColumnArray`] / [`ColumnTable`] — dense `u64` columns with
//!   per-column pages: the SoA relations (and perfect-hash slot arrays)
//!   of the vectorized batch-at-a-time operator path.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod chain;
mod column;
mod heap;
mod tuple_array;

pub use chain::Chain;
pub use column::{ColumnArray, ColumnTable, COLUMN_RUN_WORDS};
pub use heap::SimHeap;
pub use tuple_array::TupleArray;
