//! Dense arrays of 16-byte tuples in simulated memory — the in-memory
//! input relations of the W1–W4 workloads.

use nqp_sim::{VAddr, Worker};

/// Bytes per tuple: `(u64 key, u64 value)`.
pub const TUPLE_BYTES: u64 = 16;

/// A fixed-length array of `(key, value)` tuples in simulated memory.
///
/// The backing pages are mapped by whoever constructs the array, so under
/// First Touch the *loader's* node owns the data — the mechanism behind
/// the paper's placement effects (a coordinator-loaded table concentrates
/// on one node; partition-parallel loading spreads it).
#[derive(Debug, Clone, Copy)]
pub struct TupleArray {
    base: VAddr,
    len: u64,
}

impl TupleArray {
    /// Map (but do not touch) space for `len` tuples.
    pub fn new(w: &mut Worker<'_>, len: usize) -> Self {
        let bytes = (len as u64 * TUPLE_BYTES).max(1);
        TupleArray { base: w.map_pages(bytes), len: len as u64 }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address of the backing mapping.
    pub fn base(&self) -> VAddr {
        self.base
    }

    /// Address of tuple `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> VAddr {
        debug_assert!((i as u64) < self.len);
        self.base + i as u64 * TUPLE_BYTES
    }

    /// Write tuple `i` (first touch places its page).
    #[inline]
    pub fn write(&self, w: &mut Worker<'_>, i: usize, key: u64, val: u64) {
        let addr = self.addr_of(i);
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&key.to_le_bytes());
        buf[8..].copy_from_slice(&val.to_le_bytes());
        w.write_bytes(addr, &buf);
    }

    /// Read tuple `i` — both fields in one ranged access.
    #[inline]
    pub fn read(&self, w: &mut Worker<'_>, i: usize) -> (u64, u64) {
        w.read_u64_pair(self.addr_of(i))
    }

    /// Read tuples `[i, i + out.len())` as bulk ranged accesses (up to
    /// 32 tuples per touch) instead of one access charge per tuple —
    /// the tuple-at-once path the hot scan loops (aggregate build, join
    /// probe) use to amortise per-call overhead.
    pub fn read_run(&self, w: &mut Worker<'_>, i: usize, out: &mut [(u64, u64)]) {
        debug_assert!(i as u64 + out.len() as u64 <= self.len);
        const CHUNK: usize = 32;
        let mut flat = [0u64; CHUNK * 2];
        let mut done = 0;
        while done < out.len() {
            let n = (out.len() - done).min(CHUNK);
            w.read_u64_run(self.addr_of(i + done), &mut flat[..n * 2]);
            for t in 0..n {
                out[done + t] = (flat[t * 2], flat[t * 2 + 1]);
            }
            done += n;
        }
    }

    /// The contiguous index range this thread should process when `tid`
    /// of `nthreads` partitions the array (the morsel assignment used by
    /// every parallel scan in the workspace).
    pub fn partition(&self, tid: usize, nthreads: usize) -> std::ops::Range<usize> {
        let n = self.len as usize;
        let per = n.div_ceil(nthreads);
        let start = (tid * per).min(n);
        let end = ((tid + 1) * per).min(n);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{NumaSim, SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn sim() -> NumaSim {
        NumaSim::new(
            SimConfig::os_default(machines::machine_b())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        )
    }

    #[test]
    fn tuples_round_trip() {
        let mut sim = sim();
        sim.serial(&mut (), |w, _| {
            let arr = TupleArray::new(w, 100);
            for i in 0..100 {
                arr.write(w, i, i as u64 * 3, i as u64 + 7);
            }
            for i in 0..100 {
                assert_eq!(arr.read(w, i), (i as u64 * 3, i as u64 + 7));
            }
        });
    }

    #[test]
    fn partitions_cover_without_overlap() {
        let mut sim = sim();
        sim.serial(&mut (), |w, _| {
            let arr = TupleArray::new(w, 103);
            let mut seen = vec![false; 103];
            for tid in 0..8 {
                for i in arr.partition(tid, 8) {
                    assert!(!seen[i], "index {i} assigned twice");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "some index unassigned");
        });
    }

    #[test]
    fn parallel_writes_first_touch_their_partitions() {
        let mut sim = sim();
        let mut arr = None;
        sim.serial(&mut arr, |w, arr| {
            *arr = Some(TupleArray::new(w, 4096));
        });
        let arr = arr.expect("created");
        sim.parallel(4, &mut (), |w, _| {
            for i in arr.partition(w.tid(), 4) {
                arr.write(w, i, i as u64, 0);
            }
        });
        // Each quarter of the array should live on the toucher's node.
        let first = sim.node_of(arr.addr_of(0)).expect("touched");
        let last = sim.node_of(arr.addr_of(4095)).expect("touched");
        assert_ne!(first, last, "first-touch should spread partitions");
    }
}
