//! Per-value linked chains of `u64` values in simulated memory.
//!
//! Holistic aggregation (W1) must retain *every* value of each group to
//! compute the median, so each hash-table entry anchors one of these
//! chains, and **every input record costs one heap allocation** — the
//! "extensively uses memory allocation during its runtime" property that
//! makes W1 the paper's allocator-sensitive aggregation (Figure 6a–6c).
//!
//! Node layout: `[next: u64][value: u64]` — 16 bytes.

use crate::heap::SimHeap;
use nqp_sim::{VAddr, Worker};

/// Bytes per chain node.
const NODE_BYTES: u64 = 16;

/// Handle to a chain of values (the head pointer lives wherever the
/// caller stores it — typically a hash-table entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chain {
    head: VAddr,
}

impl Chain {
    /// An empty chain (null head).
    pub const EMPTY: Chain = Chain { head: 0 };

    /// Rebuild a handle from a stored head pointer.
    pub fn from_head(head: VAddr) -> Self {
        Chain { head }
    }

    /// The head pointer to store.
    pub fn head(&self) -> VAddr {
        self.head
    }

    /// Prepend a value — one allocation per value, by design.
    pub fn push(&mut self, w: &mut Worker<'_>, heap: &mut SimHeap, value: u64) {
        let node = heap.alloc(w, NODE_BYTES);
        w.write_u64(node, self.head);
        w.write_u64(node + 8, value);
        self.head = node;
    }

    /// Read every value into a `Vec` (insertion order reversed; the
    /// aggregates computed over them are order-independent).
    pub fn collect(&self, w: &mut Worker<'_>) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = self.head;
        while cur != 0 {
            out.push(w.read_u64(cur + 8));
            cur = w.read_u64(cur);
        }
        out
    }

    /// Number of values without materialising them.
    pub fn len(&self, w: &mut Worker<'_>) -> u64 {
        let mut n = 0;
        let mut cur = self.head;
        while cur != 0 {
            n += 1;
            cur = w.read_u64(cur);
        }
        n
    }

    /// Whether the chain holds no values.
    pub fn is_empty(&self) -> bool {
        self.head == 0
    }

    /// Free every node back to the heap, leaving the chain empty.
    pub fn free(&mut self, w: &mut Worker<'_>, heap: &mut SimHeap) {
        let mut cur = self.head;
        while cur != 0 {
            let next = w.read_u64(cur);
            heap.free(w, cur, NODE_BYTES);
            cur = next;
        }
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_alloc::AllocatorKind;
    use nqp_sim::{NumaSim, SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn with_heap(f: impl FnMut(&mut Worker<'_>, &mut SimHeap)) {
        let mut sim = NumaSim::new(
            SimConfig::os_default(machines::machine_b())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        );
        let mut heap = SimHeap::new(AllocatorKind::Tbbmalloc, &mut sim);
        sim.serial(&mut heap, f);
    }

    #[test]
    fn push_and_collect_round_trip() {
        with_heap(|w, heap| {
            let mut chain = Chain::EMPTY;
            for v in 0..50u64 {
                chain.push(w, heap, v);
            }
            let mut values = chain.collect(w);
            values.sort_unstable();
            assert_eq!(values, (0..50).collect::<Vec<_>>());
            assert_eq!(chain.len(w), 50);
        });
    }

    #[test]
    fn empty_chain_behaves() {
        with_heap(|w, _| {
            let chain = Chain::EMPTY;
            assert!(chain.is_empty());
            assert_eq!(chain.collect(w), Vec::<u64>::new());
            assert_eq!(chain.len(w), 0);
        });
    }

    #[test]
    fn one_allocation_per_value() {
        with_heap(|w, heap| {
            let before = heap.live_requested();
            let mut chain = Chain::EMPTY;
            for v in 0..100u64 {
                chain.push(w, heap, v);
            }
            assert_eq!(heap.live_requested() - before, 100 * NODE_BYTES);
        });
    }

    #[test]
    fn free_returns_memory() {
        with_heap(|w, heap| {
            let mut chain = Chain::EMPTY;
            for v in 0..100u64 {
                chain.push(w, heap, v);
            }
            let live_before = heap.live_requested();
            chain.free(w, heap);
            assert!(chain.is_empty());
            assert!(heap.live_requested() < live_before);
        });
    }

    #[test]
    fn head_round_trips_through_storage() {
        with_heap(|w, heap| {
            let mut chain = Chain::EMPTY;
            chain.push(w, heap, 42);
            let stored = chain.head();
            let revived = Chain::from_head(stored);
            assert_eq!(revived.collect(w), vec![42]);
        });
    }
}
