//! Dense `u64` columns in simulated memory — the columnar (SoA) input
//! layout of the vectorized batch-at-a-time operator path.
//!
//! Where [`crate::TupleArray`] interleaves `(key, value)` pairs row-wise,
//! a [`ColumnTable`] maps each attribute as its own [`ColumnArray`] with
//! its own pages. Column projection falls out of the layout: an operator
//! that never reads a column never touches (or even faults in) its pages,
//! which is the half of the vectorized win that the cost model can see.
//!
//! All bulk transfers move through the PR-5 ranged accessors
//! (`read_u64_run` / `write_u64_run`) in fixed [`COLUMN_RUN_WORDS`]-word
//! chunks. The chunk size is deliberately *not* the host-side batch size:
//! runners round their batch up to a multiple of the run length, so the
//! simulated touch stream — and therefore every cycle count — is
//! invariant to `--batch-size`.

use nqp_sim::{VAddr, Worker};

/// Words per bulk ranged access (256 bytes — the PR-5 run granularity
/// the tuple path also uses: 32 tuples × 16 B there, 32 words × 8 B
/// here). Fixed so the simulated access stream does not depend on the
/// host batch size.
pub const COLUMN_RUN_WORDS: usize = 32;

/// A fixed-length array of `u64` values in simulated memory.
///
/// Pages are mapped by whoever constructs the column, so under First
/// Touch the *loader's* node owns the data — same placement mechanics as
/// [`crate::TupleArray`].
#[derive(Debug, Clone, Copy)]
pub struct ColumnArray {
    base: VAddr,
    len: u64,
}

impl ColumnArray {
    /// Map (but do not touch) space for `len` words.
    pub fn new(w: &mut Worker<'_>, len: usize) -> Self {
        let bytes = (len as u64 * 8).max(1);
        ColumnArray { base: w.map_pages(bytes), len: len as u64 }
    }

    /// Map space for `len` words with the pages spread across the nodes
    /// (the application-level interleaving the shared-slot-array
    /// aggregation offers, mirroring `HashTable::init_interleaved`).
    pub fn new_interleaved(w: &mut Worker<'_>, len: usize) -> Self {
        let bytes = (len as u64 * 8).max(1);
        ColumnArray { base: w.map_pages_shared(bytes), len: len as u64 }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address of the backing mapping.
    pub fn base(&self) -> VAddr {
        self.base
    }

    /// Address of word `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> VAddr {
        debug_assert!((i as u64) < self.len);
        self.base + i as u64 * 8
    }

    /// Read word `i` (one 8-byte access — the gather path of the
    /// perfect-hash slot arrays).
    #[inline]
    pub fn read(&self, w: &mut Worker<'_>, i: usize) -> u64 {
        w.read_u64(self.addr_of(i))
    }

    /// Write word `i` (first touch places its page).
    #[inline]
    pub fn write(&self, w: &mut Worker<'_>, i: usize, v: u64) {
        w.write_u64(self.addr_of(i), v);
    }

    /// Read words `[i, i + out.len())` as bulk ranged accesses of at
    /// most [`COLUMN_RUN_WORDS`] words each.
    pub fn read_run(&self, w: &mut Worker<'_>, i: usize, out: &mut [u64]) {
        debug_assert!(i as u64 + out.len() as u64 <= self.len);
        let mut done = 0;
        while done < out.len() {
            let n = (out.len() - done).min(COLUMN_RUN_WORDS);
            w.read_u64_run(self.addr_of(i + done), &mut out[done..done + n]);
            done += n;
        }
    }

    /// Write words `[i, i + vals.len())` as bulk ranged accesses of at
    /// most [`COLUMN_RUN_WORDS`] words each — the partition-parallel
    /// column loader's fill path.
    pub fn write_run(&self, w: &mut Worker<'_>, i: usize, vals: &[u64]) {
        debug_assert!(i as u64 + vals.len() as u64 <= self.len);
        let mut done = 0;
        while done < vals.len() {
            let n = (vals.len() - done).min(COLUMN_RUN_WORDS);
            w.write_u64_run(self.addr_of(i + done), &vals[done..done + n]);
            done += n;
        }
    }

    /// The contiguous index range thread `tid` of `nthreads` should
    /// process — the same morsel assignment every parallel scan in the
    /// workspace uses.
    pub fn partition(&self, tid: usize, nthreads: usize) -> std::ops::Range<usize> {
        let n = self.len as usize;
        let per = n.div_ceil(nthreads);
        let start = (tid * per).min(n);
        let end = ((tid + 1) * per).min(n);
        start..end
    }
}

/// A two-column `(key, val)` relation stored column-wise: each column has
/// its own pages, so operators that project a column away never touch it.
#[derive(Debug, Clone, Copy)]
pub struct ColumnTable {
    /// The key column.
    pub keys: ColumnArray,
    /// The value/payload column.
    pub vals: ColumnArray,
}

impl ColumnTable {
    /// Map (but do not touch) both columns for `len` rows.
    pub fn new(w: &mut Worker<'_>, len: usize) -> Self {
        ColumnTable { keys: ColumnArray::new(w, len), vals: ColumnArray::new(w, len) }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The contiguous row range thread `tid` of `nthreads` should scan.
    pub fn partition(&self, tid: usize, nthreads: usize) -> std::ops::Range<usize> {
        self.keys.partition(tid, nthreads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{NumaSim, SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn sim() -> NumaSim {
        NumaSim::new(
            SimConfig::os_default(machines::machine_b())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        )
    }

    #[test]
    fn words_round_trip_through_runs() {
        let mut sim = sim();
        sim.serial(&mut (), |w, _| {
            let col = ColumnArray::new(w, 100);
            let vals: Vec<u64> = (0..100).map(|i| i * 3 + 7).collect();
            col.write_run(w, 0, &vals);
            let mut back = vec![0u64; 100];
            col.read_run(w, 0, &mut back);
            assert_eq!(back, vals);
            assert_eq!(col.read(w, 41), 41 * 3 + 7);
        });
    }

    #[test]
    fn run_cycle_cost_is_offset_invariant() {
        // Two equal-length transfers must charge the same cycles no
        // matter where the caller's host-side batch boundaries fell —
        // the property `--batch-size` invariance rests on.
        let cost = |split: usize| {
            let mut sim = sim();
            sim.serial(&mut (), |w, _| {
                let col = ColumnArray::new(w, 256);
                col.write_run(w, 0, &vec![9u64; 256]);
            });
            let before = sim.now_cycles();
            sim.serial(&mut (), |w, _| {
                let col = ColumnArray::new(w, 256);
                col.write_run(w, 0, &vec![9u64; 256]);
                let mut buf = vec![0u64; 256];
                col.read_run(w, 0, &mut buf[..split]);
                col.read_run(w, split, &mut buf[split..]);
            });
            sim.now_cycles() - before
        };
        // Splits at run-aligned boundaries charge identically.
        assert_eq!(cost(32), cost(64));
        assert_eq!(cost(96), cost(128));
    }

    #[test]
    fn table_columns_have_disjoint_pages() {
        let mut sim = sim();
        sim.serial(&mut (), |w, _| {
            let t = ColumnTable::new(w, 1024);
            assert_ne!(t.keys.base(), t.vals.base());
            let keys: Vec<u64> = (0..1024).collect();
            t.keys.write_run(w, 0, &keys);
            // The vals column was never touched; only keys reads work.
            let mut back = vec![0u64; 8];
            t.keys.read_run(w, 500, &mut back);
            assert_eq!(back, (500..508).collect::<Vec<u64>>());
        });
    }

    #[test]
    fn partitions_cover_without_overlap() {
        let mut sim = sim();
        sim.serial(&mut (), |w, _| {
            let col = ColumnArray::new(w, 103);
            let mut seen = vec![false; 103];
            for tid in 0..8 {
                for i in col.partition(tid, 8) {
                    assert!(!seen[i], "index {i} assigned twice");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "some index unassigned");
        });
    }
}
