//! Model of tcmalloc (§III-A3).
//!
//! Structure: lock-free per-thread caches in front of a central heap
//! organised into spans, one freelist + lock per size class. The fast
//! path is the cheapest of all seven models (tcmalloc wins the
//! single-threaded microbenchmark), but the thread cache is small, so
//! allocation-heavy multi-threaded workloads fall through to the central
//! per-class locks — which every thread shares — and scalability
//! collapses, exactly the Figure 2a shape. Spans dedicated to one class
//! waste memory when many classes are in flight (the modest overhead of
//! Figure 2b), and page-level span decommit fights THP (Figure 5c).

use crate::chunks::{ChunkSource, RequestedBytes};
use crate::pool::{ClassPool, ThreadCache};
use crate::size_class::{class_of, CLASSES, MAX_SMALL, NUM_CLASSES};
use crate::{maybe_thp_tax, thp_op_tax, Allocator, AllocatorKind};
use nqp_sim::{LockId, NumaSim, VAddr, Worker};

/// Base cost of every operation — the fastest fast path of the seven.
const OP_CYCLES: u64 = 8;
/// Critical-section length of a central span-list operation (span
/// carving and page-map updates are heavier than a freelist pop).
const CENTRAL_HOLD_CYCLES: u64 = 350;
/// Critical-section length of the page-heap lock that every central
/// trip crosses — the one lock all classes share, and the reason
/// tcmalloc's scalability collapses once several threads churn.
const PAGEHEAP_HOLD_CYCLES: u64 = 300;
/// Objects moved per central trip.
const TRANSFER_BATCH: usize = 16;
/// Allocations between thread-cache scavenges: tcmalloc periodically
/// garbage-collects its caches back to the central lists, which is what
/// drags every thread onto the shared class locks once more than one
/// thread allocates in earnest (the Figure 2a collapse).
const SCAVENGE_EVERY: u64 = 8;

/// See module docs.
pub struct TcMalloc {
    src: ChunkSource,
    requested: RequestedBytes,
    central: ClassPool,
    class_locks: Vec<LockId>,
    pageheap_lock: LockId,
    tcaches: Vec<ThreadCache>,
    /// Per-thread allocation counters driving the scavenger.
    op_counts: Vec<u64>,
}

impl TcMalloc {
    /// Build the model with one central lock per size class.
    pub fn new(sim: &mut NumaSim) -> Self {
        TcMalloc {
            src: ChunkSource::new(128 << 10), // spans
            requested: RequestedBytes::default(),
            central: ClassPool::new(8 << 10, 0),
            class_locks: (0..NUM_CLASSES).map(|_| sim.new_lock()).collect(),
            pageheap_lock: sim.new_lock(),
            tcaches: Vec::new(),
            op_counts: Vec::new(),
        }
    }

    fn tcache_of(&mut self, tid: usize) -> &mut ThreadCache {
        while self.tcaches.len() <= tid {
            // Generous enough to win the single-threaded race, but
            // tcmalloc bounds the whole cache (2 MB default) and
            // garbage-collects it, so allocation-heavy multithreaded
            // phases still fall through to the central lists.
            self.tcaches.push(ThreadCache::new(TRANSFER_BATCH + TRANSFER_BATCH / 2));
        }
        &mut self.tcaches[tid]
    }
}

impl Allocator for TcMalloc {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Tcmalloc
    }

    fn alloc(&mut self, w: &mut Worker<'_>, size: u64) -> VAddr {
        w.compute(OP_CYCLES);
        thp_op_tax(w, self.thp_friendly());
        self.requested.on_alloc(size);
        if size > MAX_SMALL {
            let a = self.src.grab_sized(w, size);
            maybe_thp_tax(w, self.thp_friendly(), a);
            return a;
        }
        let (class, class_size) = class_of(size);
        let tid = w.tid();
        while self.op_counts.len() <= tid {
            self.op_counts.push(0);
        }
        self.op_counts[tid] += 1;
        if self.op_counts[tid] % SCAVENGE_EVERY == 0 {
            // Periodic cache GC: return surplus cached blocks of this
            // class to the central list under its lock (never draining
            // below one transfer batch, like the real scavenger's
            // low-water mark).
            let n = self.tcache_of(tid).class_len(class);
            if n >= TRANSFER_BATCH {
                w.lock(self.class_locks[class], CENTRAL_HOLD_CYCLES);
                w.lock(self.pageheap_lock, PAGEHEAP_HOLD_CYCLES);
                w.compute(40); // the list splice itself is cheap
                let give: Vec<_> = (0..TRANSFER_BATCH)
                    .filter_map(|_| self.tcaches[tid].get(class))
                    .collect();
                self.central.accept(w, class, give);
            }
        }
        if let Some(addr) = self.tcache_of(tid).get(class) {
            return addr;
        }
        // Central trip: per-class lock, refill a transfer batch.
        // Batch size shrinks for big classes (fewer objects per span).
        let batch_n = (TRANSFER_BATCH as u64)
            .min((64 << 10) / CLASSES[class])
            .max(1) as usize;
        w.lock(self.class_locks[class], CENTRAL_HOLD_CYCLES);
        w.lock(self.pageheap_lock, PAGEHEAP_HOLD_CYCLES);
        w.compute(CENTRAL_HOLD_CYCLES); // the critical-section work itself
        let first = self.central.alloc_block(w, &mut self.src, class, class_size);
        maybe_thp_tax(w, self.thp_friendly(), first);
        let batch: Vec<VAddr> = (1..batch_n)
            .map(|_| self.central.alloc_block(w, &mut self.src, class, class_size))
            .collect();
        self.tcache_of(tid).refill(class, batch);
        first
    }

    fn free(&mut self, w: &mut Worker<'_>, addr: VAddr, size: u64) {
        w.compute(OP_CYCLES);
        thp_op_tax(w, self.thp_friendly());
        self.requested.on_free(size);
        if size > MAX_SMALL {
            maybe_thp_tax(w, self.thp_friendly(), addr);
            self.src.release_sized(addr, size);
            return;
        }
        let (class, _) = class_of(size);
        let tid = w.tid();
        if let Some(overflow) = self.tcache_of(tid).put(class, addr) {
            w.lock(self.class_locks[class], CENTRAL_HOLD_CYCLES);
            w.lock(self.pageheap_lock, PAGEHEAP_HOLD_CYCLES);
            w.compute(CENTRAL_HOLD_CYCLES); // the critical-section work itself
            maybe_thp_tax(w, self.thp_friendly(), addr);
            self.central.accept(w, class, overflow);
        }
    }

    fn peak_resident(&self) -> u64 {
        self.src.peak_committed()
    }

    fn peak_requested(&self) -> u64 {
        self.requested.peak()
    }

    fn live_requested(&self) -> u64 {
        self.requested.live()
    }

    fn thp_friendly(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn sim() -> NumaSim {
        NumaSim::new(
            SimConfig::os_default(machines::machine_a())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        )
    }

    fn churn(threads: usize) -> (u64, u64) {
        let mut sim = sim();
        let mut tc = TcMalloc::new(&mut sim);
        let stats = sim.parallel(threads, &mut tc, |w, tc| {
            let mut live = Vec::new();
            for i in 0..400u64 {
                let size = 32 << (i % 3);
                live.push((tc.alloc(w, size), size));
                if live.len() > 64 {
                    let (p, s) = live.swap_remove(0);
                    tc.free(w, p, s);
                }
            }
            for (p, s) in live {
                tc.free(w, p, s);
            }
        });
        (stats.elapsed_cycles, stats.counters.lock_wait_cycles)
    }

    #[test]
    fn central_lock_contention_grows_with_threads() {
        let (_, w1) = churn(1);
        let (_, w8) = churn(8);
        assert_eq!(w1, 0, "single thread must never wait");
        assert!(w8 > 0, "eight churning threads must contend");
    }

    #[test]
    fn fast_path_is_cheap() {
        let mut sim = sim();
        let mut tc = TcMalloc::new(&mut sim);
        let mut cycles = 0;
        sim.serial(&mut (&mut tc, &mut cycles), |w, (tc, cycles)| {
            // Prime the thread cache.
            let p = tc.alloc(w, 64);
            tc.free(w, p, 64);
            let before = w.clock();
            let q = tc.alloc(w, 64);
            **cycles = w.clock() - before;
            tc.free(w, q, 64);
        });
        assert!(cycles <= OP_CYCLES + 5, "fast path cost {cycles}");
    }

    #[test]
    fn big_classes_refill_small_batches() {
        // A 32KB class gets batch 2, not 32: verify by counting how many
        // blocks the tcache holds after one refill.
        let mut sim = sim();
        let mut tc = TcMalloc::new(&mut sim);
        let mut cached = 0usize;
        sim.serial(&mut (&mut tc, &mut cached), |w, (tc, cached)| {
            let p = tc.alloc(w, 32768);
            **cached = tc.tcaches[w.tid()].total_cached();
            tc.free(w, p, 32768);
        });
        assert!(cached <= 2, "cached {cached} blocks of the 32KB class");
    }
}
