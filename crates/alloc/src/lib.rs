//! Behavioural models of seven dynamic memory allocators (§III-A of the
//! paper), running over the NUMA simulator.
//!
//! Each model reproduces the *structural* design of the real allocator —
//! arena layout, per-thread caching, synchronisation discipline, chunk
//! granularity, metadata placement — because those structures are what
//! produce the scalability and memory-overhead differences the paper
//! measures (Figure 2) and the THP interactions of Figure 5c. Cycle
//! costs are model parameters; shapes, not absolute seconds, are the
//! reproduction target.
//!
//! | Model | Key structure | Synchronisation |
//! |---|---|---|
//! | [`PtMalloc`] | per-thread arenas (grown on demand) + small tcache | one mutex per arena |
//! | [`JeMalloc`] | per-CPU arenas, round-robin threads, big tcache | per-arena lock, out-of-band metadata |
//! | [`TcMalloc`] | thread caches + central per-class span lists | per-class central locks |
//! | [`Hoard`] | hashed per-thread heaps of superblocks + global hoard | per-heap + global locks |
//! | [`TbbMalloc`] | per-thread pools, memory rarely returned | backend lock on chunk refill only |
//! | [`SuperMalloc`] | global pools + chunk lookup table | one global lock (HTM fallback) |
//! | [`McMalloc`] | batched OS requests, rate-scaled refill batches | per-class locks |
//!
//! ```
//! use nqp_alloc::{build, AllocatorKind};
//! use nqp_sim::{NumaSim, SimConfig};
//! use nqp_topology::machines;
//!
//! let mut sim = NumaSim::new(SimConfig::tuned(machines::machine_b()));
//! let mut alloc = build(AllocatorKind::Jemalloc, &mut sim);
//! sim.parallel(4, &mut alloc, |w, alloc| {
//!     let p = alloc.alloc(w, 100);
//!     w.write_u64(p, 42);
//!     alloc.free(w, p, 100);
//! });
//! assert!(alloc.peak_resident() >= alloc.peak_requested());
//! ```

mod chunks;
mod hoard;
mod jemalloc;
mod mcmalloc;
pub mod microbench;
mod pool;
mod ptmalloc;
mod size_class;
mod supermalloc;
mod tbbmalloc;
mod tcmalloc;

pub use chunks::{ChunkSource, RequestedBytes};
pub use hoard::Hoard;
pub use jemalloc::JeMalloc;
pub use mcmalloc::McMalloc;
pub use pool::{ClassPool, ThreadCache};
pub use ptmalloc::PtMalloc;
pub use size_class::{class_of, CLASSES, MAX_SMALL, NUM_CLASSES};
pub use supermalloc::SuperMalloc;
pub use tbbmalloc::TbbMalloc;
pub use tcmalloc::TcMalloc;

use nqp_sim::{NumaSim, SimResult, VAddr, Worker};

/// The allocators evaluated in the paper, in §III-A order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// glibc's default allocator (`ptmalloc2`).
    Ptmalloc,
    /// Jason Evans' allocator (FreeBSD / Facebook).
    Jemalloc,
    /// Google's thread-caching malloc (gperftools).
    Tcmalloc,
    /// Berger et al.'s Hoard.
    Hoard,
    /// Intel TBB's scalable allocator.
    Tbbmalloc,
    /// Kuszmaul's SuperMalloc.
    Supermalloc,
    /// Umayabara & Yamana's MCMalloc.
    Mcmalloc,
}

impl AllocatorKind {
    /// All seven allocators, in paper order.
    pub const ALL: [AllocatorKind; 7] = [
        AllocatorKind::Ptmalloc,
        AllocatorKind::Jemalloc,
        AllocatorKind::Tcmalloc,
        AllocatorKind::Hoard,
        AllocatorKind::Tbbmalloc,
        AllocatorKind::Supermalloc,
        AllocatorKind::Mcmalloc,
    ];

    /// The five allocators kept after the microbenchmark culls
    /// supermalloc (scalability) and mcmalloc (memory overhead) — the set
    /// used in Figures 5c, 6, 7, and 9.
    pub const MAIN: [AllocatorKind; 5] = [
        AllocatorKind::Ptmalloc,
        AllocatorKind::Jemalloc,
        AllocatorKind::Tcmalloc,
        AllocatorKind::Hoard,
        AllocatorKind::Tbbmalloc,
    ];

    /// The allocator's conventional lowercase name.
    pub fn label(self) -> &'static str {
        match self {
            AllocatorKind::Ptmalloc => "ptmalloc",
            AllocatorKind::Jemalloc => "jemalloc",
            AllocatorKind::Tcmalloc => "tcmalloc",
            AllocatorKind::Hoard => "Hoard",
            AllocatorKind::Tbbmalloc => "tbbmalloc",
            AllocatorKind::Supermalloc => "supermalloc",
            AllocatorKind::Mcmalloc => "mcmalloc",
        }
    }

    /// Parse a label as printed by [`AllocatorKind::label`]
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<AllocatorKind> {
        AllocatorKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(s))
    }
}

/// A dynamic memory allocator model.
///
/// `free` takes the allocation size (the model equivalent of sized
/// deallocation); real allocators recover it from block metadata, whose
/// access cost the models charge explicitly.
pub trait Allocator {
    /// Which allocator this is.
    fn kind(&self) -> AllocatorKind;

    /// Allocate `size` bytes, charging the model's costs to `w`.
    fn alloc(&mut self, w: &mut Worker<'_>, size: u64) -> VAddr;

    /// Free an allocation of `size` bytes at `addr`.
    fn free(&mut self, w: &mut Worker<'_>, addr: VAddr, size: u64);

    /// Allocate `size` bytes, surfacing a simulation fault (injected
    /// allocation failure, node capacity exhaustion, budget timeout) as
    /// an error instead of leaving only the poisoned worker behind.
    ///
    /// The returned address is meaningless when `Err` — the worker is
    /// poisoned and every further operation on it is a no-op, so
    /// callers should stop the fallible region promptly.
    fn try_alloc(&mut self, w: &mut Worker<'_>, size: u64) -> SimResult<VAddr> {
        let addr = self.alloc(w, size);
        match w.fault() {
            Some(e) => Err(e.clone()),
            None => Ok(addr),
        }
    }

    /// High-water resident set obtained from the OS.
    fn peak_resident(&self) -> u64;

    /// High-water of application-requested live bytes.
    fn peak_requested(&self) -> u64;

    /// Currently live application-requested bytes.
    fn live_requested(&self) -> u64;

    /// Whether the allocator cooperates with Transparent Hugepages.
    /// Allocators that manage memory at 4 KB granularity (`madvise`
    /// purging, page-level decommit) fight khugepaged and pay a tax when
    /// THP is enabled — the §IV-C2 finding.
    fn thp_friendly(&self) -> bool;

    /// Memory consumption overhead: peak resident ÷ peak requested
    /// (Figure 2b's metric).
    fn overhead(&self) -> f64 {
        let req = self.peak_requested();
        if req == 0 {
            1.0
        } else {
            self.peak_resident() as f64 / req as f64
        }
    }
}

/// Construct an allocator model, registering its locks with `sim`.
pub fn build(kind: AllocatorKind, sim: &mut NumaSim) -> Box<dyn Allocator> {
    match kind {
        AllocatorKind::Ptmalloc => Box::new(PtMalloc::new(sim)),
        AllocatorKind::Jemalloc => Box::new(JeMalloc::new(sim)),
        AllocatorKind::Tcmalloc => Box::new(TcMalloc::new(sim)),
        AllocatorKind::Hoard => Box::new(Hoard::new(sim)),
        AllocatorKind::Tbbmalloc => Box::new(TbbMalloc::new(sim)),
        AllocatorKind::Supermalloc => Box::new(SuperMalloc::new(sim)),
        AllocatorKind::Mcmalloc => Box::new(McMalloc::new(sim)),
    }
}

/// CPU cycles of the khugepaged split/collapse churn charged on
/// slow-path operations when THP is enabled and the allocator manages
/// pages at 4 KB granularity (§IV-C2).
pub(crate) const THP_TAX_CYCLES: u64 = 150;

/// Cache lines of compaction copy traffic per taxed operation
/// (khugepaged re-collapsing the pages the allocator keeps splitting).
/// Charged as uncached kernel traffic: latency *and* controller demand.
pub(crate) const THP_TAX_COPY_LINES: u64 = 2;

/// Light per-operation THP tax for page-granular allocators: size
/// checks and split bookkeeping on every call while khugepaged keeps
/// re-collapsing their ranges.
pub(crate) const THP_OP_TAX_CYCLES: u64 = 18;

/// Charge the per-operation THP tax if it applies.
#[inline]
pub(crate) fn thp_op_tax(w: &mut Worker<'_>, friendly: bool) {
    if !friendly && w.config().thp {
        w.compute(THP_OP_TAX_CYCLES);
    }
}

/// Charge the THP tax if it applies. `addr` anchors the compaction
/// traffic to the region the allocator just worked in.
#[inline]
pub(crate) fn maybe_thp_tax(w: &mut Worker<'_>, friendly: bool, addr: VAddr) {
    if !friendly && w.config().thp {
        w.compute(THP_TAX_CYCLES);
        let page = addr & !4095;
        if page >= 4096 {
            w.dma_lines(page, THP_TAX_COPY_LINES);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn sim() -> NumaSim {
        NumaSim::new(
            SimConfig::os_default(machines::machine_b())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        )
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for kind in AllocatorKind::ALL {
            assert_eq!(AllocatorKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(AllocatorKind::parse("TCMALLOC"), Some(AllocatorKind::Tcmalloc));
        assert_eq!(AllocatorKind::parse("nothing"), None);
    }

    #[test]
    fn every_allocator_round_trips_allocations() {
        for kind in AllocatorKind::ALL {
            let mut sim = sim();
            let mut alloc = build(kind, &mut sim);
            sim.parallel(4, &mut alloc, |w, alloc| {
                let mut live = Vec::new();
                for i in 0..200u64 {
                    let size = 16 + (i * 13) % 3000;
                    let p = alloc.alloc(w, size);
                    w.write_u64(p, i);
                    live.push((p, size, i));
                    if i % 3 == 0 {
                        let (p, size, v) = live.swap_remove(0);
                        assert_eq!(w.read_u64(p), v, "{kind:?} corrupted a block");
                        alloc.free(w, p, size);
                    }
                }
                for (p, size, v) in live.drain(..) {
                    assert_eq!(w.read_u64(p), v, "{kind:?} corrupted a block");
                    alloc.free(w, p, size);
                }
            });
            assert_eq!(alloc.live_requested(), 0, "{kind:?} leaked");
            assert!(alloc.overhead() >= 1.0, "{kind:?} overhead < 1");
        }
    }

    #[test]
    fn live_allocations_never_alias() {
        for kind in AllocatorKind::ALL {
            let mut sim = sim();
            let mut alloc = build(kind, &mut sim);
            sim.parallel(2, &mut alloc, |w, alloc| {
                let mut ranges: Vec<(u64, u64)> = Vec::new();
                for i in 0..300u64 {
                    let size = [16u64, 100, 1000, 40_000][(i % 4) as usize];
                    let p = alloc.alloc(w, size);
                    for &(q, qs) in &ranges {
                        assert!(
                            p + size <= q || q + qs <= p,
                            "{kind:?}: [{p:#x},{size}) overlaps [{q:#x},{qs})"
                        );
                    }
                    ranges.push((p, size));
                }
            });
        }
    }

    #[test]
    fn large_allocations_are_supported() {
        for kind in AllocatorKind::ALL {
            let mut sim = sim();
            let mut alloc = build(kind, &mut sim);
            sim.serial(&mut alloc, |w, alloc| {
                let p = alloc.alloc(w, 5 << 20);
                w.write_u64(p, 1);
                w.write_u64(p + (5 << 20) - 8, 2);
                alloc.free(w, p, 5 << 20);
            });
            assert_eq!(alloc.live_requested(), 0);
            assert!(alloc.peak_requested() >= 5 << 20);
        }
    }

    #[test]
    fn freed_memory_is_reused_eventually() {
        for kind in AllocatorKind::ALL {
            let mut sim = sim();
            let alloc = build(kind, &mut sim);
            let mut shared = (alloc, std::collections::HashSet::new(), false);
            sim.serial(&mut shared, |w, (alloc, seen, hit)| {
                for _ in 0..50 {
                    let p = alloc.alloc(w, 64);
                    if !seen.insert(p) {
                        *hit = true;
                    }
                    alloc.free(w, p, 64);
                }
            });
            assert!(shared.2, "{kind:?} never reused a freed block");
        }
    }

    #[test]
    fn try_alloc_surfaces_injected_faults_and_recovers_on_retry() {
        use nqp_sim::{FaultPlan, SimError};
        for attempt in [0u32, 1] {
            let mut sim = NumaSim::new(
                SimConfig::os_default(machines::machine_b())
                    .with_autonuma(false)
                    .with_thp(false)
                    .with_faults(FaultPlan::new(11).with_alloc_fail(0, 0, 1))
                    .with_fault_attempt(attempt),
            );
            let mut alloc = build(AllocatorKind::Jemalloc, &mut sim);
            let mut outcome = None;
            let result = sim.try_serial(&mut (&mut alloc, &mut outcome), |w, (alloc, outcome)| {
                // Big enough that every attempt takes the mmap slow path.
                **outcome = Some(alloc.try_alloc(w, 8 << 20));
            });
            if attempt == 0 {
                // First attempt: the plan fails allocations in region 0.
                assert!(matches!(
                    outcome,
                    Some(Err(SimError::InjectedAllocFault { region: 0, .. }))
                ));
                assert!(result.is_err(), "poisoned region must surface the fault");
            } else {
                // Retry attempt is past `fail_attempts`: it succeeds.
                let addr = outcome.expect("ran").expect("retry should succeed");
                assert!(addr > 0);
                result.expect("no fault on retry");
            }
        }
    }

    #[test]
    fn thp_friendliness_matches_figure_5c() {
        let mut sim = sim();
        let friendly: Vec<bool> = AllocatorKind::ALL
            .into_iter()
            .map(|k| build(k, &mut sim).thp_friendly())
            .collect();
        // ptmalloc and Hoard tolerate THP; tcmalloc/jemalloc/tbbmalloc
        // do not (§IV-C2).
        assert!(friendly[0], "ptmalloc");
        assert!(!friendly[1], "jemalloc");
        assert!(!friendly[2], "tcmalloc");
        assert!(friendly[3], "Hoard");
        assert!(!friendly[4], "tbbmalloc");
    }
}
