//! The memory-allocator microbenchmark of §III-A8 (Figure 2).
//!
//! Multiple threads hammer one allocator concurrently: each operation
//! either allocates a block and writes to it, or reads an existing block
//! and frees it. Allocation sizes are drawn with probability inversely
//! proportional to the size class, as in the paper. Two metrics come
//! out: execution time (Figure 2a) and memory consumption overhead —
//! peak resident set ÷ peak requested bytes (Figure 2b).

use crate::size_class::CLASSES;
use crate::{build, Allocator, AllocatorKind};
use nqp_sim::{MemPolicy, NumaSim, SimConfig, ThreadPlacement, VAddr};
use nqp_topology::MachineSpec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of one microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicrobenchConfig {
    /// Memory operations per thread (the paper uses 100 M; the default is
    /// scaled down so full sweeps stay fast — shapes are op-count-stable).
    pub ops_per_thread: u64,
    /// Target live allocations per thread (the steady-state working set).
    pub live_target: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        MicrobenchConfig { ops_per_thread: 20_000, live_target: 6_000, seed: 42 }
    }
}

/// One row of Figure 2: an allocator at a thread count.
#[derive(Debug, Clone)]
pub struct MicrobenchRow {
    /// The allocator measured.
    pub kind: AllocatorKind,
    /// Threads used.
    pub threads: usize,
    /// Simulated elapsed cycles (Figure 2a's "time").
    pub elapsed_cycles: u64,
    /// Peak resident ÷ peak requested (Figure 2b's overhead).
    pub overhead: f64,
    /// Cycles threads spent waiting on allocator locks.
    pub lock_wait_cycles: u64,
    /// High-water of live application-requested bytes.
    pub requested_peak: u64,
    /// High-water of allocator-committed bytes (the RSS proxy).
    pub resident_peak: u64,
}

/// Cumulative weights for size sampling: `P(class) ∝ 1/size`.
fn size_weights() -> Vec<f64> {
    let mut acc = 0.0;
    let mut cum = Vec::with_capacity(CLASSES.len());
    for &c in &CLASSES {
        acc += 1.0 / c as f64;
        cum.push(acc);
    }
    for w in &mut cum {
        *w /= acc;
    }
    cum
}

fn sample_size(rng: &mut StdRng, cum: &[f64]) -> u64 {
    let u: f64 = rng.random();
    let idx = cum.iter().position(|&c| u <= c).unwrap_or(CLASSES.len() - 1);
    // A size inside the class: the class size itself keeps accounting
    // simple and matches how size-class benchmarks are usually written.
    CLASSES[idx]
}

/// Run the microbenchmark for one allocator at one thread count.
///
/// The environment is pinned (Sparse affinity, First Touch, AutoNUMA and
/// THP off) so the measurement isolates the allocator, as a
/// microbenchmark should.
pub fn run_microbench(
    kind: AllocatorKind,
    machine: &MachineSpec,
    threads: usize,
    cfg: &MicrobenchConfig,
) -> MicrobenchRow {
    let sim_cfg = SimConfig::os_default(machine.clone())
        .with_threads(ThreadPlacement::Sparse)
        .with_policy(MemPolicy::FirstTouch)
        .with_autonuma(false)
        .with_thp(false)
        .with_seed(cfg.seed);
    let mut sim = NumaSim::new(sim_cfg);
    let alloc = build(kind, &mut sim);
    let cum = size_weights();
    let mut shared: (Box<dyn Allocator>, ()) = (alloc, ());
    let ops = cfg.ops_per_thread;
    let live_target = cfg.live_target;
    let seed = cfg.seed;

    let stats = sim.parallel(threads, &mut shared, |w, (alloc, _)| {
        let mut rng = StdRng::seed_from_u64(seed ^ (w.tid() as u64) << 32);
        let mut live: Vec<(VAddr, u64)> = Vec::with_capacity(live_target);
        for _ in 0..ops {
            let do_alloc = live.len() < live_target / 2
                || (live.len() < live_target * 2 && rng.random::<bool>());
            if do_alloc {
                let size = sample_size(&mut rng, &cum);
                let p = alloc.alloc(w, size);
                w.write_u64(p, size);
                live.push((p, size));
            } else if !live.is_empty() {
                let idx = rng.random_range(0..live.len());
                let (p, size) = live.swap_remove(idx);
                let _ = w.read_u64(p);
                alloc.free(w, p, size);
            }
        }
        // The live set stays held: real threads hold theirs concurrently,
        // and peak-requested must reflect that despite the simulator
        // running threads sequentially.
        std::mem::forget(live);
    });

    MicrobenchRow {
        kind,
        threads,
        elapsed_cycles: stats.elapsed_cycles,
        overhead: shared.0.overhead(),
        lock_wait_cycles: stats.counters.lock_wait_cycles,
        requested_peak: shared.0.peak_requested(),
        resident_peak: shared.0.peak_resident(),
    }
}

/// Run the full Figure 2 sweep: every allocator at each thread count.
pub fn sweep(
    machine: &MachineSpec,
    thread_counts: &[usize],
    cfg: &MicrobenchConfig,
) -> Vec<MicrobenchRow> {
    let mut rows = Vec::new();
    for kind in AllocatorKind::ALL {
        for &t in thread_counts {
            rows.push(run_microbench(kind, machine, t, cfg));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_topology::machines;

    fn small() -> MicrobenchConfig {
        MicrobenchConfig { ops_per_thread: 3_000, live_target: 300, seed: 7 }
    }

    #[test]
    fn size_sampling_favours_small_classes() {
        let cum = size_weights();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<u64> = (0..2_000).map(|_| sample_size(&mut rng, &cum)).collect();
        let small = samples.iter().filter(|&&s| s <= 64).count();
        let large = samples.iter().filter(|&&s| s >= 4096).count();
        assert!(small > 5 * large, "small={small} large={large}");
    }

    #[test]
    fn microbench_is_deterministic() {
        let m = machines::machine_a();
        let a = run_microbench(AllocatorKind::Jemalloc, &m, 4, &small());
        let b = run_microbench(AllocatorKind::Jemalloc, &m, 4, &small());
        assert_eq!(a.elapsed_cycles, b.elapsed_cycles);
        assert_eq!(a.overhead, b.overhead);
    }

    #[test]
    fn tcmalloc_fastest_single_threaded() {
        let m = machines::machine_a();
        let cfg = small();
        let tc = run_microbench(AllocatorKind::Tcmalloc, &m, 1, &cfg);
        for kind in [
            AllocatorKind::Ptmalloc,
            AllocatorKind::Supermalloc,
            AllocatorKind::Mcmalloc,
            AllocatorKind::Hoard,
        ] {
            let other = run_microbench(kind, &m, 1, &cfg);
            assert!(
                tc.elapsed_cycles < other.elapsed_cycles,
                "tcmalloc {} !< {:?} {}",
                tc.elapsed_cycles,
                kind,
                other.elapsed_cycles
            );
        }
    }

    #[test]
    fn hoard_and_tbb_beat_tcmalloc_and_supermalloc_at_16_threads() {
        let m = machines::machine_a();
        // Allocation-heavy enough that per-class live sets overflow
        // tcmalloc's bounded thread cache — the regime Figure 2a measures.
        let cfg = MicrobenchConfig { ops_per_thread: 4_000, live_target: 1_500, seed: 7 };
        let run = |k| run_microbench(k, &m, 16, &cfg).elapsed_cycles;
        let (hoard, tbb) = (run(AllocatorKind::Hoard), run(AllocatorKind::Tbbmalloc));
        let (tc, sm) = (run(AllocatorKind::Tcmalloc), run(AllocatorKind::Supermalloc));
        assert!(hoard < tc, "hoard={hoard} tcmalloc={tc}");
        assert!(tbb < tc, "tbb={tbb} tcmalloc={tc}");
        assert!(hoard < sm, "hoard={hoard} supermalloc={sm}");
        assert!(tbb < sm, "tbb={tbb} supermalloc={sm}");
    }

    #[test]
    fn mcmalloc_overhead_explodes_with_threads() {
        let m = machines::machine_a();
        let cfg = small();
        let o1 = run_microbench(AllocatorKind::Mcmalloc, &m, 1, &cfg).overhead;
        let o16 = run_microbench(AllocatorKind::Mcmalloc, &m, 16, &cfg).overhead;
        let je16 = run_microbench(AllocatorKind::Jemalloc, &m, 16, &cfg).overhead;
        assert!(o16 > 2.0 * o1, "o1={o1:.2} o16={o16:.2}");
        assert!(o16 > 2.0 * je16, "mcmalloc {o16:.2} vs jemalloc {je16:.2}");
    }

    #[test]
    fn sweep_covers_all_allocators() {
        let m = machines::machine_b();
        let rows = sweep(
            &m,
            &[1, 2],
            &MicrobenchConfig { ops_per_thread: 500, live_target: 50, seed: 1 },
        );
        assert_eq!(rows.len(), 14);
    }
}
