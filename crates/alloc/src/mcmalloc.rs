//! Model of MCMalloc (§III-A7).
//!
//! Structure: global pools split by allocation-frequency monitoring into
//! dedicated homogeneous pools (frequent sizes) and size-segregated
//! pools (infrequent), with fine-grained per-class locking and — its
//! signature move — *batched* OS requests: many chunks are mapped per
//! system call, and refill batches are sized from the observed global
//! allocation rate. Because the rate grows with the thread count and
//! every thread privately caches a rate-sized batch, the resident set
//! grows superlinearly with threads: the Figure 2b overhead explosion
//! (≈1.1× at one thread to ≈6.6× at sixteen) that gets mcmalloc dropped
//! from the paper's later experiments.

use crate::chunks::{ChunkSource, RequestedBytes};
use crate::pool::{ClassPool, ThreadCache};
use crate::size_class::{class_of, CLASSES, MAX_SMALL, NUM_CLASSES};
use crate::{maybe_thp_tax, Allocator, AllocatorKind};
use nqp_sim::{LockId, NumaSim, VAddr, Worker};

/// Base cost of every operation.
const OP_CYCLES: u64 = 30;
/// Extra per-op cost while a class is still being monitored.
const MONITOR_CYCLES: u64 = 20;
/// Ops before a class graduates from the monitor to a dedicated pool.
const MONITOR_OPS: u64 = 64;
/// Critical-section length of a pool operation.
const POOL_HOLD_CYCLES: u64 = 40;
/// Per-thread refill batch: this many bytes *per seen thread* — the
/// rate-scaled batching that blows up the resident set.
const BATCH_BYTES_PER_THREAD: u64 = 16 << 10;
/// Per-block header.
const HEADER: u64 = 16;

/// See module docs.
pub struct McMalloc {
    src: ChunkSource,
    requested: RequestedBytes,
    pools: ClassPool,
    class_locks: Vec<LockId>,
    caches: Vec<ThreadCache>,
    /// Per-class op counts for the frequency monitor.
    monitor_ops: Vec<u64>,
    threads_seen: u64,
}

impl McMalloc {
    /// Build the model.
    pub fn new(sim: &mut NumaSim) -> Self {
        McMalloc {
            src: ChunkSource::new(4 << 20), // batched OS requests
            requested: RequestedBytes::default(),
            pools: ClassPool::new(16 << 10, HEADER),
            class_locks: (0..NUM_CLASSES).map(|_| sim.new_lock()).collect(),
            caches: Vec::new(),
            monitor_ops: vec![0; NUM_CLASSES],
            threads_seen: 0,
        }
    }

    fn cache_of(&mut self, tid: usize) -> &mut ThreadCache {
        while self.caches.len() <= tid {
            self.caches.push(ThreadCache::new(usize::MAX / 2));
            self.threads_seen += 1;
        }
        &mut self.caches[tid]
    }
}

impl Allocator for McMalloc {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Mcmalloc
    }

    fn alloc(&mut self, w: &mut Worker<'_>, size: u64) -> VAddr {
        w.compute(OP_CYCLES);
        self.requested.on_alloc(size);
        if size > MAX_SMALL {
            return self.src.grab_sized(w, size);
        }
        let (class, class_size) = class_of(size);
        self.monitor_ops[class] += 1;
        if self.monitor_ops[class] <= MONITOR_OPS {
            w.compute(MONITOR_CYCLES);
        }
        let tid = w.tid();
        if let Some(addr) = self.cache_of(tid).get(class) {
            return addr;
        }
        // Refill a rate-scaled batch from the dedicated pool.
        let batch_blocks = ((BATCH_BYTES_PER_THREAD * self.threads_seen.max(1))
            / CLASSES[class])
            .clamp(8, 16384) as usize;
        w.lock(self.class_locks[class], POOL_HOLD_CYCLES);
        w.compute(POOL_HOLD_CYCLES); // the critical-section work itself
        let first = self.pools.alloc_block(w, &mut self.src, class, class_size);
        maybe_thp_tax(w, self.thp_friendly(), first);
        let batch: Vec<VAddr> = (1..batch_blocks)
            .map(|_| self.pools.alloc_block(w, &mut self.src, class, class_size))
            .collect();
        self.cache_of(tid).refill(class, batch);
        first
    }

    fn free(&mut self, w: &mut Worker<'_>, addr: VAddr, size: u64) {
        w.compute(OP_CYCLES);
        self.requested.on_free(size);
        if size > MAX_SMALL {
            self.src.release_sized(addr, size);
            return;
        }
        let (class, _) = class_of(size);
        let _ = w.read_u64(addr - HEADER);
        // Freed blocks stay in the thread's private batch cache: mcmalloc
        // avoids kernel traffic at the cost of consolidation.
        let tid = w.tid();
        let _ = self.cache_of(tid).put(class, addr);
    }

    fn peak_resident(&self) -> u64 {
        self.src.peak_committed()
    }

    fn peak_requested(&self) -> u64 {
        self.requested.peak()
    }

    fn live_requested(&self) -> u64 {
        self.requested.live()
    }

    fn thp_friendly(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn sim() -> NumaSim {
        NumaSim::new(
            SimConfig::os_default(machines::machine_a())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        )
    }

    fn overhead_at(threads: usize) -> f64 {
        let mut sim = sim();
        let mut mc = McMalloc::new(&mut sim);
        sim.parallel(threads, &mut mc, |w, mc| {
            // Steady live set per thread across a few classes.
            let mut live = Vec::new();
            for i in 0..300u64 {
                let size = [64u64, 256, 1024][(i % 3) as usize];
                live.push((mc.alloc(w, size), size));
                if live.len() > 200 {
                    let (p, s) = live.swap_remove(0);
                    mc.free(w, p, s);
                }
            }
            std::mem::forget(live);
        });
        mc.overhead()
    }

    #[test]
    fn overhead_grows_with_thread_count() {
        let o1 = overhead_at(1);
        let o8 = overhead_at(8);
        // Rate-scaled batches ramp up as threads are first seen, so this
        // short run understates the asymptotic growth; the microbenchmark
        // test covers the full Figure 2b explosion.
        assert!(o8 > 1.5 * o1, "o1={o1:.2} o8={o8:.2}");
    }

    #[test]
    fn monitor_tax_applies_only_to_early_ops() {
        let mut sim = sim();
        let mc = McMalloc::new(&mut sim);
        let mut shared = (mc, 0u64, 0u64);
        sim.serial(&mut shared, |w, (mc, early, late)| {
            let before = w.clock();
            let p = mc.alloc(w, 64);
            *early = w.clock() - before;
            mc.free(w, p, 64);
            // Burn through the monitor window.
            for _ in 0..MONITOR_OPS {
                let p = mc.alloc(w, 64);
                mc.free(w, p, 64);
            }
            let before = w.clock();
            let p = mc.alloc(w, 64);
            *late = w.clock() - before;
            mc.free(w, p, 64);
        });
        assert!(shared.1 > shared.2, "early={} late={}", shared.1, shared.2);
    }

    #[test]
    fn few_os_calls_thanks_to_batching() {
        let mut sim = sim();
        let mut mc = McMalloc::new(&mut sim);
        sim.serial(&mut mc, |w, mc| {
            for _ in 0..2000 {
                let p = mc.alloc(w, 64);
                mc.free(w, p, 64);
            }
        });
        assert!(mc.src.os_calls() <= 2, "os_calls={}", mc.src.os_calls());
    }
}
