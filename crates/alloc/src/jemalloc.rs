//! Model of jemalloc (§III-A2).
//!
//! Structure: arenas maintained per CPU (modelled as 4 arenas per NUMA
//! node), threads assigned round-robin; a large per-thread cache covers
//! every small class, so most operations avoid arena synchronisation
//! entirely; metadata lives out of band (a radix tree keyed by chunk),
//! so blocks carry no headers and allocations pack tightly — jemalloc's
//! low-fragmentation, low-overhead profile in Figure 2b.
//!
//! jemalloc purges dirty pages with `madvise` at 4 KB granularity, which
//! fights khugepaged when THP is on (`thp_friendly = false`, Figure 5c).

use crate::chunks::{ChunkSource, RequestedBytes};
use crate::pool::{ClassPool, ThreadCache};
use crate::size_class::{class_of, MAX_SMALL};
use crate::{maybe_thp_tax, thp_op_tax, Allocator, AllocatorKind};
use nqp_sim::{LockId, NumaSim, VAddr, Worker};

/// Base cost of every operation.
const OP_CYCLES: u64 = 24;
/// Critical-section length of an arena operation.
const ARENA_HOLD_CYCLES: u64 = 50;
/// tcache slots per class.
const TCACHE_SLOTS: usize = 16;
/// Arena refill batch taken under one lock acquisition.
const REFILL_BATCH: usize = 4;

struct Arena {
    pool: ClassPool,
    lock: LockId,
}

/// See module docs.
pub struct JeMalloc {
    src: ChunkSource,
    requested: RequestedBytes,
    arenas: Vec<Arena>,
    tcaches: Vec<ThreadCache>,
}

impl JeMalloc {
    /// Build the model with `4 x nodes` arenas.
    pub fn new(sim: &mut NumaSim) -> Self {
        let narenas = 4 * sim.config().machine.topology.num_nodes();
        let arenas = (0..narenas)
            .map(|_| Arena { pool: ClassPool::new(4 << 10, 0), lock: sim.new_lock() })
            .collect();
        JeMalloc {
            src: ChunkSource::new(2 << 20),
            requested: RequestedBytes::default(),
            arenas,
            tcaches: Vec::new(),
        }
    }

    fn tcache_of(&mut self, tid: usize) -> &mut ThreadCache {
        while self.tcaches.len() <= tid {
            self.tcaches.push(ThreadCache::new(TCACHE_SLOTS));
        }
        &mut self.tcaches[tid]
    }

    fn arena_idx(&self, tid: usize) -> usize {
        tid % self.arenas.len()
    }

    /// Touch the out-of-band radix-tree metadata for the chunk holding
    /// `addr` (one cache line per lookup).
    fn touch_radix(&self, w: &mut Worker<'_>, addr: VAddr) {
        let chunk_base = addr & !((2u64 << 20) - 1);
        if chunk_base >= 4096 {
            w.touch(chunk_base, 8, nqp_sim::Access::Read);
        }
    }
}

impl Allocator for JeMalloc {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Jemalloc
    }

    fn alloc(&mut self, w: &mut Worker<'_>, size: u64) -> VAddr {
        w.compute(OP_CYCLES);
        thp_op_tax(w, self.thp_friendly());
        self.requested.on_alloc(size);
        if size > MAX_SMALL {
            let a = self.src.grab_sized(w, size);
            maybe_thp_tax(w, self.thp_friendly(), a);
            return a;
        }
        let (class, class_size) = class_of(size);
        let tid = w.tid();
        if let Some(addr) = self.tcache_of(tid).get(class) {
            return addr;
        }
        // Refill a batch from the arena under one lock acquisition.
        let a = self.arena_idx(tid);
        let friendly = self.thp_friendly();
        let arena = &mut self.arenas[a];
        w.lock(arena.lock, ARENA_HOLD_CYCLES);
        w.compute(ARENA_HOLD_CYCLES); // the critical-section work itself
        let first = arena.pool.alloc_block(w, &mut self.src, class, class_size);
        maybe_thp_tax(w, friendly, first);
        self.touch_radix(w, first);
        let batch: Vec<VAddr> = (1..REFILL_BATCH)
            .map(|_| self.arenas[a].pool.alloc_block(w, &mut self.src, class, class_size))
            .collect();
        self.tcache_of(tid).refill(class, batch);
        first
    }

    fn free(&mut self, w: &mut Worker<'_>, addr: VAddr, size: u64) {
        w.compute(OP_CYCLES);
        thp_op_tax(w, self.thp_friendly());
        self.requested.on_free(size);
        if size > MAX_SMALL {
            maybe_thp_tax(w, self.thp_friendly(), addr);
            self.src.release_sized(addr, size);
            return;
        }
        let (class, _) = class_of(size);
        self.touch_radix(w, addr);
        let tid = w.tid();
        if let Some(overflow) = self.tcache_of(tid).put(class, addr) {
            let a = self.arena_idx(tid);
            let friendly = self.thp_friendly();
            let arena = &mut self.arenas[a];
            w.lock(arena.lock, ARENA_HOLD_CYCLES);
        w.compute(ARENA_HOLD_CYCLES); // the critical-section work itself
            maybe_thp_tax(w, friendly, addr);
            arena.pool.accept(w, class, overflow);
        }
    }

    fn peak_resident(&self) -> u64 {
        self.src.peak_committed()
    }

    fn peak_requested(&self) -> u64 {
        self.requested.peak()
    }

    fn live_requested(&self) -> u64 {
        self.requested.live()
    }

    fn thp_friendly(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn sim() -> NumaSim {
        NumaSim::new(
            SimConfig::os_default(machines::machine_b())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        )
    }

    #[test]
    fn arena_count_is_four_per_node() {
        let mut sim = sim();
        let je = JeMalloc::new(&mut sim);
        assert_eq!(je.arenas.len(), 16);
    }

    #[test]
    fn refill_batches_amortise_arena_locks() {
        let mut sim = sim();
        let mut je = JeMalloc::new(&mut sim);
        let mut lock_waits = 0;
        let stats = sim.parallel(8, &mut je, |w, je| {
            let mut live = Vec::new();
            for _ in 0..200 {
                live.push(je.alloc(w, 64));
            }
            for p in live {
                je.free(w, p, 64);
            }
        });
        lock_waits += stats.counters.lock_wait_cycles;
        // 1600 allocations but only ~100 arena trips (batch 16): waits are
        // bounded well below one lock hold per allocation.
        assert!(lock_waits < 1600 * ARENA_HOLD_CYCLES, "waits={lock_waits}");
    }

    #[test]
    fn packs_tightly_low_overhead() {
        let mut sim = sim();
        let mut je = JeMalloc::new(&mut sim);
        sim.parallel(4, &mut je, |w, je| {
            let mut live = Vec::new();
            for i in 0..2000u64 {
                let size = 16 << (i % 4);
                live.push((je.alloc(w, size), size));
            }
            // Keep everything live so requested ~ resident.
            std::mem::forget(live);
        });
        assert!(je.overhead() < 3.0, "overhead {}", je.overhead());
    }
}
