//! Model of Hoard (§III-A4).
//!
//! Structure: a global heap (the "hoard") behind one lock, plus
//! per-thread heaps selected by hashing the thread id into a fixed heap
//! array (2 × cores heaps). Threads allocate from superblocks owned by
//! their heap; when a heap accumulates too much free memory, whole
//! superblock-loads move to the global heap for reuse elsewhere —
//! Hoard's bounded-blowup invariant. Because a heap is effectively
//! private at sane thread counts, Hoard scales almost flat in Figure 2a;
//! the per-heap superblock slack is why its overhead ticks up at higher
//! thread counts in Figure 2b.

use crate::chunks::{ChunkSource, RequestedBytes};
use crate::pool::ClassPool;
use crate::size_class::{class_of, MAX_SMALL};
use crate::{maybe_thp_tax, Allocator, AllocatorKind};
use nqp_sim::{LockId, NumaSim, VAddr, Worker};

/// Base cost of every operation.
const OP_CYCLES: u64 = 14;
/// Critical-section length of a per-heap operation (uncontended at sane
/// thread counts thanks to the heap hash).
const HEAP_HOLD_CYCLES: u64 = 15;
/// Critical-section length of a global-heap transfer.
const GLOBAL_HOLD_CYCLES: u64 = 80;
/// Superblock size: each heap refills in units of this.
const SUPERBLOCK: u64 = 16 << 10;
/// Free blocks a heap may hold per class before evicting to the hoard.
const EMPTINESS_LIMIT: usize = 256;
/// Per-block header (space only; Hoard keeps per-superblock metadata on
/// the superblock itself, so no extra line is touched per operation).
const HEADER: u64 = 0; // metadata lives at the superblock head, not per object

struct Heap {
    pool: ClassPool,
    lock: LockId,
}

/// See module docs.
pub struct Hoard {
    src: ChunkSource,
    requested: RequestedBytes,
    heaps: Vec<Heap>,
    global: ClassPool,
    global_lock: LockId,
}

impl Hoard {
    /// Build the model with `2 x cores` per-thread heaps.
    pub fn new(sim: &mut NumaSim) -> Self {
        let nheaps = (2 * sim.config().machine.total_cores()).max(1);
        let heaps = (0..nheaps)
            .map(|_| Heap { pool: ClassPool::new(SUPERBLOCK, HEADER), lock: sim.new_lock() })
            .collect();
        Hoard {
            src: ChunkSource::new(SUPERBLOCK),
            requested: RequestedBytes::default(),
            heaps,
            global: ClassPool::new(SUPERBLOCK, HEADER),
            global_lock: sim.new_lock(),
        }
    }

    fn heap_idx(&self, tid: usize) -> usize {
        // Hoard hashes thread ids onto heaps; a multiplicative hash keeps
        // consecutive tids on distinct heaps.
        (tid.wrapping_mul(0x9e37_79b1)) % self.heaps.len()
    }
}

impl Allocator for Hoard {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Hoard
    }

    fn alloc(&mut self, w: &mut Worker<'_>, size: u64) -> VAddr {
        w.compute(OP_CYCLES);
        self.requested.on_alloc(size);
        if size > MAX_SMALL {
            return self.src.grab_sized(w, size);
        }
        let (class, class_size) = class_of(size);
        let h = self.heap_idx(w.tid());
        let heap = &mut self.heaps[h];
        if heap.pool.needs_refill(class, class_size) {
            // Heap mutex taken only when superblocks move (refill or
            // adoption); common allocations stay on the owner's
            // superblock without synchronisation.
            w.lock(heap.lock, HEAP_HOLD_CYCLES);
            w.compute(HEAP_HOLD_CYCLES);
            // Out of superblock space: adopt freed blocks from the global
            // hoard before mapping fresh memory.
            let batch = {
                w.lock(self.global_lock, GLOBAL_HOLD_CYCLES);
                w.compute(GLOBAL_HOLD_CYCLES);
                self.global.drain(w, class, 32)
            };
            if !batch.is_empty() {
                self.heaps[h].pool.accept(w, class, batch);
            }
        }
        let heap = &mut self.heaps[h];
        let addr = heap.pool.alloc_block(w, &mut self.src, class, class_size);
        maybe_thp_tax(w, self.thp_friendly(), addr);
        addr
    }

    fn free(&mut self, w: &mut Worker<'_>, addr: VAddr, size: u64) {
        w.compute(OP_CYCLES);
        self.requested.on_free(size);
        if size > MAX_SMALL {
            self.src.release_sized(addr, size);
            return;
        }
        let (class, _) = class_of(size);
        // Owner frees push onto the superblock's lock-free stack (the
        // heap mutex is only contended by adoption/eviction transfers).
        let h = self.heap_idx(w.tid());
        let heap = &mut self.heaps[h];
        heap.pool.free_block(w, class, addr);
        // Emptiness invariant: evict surplus free memory to the hoard.
        if heap.pool.free_count(class) > EMPTINESS_LIMIT {
            let batch = heap.pool.drain(w, class, EMPTINESS_LIMIT / 2);
            w.lock(self.global_lock, GLOBAL_HOLD_CYCLES);
            self.global.accept(w, class, batch);
        }
    }

    fn peak_resident(&self) -> u64 {
        self.src.peak_committed()
    }

    fn peak_requested(&self) -> u64 {
        self.requested.peak()
    }

    fn live_requested(&self) -> u64 {
        self.requested.live()
    }

    fn thp_friendly(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn sim() -> NumaSim {
        NumaSim::new(
            SimConfig::os_default(machines::machine_b())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        )
    }

    #[test]
    fn consecutive_threads_use_distinct_heaps() {
        let mut sim = sim();
        let h = Hoard::new(&mut sim);
        let heaps: Vec<usize> = (0..8).map(|t| h.heap_idx(t)).collect();
        let mut unique = heaps.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 8, "hash collisions at 8 threads: {heaps:?}");
    }

    #[test]
    fn surplus_free_memory_moves_to_global_hoard() {
        let mut sim = sim();
        let mut h = Hoard::new(&mut sim);
        sim.serial(&mut h, |w, h| {
            let blocks: Vec<VAddr> = (0..400).map(|_| h.alloc(w, 64)).collect();
            for b in blocks {
                h.free(w, b, 64);
            }
        });
        let (class, _) = class_of(64);
        assert!(
            h.global.free_count(class) > 0,
            "emptiness threshold never triggered"
        );
    }

    #[test]
    fn global_blocks_are_adopted_by_other_heaps() {
        let mut sim = sim();
        let mut h = Hoard::new(&mut sim);
        // Thread 0 frees a pile; thread 1 should adopt from the hoard
        // rather than growing the resident set.
        sim.parallel(2, &mut h, |w, h| {
            if w.tid() == 0 {
                let blocks: Vec<VAddr> = (0..400).map(|_| h.alloc(w, 64)).collect();
                for b in blocks {
                    h.free(w, b, 64);
                }
            } else {
                let resident_before = h.src.peak_resident();
                let _p = h.alloc(w, 64);
                // Allocation served from adopted blocks: no new superblock.
                assert_eq!(h.src.peak_resident(), resident_before);
            }
        });
    }

    #[test]
    fn scales_without_global_contention_for_private_churn() {
        let mut sim = sim();
        let mut h = Hoard::new(&mut sim);
        let stats = sim.parallel(8, &mut h, |w, h| {
            let mut live = Vec::new();
            for _ in 0..200 {
                live.push(h.alloc(w, 128));
                if live.len() > 32 {
                    let p = live.swap_remove(0);
                    h.free(w, p, 128);
                }
            }
            for p in live {
                h.free(w, p, 128);
            }
        });
        // Distinct heaps: lock waits should be negligible relative to the
        // ~3200 operations x ~26 cycles of base work.
        assert!(
            stats.counters.lock_wait_cycles < 20_000,
            "waits={}",
            stats.counters.lock_wait_cycles
        );
    }
}
