//! Building blocks shared by the allocator models: per-class pools with
//! bump regions and free lists, and bounded per-thread caches.

use crate::chunks::ChunkSource;
use crate::size_class::NUM_CLASSES;
use nqp_sim::{VAddr, Worker};

/// One bump region + free list per size class — the core of an "arena",
/// "heap", or "central cache" depending on the allocator.
#[derive(Debug)]
pub struct ClassPool {
    free: Vec<Vec<VAddr>>,
    bump: Vec<(VAddr, VAddr)>,
    /// Metadata region in simulated memory: one cache line per class
    /// (bin head) plus a shared top-chunk line. Touched on every pool
    /// operation, so a pool shared across threads on different nodes has
    /// its metadata lines ping-pong between caches — the coherence cost
    /// that makes contended arenas slow in real allocators. Mapped
    /// lazily on first use.
    meta: VAddr,
    /// The pool's current chunk, shared by all classes: class regions are
    /// carved from here, so per-class slack is one *region*, not one
    /// whole chunk.
    chunk: (VAddr, VAddr),
    /// Per-block header bytes carved alongside each block (boundary tags).
    header: u64,
    /// Bytes carved per class-region refill.
    region_bytes: u64,
}

impl ClassPool {
    /// A pool whose refill regions are `region_bytes` and whose blocks
    /// carry `header` bytes of in-band metadata each.
    pub fn new(region_bytes: u64, header: u64) -> Self {
        ClassPool {
            free: vec![Vec::new(); NUM_CLASSES],
            bump: vec![(0, 0); NUM_CLASSES],
            meta: 0,
            chunk: (0, 0),
            header,
            region_bytes,
        }
    }

    /// Touch the pool's metadata lines for `class` (bin head + top chunk).
    fn touch_meta(&mut self, w: &mut Worker<'_>, class: usize) {
        if self.meta == 0 {
            self.meta = w.map_pages(4096);
        }
        w.touch(self.meta + class as u64 * 64, 8, nqp_sim::Access::Write);
        w.touch(self.meta + 2048, 8, nqp_sim::Access::Write);
    }

    /// Carve `want` bytes from the pool chunk, grabbing a fresh chunk
    /// from `src` when the current one is exhausted (the remainder of the
    /// old chunk is abandoned as slack). Commits the carved bytes.
    fn carve(&mut self, w: &mut Worker<'_>, src: &mut ChunkSource, want: u64) -> VAddr {
        let (cur, end) = self.chunk;
        if cur + want <= end {
            self.chunk = (cur + want, end);
            src.commit(want);
            return cur;
        }
        let (addr, len) = src.grab(w, want);
        self.chunk = (addr + want, addr + len);
        src.commit(want);
        addr
    }

    /// Pop a free block or carve one from the bump region, refilling from
    /// `src` when exhausted. Returns the *payload* address.
    pub fn alloc_block(
        &mut self,
        w: &mut Worker<'_>,
        src: &mut ChunkSource,
        class: usize,
        class_size: u64,
    ) -> VAddr {
        self.touch_meta(w, class);
        if let Some(addr) = self.free[class].pop() {
            return addr;
        }
        let stride = class_size + self.header;
        let (cur, end) = self.bump[class];
        if cur + stride <= end {
            self.bump[class] = (cur + stride, end);
            return cur + self.header;
        }
        let want = self.region_bytes.max(stride);
        let addr = self.carve(w, src, want);
        self.bump[class] = (addr + stride, addr + want);
        addr + self.header
    }

    /// Whether the next `alloc_block` for `class` would have to carve a
    /// fresh region (freelist empty, bump exhausted, pool chunk unable to
    /// satisfy the region) — i.e. whether it would hit the backing chunk
    /// source. Lets allocators take their refill locks only when refilling
    /// actually happens.
    pub fn needs_refill(&self, class: usize, class_size: u64) -> bool {
        if !self.free[class].is_empty() {
            return false;
        }
        let stride = class_size + self.header;
        let (cur, end) = self.bump[class];
        if cur + stride <= end {
            return false;
        }
        let (ccur, cend) = self.chunk;
        ccur + self.region_bytes.max(stride) > cend
    }

    /// Return a payload address to the class free list.
    pub fn free_block(&mut self, w: &mut Worker<'_>, class: usize, addr: VAddr) {
        self.touch_meta(w, class);
        self.free[class].push(addr);
    }

    /// Move up to `n` free blocks of `class` out of this pool (for
    /// batch transfers to a central structure). One metadata touch per
    /// batch.
    pub fn drain(&mut self, w: &mut Worker<'_>, class: usize, n: usize) -> Vec<VAddr> {
        self.touch_meta(w, class);
        let list = &mut self.free[class];
        let keep = list.len().saturating_sub(n);
        list.split_off(keep)
    }

    /// Add a batch of free blocks (a transfer in from elsewhere). One
    /// metadata touch per batch.
    pub fn accept(&mut self, w: &mut Worker<'_>, class: usize, blocks: Vec<VAddr>) {
        self.touch_meta(w, class);
        self.free[class].extend(blocks);
    }

    /// Free blocks currently cached for `class`.
    pub fn free_count(&self, class: usize) -> usize {
        self.free[class].len()
    }

    /// Configured per-block header bytes.
    pub fn header(&self) -> u64 {
        self.header
    }
}

/// A bounded per-thread cache of free blocks, one list per class.
#[derive(Debug, Clone)]
pub struct ThreadCache {
    lists: Vec<Vec<VAddr>>,
    max_per_class: usize,
}

impl ThreadCache {
    /// Cache holding at most `max_per_class` blocks per class.
    pub fn new(max_per_class: usize) -> Self {
        ThreadCache { lists: vec![Vec::new(); NUM_CLASSES], max_per_class }
    }

    /// Take a cached block, if any.
    #[inline]
    pub fn get(&mut self, class: usize) -> Option<VAddr> {
        self.lists[class].pop()
    }

    /// Cache a freed block. When the class list is full, returns a batch
    /// of half the list that the caller must flush to its backing pool.
    #[inline]
    pub fn put(&mut self, class: usize, addr: VAddr) -> Option<Vec<VAddr>> {
        let list = &mut self.lists[class];
        list.push(addr);
        if list.len() > self.max_per_class {
            let half = list.len() / 2;
            Some(list.split_off(half))
        } else {
            None
        }
    }

    /// Insert a refill batch obtained from a backing pool.
    pub fn refill(&mut self, class: usize, blocks: Vec<VAddr>) {
        self.lists[class].extend(blocks);
    }

    /// Blocks cached across all classes.
    pub fn total_cached(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Blocks cached for one class.
    pub fn class_len(&self, class: usize) -> usize {
        self.lists[class].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{NumaSim, SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn in_sim(f: impl FnMut(&mut Worker<'_>, &mut ())) {
        let cfg = SimConfig::os_default(machines::machine_b())
            .with_threads(ThreadPlacement::Sparse)
            .with_autonuma(false)
            .with_thp(false);
        NumaSim::new(cfg).serial(&mut (), f);
    }

    #[test]
    fn pool_blocks_do_not_overlap() {
        in_sim(|w, _| {
            let mut src = ChunkSource::new(1 << 16);
            let mut pool = ClassPool::new(4096, 16);
            let mut addrs: Vec<VAddr> = (0..100)
                .map(|_| pool.alloc_block(w, &mut src, 4, 96))
                .collect();
            addrs.sort_unstable();
            for pair in addrs.windows(2) {
                assert!(pair[1] - pair[0] >= 96 + 16, "blocks overlap: {pair:?}");
            }
        });
    }

    #[test]
    fn freed_blocks_are_recycled_lifo() {
        in_sim(|w, _| {
            let mut src = ChunkSource::new(1 << 16);
            let mut pool = ClassPool::new(4096, 0);
            let a = pool.alloc_block(w, &mut src, 0, 16);
            let b = pool.alloc_block(w, &mut src, 0, 16);
            pool.free_block(w, 0, a);
            pool.free_block(w, 0, b);
            assert_eq!(pool.alloc_block(w, &mut src, 0, 16), b);
            assert_eq!(pool.alloc_block(w, &mut src, 0, 16), a);
        });
    }

    #[test]
    fn drain_and_accept_move_batches() {
        in_sim(|w, _| {
            let mut src = ChunkSource::new(1 << 16);
            let mut pool = ClassPool::new(4096, 0);
            let addrs: Vec<VAddr> = (0..10)
                .map(|_| pool.alloc_block(w, &mut src, 2, 48))
                .collect();
            for &a in &addrs {
                pool.free_block(w, 2, a);
            }
            let batch = pool.drain(w, 2, 4);
            assert_eq!(batch.len(), 4);
            assert_eq!(pool.free_count(2), 6);
            let mut other = ClassPool::new(4096, 0);
            other.accept(w, 2, batch);
            assert_eq!(other.free_count(2), 4);
        });
    }

    #[test]
    fn header_offsets_payloads() {
        in_sim(|w, _| {
            let mut src = ChunkSource::new(1 << 16);
            let mut pool = ClassPool::new(4096, 16);
            let a = pool.alloc_block(w, &mut src, 0, 16);
            // The first block of a fresh region starts one header past it.
            assert_eq!(a % 4096, 16);
        });
    }

    #[test]
    fn thread_cache_overflow_returns_flush_batch() {
        let mut tc = ThreadCache::new(4);
        assert_eq!(tc.put(0, 1), None);
        assert_eq!(tc.put(0, 2), None);
        assert_eq!(tc.put(0, 3), None);
        assert_eq!(tc.put(0, 4), None);
        let flushed = tc.put(0, 5).expect("fifth insert overflows");
        assert_eq!(flushed.len(), 3);
        assert_eq!(tc.total_cached(), 2);
    }

    #[test]
    fn thread_cache_get_refill_round_trip() {
        let mut tc = ThreadCache::new(8);
        assert_eq!(tc.get(3), None);
        tc.refill(3, vec![10, 20, 30]);
        assert_eq!(tc.get(3), Some(30));
        assert_eq!(tc.total_cached(), 2);
    }
}
