//! The chunk source: how allocators obtain memory from the (simulated)
//! operating system, with resident-set accounting.

use nqp_sim::{VAddr, Worker};

/// Acquires address space from the OS in fixed-size chunks, reuses
/// released chunks, and tracks the resident set — the numerator of the
/// Figure 2b overhead metric.
#[derive(Debug)]
pub struct ChunkSource {
    chunk_bytes: u64,
    free: Vec<(VAddr, u64)>,
    resident: u64,
    peak_resident: u64,
    committed: u64,
    peak_committed: u64,
    os_calls: u64,
}

impl ChunkSource {
    /// A source that maps memory `chunk_bytes` at a time (requests larger
    /// than a chunk are rounded up to a chunk multiple).
    pub fn new(chunk_bytes: u64) -> Self {
        assert!(chunk_bytes > 0);
        ChunkSource {
            chunk_bytes,
            free: Vec::new(),
            resident: 0,
            peak_resident: 0,
            committed: 0,
            peak_committed: 0,
            os_calls: 0,
        }
    }

    /// Obtain at least `bytes` of chunk-aligned memory, preferring a
    /// previously released chunk of sufficient size.
    pub fn grab(&mut self, w: &mut Worker<'_>, bytes: u64) -> (VAddr, u64) {
        let want = bytes.div_ceil(self.chunk_bytes) * self.chunk_bytes;
        if let Some(pos) = self.free.iter().position(|&(_, len)| len >= want) {
            let (addr, len) = self.free.swap_remove(pos);
            self.resident += len;
            self.peak_resident = self.peak_resident.max(self.resident);
            return (addr, len);
        }
        let addr = w.map_pages(want);
        self.os_calls += 1;
        self.resident += want;
        self.peak_resident = self.peak_resident.max(self.resident);
        (addr, want)
    }

    /// Return a chunk for reuse. The model keeps released chunks cached
    /// (like allocators that retain rather than `munmap`), so the resident
    /// set only shrinks logically, not back to the OS.
    pub fn release(&mut self, addr: VAddr, bytes: u64) {
        self.resident = self.resident.saturating_sub(bytes);
        self.free.push((addr, bytes));
    }

    /// Like [`ChunkSource::grab`] but returning only the address; pair
    /// with [`ChunkSource::release_sized`], which re-derives the rounded
    /// length from the request size (the large-object path of every
    /// allocator model).
    pub fn grab_sized(&mut self, w: &mut Worker<'_>, size: u64) -> VAddr {
        let len = size.div_ceil(self.chunk_bytes) * self.chunk_bytes;
        self.commit(len);
        self.grab(w, size).0
    }

    /// Release a chunk obtained via [`ChunkSource::grab_sized`].
    pub fn release_sized(&mut self, addr: VAddr, size: u64) {
        let len = size.div_ceil(self.chunk_bytes) * self.chunk_bytes;
        self.uncommit(len);
        self.release(addr, len);
    }

    /// Record `bytes` as committed (faulted-in). Mapped-but-untouched
    /// address space does not count toward RSS on a demand-paged OS; the
    /// overhead metric of Figure 2b is about *committed* memory, so pools
    /// call this as they carve regions out of their chunks.
    pub fn commit(&mut self, bytes: u64) {
        self.committed += bytes;
        self.peak_committed = self.peak_committed.max(self.committed);
    }

    /// Return `bytes` of committed memory (large-object frees).
    pub fn uncommit(&mut self, bytes: u64) {
        self.committed = self.committed.saturating_sub(bytes);
    }

    /// Bytes currently counted against the resident set.
    pub fn resident(&self) -> u64 {
        self.resident
    }

    /// High-water resident set — the "maximum resident set size" of the
    /// paper's overhead measurement.
    pub fn peak_resident(&self) -> u64 {
        self.peak_resident
    }

    /// Currently committed (faulted-in) bytes.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// High-water committed bytes: the RSS proxy allocators report as
    /// their resident set.
    pub fn peak_committed(&self) -> u64 {
        self.peak_committed
    }

    /// Number of times the OS was asked for fresh memory (mcmalloc's
    /// batching exists to shrink this).
    pub fn os_calls(&self) -> u64 {
        self.os_calls
    }

    /// The configured chunk granularity.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }
}

/// Tracks the denominator of the overhead metric: bytes the *application*
/// asked for and has not yet freed.
#[derive(Debug, Default)]
pub struct RequestedBytes {
    live: u64,
    peak: u64,
}

impl RequestedBytes {
    /// Record an allocation of `size` user bytes.
    pub fn on_alloc(&mut self, size: u64) {
        self.live += size;
        self.peak = self.peak.max(self.live);
    }

    /// Record a free of `size` user bytes.
    pub fn on_free(&mut self, size: u64) {
        self.live = self.live.saturating_sub(size);
    }

    /// Currently live user bytes.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// High-water of live user bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{NumaSim, SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn with_worker<R>(f: impl FnMut(&mut Worker<'_>, &mut ()) -> R) -> R
    where
        R: Default,
    {
        let cfg = SimConfig::os_default(machines::machine_b())
            .with_threads(ThreadPlacement::Sparse)
            .with_autonuma(false)
            .with_thp(false);
        let mut sim = NumaSim::new(cfg);
        let mut out = R::default();
        let mut f = f;
        sim.serial(&mut (), |w, s| {
            out = f(w, s);
        });
        out
    }

    #[test]
    fn grab_rounds_to_chunk_multiples() {
        let sizes: Vec<u64> = with_worker(|w, _| {
            let mut src = ChunkSource::new(1 << 20);
            let (_, a) = src.grab(w, 100);
            let (_, b) = src.grab(w, (1 << 20) + 1);
            vec![a, b]
        });
        assert_eq!(sizes, vec![1 << 20, 2 << 20]);
    }

    #[test]
    fn released_chunks_are_reused() {
        let (reused, os_calls): (bool, u64) = with_worker(|w, _| {
            let mut src = ChunkSource::new(4096);
            let (a, len) = src.grab(w, 4096);
            src.release(a, len);
            let (b, _) = src.grab(w, 4096);
            (a == b, src.os_calls())
        });
        assert!(reused);
        assert_eq!(os_calls, 1);
    }

    #[test]
    fn resident_tracks_grab_and_release() {
        let (resident, peak): (u64, u64) = with_worker(|w, _| {
            let mut src = ChunkSource::new(4096);
            let (a, la) = src.grab(w, 4096);
            let (_b, _lb) = src.grab(w, 8192);
            src.release(a, la);
            (src.resident(), src.peak_resident())
        });
        assert_eq!(resident, 8192);
        assert_eq!(peak, 4096 + 8192);
    }

    #[test]
    fn requested_bytes_track_live_and_peak() {
        let mut r = RequestedBytes::default();
        r.on_alloc(100);
        r.on_alloc(50);
        r.on_free(100);
        assert_eq!(r.live(), 50);
        assert_eq!(r.peak(), 150);
    }
}
