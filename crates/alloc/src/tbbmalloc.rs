//! Model of Intel TBB's scalable allocator (§III-A5).
//!
//! Structure: fully private per-thread pools; the owner allocates and
//! frees without any locking, and only refilling from the shared backend
//! (chunk source) takes a lock. tbbmalloc explicitly trades memory for
//! speed: freed blocks stay in the owning thread's pool instead of being
//! consolidated, so the resident set grows with the number of threads —
//! the Figure 2b jump at 8–16 threads — while the common path stays the
//! most scalable of the seven (the paper's overall winner on W1/W3).

use crate::chunks::{ChunkSource, RequestedBytes};
use crate::pool::ClassPool;
use crate::size_class::{class_of, MAX_SMALL};
use crate::{maybe_thp_tax, thp_op_tax, Allocator, AllocatorKind};
use nqp_sim::{LockId, NumaSim, VAddr, Worker};

/// Base cost of every operation.
const OP_CYCLES: u64 = 22;
/// Critical-section length of a backend (chunk) refill.
const BACKEND_HOLD_CYCLES: u64 = 60;
/// Per-thread pool refill region.
const REGION: u64 = 16 << 10;
/// Per-block header.
const HEADER: u64 = 0; // per-slab metadata, no per-object header

/// See module docs.
pub struct TbbMalloc {
    src: ChunkSource,
    requested: RequestedBytes,
    pools: Vec<ClassPool>,
    backend_lock: LockId,
}

impl TbbMalloc {
    /// Build the model.
    pub fn new(sim: &mut NumaSim) -> Self {
        TbbMalloc {
            src: ChunkSource::new(1 << 20),
            requested: RequestedBytes::default(),
            pools: Vec::new(),
            backend_lock: sim.new_lock(),
        }
    }

    fn pool_of(&mut self, tid: usize) -> &mut ClassPool {
        while self.pools.len() <= tid {
            self.pools.push(ClassPool::new(REGION, HEADER));
        }
        &mut self.pools[tid]
    }
}

impl Allocator for TbbMalloc {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Tbbmalloc
    }

    fn alloc(&mut self, w: &mut Worker<'_>, size: u64) -> VAddr {
        w.compute(OP_CYCLES);
        thp_op_tax(w, self.thp_friendly());
        self.requested.on_alloc(size);
        if size > MAX_SMALL {
            let a = self.src.grab_sized(w, size);
            maybe_thp_tax(w, self.thp_friendly(), a);
            return a;
        }
        let (class, class_size) = class_of(size);
        let tid = w.tid();
        let needs_backend = self.pool_of(tid).needs_refill(class, class_size);
        if needs_backend {
            // The backend lock is taken only when a fresh region must be
            // mapped — the rare path that keeps tbbmalloc scalable.
            w.lock(self.backend_lock, BACKEND_HOLD_CYCLES);
        }
        let pool = &mut self.pools[tid];
        let addr = pool.alloc_block(w, &mut self.src, class, class_size);
        if needs_backend {
            maybe_thp_tax(w, self.thp_friendly(), addr);
        }
        addr
    }

    fn free(&mut self, w: &mut Worker<'_>, addr: VAddr, size: u64) {
        w.compute(OP_CYCLES);
        thp_op_tax(w, self.thp_friendly());
        self.requested.on_free(size);
        if size > MAX_SMALL {
            maybe_thp_tax(w, self.thp_friendly(), addr);
            self.src.release_sized(addr, size);
            return;
        }
        let (class, _) = class_of(size);
        // Freed blocks return to the *caller's* pool (the model folds
        // tbbmalloc's cross-thread mailbox into the caller's pool: the
        // owner would drain its mailbox on its next allocation anyway).
        let tid = w.tid();
        self.pool_of(tid).free_block(w, class, addr);
    }

    fn peak_resident(&self) -> u64 {
        self.src.peak_committed()
    }

    fn peak_requested(&self) -> u64 {
        self.requested.peak()
    }

    fn live_requested(&self) -> u64 {
        self.requested.live()
    }

    fn thp_friendly(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn sim() -> NumaSim {
        NumaSim::new(
            SimConfig::os_default(machines::machine_a())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        )
    }

    fn churn(threads: usize) -> u64 {
        let mut sim = sim();
        let mut tbb = TbbMalloc::new(&mut sim);
        let stats = sim.parallel(threads, &mut tbb, |w, tbb| {
            let mut live = Vec::new();
            for _ in 0..400 {
                live.push(tbb.alloc(w, 64));
                if live.len() > 64 {
                    let p = live.swap_remove(0);
                    tbb.free(w, p, 64);
                }
            }
            for p in live {
                tbb.free(w, p, 64);
            }
        });
        stats.counters.lock_wait_cycles
    }

    #[test]
    fn steady_state_churn_takes_no_locks() {
        // After warm-up the pool recycles its own blocks; only the first
        // few refills touch the backend.
        let waits = churn(16);
        assert!(waits < 5_000, "waits={waits}");
    }

    #[test]
    fn per_thread_pools_inflate_resident_with_threads() {
        let peak = |threads: usize| {
            let mut sim = sim();
            let mut tbb = TbbMalloc::new(&mut sim);
            sim.parallel(threads, &mut tbb, |w, tbb| {
                // Each thread touches several classes, pinning regions.
                for &size in &[16u64, 64, 256, 1024, 4096] {
                    let p = tbb.alloc(w, size);
                    tbb.free(w, p, size);
                }
            });
            tbb.peak_resident()
        };
        assert!(peak(16) > peak(1), "resident must grow with thread count");
    }

    #[test]
    fn blocks_recycle_within_owner_pool() {
        let mut sim = sim();
        let tbb = TbbMalloc::new(&mut sim);
        let mut shared = (tbb, 0u64, 0u64);
        sim.serial(&mut shared, |w, (tbb, a, b)| {
            *a = tbb.alloc(w, 128);
            tbb.free(w, *a, 128);
            *b = tbb.alloc(w, 128);
        });
        assert_eq!(shared.1, shared.2);
    }
}
