//! Model of SuperMalloc (§III-A6).
//!
//! Structure: homogeneous chunks of same-sized objects, a 512 MB virtual
//! lookup table mapping chunk → metadata, and global synchronisation —
//! hardware transactional memory where available, otherwise a pthread
//! mutex with data prefetched before the critical section to keep it
//! short. Machine A's Opterons and Machine B's Nehalem-era Xeons have no
//! HTM, so the model takes the mutex path: a short hold, but *one* lock
//! shared by all threads, which is why supermalloc falls off the
//! scalability cliff in Figure 2a and the paper drops it from later
//! experiments. A small per-thread cache keeps the single-thread cost
//! merely mediocre rather than terrible.

use crate::chunks::{ChunkSource, RequestedBytes};
use crate::pool::{ClassPool, ThreadCache};
use crate::size_class::{class_of, MAX_SMALL};
use crate::{Allocator, AllocatorKind};
use nqp_sim::{LockId, NumaSim, VAddr, Worker};

/// Base cost of every operation (chunk-table arithmetic included).
const OP_CYCLES: u64 = 40;
/// Critical-section length: short, thanks to the prefetch trick.
const GLOBAL_HOLD_CYCLES: u64 = 45;
/// Per-thread cache slots per class — deliberately small.
const CACHE_SLOTS: usize = 8;

/// See module docs.
pub struct SuperMalloc {
    src: ChunkSource,
    requested: RequestedBytes,
    pools: ClassPool,
    global_lock: LockId,
    caches: Vec<ThreadCache>,
    /// Base address of the chunk lookup table (touched on slow paths).
    table: VAddr,
}

impl SuperMalloc {
    /// Build the model; the lookup table is mapped eagerly (sparsely
    /// committed in the real allocator).
    pub fn new(sim: &mut NumaSim) -> Self {
        let global_lock = sim.new_lock();
        let mut table = 0;
        sim.serial(&mut table, |w, table| {
            *table = w.map_pages(1 << 20);
        });
        SuperMalloc {
            src: ChunkSource::new(2 << 20),
            requested: RequestedBytes::default(),
            pools: ClassPool::new(8 << 10, 0),
            global_lock,
            caches: Vec::new(),
            table,
        }
    }

    fn cache_of(&mut self, tid: usize) -> &mut ThreadCache {
        while self.caches.len() <= tid {
            self.caches.push(ThreadCache::new(CACHE_SLOTS));
        }
        &mut self.caches[tid]
    }

    /// Touch the chunk lookup table entry for `addr`.
    fn touch_table(&self, w: &mut Worker<'_>, addr: VAddr) {
        let slot = (addr >> 21) % ((1 << 20) / 8);
        w.touch(self.table + slot * 8, 8, nqp_sim::Access::Read);
    }
}

impl Allocator for SuperMalloc {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Supermalloc
    }

    fn alloc(&mut self, w: &mut Worker<'_>, size: u64) -> VAddr {
        w.compute(OP_CYCLES);
        self.requested.on_alloc(size);
        if size > MAX_SMALL {
            return self.src.grab_sized(w, size);
        }
        let (class, class_size) = class_of(size);
        let tid = w.tid();
        if let Some(addr) = self.cache_of(tid).get(class) {
            return addr;
        }
        // Global mutex path: prefetch happened outside (modelled in
        // OP_CYCLES), hold is short.
        w.lock(self.global_lock, GLOBAL_HOLD_CYCLES);
        w.compute(GLOBAL_HOLD_CYCLES); // the critical-section work itself
        let addr = self.pools.alloc_block(w, &mut self.src, class, class_size);
        self.touch_table(w, addr);
        addr
    }

    fn free(&mut self, w: &mut Worker<'_>, addr: VAddr, size: u64) {
        w.compute(OP_CYCLES);
        self.requested.on_free(size);
        if size > MAX_SMALL {
            self.src.release_sized(addr, size);
            return;
        }
        let (class, _) = class_of(size);
        self.touch_table(w, addr);
        let tid = w.tid();
        if let Some(overflow) = self.cache_of(tid).put(class, addr) {
            w.lock(self.global_lock, GLOBAL_HOLD_CYCLES);
        w.compute(GLOBAL_HOLD_CYCLES); // the critical-section work itself
            self.pools.accept(w, class, overflow);
        }
    }

    fn peak_resident(&self) -> u64 {
        self.src.peak_committed()
    }

    fn peak_requested(&self) -> u64 {
        self.requested.peak()
    }

    fn live_requested(&self) -> u64 {
        self.requested.live()
    }

    fn thp_friendly(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn sim() -> NumaSim {
        NumaSim::new(
            SimConfig::os_default(machines::machine_a())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        )
    }

    fn churn(threads: usize) -> u64 {
        let mut sim = sim();
        let mut sm = SuperMalloc::new(&mut sim);
        let stats = sim.parallel(threads, &mut sm, |w, sm| {
            let mut live = Vec::new();
            for i in 0..300u64 {
                let size = 32 << (i % 4);
                live.push((sm.alloc(w, size), size));
                if live.len() > 80 {
                    let (p, s) = live.swap_remove(0);
                    sm.free(w, p, s);
                }
            }
            for (p, s) in live {
                sm.free(w, p, s);
            }
        });
        stats.counters.lock_wait_cycles
    }

    #[test]
    fn single_global_lock_contends_badly() {
        let w1 = churn(1);
        let w16 = churn(16);
        assert_eq!(w1, 0);
        assert!(w16 > 10_000, "global mutex barely contended: {w16}");
    }

    #[test]
    fn lookup_table_stays_within_its_mapping() {
        let mut sim = sim();
        let mut sm = SuperMalloc::new(&mut sim);
        // Any address must map to a slot inside the 1MB table.
        sim.serial(&mut sm, |w, sm| {
            for shift in 0..40u64 {
                sm.touch_table(w, 1u64 << shift);
            }
        });
        // Reaching here without the sim panicking on an unmapped touch
        // is the assertion.
    }

    #[test]
    fn low_memory_overhead() {
        let mut sim = sim();
        let mut sm = SuperMalloc::new(&mut sim);
        sim.parallel(8, &mut sm, |w, sm| {
            let live: Vec<(VAddr, u64)> = (0..500u64)
                .map(|i| (sm.alloc(w, 64 + (i % 512)), 64 + (i % 512)))
                .collect();
            std::mem::forget(live);
        });
        assert!(sm.overhead() < 3.0, "overhead {}", sm.overhead());
    }
}
