//! Model of glibc's `ptmalloc2`, the Linux default allocator.
//!
//! Structure (per §III-A1 of the paper): multiple arenas, each protected
//! by a mutex; arenas are created "whenever contention is detected", and
//! in steady state a fast allocating process settles on far fewer arenas
//! than threads — glibc reuses any arena whose mutex happens to be free
//! at the moment of the attempt — so arena mutexes stay contended under
//! allocation-heavy multithreading (the flat-but-slow ptmalloc line of
//! Figure 2a). The model fixes the settled arena count at `cores / 2`.
//! A small per-thread cache (glibc's `tcache`, 7 slots per bin, bins
//! ≤ 1 KB) absorbs *free/alloc pairs* but never helps an allocation-only
//! phase, and blocks carry 16-byte boundary-tag headers whose touches
//! hit the memory system.

use crate::chunks::{ChunkSource, RequestedBytes};
use crate::pool::{ClassPool, ThreadCache};
use crate::size_class::{class_of, CLASSES, MAX_SMALL};
use crate::{maybe_thp_tax, Allocator, AllocatorKind};
use nqp_sim::{LockId, NumaSim, VAddr, Worker};

/// Base cost of every malloc/free call (bin search, chunk checks).
const OP_CYCLES: u64 = 34;
/// Critical-section length of an arena operation (bin management and
/// boundary-tag coalescing checks make this the heaviest arena path of
/// the per-arena designs).
const ARENA_HOLD_CYCLES: u64 = 100;
/// CPU part of the arena work (the rest is its metadata-line touches).
const ARENA_WORK_CYCLES: u64 = 60;
/// Largest class served by the per-thread tcache (glibc: 1032 bytes).
const TCACHE_MAX: u64 = 1024;
/// tcache slots per class (glibc default: 7).
const TCACHE_SLOTS: usize = 7;
/// Boundary-tag header per block.
const HEADER: u64 = 16;

struct Arena {
    pool: ClassPool,
    lock: LockId,
}

/// See module docs.
pub struct PtMalloc {
    src: ChunkSource,
    requested: RequestedBytes,
    arenas: Vec<Arena>,
    tcaches: Vec<ThreadCache>,
}

impl PtMalloc {
    /// Build the model with its settled arena count (`cores / 2`, at
    /// least 2).
    pub fn new(sim: &mut NumaSim) -> Self {
        let narenas = (sim.config().machine.total_cores() / 2).max(2);
        let arenas = (0..narenas)
            .map(|_| Arena { pool: ClassPool::new(8 << 10, HEADER), lock: sim.new_lock() })
            .collect();
        PtMalloc {
            src: ChunkSource::new(1 << 20),
            requested: RequestedBytes::default(),
            arenas,
            tcaches: Vec::new(),
        }
    }

    fn arena_of(&self, tid: usize) -> usize {
        tid % self.arenas.len()
    }

    fn tcache_of(&mut self, tid: usize) -> &mut ThreadCache {
        while self.tcaches.len() <= tid {
            self.tcaches.push(ThreadCache::new(TCACHE_SLOTS));
        }
        &mut self.tcaches[tid]
    }

    /// Number of arenas the model settled on (for tests/inspection).
    pub fn arena_count(&self) -> usize {
        self.arenas.len()
    }
}

impl Allocator for PtMalloc {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Ptmalloc
    }

    fn alloc(&mut self, w: &mut Worker<'_>, size: u64) -> VAddr {
        w.compute(OP_CYCLES);
        self.requested.on_alloc(size);
        if size > MAX_SMALL {
            return self.src.grab_sized(w, size);
        }
        let (class, class_size) = class_of(size);
        let tid = w.tid();
        if CLASSES[class] <= TCACHE_MAX {
            if let Some(addr) = self.tcache_of(tid).get(class) {
                return addr;
            }
        }
        let a = self.arena_of(tid);
        let arena = &mut self.arenas[a];
        w.lock(arena.lock, ARENA_HOLD_CYCLES);
        w.compute(ARENA_WORK_CYCLES); // the bin-management work itself
        let addr = arena.pool.alloc_block(w, &mut self.src, class, class_size);
        // Boundary tags: write the header in front of the payload.
        w.write_u64(addr - HEADER, (class_size << 1) | 1);
        maybe_thp_tax(w, self.thp_friendly(), addr);
        addr
    }

    fn free(&mut self, w: &mut Worker<'_>, addr: VAddr, size: u64) {
        w.compute(OP_CYCLES);
        self.requested.on_free(size);
        if size > MAX_SMALL {
            self.src.release_sized(addr, size);
            return;
        }
        let (class, _class_size) = class_of(size);
        // free() reads the boundary tag to find the chunk's bin.
        let _ = w.read_u64(addr - HEADER);
        let tid = w.tid();
        if CLASSES[class] <= TCACHE_MAX {
            match self.tcache_of(tid).put(class, addr) {
                None => return,
                Some(overflow) => {
                    let a = self.arena_of(tid);
                    let arena = &mut self.arenas[a];
                    w.lock(arena.lock, ARENA_HOLD_CYCLES);
                    w.compute(ARENA_WORK_CYCLES);
                    arena.pool.accept(w, class, overflow);
                    return;
                }
            }
        }
        let a = self.arena_of(tid);
        let arena = &mut self.arenas[a];
        w.lock(arena.lock, ARENA_HOLD_CYCLES);
        w.compute(ARENA_WORK_CYCLES);
        arena.pool.free_block(w, class, addr);
    }

    fn peak_resident(&self) -> u64 {
        self.src.peak_committed()
    }

    fn peak_requested(&self) -> u64 {
        self.requested.peak()
    }

    fn live_requested(&self) -> u64 {
        self.requested.live()
    }

    fn thp_friendly(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::{SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn sim() -> NumaSim {
        NumaSim::new(
            SimConfig::os_default(machines::machine_a())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        )
    }

    #[test]
    fn arenas_settle_at_half_the_cores() {
        let mut sim = sim();
        let pt = PtMalloc::new(&mut sim);
        // Machine A: 16 cores -> 8 arenas.
        assert_eq!(pt.arena_count(), 8);
    }

    #[test]
    fn threads_share_arenas_and_contend() {
        let waits = |threads: usize| {
            let mut sim = sim();
            let mut pt = PtMalloc::new(&mut sim);
            let stats = sim.parallel(threads, &mut pt, |w, pt| {
                // Allocation-only burst: tcache never helps.
                for _ in 0..300 {
                    let _ = pt.alloc(w, 16);
                }
            });
            stats.counters.lock_wait_cycles
        };
        assert_eq!(waits(1), 0);
        assert!(waits(16) > 100_000, "waits(16)={}", waits(16));
    }

    #[test]
    fn tcache_serves_free_alloc_pairs_without_arena() {
        let mut sim = sim();
        let mut pt = PtMalloc::new(&mut sim);
        let mut stats = Vec::new();
        sim.serial(&mut (&mut pt, &mut stats), |w, (pt, stats)| {
            let p = pt.alloc(w, 64);
            pt.free(w, p, 64);
            let before = w.clock();
            let q = pt.alloc(w, 64);
            stats.push((p == q, w.clock() - before));
            pt.free(w, q, 64);
        });
        let (reused, cycles) = stats[0];
        assert!(reused, "tcache must hand back the same block");
        assert!(cycles < 200, "tcache path too expensive: {cycles}");
    }

    #[test]
    fn headers_precede_payloads() {
        let mut sim = sim();
        let mut pt = PtMalloc::new(&mut sim);
        let mut addr = 0;
        sim.serial(&mut (&mut pt, &mut addr), |w, (pt, addr)| {
            **addr = pt.alloc(w, 100);
        });
        assert!(addr >= HEADER);
    }

    #[test]
    fn overhead_stays_modest() {
        let mut sim = sim();
        let mut pt = PtMalloc::new(&mut sim);
        sim.parallel(4, &mut pt, |w, pt| {
            let mut live = Vec::new();
            for i in 0..500u64 {
                let size = 16 << (i % 6);
                live.push((pt.alloc(w, size), size));
            }
            // Hold the live set so peak-requested reflects all threads.
            std::mem::forget(live);
        });
        assert!(pt.overhead() < 4.0, "overhead {}", pt.overhead());
    }
}
