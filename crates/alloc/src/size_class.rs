//! Size-class machinery shared by every allocator model.

/// The size classes used by the small-object paths, in bytes.
///
/// A blend of the class ladders real allocators use: tight spacing for
/// tiny objects, geometric above 256 B, capped at 32 KB. Larger requests
/// take each allocator's large-object path.
pub const CLASSES: [u64; 17] = [
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048, 4096, 8192, 16384, 32768,
];

/// Largest size served from size classes.
pub const MAX_SMALL: u64 = CLASSES[CLASSES.len() - 1];

/// Map a request to `(class_index, class_size)`.
///
/// # Panics
/// Panics when `size` exceeds [`MAX_SMALL`]; callers must route large
/// requests to their large-object path first.
#[inline]
pub fn class_of(size: u64) -> (usize, u64) {
    debug_assert!(size > 0);
    match CLASSES.binary_search(&size.max(1)) {
        Ok(i) => (i, CLASSES[i]),
        Err(i) => {
            assert!(i < CLASSES.len(), "size {size} exceeds MAX_SMALL");
            (i, CLASSES[i])
        }
    }
}

/// Number of size classes.
pub const NUM_CLASSES: usize = CLASSES.len();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_class_sizes_map_to_themselves() {
        for (i, &c) in CLASSES.iter().enumerate() {
            assert_eq!(class_of(c), (i, c));
        }
    }

    #[test]
    fn sizes_round_up() {
        assert_eq!(class_of(1), (0, 16));
        assert_eq!(class_of(17), (1, 32));
        assert_eq!(class_of(65), (4, 96));
        assert_eq!(class_of(32768), (16, 32768));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_SMALL")]
    fn oversized_requests_panic() {
        class_of(MAX_SMALL + 1);
    }

    #[test]
    fn classes_are_strictly_increasing() {
        assert!(CLASSES.windows(2).all(|w| w[0] < w[1]));
    }
}
