//! Deterministic tracing hooks for the simulator.
//!
//! This module is the *recording* half of the `nqp-trace` subsystem:
//! a ring-buffered event log, epoch-binned counter samples, and phase
//! spans, all timestamped in **model cycles** — never wall-clock — so
//! a trace taken from a serial sweep is byte-identical to one taken
//! from a `--jobs N` or resumed sweep of the same grid. Rendering and
//! export (Chrome JSON, CSV, `perf stat`-style reports) live in the
//! `nqp-trace` crate, which depends on these types.
//!
//! Pay-for-what-you-use: `NumaSim` holds an `Option<Box<TraceLog>>`
//! that is `None` unless `SimConfig::trace` is set. Every hook is a
//! single `Option` branch on an otherwise-rare event path, and hooks
//! never charge cycles, so enabling tracing cannot change cycle
//! results.

use crate::metrics::Counters;

/// Thread id used for simulator-level events (region boundaries,
/// node-offline evacuations) that no logical thread owns.
pub const NO_TID: u32 = u32::MAX;

/// Switches carried on `SimConfig` that turn tracing on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Width of one counter-sample bin in model cycles. Samples are
    /// taken at region boundaries, so a bin can be wider than this
    /// (a single long region lands entirely in the bin its end cycle
    /// falls into); the telescoping-delta construction keeps the sum
    /// of all bins exactly equal to the live totals regardless.
    pub epoch_cycles: u64,
    /// Event-ring capacity. The most recent `capacity` events are
    /// kept; older ones are dropped (counted, never silently).
    pub capacity: usize,
    /// Free-form label recorded in the artifact and used by the CLI
    /// to name per-cell trace files (e.g. the sweep config name).
    pub label: String,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { epoch_cycles: 1_000_000, capacity: 65_536, label: String::new() }
    }
}

impl TraceConfig {
    /// Builder: set the epoch width (clamped to ≥ 1).
    #[must_use]
    pub fn with_epoch_cycles(mut self, cycles: u64) -> Self {
        self.epoch_cycles = cycles.max(1);
        self
    }

    /// Builder: set the artifact label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// One timestamped occurrence in the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A parallel region began (`threads` logical threads admitted).
    RegionBegin { region: u64, threads: u32 },
    /// A parallel region resolved to `elapsed_cycles` of model time.
    RegionEnd { region: u64, elapsed_cycles: u64 },
    /// First touch of `pages` 4 KB pages placed on `node`.
    PageFault { node: usize, pages: u64 },
    /// The OS scheduler moved a thread between cores.
    ThreadMigration { from_core: usize, to_core: usize },
    /// A preemption-storm fault forced a context switch on `core`.
    Preemption { core: usize },
    /// AutoNUMA moved `pages` 4 KB pages between nodes.
    PageMigration { from_node: usize, to_node: usize, pages: u64 },
    /// AutoNUMA wanted to migrate but an injected migration-failure
    /// fault blocked it (cycles burned, page left in place).
    PageMigrationBlocked { node: usize },
    /// A transient allocation fault was injected into `region`.
    AllocFaultInjected { region: u64 },
    /// `node` went offline; `evacuated_pages` 4 KB pages were moved
    /// to surviving nodes.
    NodeOffline { node: usize, evacuated_pages: u64 },
    /// A thread spent `wait_cycles` blocked on contended locks over
    /// the region that just resolved.
    LockContention { wait_cycles: u64 },
    /// The query's cooperative deadline passed; it abandoned at the
    /// next region boundary having burned `elapsed_cycles`.
    DeadlineAbandon { deadline_cycles: u64, elapsed_cycles: u64 },
    /// The online advisor acted at the end of `region`: a knob turn
    /// (`policy=…`, `autonuma=…`, `rehome=…:moved=…`) or a state
    /// transition (`freeze`, `rearm:…`, `rollback:…`, `commit:…`).
    /// The decision token is a single word with no spaces.
    AdvisorDecision { region: u64, decision: String },
    /// The tier daemon acted at the end of `region`: a promotion or
    /// demotion batch (`promote:moved=…` / `demote:moved=…`) or a
    /// policy breadcrumb. Single-word token, like `AdvisorDecision`.
    TierDecision { region: u64, decision: String },
}

/// A `TraceEvent` plus when and on which logical thread it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Model-cycle timestamp (simulator time base, deterministic).
    pub at: u64,
    /// Logical thread id, or [`NO_TID`] for simulator-level events.
    pub tid: u32,
    pub event: TraceEvent,
}

/// Counter deltas accumulated over one epoch bin.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSample {
    /// Bin index: `end_cycles / epoch_cycles` at the time of sampling.
    pub epoch: u64,
    /// Model cycle at which this bin's first delta started.
    pub start_cycles: u64,
    /// Model cycle of the last region boundary folded into this bin.
    pub end_cycles: u64,
    /// Counter delta (later snapshot minus earlier, saturating).
    pub counters: Counters,
    /// DRAM lines served per node over the bin (demand seen by each
    /// memory controller), indexed by node id.
    pub node_lines: Vec<u64>,
    /// Lines crossing each interconnect link, indexed like
    /// `Topology::links`.
    pub link_lines: Vec<u64>,
}

/// One named phase (e.g. `agg:build`, `scan:lineitem`) with its
/// attributed model-cycle window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    pub name: String,
    pub begin_cycles: u64,
    pub end_cycles: u64,
    /// Nesting depth at open time (0 = top level), so exporters can
    /// reconstruct the stack without re-deriving containment.
    pub depth: u32,
}

/// The in-simulator recording buffer: events (ring), epoch samples,
/// and phase spans. Extracted whole via `NumaSim::take_trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    cfg: TraceConfig,
    /// Ring storage; chronological order is `events[head..] ++
    /// events[..head]` once the ring has wrapped.
    events: Vec<TraceRecord>,
    head: usize,
    dropped: u64,
    samples: Vec<EpochSample>,
    /// Cumulative counters at the last sample — the telescoping
    /// anchor that makes `sum(samples) == totals` exact.
    last_snapshot: Counters,
    /// Model cycle the next sample's window starts at.
    window_start: u64,
    spans: Vec<PhaseSpan>,
    open_phases: Vec<(String, u64)>,
    /// Cumulative counters at `take` time (the live totals).
    totals: Counters,
    /// Model cycle at `take` time.
    end_cycles: u64,
}

impl TraceLog {
    #[must_use]
    pub fn new(cfg: TraceConfig) -> Self {
        let capacity = cfg.capacity.max(1);
        TraceLog {
            cfg: TraceConfig { capacity, ..cfg },
            events: Vec::new(),
            head: 0,
            dropped: 0,
            samples: Vec::new(),
            last_snapshot: Counters::default(),
            window_start: 0,
            spans: Vec::new(),
            open_phases: Vec::new(),
            totals: Counters::default(),
            end_cycles: 0,
        }
    }

    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Record one event. Ring semantics: once `capacity` events are
    /// held, each push overwrites the oldest and bumps `dropped`.
    pub fn push(&mut self, at: u64, tid: u32, event: TraceEvent) {
        let rec = TraceRecord { at, tid, event };
        if self.events.len() < self.cfg.capacity {
            self.events.push(rec);
        } else {
            self.events[self.head] = rec;
            self.head = (self.head + 1) % self.cfg.capacity;
            self.dropped += 1;
        }
    }

    /// Events in chronological (record) order.
    #[must_use]
    pub fn events(&self) -> Vec<&TraceRecord> {
        let (tail, front) = self.events.split_at(self.head);
        front.iter().chain(tail.iter()).collect()
    }

    /// Events that were overwritten by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Fold the counter delta since the previous sample into the
    /// epoch bin `now / epoch_cycles`. Called at every region
    /// boundary and once more at `take` time; because each call
    /// consumes exactly `cumulative - last_snapshot`, the bins
    /// telescope and their sum equals the final totals bit-for-bit.
    pub fn sample(
        &mut self,
        now: u64,
        cumulative: Counters,
        node_lines: &[u64],
        link_lines: &[u64],
    ) {
        let delta = cumulative.delta(self.last_snapshot);
        self.last_snapshot = cumulative;
        let start = self.window_start;
        self.window_start = now;
        let no_lines =
            node_lines.iter().all(|&l| l == 0) && link_lines.iter().all(|&l| l == 0);
        if delta == Counters::default() && no_lines {
            return;
        }
        let epoch = now / self.cfg.epoch_cycles;
        match self.samples.last_mut() {
            Some(last) if last.epoch == epoch => {
                last.counters += delta;
                last.end_cycles = now;
                merge_lines(&mut last.node_lines, node_lines);
                merge_lines(&mut last.link_lines, link_lines);
            }
            _ => self.samples.push(EpochSample {
                epoch,
                start_cycles: start,
                end_cycles: now,
                counters: delta,
                node_lines: node_lines.to_vec(),
                link_lines: link_lines.to_vec(),
            }),
        }
    }

    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// Open a named phase at model cycle `now`.
    pub fn phase_begin(&mut self, name: &str, now: u64) {
        self.open_phases.push((name.to_string(), now));
    }

    /// Close the innermost open phase at model cycle `now`. A close
    /// without a matching open is ignored (never panics — tracing
    /// must not take down a trial).
    pub fn phase_end(&mut self, now: u64) {
        if let Some((name, begin)) = self.open_phases.pop() {
            self.spans.push(PhaseSpan {
                name,
                begin_cycles: begin,
                end_cycles: now.max(begin),
                depth: self.open_phases.len() as u32,
            });
        }
    }

    /// Spans in close order (inner phases precede the phase that
    /// contains them).
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Finalise the log: flush any residual counter delta (charges
    /// made after the last region boundary, e.g. an evacuation on a
    /// region that then faulted), close dangling phases, and record
    /// the live totals. Called by `NumaSim::take_trace`.
    pub fn finish(&mut self, now: u64, cumulative: Counters) {
        self.sample(now, cumulative, &[], &[]);
        while !self.open_phases.is_empty() {
            self.phase_end(now);
        }
        self.totals = cumulative;
        self.end_cycles = now;
    }

    /// Live `Counters` totals recorded at `finish` time.
    pub fn totals(&self) -> Counters {
        self.totals
    }

    /// Model cycle recorded at `finish` time.
    pub fn end_cycles(&self) -> u64 {
        self.end_cycles
    }
}

/// Element-wise `dst += src`, growing `dst` if `src` is longer (the
/// first samples of a trial can predate topology-sized line vectors).
fn merge_lines(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d += *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let cfg = TraceConfig { capacity: 3, ..Default::default() };
        let mut log = TraceLog::new(cfg);
        for i in 0..5u64 {
            log.push(i, 0, TraceEvent::Preemption { core: i as usize });
        }
        assert_eq!(log.dropped(), 2);
        let ats: Vec<u64> = log.events().iter().map(|r| r.at).collect();
        assert_eq!(ats, vec![2, 3, 4], "chronological, oldest dropped");
    }

    #[test]
    fn samples_telescope_to_totals() {
        let mut log = TraceLog::new(TraceConfig::default().with_epoch_cycles(100));
        let mut cum = Counters::default();
        cum.page_faults = 4;
        log.sample(50, cum, &[2, 0], &[1]);
        cum.page_faults = 9;
        cum.compute_cycles = 1_000;
        log.sample(260, cum, &[3, 1], &[0]);
        log.finish(260, cum);
        let sum = log
            .samples()
            .iter()
            .fold(Counters::default(), |acc, s| acc + s.counters);
        assert_eq!(sum, log.totals());
        assert_eq!(log.samples().len(), 2, "cycles 50 and 260 land in different bins");
        assert_eq!(log.samples()[0].epoch, 0);
        assert_eq!(log.samples()[1].epoch, 2);
    }

    #[test]
    fn same_epoch_samples_merge() {
        let mut log = TraceLog::new(TraceConfig::default().with_epoch_cycles(1_000));
        let mut cum = Counters::default();
        cum.page_faults = 1;
        log.sample(10, cum, &[1], &[]);
        cum.page_faults = 3;
        log.sample(20, cum, &[2], &[]);
        assert_eq!(log.samples().len(), 1);
        assert_eq!(log.samples()[0].counters.page_faults, 3);
        assert_eq!(log.samples()[0].node_lines, vec![3]);
        assert_eq!(log.samples()[0].start_cycles, 0);
        assert_eq!(log.samples()[0].end_cycles, 20);
    }

    #[test]
    fn phase_spans_nest_and_unbalanced_end_is_ignored() {
        let mut log = TraceLog::new(TraceConfig::default());
        log.phase_end(5); // unmatched: ignored
        log.phase_begin("outer", 0);
        log.phase_begin("inner", 10);
        log.phase_end(20);
        log.phase_end(30);
        assert_eq!(log.spans().len(), 2);
        assert_eq!(log.spans()[0].name, "inner");
        assert_eq!(log.spans()[0].depth, 1);
        assert_eq!(log.spans()[1].name, "outer");
        assert_eq!(log.spans()[1].depth, 0);
    }

    #[test]
    fn finish_closes_dangling_phases_and_flushes_residual_delta() {
        let mut log = TraceLog::new(TraceConfig::default());
        log.phase_begin("left-open", 0);
        let mut cum = Counters::default();
        cum.evacuated_pages = 7;
        log.finish(40, cum);
        assert_eq!(log.spans().len(), 1);
        assert_eq!(log.spans()[0].end_cycles, 40);
        assert_eq!(log.samples().len(), 1, "residual delta flushed");
        assert_eq!(log.samples()[0].counters.evacuated_pages, 7);
        assert_eq!(log.end_cycles(), 40);
    }
}
