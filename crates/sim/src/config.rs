//! Simulation configuration: the tuning knobs of Table IV plus the cost
//! model parameters.

use crate::fault::FaultPlan;
use crate::trace::TraceConfig;
use nqp_topology::{MachineSpec, NodeId};

/// Thread placement strategy (§III-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThreadPlacement {
    /// No affinity: the OS scheduler may migrate threads freely. This is
    /// the system default and the source of the run-to-run jitter in
    /// Figure 3.
    #[default]
    None,
    /// Spread threads across NUMA nodes round-robin, maximising the number
    /// of memory controllers in play.
    Sparse,
    /// Pack threads into as few nodes as possible, maximising sharing and
    /// minimising remote distance.
    Dense,
}

impl ThreadPlacement {
    /// All variants, in Table IV order.
    pub const ALL: [ThreadPlacement; 3] =
        [ThreadPlacement::None, ThreadPlacement::Sparse, ThreadPlacement::Dense];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ThreadPlacement::None => "none",
            ThreadPlacement::Sparse => "sparse",
            ThreadPlacement::Dense => "dense",
        }
    }
}

/// Memory placement policy (§III-C), the `numactl` policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemPolicy {
    /// Pages land on the node of the thread that first touches them
    /// (Linux default).
    #[default]
    FirstTouch,
    /// Pages are placed on all nodes round-robin.
    Interleave,
    /// Pages are placed on the node of the thread performing the
    /// *allocation* (mapping), regardless of who touches them first.
    Localalloc,
    /// All pages go to one user-selected node, spilling to other nodes
    /// only when it is full.
    Preferred(NodeId),
    /// Strict binding (`numactl --membind`): all pages go to the chosen
    /// node and allocation *fails* with `SimError::OutOfMemory` when that
    /// node is full — no fallback, exactly like the real kernel.
    Bind(NodeId),
}

impl MemPolicy {
    /// The policies evaluated in the paper's figures, with `Preferred`
    /// pinned to node 0. (`Bind` is excluded: under capacity pressure it
    /// fails rather than degrades, so sweeps opt into it explicitly.)
    pub const ALL: [MemPolicy; 4] = [
        MemPolicy::FirstTouch,
        MemPolicy::Interleave,
        MemPolicy::Localalloc,
        MemPolicy::Preferred(0),
    ];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            MemPolicy::FirstTouch => "first-touch",
            MemPolicy::Interleave => "interleave",
            MemPolicy::Localalloc => "localalloc",
            MemPolicy::Preferred(_) => "preferred",
            MemPolicy::Bind(_) => "bind",
        }
    }
}

/// Cost-model parameters, all in model cycles (or cycles per cache line).
///
/// Defaults are calibrated to commodity x86 servers of the paper's era;
/// every parameter is public so ablation benches can vary them.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Base pipeline cost charged on every memory touch (covers L1/L2).
    pub touch_base_cycles: u64,
    /// Page-walk cost on a 4 KB TLB miss.
    pub walk_4k_cycles: u64,
    /// Page-walk cost on a 2 MB TLB miss (shorter walk: one level less).
    pub walk_2m_cycles: u64,
    /// Fixed kernel cost of a minor page fault (first touch of a page).
    pub fault_fixed_cycles: u64,
    /// Additional fault cost per cache line zero-filled (scales with page
    /// size, which is what makes 2 MB faults expensive).
    pub fault_per_line_cycles: u64,
    /// Fixed cost of the OS migrating a thread to another core.
    pub thread_migration_cycles: u64,
    /// Fixed kernel cost of migrating one page between nodes (unmap,
    /// copy setup, TLB shootdown).
    pub page_migration_fixed_cycles: u64,
    /// Per-line copy cost of a page migration.
    pub page_migration_per_line_cycles: u64,
    /// AutoNUMA: remote accesses to a page before it is migrated toward
    /// the accessor.
    pub autonuma_migrate_threshold: u32,
    /// AutoNUMA: NUMA-hinting minor fault paid when touching a page the
    /// scanner recently marked `PROT_NONE` (charged on sampled touches).
    pub autonuma_hint_fault_cycles: u64,
    /// AutoNUMA: periodic scan overhead charged to each thread...
    pub autonuma_scan_cycles: u64,
    /// ...once per this many cycles of thread execution.
    pub autonuma_scan_period_cycles: u64,
    /// OS scheduler (no affinity): mean cycles between load-balancer
    /// migration events per thread.
    pub sched_migration_period_cycles: u64,
    /// Memory-level parallelism of *streaming* accesses: when a thread
    /// misses on the line right after the one it last touched (a scan,
    /// which prefetchers pipeline), the charged stall is `latency / mlp`.
    /// Dependent accesses (pointer chases, hash probes) pay the full
    /// latency. Line *demand* for the bandwidth rooflines is unaffected,
    /// which is how scans saturate controllers.
    pub mlp: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            touch_base_cycles: 4,
            walk_4k_cycles: 60,
            walk_2m_cycles: 40,
            fault_fixed_cycles: 500,
            fault_per_line_cycles: 1,
            thread_migration_cycles: 3_000,
            page_migration_fixed_cycles: 6_000,
            page_migration_per_line_cycles: 4,
            autonuma_migrate_threshold: 4,
            autonuma_hint_fault_cycles: 1_200,
            autonuma_scan_cycles: 2_000,
            autonuma_scan_period_cycles: 10_000_000,
            sched_migration_period_cycles: 250_000,
            mlp: 4,
        }
    }
}

/// Full simulator configuration: one machine plus the Table IV knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine to simulate (Table II presets or custom).
    pub machine: MachineSpec,
    /// Thread placement strategy.
    pub thread_placement: ThreadPlacement,
    /// Memory placement policy.
    pub mem_policy: MemPolicy,
    /// AutoNUMA kernel load balancing (Linux default: on).
    pub autonuma: bool,
    /// Transparent Hugepages (Linux default: on).
    pub thp: bool,
    /// Seed for all scheduler randomness; identical configs reproduce
    /// identical runs.
    pub seed: u64,
    /// Settled scheduler: model a long-running server process whose
    /// unpinned threads the OS has spread over the whole machine (regular
    /// load-balancer migrations, but no short-run placement pathologies).
    /// Used by the database sessions of W5; standalone workloads keep the
    /// per-run scheduler luck of Figure 3.
    pub sched_settled: bool,
    /// Cost-model parameters.
    pub costs: CostParams,
    /// Deterministic fault-injection schedule (None = healthy machine).
    pub fault_plan: Option<FaultPlan>,
    /// Which retry attempt of the trial this is (0 = first run). The
    /// experiment runner bumps this on retry so transient injected faults
    /// clear deterministically.
    pub fault_attempt: u32,
    /// Per-trial cycle budget; a region that would push the simulated
    /// clock past it fails with `SimError::Timeout`. None = unlimited.
    pub trial_budget_cycles: Option<u64>,
    /// Cooperative query deadline: once the simulated clock passes it,
    /// the *next* region boundary fails with
    /// `SimError::DeadlineExceeded` carrying the cycles burned so far.
    /// Work inside a region always completes — cancellation is
    /// cooperative, checked only between phases (the serve driver's
    /// abandon-at-phase-boundary contract). None = no deadline.
    pub deadline_cycles: Option<u64>,
    /// Deterministic tracing (None = off; the hot path stays free of
    /// recording work and cycle results are unchanged).
    pub trace: Option<TraceConfig>,
    /// Run the original per-line reference model instead of the
    /// page-granular fast path. Both produce bit-identical cycles,
    /// counters, and trace artifacts; the reference path exists as the
    /// differential-testing oracle (`NQP_REFERENCE=1` in the CLI).
    pub reference_model: bool,
    /// Constructor for a runtime-tuning hook ([`crate::RegionHook`]);
    /// each `NumaSim::new` builds a fresh instance. None = no online
    /// controller (the default — region resolution is unchanged).
    pub tune: Option<crate::tune::TuneFactory>,
    /// Host threads the simulated workers of shardable regions spread
    /// across (1 = serial, the default). Results are byte-identical for
    /// every shard count — shard workers run on frozen region-start
    /// state with private deltas merged in fixed tid order — so, like
    /// the executor's `jobs`, this is a host-resource knob excluded
    /// from grid fingerprints.
    pub shards: usize,
}

impl SimConfig {
    /// A configuration with the OS defaults the paper starts from: no
    /// affinity, First Touch, AutoNUMA on, THP on.
    pub fn os_default(machine: MachineSpec) -> Self {
        SimConfig {
            machine,
            thread_placement: ThreadPlacement::None,
            mem_policy: MemPolicy::FirstTouch,
            autonuma: true,
            thp: true,
            seed: 0x6e71_7021,
            sched_settled: false,
            costs: CostParams::default(),
            fault_plan: None,
            fault_attempt: 0,
            trial_budget_cycles: None,
            deadline_cycles: None,
            trace: None,
            reference_model: false,
            tune: None,
            shards: 1,
        }
    }

    /// The tuned configuration the paper converges on for standalone
    /// workloads: Sparse affinity, Interleave, AutoNUMA off, THP off.
    pub fn tuned(machine: MachineSpec) -> Self {
        SimConfig {
            thread_placement: ThreadPlacement::Sparse,
            mem_policy: MemPolicy::Interleave,
            autonuma: false,
            thp: false,
            ..Self::os_default(machine)
        }
    }

    /// Builder-style setter for the thread placement.
    pub fn with_threads(mut self, placement: ThreadPlacement) -> Self {
        self.thread_placement = placement;
        self
    }

    /// Builder-style setter for the memory policy.
    pub fn with_policy(mut self, policy: MemPolicy) -> Self {
        self.mem_policy = policy;
        self
    }

    /// Builder-style setter for AutoNUMA.
    pub fn with_autonuma(mut self, on: bool) -> Self {
        self.autonuma = on;
        self
    }

    /// Builder-style setter for Transparent Hugepages.
    pub fn with_thp(mut self, on: bool) -> Self {
        self.thp = on;
        self
    }

    /// Builder-style setter for the scheduler seed (used to vary "runs"
    /// in Figure 3).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the settled-scheduler mode.
    pub fn with_settled_scheduler(mut self, settled: bool) -> Self {
        self.sched_settled = settled;
        self
    }

    /// Builder-style setter for the fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style setter for the retry attempt (used by the experiment
    /// runner when re-running a trial after a transient fault).
    pub fn with_fault_attempt(mut self, attempt: u32) -> Self {
        self.fault_attempt = attempt;
        self
    }

    /// Builder-style setter for the per-trial cycle budget.
    pub fn with_trial_budget(mut self, cycles: u64) -> Self {
        self.trial_budget_cycles = Some(cycles);
        self
    }

    /// Builder-style setter for the cooperative query deadline.
    pub fn with_deadline(mut self, cycles: u64) -> Self {
        self.deadline_cycles = Some(cycles);
        self
    }

    /// Builder-style setter enabling deterministic tracing.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Builder-style setter selecting the per-line reference model (the
    /// oracle the page-granular fast path is differentially tested
    /// against). Off by default.
    pub fn with_reference_model(mut self, on: bool) -> Self {
        self.reference_model = on;
        self
    }

    /// Builder-style setter installing a runtime-tuning hook factory
    /// (the online advisor's entry point).
    pub fn with_tune(mut self, factory: crate::tune::TuneFactory) -> Self {
        self.tune = Some(factory);
        self
    }

    /// Builder-style setter for the host-thread shard count (0 is
    /// treated as 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// Look a machine preset up by name, turning an unknown name into a
/// typed [`crate::SimError::BadSpec`] that echoes the offending token
/// and lists every valid name — the error the CLI's `--machine` flag
/// surfaces.
pub fn machine_by_name(name: &str) -> Result<MachineSpec, crate::SimError> {
    nqp_topology::machines::by_name(name).ok_or_else(|| crate::SimError::BadSpec {
        flag: "--machine".into(),
        token: name.into(),
        why: format!(
            "unknown machine (valid: {})",
            nqp_topology::machines::MACHINE_NAMES.join(", ")
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_topology::machines;

    #[test]
    fn os_default_matches_paper_defaults() {
        let c = SimConfig::os_default(machines::machine_a());
        assert_eq!(c.thread_placement, ThreadPlacement::None);
        assert_eq!(c.mem_policy, MemPolicy::FirstTouch);
        assert!(c.autonuma);
        assert!(c.thp);
    }

    #[test]
    fn tuned_matches_paper_recommendation() {
        let c = SimConfig::tuned(machines::machine_a());
        assert_eq!(c.thread_placement, ThreadPlacement::Sparse);
        assert_eq!(c.mem_policy, MemPolicy::Interleave);
        assert!(!c.autonuma);
        assert!(!c.thp);
    }

    #[test]
    fn builders_chain() {
        let c = SimConfig::os_default(machines::machine_b())
            .with_threads(ThreadPlacement::Dense)
            .with_policy(MemPolicy::Preferred(2))
            .with_autonuma(false)
            .with_thp(false)
            .with_seed(7);
        assert_eq!(c.thread_placement, ThreadPlacement::Dense);
        assert_eq!(c.mem_policy, MemPolicy::Preferred(2));
        assert_eq!(c.seed, 7);
        assert!(!c.autonuma && !c.thp);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ThreadPlacement::Sparse.label(), "sparse");
        assert_eq!(MemPolicy::Preferred(3).label(), "preferred");
        assert_eq!(MemPolicy::Bind(1).label(), "bind");
        assert_eq!(MemPolicy::ALL.len(), 4);
        assert_eq!(ThreadPlacement::ALL.len(), 3);
    }

    #[test]
    fn fault_and_budget_builders() {
        let plan = FaultPlan::new(5).with_alloc_fail(0, 0, 1);
        let c = SimConfig::tuned(machines::machine_a())
            .with_faults(plan.clone())
            .with_fault_attempt(2)
            .with_trial_budget(1_000_000);
        assert_eq!(c.fault_plan, Some(plan));
        assert_eq!(c.fault_attempt, 2);
        assert_eq!(c.trial_budget_cycles, Some(1_000_000));
        let d = SimConfig::os_default(machines::machine_a());
        assert!(d.fault_plan.is_none());
        assert_eq!(d.fault_attempt, 0);
        assert!(d.trial_budget_cycles.is_none());
    }

    #[test]
    fn unknown_machine_is_a_typed_bad_spec() {
        assert_eq!(machine_by_name("B_CXL").unwrap().name, "B_CXL");
        match machine_by_name("machine_z") {
            Err(crate::SimError::BadSpec { flag, token, why }) => {
                assert_eq!(flag, "--machine");
                assert_eq!(token, "machine_z");
                for name in machines::MACHINE_NAMES {
                    assert!(why.contains(name), "`{why}` should list `{name}`");
                }
            }
            other => panic!("expected BadSpec, got {other:?}"),
        }
    }
}
