//! A direct-mapped last-level-cache model, one instance per NUMA node.
//!
//! Tags are line addresses. A direct-mapped array of the configured
//! capacity reproduces the effects the paper measures — working-set
//! capacity misses, and the cold-cache penalty after a thread migrates to
//! another node (whose LLC does not hold its lines) — at O(1) per touch.

/// Per-node last-level cache.
#[derive(Debug, Clone)]
pub struct Llc {
    tags: Vec<u64>,
    mask: u64,
    /// Latency of a hit, in model cycles.
    pub hit_cycles: u64,
}

const EMPTY: u64 = u64::MAX;

impl Llc {
    /// Build an LLC holding `lines` cache lines (rounded up to a power of
    /// two), with the given hit latency.
    pub fn new(lines: u64, hit_cycles: u64) -> Self {
        let size = lines.max(1).next_power_of_two() as usize;
        Llc { tags: vec![EMPTY; size], mask: size as u64 - 1, hit_cycles }
    }

    /// Touch a line address; inserts on miss. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, line_addr: u64) -> bool {
        let slot = (mix(line_addr) & self.mask) as usize;
        if self.tags[slot] == line_addr {
            true
        } else {
            self.tags[slot] = line_addr;
            false
        }
    }

    /// Prefetch the host cache line holding `line_addr`'s tag slot.
    /// A pure latency hint: never reads or writes the tag, so it cannot
    /// affect hit/miss outcomes.
    #[inline]
    pub fn prefetch(&self, line_addr: u64) {
        let slot = (mix(line_addr) & self.mask) as usize;
        crate::mix::prefetch(&self.tags[slot]);
    }

    /// Invalidate everything (used by cold-run experiments).
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
    }

    /// Number of line slots.
    pub fn capacity_lines(&self) -> usize {
        self.tags.len()
    }
}

#[inline]
fn mix(x: u64) -> u64 {
    crate::mix::xor_mul_shift(x, 31, 0x7fb5_d329_728e_a185, 27)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Llc::new(1024, 40);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Llc::new(64, 40);
        c.access(7);
        c.flush();
        assert!(!c.access(7));
    }

    #[test]
    fn small_working_set_mostly_hits() {
        let mut c = Llc::new(4096, 40);
        for line in 0..256u64 {
            c.access(line);
        }
        let hits = (0..256u64).filter(|&l| c.access(l)).count();
        assert!(hits >= 240, "only {hits}/256 hits");
    }

    #[test]
    fn oversized_working_set_mostly_misses() {
        let mut c = Llc::new(64, 40);
        let mut misses = 0;
        for _ in 0..2 {
            for line in 0..8192u64 {
                if !c.access(line) {
                    misses += 1;
                }
            }
        }
        assert!(misses > 15_000, "only {misses} misses");
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(Llc::new(1000, 1).capacity_lines(), 1024);
    }
}
