//! Typed errors for the fallible simulation path.
//!
//! Real machines fail: `numactl --membind` allocations die when the bound
//! node is full, transient allocation failures happen under memory
//! pressure, and long-running trials must be cut off. [`SimError`] is the
//! single error currency threaded from [`crate::NumaSim`] page placement
//! up through the workload runners to the experiment harness, replacing
//! the panics that used to abort a whole sweep on one bad trial.

use std::fmt;

/// Convenience alias used throughout the fallible simulation path.
pub type SimResult<T> = Result<T, SimError>;

/// An error raised by the simulated machine or injected by a
/// [`crate::FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No node could hold the requested pages. Raised strictly (no
    /// fallback) under [`crate::MemPolicy::Bind`], and by any policy once
    /// every node's capacity is exhausted — the model of a real `membind`
    /// failure / kernel OOM.
    OutOfMemory {
        /// The node the placement wanted.
        node: usize,
        /// Pages the failing placement unit needed.
        requested_pages: u64,
    },
    /// A zero-byte mapping, a touch of an unmapped address, or an unmap
    /// outside any live mapping. (These used to be `assert!`s and
    /// `debug_assert!`s that diverged between debug and release builds.)
    InvalidMapping {
        /// The offending virtual address (or requested base for maps).
        addr: u64,
    },
    /// A transient allocation failure injected by a fault plan. Retryable:
    /// the experiment runner re-runs the trial with a bumped
    /// `fault_attempt` and the fault clears once the configured number of
    /// failing attempts is exhausted.
    InjectedAllocFault {
        /// Parallel region in which the fault fired.
        region: u64,
        /// Retry attempt the fault fired on (0 = first run).
        attempt: u32,
    },
    /// The trial exceeded its cycle budget.
    Timeout {
        /// The configured budget, in model cycles.
        budget_cycles: u64,
        /// Simulated cycles consumed when the budget tripped.
        elapsed_cycles: u64,
    },
    /// The query's deadline passed and it abandoned cooperatively at a
    /// region (phase) boundary. Unlike [`SimError::Timeout`] — the
    /// watchdog killing a runaway trial — a deadline abandon is an
    /// orderly exit: the cycles burned up to the boundary are reported
    /// in `elapsed_cycles` so the caller can charge them.
    DeadlineExceeded {
        /// The configured deadline, in model cycles.
        deadline_cycles: u64,
        /// Simulated cycles already burned when the query abandoned.
        elapsed_cycles: u64,
    },
    /// A NUMA node (CPUs + memory controller) dropped out and the
    /// operation strictly required it: a `MemPolicy::Bind` to the dead
    /// node, or an attempt to take the *last* live node offline. Trials
    /// that merely *used* the node degrade instead (pages are evacuated,
    /// threads re-placed) — this error is the strict path.
    NodeOffline {
        /// The offline node.
        node: usize,
    },
    /// A harness-level invariant failed (the fallible replacement for
    /// internal `expect`s on the experiment path).
    Harness {
        /// What went wrong.
        what: String,
    },
    /// A user-facing spec string (`--faults`, `--outage`, `--arrivals`)
    /// failed to parse. Carries the flag, the offending token verbatim,
    /// and the reason, so the CLI error names exactly what to fix.
    BadSpec {
        /// The flag whose value was malformed (e.g. `--faults`).
        flag: String,
        /// The offending token, verbatim from the input.
        token: String,
        /// Why the token was rejected.
        why: String,
    },
}

impl SimError {
    /// Whether retrying the trial (with a bumped fault attempt) can
    /// plausibly succeed. Only injected transient faults qualify;
    /// capacity exhaustion and timeouts are deterministic.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::InjectedAllocFault { .. })
    }

    /// Short stable tag for tables and logs.
    pub fn tag(&self) -> &'static str {
        match self {
            SimError::OutOfMemory { .. } => "oom",
            SimError::InvalidMapping { .. } => "invalid-mapping",
            SimError::InjectedAllocFault { .. } => "alloc-fault",
            SimError::Timeout { .. } => "timeout",
            SimError::DeadlineExceeded { .. } => "deadline",
            SimError::NodeOffline { .. } => "node-offline",
            SimError::Harness { .. } => "harness",
            SimError::BadSpec { .. } => "bad-spec",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { node, requested_pages } => write!(
                f,
                "out of memory: no node could hold {requested_pages} pages (wanted node {node})"
            ),
            SimError::InvalidMapping { addr } => {
                write!(f, "invalid mapping at address {addr:#x}")
            }
            SimError::InjectedAllocFault { region, attempt } => write!(
                f,
                "injected transient allocation fault (region {region}, attempt {attempt})"
            ),
            SimError::Timeout { budget_cycles, elapsed_cycles } => write!(
                f,
                "trial exceeded its cycle budget ({elapsed_cycles} of {budget_cycles} budgeted cycles)"
            ),
            SimError::DeadlineExceeded { deadline_cycles, elapsed_cycles } => write!(
                f,
                "query abandoned at a phase boundary: deadline {deadline_cycles} cycles passed \
                 ({elapsed_cycles} burned)"
            ),
            SimError::NodeOffline { node } => {
                write!(f, "node {node} is offline and the operation required it")
            }
            SimError::Harness { what } => write!(f, "harness invariant failed: {what}"),
            SimError::BadSpec { flag, token, why } => {
                write!(f, "malformed {flag} spec: {why} at `{token}`")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_injected_faults_are_transient() {
        assert!(SimError::InjectedAllocFault { region: 1, attempt: 0 }.is_transient());
        assert!(!SimError::OutOfMemory { node: 0, requested_pages: 1 }.is_transient());
        assert!(!SimError::Timeout { budget_cycles: 1, elapsed_cycles: 2 }.is_transient());
        assert!(!SimError::InvalidMapping { addr: 0 }.is_transient());
    }

    #[test]
    fn display_is_informative() {
        let e = SimError::OutOfMemory { node: 2, requested_pages: 512 };
        let s = e.to_string();
        assert!(s.contains("512") && s.contains("node 2"), "{s}");
        assert_eq!(e.tag(), "oom");
        assert_eq!(SimError::Timeout { budget_cycles: 5, elapsed_cycles: 9 }.tag(), "timeout");
        let d = SimError::DeadlineExceeded { deadline_cycles: 5, elapsed_cycles: 9 };
        assert_eq!(d.tag(), "deadline");
        assert!(!d.is_transient(), "a passed deadline never clears on retry");
        assert!(d.to_string().contains("9 burned"), "{d}");
    }
}
