//! Analytic lock-contention model.
//!
//! The simulator executes logical threads sequentially, so lock contention
//! cannot be observed directly; instead each acquisition records its hold
//! time and the region resolver charges every thread an M/M/1-style
//! expected wait based on how heavily *other* threads used the same lock.
//! This is what makes a single-arena allocator (early ptmalloc) collapse
//! under 16 allocation-heavy threads while per-thread-cache designs don't.

/// Identifier of a modelled lock, handed out by `NumaSim::new_lock`.
pub type LockId = u32;

/// Global registry of modelled locks.
#[derive(Debug, Default)]
pub struct LockTable {
    num_locks: u32,
}

impl LockTable {
    /// Register a new lock and return its id.
    pub fn new_lock(&mut self) -> LockId {
        let id = self.num_locks;
        self.num_locks += 1;
        id
    }

    /// Number of locks registered so far.
    pub fn len(&self) -> usize {
        self.num_locks as usize
    }

    /// True when no lock has been registered.
    #[allow(dead_code)] // used by tests; part of the collection-like API
    pub fn is_empty(&self) -> bool {
        self.num_locks == 0
    }
}

/// Per-thread record of lock usage within one region.
#[derive(Debug, Clone, Default)]
pub struct ThreadLockUse {
    /// `(hold_cycles, acquisitions)` indexed by `LockId`; grown on demand.
    per_lock: Vec<(u64, u64)>,
}

impl ThreadLockUse {
    /// Record one acquisition holding the lock for `hold_cycles`.
    pub fn record(&mut self, lock: LockId, hold_cycles: u64) {
        let idx = lock as usize;
        if self.per_lock.len() <= idx {
            self.per_lock.resize(idx + 1, (0, 0));
        }
        self.per_lock[idx].0 += hold_cycles;
        self.per_lock[idx].1 += 1;
    }

    fn get(&self, lock: usize) -> (u64, u64) {
        self.per_lock.get(lock).copied().unwrap_or((0, 0))
    }

    fn len(&self) -> usize {
        self.per_lock.len()
    }
}

/// Expected waiting cycles for each thread, given every thread's lock usage
/// and the region's latency-bound duration `t0`.
///
/// For each lock, a thread's expected wait per acquisition is
/// `rho / (1 - rho) * avg_other_hold`, where `rho` is the fraction of `t0`
/// that *other* threads spent holding the lock (clamped below 1). Threads
/// that never touch a lock wait zero on it.
pub fn resolve_waits(uses: &[ThreadLockUse], t0: u64) -> Vec<u64> {
    let t0 = t0.max(1) as f64;
    let num_locks = uses.iter().map(ThreadLockUse::len).max().unwrap_or(0);
    let mut total_hold = vec![0u64; num_locks];
    for u in uses {
        for (l, hold) in total_hold.iter_mut().enumerate() {
            *hold += u.get(l).0;
        }
    }
    uses.iter()
        .map(|u| {
            let mut wait = 0.0f64;
            for l in 0..num_locks {
                let (my_hold, my_acqs) = u.get(l);
                if my_acqs == 0 {
                    continue;
                }
                let others_hold = (total_hold[l] - my_hold) as f64;
                if others_hold == 0.0 {
                    continue;
                }
                let rho = (others_hold / t0).min(0.95);
                let others_acqs: u64 = uses
                    .iter()
                    .map(|v| v.get(l).1)
                    .sum::<u64>()
                    .saturating_sub(my_acqs);
                let avg_other_hold = if others_acqs == 0 {
                    0.0
                } else {
                    others_hold / others_acqs as f64
                };
                wait += my_acqs as f64 * (rho / (1.0 - rho)) * avg_other_hold;
            }
            wait.round() as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_ids_are_sequential() {
        let mut t = LockTable::default();
        assert!(t.is_empty());
        assert_eq!(t.new_lock(), 0);
        assert_eq!(t.new_lock(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn uncontended_lock_waits_nothing() {
        let mut u = ThreadLockUse::default();
        u.record(0, 1000);
        let waits = resolve_waits(&[u], 10_000);
        assert_eq!(waits, vec![0]);
    }

    #[test]
    fn threads_on_disjoint_locks_wait_nothing() {
        let mut a = ThreadLockUse::default();
        a.record(0, 5000);
        let mut b = ThreadLockUse::default();
        b.record(1, 5000);
        assert_eq!(resolve_waits(&[a, b], 10_000), vec![0, 0]);
    }

    #[test]
    fn shared_hot_lock_charges_both_threads() {
        let mut a = ThreadLockUse::default();
        let mut b = ThreadLockUse::default();
        for _ in 0..100 {
            a.record(0, 50);
            b.record(0, 50);
        }
        // Each holds the lock 5000 of 10000 cycles: rho = 0.5 for each.
        let waits = resolve_waits(&[a, b], 10_000);
        assert_eq!(waits[0], waits[1]);
        // 100 acquisitions * (0.5/0.5) * 50 = 5000.
        assert_eq!(waits[0], 5000);
    }

    #[test]
    fn wait_grows_with_contenders() {
        let mk = |n: usize| -> Vec<ThreadLockUse> {
            (0..n)
                .map(|_| {
                    let mut u = ThreadLockUse::default();
                    for _ in 0..50 {
                        u.record(0, 40);
                    }
                    u
                })
                .collect()
        };
        let w2 = resolve_waits(&mk(2), 100_000)[0];
        let w8 = resolve_waits(&mk(8), 100_000)[0];
        assert!(w8 > w2 * 3, "w2={w2} w8={w8}");
    }

    #[test]
    fn rho_is_clamped_below_one() {
        // Others hold the lock longer than the whole region: still finite.
        let mut a = ThreadLockUse::default();
        a.record(0, 1);
        let mut b = ThreadLockUse::default();
        b.record(0, 1_000_000);
        let waits = resolve_waits(&[a, b], 1_000);
        assert!(waits[0] > 0);
        assert!(waits[0] < 100_000_000);
    }

    #[test]
    fn empty_region_resolves_empty() {
        assert!(resolve_waits(&[], 100).is_empty());
    }
}
