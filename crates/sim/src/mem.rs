//! Simulated physical memory: the page table, placement policies, node
//! capacities, THP frame grouping, and the byte backing store.

use crate::config::MemPolicy;
use crate::error::{SimError, SimResult};
use nqp_topology::{MachineSpec, NodeId};

/// Small (default) page size: 4 KB.
pub const SMALL_PAGE: u64 = 4096;
/// Huge page size: 2 MB (512 small pages).
pub const HUGE_PAGE: u64 = 2 * 1024 * 1024;
/// Small pages per huge frame.
pub const PAGES_PER_HUGE: u64 = HUGE_PAGE / SMALL_PAGE;
/// Cache line size; every machine in Table II uses 64-byte lines.
pub const LINE: u64 = 64;

/// Virtual address in the simulated process.
pub type VAddr = u64;

/// Marker for a page with no home node yet (First Touch, pre-fault).
const NO_NODE: u8 = u8::MAX;

/// Per-4KB-page metadata.
#[derive(Debug, Clone, Copy)]
pub struct PageEntry {
    /// Home node, or `NO_NODE` while unassigned.
    node: u8,
    /// Part of a 2 MB huge frame (THP).
    huge: bool,
    /// The page has been touched at least once (fault already charged).
    faulted: bool,
    /// Currently part of a live mapping.
    mapped: bool,
    /// AutoNUMA: consecutive remote touches since the last local touch or
    /// migration.
    remote_hits: u8,
    /// AutoNUMA two-reference rule: the node of the last remote toucher;
    /// hits only accumulate when the *same* node keeps touching.
    last_remote: u8,
    /// Bitmask of nodes observed touching this page (AutoNUMA's shared-
    /// page detection; up to 8 nodes, enough for every Table II machine).
    sharers: u8,
    /// Scan epoch of the last NUMA-hinting fault taken on this page: the
    /// kernel unmaps a page once per scan period, and only the first
    /// toucher afterwards pays the fault.
    hint_epoch: u8,
}

impl PageEntry {
    const UNMAPPED: PageEntry =
        PageEntry {
        node: NO_NODE,
        huge: false,
        faulted: false,
        mapped: false,
        remote_hits: 0,
        last_remote: NO_NODE,
        sharers: 0,
        hint_epoch: u8::MAX,
    };
}

/// Outcome of resolving one touch against the page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchResolution {
    /// The node that serves the access.
    pub node: NodeId,
    /// A minor fault occurred (first touch): charge fault cost.
    pub faulted: bool,
    /// The page is backed by a huge frame: use the 2 MB TLB.
    pub huge: bool,
    /// Number of 4 KB pages zero-filled by the fault (512 for a huge
    /// frame's first touch, 1 for a small page, 0 when no fault).
    pub fault_pages: u64,
}

/// The simulated memory subsystem.
#[derive(Debug)]
pub struct Memory {
    pages: Vec<PageEntry>,
    backing: Vec<u8>,
    /// Next unmapped virtual address (bump-allocated address space).
    next: VAddr,
    node_used_pages: Vec<u64>,
    /// Per-node page budget: slow-tier nodes (CXL expanders, NVM banks)
    /// are usually far larger than the DRAM nodes in front of them.
    node_capacity_pages: Vec<u64>,
    /// Which nodes hold slow-tier memory (`MemTier::SlowTier`), for the
    /// tier daemon's promote/demote page walks.
    slow_node: Vec<bool>,
    /// Round-robin cursor for the Interleave policy.
    interleave_cursor: usize,
    num_nodes: usize,
    /// Nearest-node fallback orders, precomputed per node.
    fallback: Vec<Vec<NodeId>>,
    /// Nodes whose memory controller is offline (node-outage fault).
    /// Offline nodes hold no pages and are skipped by every placement.
    offline: Vec<bool>,
}

impl Memory {
    /// Build the memory subsystem for a machine.
    pub fn new(machine: &MachineSpec) -> Self {
        let num_nodes = machine.topology.num_nodes();
        let fallback = (0..num_nodes)
            .map(|n| machine.topology.nodes_by_distance(n))
            .collect();
        Memory {
            pages: Vec::new(),
            backing: Vec::new(),
            // Leave page 0 unmapped so address 0 acts as null.
            next: SMALL_PAGE,
            node_used_pages: vec![0; num_nodes],
            node_capacity_pages: (0..num_nodes)
                .map(|n| machine.mem_bytes_of_node(n) / SMALL_PAGE)
                .collect(),
            slow_node: (0..num_nodes).map(|n| machine.is_slow_tier(n)).collect(),
            interleave_cursor: 0,
            num_nodes,
            fallback,
            offline: vec![false; num_nodes],
        }
    }

    /// Map `bytes` of fresh address space (the model of `mmap`).
    ///
    /// * Under THP, mappings of at least one huge page are built from 2 MB
    ///   frames (the address is 2 MB-aligned), trailing remainder from 4 KB
    ///   pages.
    /// * Placement: `Interleave`, `Localalloc`, `Preferred`, and `Bind`
    ///   assign home nodes immediately (at placement granularity = page or
    ///   frame); `FirstTouch` defers to the first touch.
    ///
    /// Fails with [`SimError::InvalidMapping`] for zero-byte requests and
    /// [`SimError::OutOfMemory`] when no node can hold the pages (strictly
    /// the bound node under `Bind`). On failure nothing is mapped and no
    /// capacity is consumed.
    pub fn map(
        &mut self,
        bytes: u64,
        policy: MemPolicy,
        mapping_node: NodeId,
        thp: bool,
    ) -> SimResult<VAddr> {
        self.map_inner(bytes, policy, mapping_node, thp)
    }

    /// Map address space that parallel workers will fault in roughly
    /// uniformly (a shared hash table probed by every thread). The
    /// simulator runs logical threads sequentially, so genuine First
    /// Touch would attribute every fault to worker 0; this entry point
    /// models the uniform spreading of concurrent first-touchers by
    /// interleaving the assignment under First Touch / Localalloc.
    /// Explicit policies (Interleave, Preferred) behave as themselves.
    pub fn map_shared(
        &mut self,
        bytes: u64,
        policy: MemPolicy,
        mapping_node: NodeId,
        thp: bool,
    ) -> SimResult<VAddr> {
        let effective = match policy {
            MemPolicy::FirstTouch | MemPolicy::Localalloc => MemPolicy::Interleave,
            other => other,
        };
        self.map_inner(bytes, effective, mapping_node, thp)
    }

    fn map_inner(
        &mut self,
        bytes: u64,
        policy: MemPolicy,
        mapping_node: NodeId,
        thp: bool,
    ) -> SimResult<VAddr> {
        if bytes == 0 {
            return Err(SimError::InvalidMapping { addr: self.next });
        }
        let saved_next = self.next;
        let saved_cursor = self.interleave_cursor;
        let use_huge = thp && bytes >= HUGE_PAGE;
        let align = if use_huge { HUGE_PAGE } else { SMALL_PAGE };
        let addr = round_up(self.next, align);
        let len = round_up(bytes, SMALL_PAGE);
        self.next = addr + len;

        let first_page = (addr / SMALL_PAGE) as usize;
        let n_pages = (len / SMALL_PAGE) as usize;
        if self.pages.len() < first_page + n_pages {
            self.pages.resize(first_page + n_pages, PageEntry::UNMAPPED);
        }

        let mut idx = 0usize;
        while idx < n_pages {
            let remaining = n_pages - idx;
            let huge = use_huge && remaining >= PAGES_PER_HUGE as usize;
            let unit = if huge { PAGES_PER_HUGE as usize } else { 1 };
            let node = match self.assign_at_map(policy, mapping_node, unit as u64) {
                Ok(n) => n,
                Err(e) => {
                    // Roll the partial mapping back: no capacity may leak
                    // from a failed map.
                    for p in first_page..first_page + idx {
                        let entry = &mut self.pages[p];
                        if entry.node != NO_NODE {
                            self.node_used_pages[entry.node as usize] -= 1;
                        }
                        *entry = PageEntry::UNMAPPED;
                    }
                    self.next = saved_next;
                    self.interleave_cursor = saved_cursor;
                    return Err(e);
                }
            };
            for p in 0..unit {
                self.pages[first_page + idx + p] = PageEntry {
                    node: node.map_or(NO_NODE, |n| n as u8),
                    huge,
                    faulted: false,
                    mapped: true,
                    remote_hits: 0,
                    last_remote: NO_NODE,
                    sharers: 0,
                    hint_epoch: u8::MAX,
                };
            }
            idx += unit;
        }
        Ok(addr)
    }

    /// Release a mapping created by [`Memory::map`]. The address space is
    /// not recycled (addresses stay unique for the life of the sim), but
    /// node capacity is returned. Fails with [`SimError::InvalidMapping`]
    /// when the range was never part of a mapping.
    pub fn unmap(&mut self, addr: VAddr, bytes: u64) -> SimResult<()> {
        let first_page = (addr / SMALL_PAGE) as usize;
        let n_pages = (round_up(bytes, SMALL_PAGE) / SMALL_PAGE) as usize;
        if n_pages == 0 || first_page + n_pages > self.pages.len() {
            return Err(SimError::InvalidMapping { addr });
        }
        for p in first_page..first_page + n_pages {
            let e = &mut self.pages[p];
            if e.mapped && e.node != NO_NODE {
                self.node_used_pages[e.node as usize] -= 1;
            }
            *e = PageEntry::UNMAPPED;
        }
        Ok(())
    }

    /// Node assignment at map time; `Ok(None)` means deferred (First
    /// Touch). Fails when no permitted node has space.
    fn assign_at_map(
        &mut self,
        policy: MemPolicy,
        mapping_node: NodeId,
        unit_pages: u64,
    ) -> SimResult<Option<NodeId>> {
        let desired = match policy {
            MemPolicy::FirstTouch => return Ok(None),
            MemPolicy::Localalloc => mapping_node,
            MemPolicy::Preferred(p) => p.min(self.num_nodes - 1),
            MemPolicy::Bind(b) => {
                // Strict membind: the bound node or failure, no fallback.
                let node = b.min(self.num_nodes - 1);
                if self.offline[node] {
                    return Err(SimError::NodeOffline { node });
                }
                if self.node_used_pages[node] + unit_pages > self.node_capacity_pages[node] {
                    return Err(SimError::OutOfMemory {
                        node,
                        requested_pages: unit_pages,
                    });
                }
                self.node_used_pages[node] += unit_pages;
                return Ok(Some(node));
            }
            MemPolicy::Interleave => {
                let n = self.interleave_cursor % self.num_nodes;
                self.interleave_cursor += 1;
                n
            }
        };
        let node = self.node_with_space(desired, unit_pages).ok_or(
            SimError::OutOfMemory { node: desired, requested_pages: unit_pages },
        )?;
        self.node_used_pages[node] += unit_pages;
        Ok(Some(node))
    }

    /// Nearest *live* node to `desired` (zone order) with room for
    /// `unit_pages` more pages; `None` when every live node is full — the
    /// model of a real kernel OOM.
    fn node_with_space(&self, desired: NodeId, unit_pages: u64) -> Option<NodeId> {
        self.fallback[desired].iter().copied().find(|&n| {
            !self.offline[n]
                && self.node_used_pages[n] + unit_pages <= self.node_capacity_pages[n]
        })
    }

    /// Resolve a touch by `toucher_node` at `addr`: performs First Touch
    /// assignment and minor-fault bookkeeping, returns where the access is
    /// served from. Does **not** apply AutoNUMA (the engine layers that on
    /// top so it can charge migration costs).
    ///
    /// Fails with [`SimError::InvalidMapping`] on touches outside any live
    /// mapping (previously a `debug_assert!` that silently mis-resolved in
    /// release builds) and [`SimError::OutOfMemory`] when a deferred
    /// First-Touch assignment finds every node full.
    /// Prefetch the host cache line holding `addr`'s page-table entry.
    /// A pure latency hint; resolves nothing and mutates nothing.
    #[inline]
    pub fn prefetch_page(&self, addr: VAddr) {
        if let Some(e) = self.pages.get((addr / SMALL_PAGE) as usize) {
            crate::mix::prefetch(e);
        }
    }

    #[inline]
    pub fn resolve_touch(
        &mut self,
        addr: VAddr,
        toucher_node: NodeId,
    ) -> SimResult<TouchResolution> {
        let page = (addr / SMALL_PAGE) as usize;
        let e = *self
            .pages
            .get(page)
            .filter(|e| e.mapped)
            .ok_or(SimError::InvalidMapping { addr })?;
        if e.faulted {
            return Ok(TouchResolution {
                node: e.node as NodeId,
                faulted: false,
                huge: e.huge,
                fault_pages: 0,
            });
        }
        // Fault path: assign a node if First Touch deferred it, then mark
        // the fault unit (whole huge frame, or one small page) as faulted.
        let node = if e.node == NO_NODE {
            let unit = if e.huge { PAGES_PER_HUGE } else { 1 };
            let n = self.node_with_space(toucher_node, unit).ok_or(
                SimError::OutOfMemory { node: toucher_node, requested_pages: unit },
            )?;
            self.node_used_pages[n] += unit;
            n
        } else {
            e.node as NodeId
        };
        let (start, count) = if e.huge {
            let start = page - page % PAGES_PER_HUGE as usize;
            (start, PAGES_PER_HUGE as usize)
        } else {
            (page, 1)
        };
        for p in start..start + count {
            self.pages[p].node = node as u8;
            self.pages[p].faulted = true;
        }
        Ok(TouchResolution { node, faulted: true, huge: e.huge, fault_pages: count as u64 })
    }

    /// AutoNUMA bookkeeping for one touch. Returns `(migrated_pages,
    /// blocked)`: the number of 4 KB pages migrated to `toucher_node`
    /// (0 when no migration fired), and whether a migration *wanted* to
    /// fire but was blocked by `allow_migrate = false` (an injected
    /// migration failure — the engine charges partial kernel cost and
    /// counts it).
    ///
    /// Pages accumulate `remote_hits` on remote touches by a *consistent*
    /// remote node (the kernel's two-reference rule); reaching
    /// `threshold` migrates the page (or its whole huge frame) to the
    /// toucher. A local touch clears the count. Pages shared by many
    /// nodes keep resetting the rule, but the ones that do trip it
    /// bounce back and forth — the §III-D2 limitations.
    #[inline]
    pub fn autonuma_touch(
        &mut self,
        addr: VAddr,
        toucher_node: NodeId,
        threshold: u32,
        allow_migrate: bool,
    ) -> (u64, bool) {
        let page = (addr / SMALL_PAGE) as usize;
        if self.offline.get(toucher_node).copied().unwrap_or(false) {
            // Defensive: never migrate pages onto a dead node.
            return (0, false);
        }
        let e = &mut self.pages[page];
        e.sharers |= 1u8 << (toucher_node & 7);
        if e.node as NodeId == toucher_node {
            e.remote_hits = 0;
            return (0, false);
        }
        // Shared-page detection: pages observed from three or more nodes
        // are left in place (migrating them would only ping-pong).
        if e.sharers.count_ones() >= 3 {
            return (0, false);
        }
        if e.last_remote as NodeId == toucher_node {
            e.remote_hits = e.remote_hits.saturating_add(1);
        } else {
            e.last_remote = toucher_node as u8;
            e.remote_hits = 1;
        }
        if (e.remote_hits as u32) < threshold {
            return (0, false);
        }
        if !allow_migrate {
            // The migration attempt fails (injected fault): reset the hit
            // count as the kernel would after an isolate_lru failure, but
            // leave the page where it is.
            e.remote_hits = 0;
            return (0, true);
        }
        // Migrate the placement unit to the toucher.
        let (start, count) = if e.huge {
            let start = page - page % PAGES_PER_HUGE as usize;
            (start, PAGES_PER_HUGE as usize)
        } else {
            (page, 1)
        };
        let full = self.node_used_pages[toucher_node] + count as u64
            > self.node_capacity_pages[toucher_node];
        if full {
            // migrate_pages fails when the target node cannot allocate;
            // reset the hit count like the isolate_lru-failure path.
            // Matters only on tier machines with deliberately tiny DRAM
            // nodes — Table II capacities are never approached.
            self.pages[page].remote_hits = 0;
            return (0, false);
        }
        let old = self.pages[page].node as usize;
        self.node_used_pages[old] -= count as u64;
        self.node_used_pages[toucher_node] += count as u64;
        for p in start..start + count {
            self.pages[p].node = toucher_node as u8;
            self.pages[p].remote_hits = 0;
        }
        (count as u64, false)
    }

    /// Record a NUMA-hinting fault opportunity: returns `true` (and
    /// advances the page's epoch) when the page has not faulted in scan
    /// epoch `epoch` yet — i.e. the toucher must pay the hint fault.
    #[inline]
    pub fn hint_fault_due(&mut self, addr: VAddr, epoch: u8) -> bool {
        let e = &mut self.pages[(addr / SMALL_PAGE) as usize];
        if e.hint_epoch == epoch {
            false
        } else {
            e.hint_epoch = epoch;
            true
        }
    }

    /// Home node of the page containing `addr` (None while unassigned).
    pub fn node_of(&self, addr: VAddr) -> Option<NodeId> {
        let e = self.pages.get((addr / SMALL_PAGE) as usize)?;
        (e.mapped && e.node != NO_NODE).then_some(e.node as NodeId)
    }

    /// Whether `addr` lies in a huge (2 MB) frame.
    pub fn is_huge(&self, addr: VAddr) -> bool {
        self.pages
            .get((addr / SMALL_PAGE) as usize)
            .is_some_and(|e| e.mapped && e.huge)
    }

    /// Whether `addr` is inside a live mapping.
    pub fn is_mapped(&self, addr: VAddr) -> bool {
        self.pages
            .get((addr / SMALL_PAGE) as usize)
            .is_some_and(|e| e.mapped)
    }

    /// Pages currently assigned to each node.
    pub fn node_used_pages(&self) -> &[u64] {
        &self.node_used_pages
    }

    /// Whether `node`'s memory controller has been taken offline.
    pub fn is_node_offline(&self, node: NodeId) -> bool {
        self.offline.get(node).copied().unwrap_or(false)
    }

    /// Take `node` offline and evacuate every page it holds to the
    /// nearest live node with space (zone order), preserving the
    /// frame-shares-one-node invariant by moving huge frames as whole
    /// units. Returns the number of 4 KB pages moved; the engine charges
    /// them as migration traffic.
    ///
    /// Fails with [`SimError::NodeOffline`] when `node` is the last live
    /// node (nowhere to run or evacuate to) and [`SimError::OutOfMemory`]
    /// when the survivors cannot absorb the evacuated pages. Taking an
    /// already-offline node offline again is a no-op.
    pub fn set_node_offline(&mut self, node: NodeId) -> SimResult<u64> {
        if node >= self.num_nodes {
            return Err(SimError::Harness {
                what: format!("offline of nonexistent node {node}"),
            });
        }
        if self.offline[node] {
            return Ok(0);
        }
        let live = self.offline.iter().filter(|&&dead| !dead).count();
        if live <= 1 {
            return Err(SimError::NodeOffline { node });
        }
        // Flag first so placement fallbacks skip the dead node while its
        // pages are rehomed.
        self.offline[node] = true;
        let mut moved = 0u64;
        let mut p = 0usize;
        while p < self.pages.len() {
            let e = self.pages[p];
            if !(e.mapped && e.node as usize == node) {
                p += 1;
                continue;
            }
            // Huge mappings are 2 MB-aligned, so a frame's first page is
            // always reached before its tail: evacuate the whole unit.
            let (start, unit) = if e.huge {
                let start = p - p % PAGES_PER_HUGE as usize;
                (start, PAGES_PER_HUGE as usize)
            } else {
                (p, 1)
            };
            let target = self.node_with_space(node, unit as u64).ok_or(
                SimError::OutOfMemory { node, requested_pages: unit as u64 },
            )?;
            self.node_used_pages[node] -= unit as u64;
            self.node_used_pages[target] += unit as u64;
            for q in start..start + unit {
                self.pages[q].node = target as u8;
                self.pages[q].remote_hits = 0;
                self.pages[q].last_remote = NO_NODE;
            }
            moved += unit as u64;
            p = start + unit;
        }
        Ok(moved)
    }

    /// Rearrange already-resident pages to match `policy`, moving at
    /// most `max_pages` 4 KB pages (the online advisor's bounded
    /// per-epoch migration budget). Walks the page table in address
    /// order like [`Memory::set_node_offline`], moving huge frames as
    /// whole units and resetting their AutoNUMA reference state.
    ///
    /// * `Interleave` deals units round-robin across live nodes with a
    ///   fresh cursor (the `map`-time cursor is left untouched so
    ///   placements of *new* mappings are unaffected).
    /// * `Preferred`/`Bind` target the named node, skipping units it
    ///   cannot hold — re-homing is advisory, never an OOM.
    /// * `FirstTouch`/`Localalloc` are no-ops: nothing records who
    ///   would have touched first.
    ///
    /// Returns the number of 4 KB pages moved; the engine charges them
    /// as kernel migration traffic.
    pub fn rehome_pages(&mut self, policy: MemPolicy, max_pages: u64) -> u64 {
        let live: Vec<NodeId> =
            (0..self.num_nodes).filter(|&n| !self.offline[n]).collect();
        if live.is_empty() {
            return 0;
        }
        let mut cursor = 0usize;
        let mut moved = 0u64;
        let mut p = 0usize;
        while p < self.pages.len() && moved < max_pages {
            let e = self.pages[p];
            // Only faulted-in pages move: an assigned-but-untouched page
            // has no contents to copy, and charging a copy for it would
            // overstate the re-tune's cost.
            if !(e.mapped && e.faulted && e.node != NO_NODE) {
                p += 1;
                continue;
            }
            // Huge mappings are 2 MB-aligned, so a frame's first page is
            // always reached before its tail: move the whole unit.
            let (start, unit) = if e.huge {
                let start = p - p % PAGES_PER_HUGE as usize;
                (start, PAGES_PER_HUGE as usize)
            } else {
                (p, 1)
            };
            p = start + unit;
            let target = match policy {
                MemPolicy::Interleave => {
                    // Advance the cursor for every unit, moved or not,
                    // so the dealt pattern is a stable function of the
                    // address-order walk.
                    let t = live[cursor % live.len()];
                    cursor += 1;
                    t
                }
                MemPolicy::Preferred(n) | MemPolicy::Bind(n) => n,
                MemPolicy::FirstTouch | MemPolicy::Localalloc => return moved,
            };
            if target >= self.num_nodes
                || self.offline[target]
                || e.node as usize == target
                || moved + unit as u64 > max_pages
                || self.node_used_pages[target] + unit as u64
                    > self.node_capacity_pages[target]
            {
                continue;
            }
            self.node_used_pages[e.node as usize] -= unit as u64;
            self.node_used_pages[target] += unit as u64;
            for q in start..start + unit {
                self.pages[q].node = target as u8;
                self.pages[q].remote_hits = 0;
                self.pages[q].last_remote = NO_NODE;
            }
            moved += unit as u64;
        }
        moved
    }

    /// Move specific pages between memory tiers — the tier daemon's
    /// apply path. `pages` are 4 KB page indices (`addr / SMALL_PAGE`)
    /// in the order the daemon ranked them; `to_slow = false` promotes
    /// them to DRAM nodes, `to_slow = true` demotes them to slow-tier
    /// nodes. At most `max_pages` 4 KB pages move (the per-epoch
    /// migration budget); huge frames move whole or not at all.
    ///
    /// Targets are dealt round-robin across live nodes of the requested
    /// tier with space, with a fresh cursor per call, so the outcome is
    /// a pure function of (`pages` order, page-table state) — the
    /// determinism the tiering differential tests pin. Pages already in
    /// the requested tier, unmapped/unfaulted pages, and units that
    /// would exceed the budget or target capacity are skipped, never an
    /// error: retiering is advisory, like [`Memory::rehome_pages`].
    ///
    /// Returns the number of 4 KB pages moved; the engine charges them
    /// as migration traffic and counts promotions/demotions.
    pub fn retier_pages(&mut self, pages: &[u64], to_slow: bool, max_pages: u64) -> u64 {
        let targets: Vec<NodeId> = (0..self.num_nodes)
            .filter(|&n| !self.offline[n] && self.slow_node[n] == to_slow)
            .collect();
        if targets.is_empty() {
            return 0;
        }
        let mut cursor = 0usize;
        let mut moved = 0u64;
        for &page in pages {
            if moved >= max_pages {
                break;
            }
            let p = page as usize;
            let Some(e) = self.pages.get(p).copied() else { continue };
            if !(e.mapped && e.faulted && e.node != NO_NODE)
                || self.slow_node[e.node as usize] == to_slow
            {
                continue;
            }
            let (start, unit) = if e.huge {
                let start = p - p % PAGES_PER_HUGE as usize;
                (start, PAGES_PER_HUGE as usize)
            } else {
                (p, 1)
            };
            if moved + unit as u64 > max_pages {
                continue;
            }
            // Deal the unit to the next tier node with room. The cursor
            // advances only on a successful move, so one full node never
            // starves the rest of the rotation.
            let target = (0..targets.len())
                .map(|i| targets[(cursor + i) % targets.len()])
                .find(|&t| {
                    self.node_used_pages[t] + unit as u64 <= self.node_capacity_pages[t]
                });
            let Some(target) = target else { continue };
            cursor += 1;
            self.node_used_pages[e.node as usize] -= unit as u64;
            self.node_used_pages[target] += unit as u64;
            for q in start..start + unit {
                self.pages[q].node = target as u8;
                self.pages[q].remote_hits = 0;
                self.pages[q].last_remote = NO_NODE;
            }
            moved += unit as u64;
        }
        moved
    }

    /// Whether `node` holds slow-tier memory.
    pub fn is_slow_node(&self, node: NodeId) -> bool {
        self.slow_node.get(node).copied().unwrap_or(false)
    }

    /// The TLB tag for `addr`: huge frames translate at 2 MB granularity.
    #[inline]
    pub fn tlb_tag(&self, addr: VAddr, huge: bool) -> u64 {
        if huge {
            addr / HUGE_PAGE
        } else {
            addr / SMALL_PAGE
        }
    }

    // ---- byte backing store ----------------------------------------

    /// Write raw bytes at `addr` (cost accounting happens in the engine).
    #[inline]
    pub fn write_bytes(&mut self, addr: VAddr, data: &[u8]) {
        let end = addr as usize + data.len();
        if self.backing.len() < end {
            self.backing.resize(end, 0);
        }
        self.backing[addr as usize..end].copy_from_slice(data);
    }

    /// Read raw bytes at `addr`. Reads of never-written memory return
    /// zeroes, like fresh anonymous mappings.
    #[inline]
    pub fn read_bytes(&mut self, addr: VAddr, out: &mut [u8]) {
        let end = addr as usize + out.len();
        if self.backing.len() < end {
            self.backing.resize(end, 0);
        }
        out.copy_from_slice(&self.backing[addr as usize..end]);
    }

    /// Total mapped address space handed out so far, in bytes.
    pub fn mapped_high_water(&self) -> u64 {
        self.next
    }
}

// ---- sharded-region views ------------------------------------------

/// Bitmap words covering one 4 KB data page, one bit per byte.
const PAGE_BITMAP_WORDS: usize = (SMALL_PAGE as usize) / 64;

/// A privately-overlaid copy of one 4 KB page of the byte backing
/// store, cloned from the frozen base on first write. `written` marks
/// the bytes this worker actually wrote: the merge copies exactly
/// those, so two workers writing disjoint halves of the same page never
/// clobber each other with stale base bytes.
#[derive(Debug)]
pub(crate) struct DataPage {
    bytes: Box<[u8]>,
    written: [u64; PAGE_BITMAP_WORDS],
}

impl DataPage {
    fn cloned_from(base: &Memory, pidx: usize) -> DataPage {
        let start = pidx * SMALL_PAGE as usize;
        let mut bytes = vec![0u8; SMALL_PAGE as usize].into_boxed_slice();
        if base.backing.len() > start {
            let avail = (base.backing.len() - start).min(SMALL_PAGE as usize);
            bytes[..avail].copy_from_slice(&base.backing[start..start + avail]);
        }
        DataPage { bytes, written: [0; PAGE_BITMAP_WORDS] }
    }

    #[inline]
    fn written(&self, b: usize) -> bool {
        self.written[b >> 6] & (1u64 << (b & 63)) != 0
    }
}

/// Per-worker isolated view of [`Memory`] for sharded parallel regions.
///
/// Reads fall through to the frozen region-start base; every mutation —
/// first-touch assignment, AutoNUMA reference state and migrations,
/// hint-fault epochs, data-plane writes — lands in a private overlay.
/// The worker therefore observes exactly `frozen base + its own
/// history`, making its execution (and every cycle it charges)
/// independent of how workers are partitioned across host threads. At
/// the region boundary the engine merges each worker's
/// [`MemDelta`] back in ascending-tid order, which keeps the merged
/// page table, capacity counters, and byte backing a pure function of
/// the per-worker histories — byte-identical for every shard count.
///
/// Mapping and unmapping are not supported through a view (the engine
/// rejects them with a typed fault): address-space layout must be
/// settled in a serial region before workers shard.
#[derive(Debug)]
pub struct ShardMemView<'a> {
    base: &'a Memory,
    /// Overlay handle per 4 KB page of the base page table;
    /// `u32::MAX` = passthrough to the frozen base entry.
    page_slot: Vec<u32>,
    /// Overlaid page entries in first-write order (the merge order).
    page_entries: Vec<(usize, PageEntry)>,
    /// Private capacity snapshot: region-start counts plus this
    /// worker's own assignments (used by first-touch OOM checks).
    node_used_pages: Vec<u64>,
    /// Overlay handle per 4 KB page of the byte backing store.
    data_slot: Vec<u32>,
    /// Copy-on-write data pages in first-write order.
    data_pages: Vec<(usize, DataPage)>,
}

/// The owned overlay extracted from a [`ShardMemView`] when its worker
/// finishes, merged into the canonical [`Memory`] in tid order.
#[derive(Debug)]
pub struct MemDelta {
    pages: Vec<(usize, PageEntry)>,
    data: Vec<(usize, DataPage)>,
}

impl<'a> ShardMemView<'a> {
    /// A fresh view over the frozen region-start state.
    #[must_use]
    pub fn new(base: &'a Memory) -> Self {
        ShardMemView {
            page_slot: vec![u32::MAX; base.pages.len()],
            page_entries: Vec::new(),
            node_used_pages: base.node_used_pages.clone(),
            data_slot: vec![u32::MAX; (base.next / SMALL_PAGE + 1) as usize],
            data_pages: Vec::new(),
            base,
        }
    }

    /// Detach the owned overlay for the tid-order merge.
    #[must_use]
    pub fn into_delta(self) -> MemDelta {
        MemDelta { pages: self.page_entries, data: self.data_pages }
    }

    #[inline]
    fn entry(&self, page: usize) -> Option<PageEntry> {
        let slot = *self.page_slot.get(page)?;
        if slot == u32::MAX {
            self.base.pages.get(page).copied()
        } else {
            Some(self.page_entries[slot as usize].1)
        }
    }

    #[inline]
    fn set_entry(&mut self, page: usize, e: PageEntry) {
        let slot = self.page_slot[page];
        if slot == u32::MAX {
            self.page_slot[page] = self.page_entries.len() as u32;
            self.page_entries.push((page, e));
        } else {
            self.page_entries[slot as usize].1 = e;
        }
    }

    /// Mirror of [`Memory::node_with_space`] against the private
    /// capacity snapshot (offline flags and fallback orders are
    /// region-start facts shared with the base).
    fn node_with_space(&self, desired: NodeId, unit_pages: u64) -> Option<NodeId> {
        self.base.fallback[desired].iter().copied().find(|&n| {
            !self.base.offline[n]
                && self.node_used_pages[n] + unit_pages
                    <= self.base.node_capacity_pages[n]
        })
    }

    /// Mirror of [`Memory::resolve_touch`] over the overlay.
    #[inline]
    pub fn resolve_touch(
        &mut self,
        addr: VAddr,
        toucher_node: NodeId,
    ) -> SimResult<TouchResolution> {
        let page = (addr / SMALL_PAGE) as usize;
        let e = self
            .entry(page)
            .filter(|e| e.mapped)
            .ok_or(SimError::InvalidMapping { addr })?;
        if e.faulted {
            return Ok(TouchResolution {
                node: e.node as NodeId,
                faulted: false,
                huge: e.huge,
                fault_pages: 0,
            });
        }
        let node = if e.node == NO_NODE {
            let unit = if e.huge { PAGES_PER_HUGE } else { 1 };
            let n = self.node_with_space(toucher_node, unit).ok_or(
                SimError::OutOfMemory { node: toucher_node, requested_pages: unit },
            )?;
            self.node_used_pages[n] += unit;
            n
        } else {
            e.node as NodeId
        };
        let (start, count) = if e.huge {
            let start = page - page % PAGES_PER_HUGE as usize;
            (start, PAGES_PER_HUGE as usize)
        } else {
            (page, 1)
        };
        for p in start..start + count {
            let mut pe = self.entry(p).unwrap_or(PageEntry::UNMAPPED);
            pe.node = node as u8;
            pe.faulted = true;
            self.set_entry(p, pe);
        }
        Ok(TouchResolution { node, faulted: true, huge: e.huge, fault_pages: count as u64 })
    }

    /// Mirror of [`Memory::autonuma_touch`] over the overlay.
    #[inline]
    pub fn autonuma_touch(
        &mut self,
        addr: VAddr,
        toucher_node: NodeId,
        threshold: u32,
        allow_migrate: bool,
    ) -> (u64, bool) {
        let page = (addr / SMALL_PAGE) as usize;
        if self.base.offline.get(toucher_node).copied().unwrap_or(false) {
            return (0, false);
        }
        let Some(mut e) = self.entry(page) else { return (0, false) };
        e.sharers |= 1u8 << (toucher_node & 7);
        if e.node as NodeId == toucher_node {
            e.remote_hits = 0;
            self.set_entry(page, e);
            return (0, false);
        }
        if e.sharers.count_ones() >= 3 {
            self.set_entry(page, e);
            return (0, false);
        }
        if e.last_remote as NodeId == toucher_node {
            e.remote_hits = e.remote_hits.saturating_add(1);
        } else {
            e.last_remote = toucher_node as u8;
            e.remote_hits = 1;
        }
        if (e.remote_hits as u32) < threshold {
            self.set_entry(page, e);
            return (0, false);
        }
        if !allow_migrate {
            e.remote_hits = 0;
            self.set_entry(page, e);
            return (0, true);
        }
        self.set_entry(page, e);
        let (start, count) = if e.huge {
            let start = page - page % PAGES_PER_HUGE as usize;
            (start, PAGES_PER_HUGE as usize)
        } else {
            (page, 1)
        };
        let old = e.node as usize;
        self.node_used_pages[old] -= count as u64;
        self.node_used_pages[toucher_node] += count as u64;
        for p in start..start + count {
            let mut pe = self.entry(p).unwrap_or(PageEntry::UNMAPPED);
            pe.node = toucher_node as u8;
            pe.remote_hits = 0;
            self.set_entry(p, pe);
        }
        (count as u64, false)
    }

    /// Mirror of [`Memory::hint_fault_due`] over the overlay.
    #[inline]
    pub fn hint_fault_due(&mut self, addr: VAddr, epoch: u8) -> bool {
        let page = (addr / SMALL_PAGE) as usize;
        let Some(mut e) = self.entry(page) else { return false };
        if e.hint_epoch == epoch {
            false
        } else {
            e.hint_epoch = epoch;
            self.set_entry(page, e);
            true
        }
    }

    /// Mirror of [`Memory::tlb_tag`] (a pure address computation).
    #[inline]
    #[must_use]
    pub fn tlb_tag(&self, addr: VAddr, huge: bool) -> u64 {
        self.base.tlb_tag(addr, huge)
    }

    /// Host prefetch hint for the base page-table entry (overlay hits
    /// live in small hot vectors; hinting the base is the useful part).
    #[inline]
    pub fn prefetch_page(&self, addr: VAddr) {
        self.base.prefetch_page(addr);
    }

    #[inline]
    fn data_page_mut(&mut self, pidx: usize) -> &mut DataPage {
        if pidx >= self.data_slot.len() {
            self.data_slot.resize(pidx + 1, u32::MAX);
        }
        let mut slot = self.data_slot[pidx] as usize;
        if slot == u32::MAX as usize {
            slot = self.data_pages.len();
            self.data_slot[pidx] = slot as u32;
            self.data_pages.push((pidx, DataPage::cloned_from(self.base, pidx)));
        }
        &mut self.data_pages[slot].1
    }

    /// Write raw bytes into the copy-on-write overlay.
    #[inline]
    pub fn write_bytes(&mut self, addr: VAddr, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let pidx = (a / SMALL_PAGE) as usize;
            let in_page = (a % SMALL_PAGE) as usize;
            let n = (SMALL_PAGE as usize - in_page).min(data.len() - off);
            let dp = self.data_page_mut(pidx);
            dp.bytes[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            for b in in_page..in_page + n {
                dp.written[b >> 6] |= 1u64 << (b & 63);
            }
            off += n;
        }
    }

    /// Read raw bytes: overlaid pages serve this worker's own writes,
    /// everything else comes from the frozen base (zero-filled beyond
    /// it, like fresh anonymous mappings).
    #[inline]
    pub fn read_bytes(&self, addr: VAddr, out: &mut [u8]) {
        let mut off = 0usize;
        while off < out.len() {
            let a = addr + off as u64;
            let pidx = (a / SMALL_PAGE) as usize;
            let in_page = (a % SMALL_PAGE) as usize;
            let n = (SMALL_PAGE as usize - in_page).min(out.len() - off);
            let slot = self.data_slot.get(pidx).copied().unwrap_or(u32::MAX);
            if slot != u32::MAX {
                out[off..off + n].copy_from_slice(
                    &self.data_pages[slot as usize].1.bytes[in_page..in_page + n],
                );
            } else {
                // Clamp the start too: a read wholly past the frozen
                // backing is a pure zero-fill (fresh anonymous pages),
                // and `backing[start..start]` would still bounds-check
                // an out-of-range start.
                let start = (a as usize).min(self.base.backing.len());
                let avail = (self.base.backing.len() - start).min(n);
                out[off..off + avail].copy_from_slice(&self.base.backing[start..start + avail]);
                out[off + avail..off + n].fill(0);
            }
            off += n;
        }
    }
}

impl Memory {
    /// Merge one worker's overlay back into the canonical state. Called
    /// in ascending-tid order at the end of a sharded region; later
    /// workers win conflicting page entries wholesale, and the capacity
    /// counters are re-derived per page from the `old node -> new node`
    /// transition so they stay consistent with the final page table no
    /// matter how many workers faulted or migrated the same page.
    pub fn merge_shard(&mut self, delta: MemDelta) {
        for (page, e) in delta.pages {
            if self.pages.len() <= page {
                self.pages.resize(page + 1, PageEntry::UNMAPPED);
            }
            let old = self.pages[page];
            if old.node != e.node {
                if old.node != NO_NODE {
                    self.node_used_pages[old.node as usize] -= 1;
                }
                if e.node != NO_NODE {
                    self.node_used_pages[e.node as usize] += 1;
                }
            }
            self.pages[page] = e;
        }
        for (pidx, dp) in delta.data {
            let start = pidx as u64 * SMALL_PAGE;
            let mut b = 0usize;
            while b < SMALL_PAGE as usize {
                if !dp.written(b) {
                    b += 1;
                    continue;
                }
                let s = b;
                while b < SMALL_PAGE as usize && dp.written(b) {
                    b += 1;
                }
                self.write_bytes(start + s as u64, &dp.bytes[s..b]);
            }
        }
    }
}

#[inline]
fn round_up(x: u64, align: u64) -> u64 {
    (x + align - 1) / align * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_topology::machines;

    fn mem() -> Memory {
        Memory::new(&machines::machine_b())
    }

    #[test]
    fn map_returns_aligned_nonzero_addresses() {
        let mut m = mem();
        let a = m.map(100, MemPolicy::FirstTouch, 0, false).unwrap();
        assert!(a >= SMALL_PAGE);
        assert_eq!(a % SMALL_PAGE, 0);
        let b = m.map(HUGE_PAGE, MemPolicy::FirstTouch, 0, true).unwrap();
        assert_eq!(b % HUGE_PAGE, 0);
        assert!(b > a);
    }

    #[test]
    fn first_touch_assigns_to_toucher() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE * 4, MemPolicy::FirstTouch, 0, false).unwrap();
        assert_eq!(m.node_of(a), None);
        let r = m.resolve_touch(a, 2).unwrap();
        assert!(r.faulted);
        assert_eq!(r.node, 2);
        assert_eq!(m.node_of(a), Some(2));
        // Second touch: no fault, same node, even from another node.
        let r2 = m.resolve_touch(a, 3).unwrap();
        assert!(!r2.faulted);
        assert_eq!(r2.node, 2);
    }

    #[test]
    fn localalloc_assigns_to_mapper() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE, MemPolicy::Localalloc, 3, false).unwrap();
        assert_eq!(m.node_of(a), Some(3));
    }

    #[test]
    fn preferred_assigns_to_chosen_node() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE * 8, MemPolicy::Preferred(1), 0, false).unwrap();
        for p in 0..8 {
            assert_eq!(m.node_of(a + p * SMALL_PAGE), Some(1));
        }
    }

    #[test]
    fn interleave_round_robins_across_nodes() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE * 8, MemPolicy::Interleave, 0, false).unwrap();
        let nodes: Vec<_> = (0..8)
            .map(|p| m.node_of(a + p * SMALL_PAGE).unwrap())
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn thp_builds_huge_frames_and_interleaves_per_frame() {
        let mut m = mem();
        let a = m.map(2 * HUGE_PAGE, MemPolicy::Interleave, 0, true).unwrap();
        assert!(m.is_huge(a));
        // All 512 pages of frame 0 share a node; frame 1 gets the next.
        let n0 = m.node_of(a).unwrap();
        assert_eq!(m.node_of(a + HUGE_PAGE - SMALL_PAGE), Some(n0));
        let n1 = m.node_of(a + HUGE_PAGE).unwrap();
        assert_eq!(n1, (n0 + 1) % 4);
    }

    #[test]
    fn thp_off_never_builds_huge_frames() {
        let mut m = mem();
        let a = m.map(4 * HUGE_PAGE, MemPolicy::FirstTouch, 0, false).unwrap();
        assert!(!m.is_huge(a));
    }

    #[test]
    fn retier_pages_moves_between_tiers_within_budget() {
        let mut m = Memory::new(&machines::machine_b_cxl());
        assert!(m.is_slow_node(4) && !m.is_slow_node(0));
        let a = m.map(SMALL_PAGE * 4, MemPolicy::Preferred(0), 0, false).unwrap();
        for p in 0..4 {
            m.resolve_touch(a + p * SMALL_PAGE, 0).unwrap();
        }
        let pages: Vec<u64> = (0..4).map(|p| a / SMALL_PAGE + p).collect();
        // Budget of 3: only the first three pages demote to the slow node.
        assert_eq!(m.retier_pages(&pages, true, 3), 3);
        assert_eq!(m.node_of(a), Some(4));
        assert_eq!(m.node_of(a + 3 * SMALL_PAGE), Some(0));
        // Already-slow pages are skipped, so a second pass moves the rest.
        assert_eq!(m.retier_pages(&pages, true, 8), 1);
        // Promotion brings all four back to DRAM, within node capacities.
        assert_eq!(m.retier_pages(&pages, false, 8), 4);
        for p in 0..4 {
            let n = m.node_of(a + p * SMALL_PAGE).unwrap();
            assert!(!m.is_slow_node(n));
        }
        let machine = machines::machine_b_cxl();
        for (n, used) in m.node_used_pages().iter().enumerate() {
            assert!(*used <= machine.mem_bytes_of_node(n) / SMALL_PAGE);
        }
    }

    #[test]
    fn small_mapping_stays_small_even_with_thp() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE * 16, MemPolicy::FirstTouch, 0, true).unwrap();
        assert!(!m.is_huge(a));
    }

    #[test]
    fn huge_fault_faults_whole_frame() {
        let mut m = mem();
        let a = m.map(HUGE_PAGE, MemPolicy::FirstTouch, 0, true).unwrap();
        let r = m.resolve_touch(a + 5 * SMALL_PAGE, 1).unwrap();
        assert!(r.faulted);
        assert_eq!(r.fault_pages, PAGES_PER_HUGE);
        // Any other page in the frame is already faulted on node 1.
        let r2 = m.resolve_touch(a, 2).unwrap();
        assert!(!r2.faulted);
        assert_eq!(r2.node, 1);
    }

    #[test]
    fn unmap_releases_capacity() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE * 4, MemPolicy::Localalloc, 0, false).unwrap();
        assert_eq!(m.node_used_pages()[0], 4);
        m.unmap(a, SMALL_PAGE * 4).unwrap();
        assert_eq!(m.node_used_pages()[0], 0);
        assert!(!m.is_mapped(a));
    }

    #[test]
    fn capacity_overflow_falls_back_to_nearest_node() {
        // A tiny machine: 2 pages per node.
        let mut machine = machines::machine_b();
        machine.mem_per_node_bytes = 2 * SMALL_PAGE;
        let mut m = Memory::new(&machine);
        let a = m.map(SMALL_PAGE * 3, MemPolicy::Preferred(0), 0, false).unwrap();
        let nodes: Vec<_> = (0..3)
            .map(|p| m.node_of(a + p * SMALL_PAGE).unwrap())
            .collect();
        assert_eq!(&nodes[..2], &[0, 0]);
        assert_ne!(nodes[2], 0, "third page must spill off the full node");
    }

    #[test]
    fn autonuma_migrates_after_threshold_remote_touches() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE, MemPolicy::Localalloc, 0, false).unwrap();
        m.resolve_touch(a, 0).unwrap();
        assert_eq!(m.autonuma_touch(a, 1, 2, true), (0, false)); // 1st remote hit
        assert_eq!(m.autonuma_touch(a, 1, 2, true), (1, false)); // 2nd: migrate
        assert_eq!(m.node_of(a), Some(1));
        assert_eq!(m.node_used_pages()[0], 0);
        assert_eq!(m.node_used_pages()[1], 1);
    }

    #[test]
    fn autonuma_local_touch_resets_counter() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE, MemPolicy::Localalloc, 0, false).unwrap();
        m.resolve_touch(a, 0).unwrap();
        assert_eq!(m.autonuma_touch(a, 1, 3, true), (0, false));
        assert_eq!(m.autonuma_touch(a, 1, 3, true), (0, false));
        assert_eq!(m.autonuma_touch(a, 0, 3, true), (0, false)); // local resets
        assert_eq!(m.autonuma_touch(a, 1, 3, true), (0, false));
        assert_eq!(m.autonuma_touch(a, 1, 3, true), (0, false));
        assert_eq!(m.node_of(a), Some(0), "page must not have migrated yet");
    }

    #[test]
    fn backing_store_round_trips_and_zero_fills() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE, MemPolicy::FirstTouch, 0, false).unwrap();
        m.write_bytes(a + 10, &[1, 2, 3]);
        let mut buf = [0u8; 5];
        m.read_bytes(a + 9, &mut buf);
        assert_eq!(buf, [0, 1, 2, 3, 0]);
    }

    #[test]
    fn map_shared_spreads_first_touch_policies() {
        let mut m = mem();
        let a = m.map_shared(SMALL_PAGE * 8, MemPolicy::FirstTouch, 0, false).unwrap();
        let nodes: Vec<_> = (0..8)
            .map(|p| m.node_of(a + p * SMALL_PAGE).unwrap())
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Explicit policies keep their meaning.
        let b = m.map_shared(SMALL_PAGE * 2, MemPolicy::Preferred(2), 0, false).unwrap();
        assert_eq!(m.node_of(b), Some(2));
    }

    #[test]
    fn hint_faults_fire_once_per_page_per_epoch() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE * 2, MemPolicy::Localalloc, 0, false).unwrap();
        assert!(m.hint_fault_due(a, 1), "first touch in epoch 1 faults");
        assert!(!m.hint_fault_due(a, 1), "second touch does not");
        assert!(m.hint_fault_due(a + SMALL_PAGE, 1), "other page faults");
        assert!(m.hint_fault_due(a, 2), "new epoch faults again");
    }

    #[test]
    fn zero_byte_map_is_an_error_not_an_abort() {
        let mut m = mem();
        assert!(matches!(
            m.map(0, MemPolicy::FirstTouch, 0, false),
            Err(SimError::InvalidMapping { .. })
        ));
    }

    #[test]
    fn unmapped_touch_is_an_error_not_an_abort() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE, MemPolicy::Localalloc, 0, false).unwrap();
        // Far beyond anything mapped.
        let err = m.resolve_touch(a + 100 * SMALL_PAGE, 0).unwrap_err();
        assert!(matches!(err, SimError::InvalidMapping { .. }));
        // Unmapping a never-mapped range errors too.
        assert!(m.unmap(a + 100 * SMALL_PAGE, SMALL_PAGE).is_err());
    }

    #[test]
    fn bind_fails_strictly_and_rolls_back() {
        let mut machine = machines::machine_b();
        machine.mem_per_node_bytes = 2 * SMALL_PAGE;
        let mut m = Memory::new(&machine);
        // Fits: 2 pages on node 3.
        let a = m.map(SMALL_PAGE * 2, MemPolicy::Bind(3), 0, false).unwrap();
        assert_eq!(m.node_of(a), Some(3));
        // Does not fit: node 3 is full, and Bind must not spill.
        let err = m.map(SMALL_PAGE, MemPolicy::Bind(3), 0, false).unwrap_err();
        assert_eq!(err, SimError::OutOfMemory { node: 3, requested_pages: 1 });
        // Other nodes still untouched; failed map consumed nothing.
        assert_eq!(m.node_used_pages(), &[0, 0, 0, 2]);
        // A partial multi-page Bind map rolls back what it placed.
        let used_before = m.node_used_pages().to_vec();
        let high_before = m.mapped_high_water();
        assert!(m.map(SMALL_PAGE * 4, MemPolicy::Bind(0), 0, false).is_err());
        assert_eq!(m.node_used_pages(), &used_before[..]);
        assert_eq!(m.mapped_high_water(), high_before, "failed map leaked address space");
    }

    #[test]
    fn machine_wide_exhaustion_fails_every_policy() {
        let mut machine = machines::machine_b();
        machine.mem_per_node_bytes = SMALL_PAGE;
        let mut m = Memory::new(&machine);
        // 4 nodes x 1 page each.
        m.map(SMALL_PAGE * 4, MemPolicy::Interleave, 0, false).unwrap();
        for policy in [
            MemPolicy::Interleave,
            MemPolicy::Localalloc,
            MemPolicy::Preferred(0),
        ] {
            let err = m.map(SMALL_PAGE, policy, 0, false).unwrap_err();
            assert!(matches!(err, SimError::OutOfMemory { .. }), "{policy:?}");
        }
        // First Touch defers: the map succeeds, the *touch* OOMs.
        let a = m.map(SMALL_PAGE, MemPolicy::FirstTouch, 0, false).unwrap();
        let err = m.resolve_touch(a, 2).unwrap_err();
        assert_eq!(err, SimError::OutOfMemory { node: 2, requested_pages: 1 });
    }

    #[test]
    fn blocked_migration_leaves_page_and_reports() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE, MemPolicy::Localalloc, 0, false).unwrap();
        m.resolve_touch(a, 0).unwrap();
        assert_eq!(m.autonuma_touch(a, 1, 2, false), (0, false)); // below threshold
        assert_eq!(m.autonuma_touch(a, 1, 2, false), (0, true)); // blocked
        assert_eq!(m.node_of(a), Some(0), "blocked migration must not move the page");
        // After the failed attempt the hit count was reset.
        assert_eq!(m.autonuma_touch(a, 1, 2, true), (0, false));
        assert_eq!(m.autonuma_touch(a, 1, 2, true), (1, false));
        assert_eq!(m.node_of(a), Some(1));
    }

    #[test]
    fn offline_evacuates_pages_and_blocks_placement() {
        let mut m = mem();
        let a = m.map(SMALL_PAGE * 8, MemPolicy::Interleave, 0, false).unwrap();
        for p in 0..8 {
            m.resolve_touch(a + p * SMALL_PAGE, 0).unwrap();
        }
        assert_eq!(m.node_used_pages()[1], 2);
        let moved = m.set_node_offline(1).unwrap();
        assert_eq!(moved, 2);
        assert!(m.is_node_offline(1));
        assert_eq!(m.node_used_pages()[1], 0, "dead node must hold no pages");
        for p in 0..8 {
            assert_ne!(m.node_of(a + p * SMALL_PAGE).unwrap(), 1);
        }
        // New placements skip the dead node, Bind to it fails typed.
        let b = m.map(SMALL_PAGE * 8, MemPolicy::Interleave, 0, false).unwrap();
        for p in 0..8 {
            assert_ne!(m.node_of(b + p * SMALL_PAGE).unwrap(), 1);
        }
        assert!(matches!(
            m.map(SMALL_PAGE, MemPolicy::Bind(1), 0, false),
            Err(SimError::NodeOffline { node: 1 })
        ));
        // Re-offlining is a no-op.
        assert_eq!(m.set_node_offline(1).unwrap(), 0);
    }

    #[test]
    fn offline_evacuates_huge_frames_as_units() {
        let mut m = mem();
        let a = m.map(4 * HUGE_PAGE, MemPolicy::Interleave, 0, true).unwrap();
        let dead = m.node_of(a + 2 * HUGE_PAGE).unwrap();
        let moved = m.set_node_offline(dead).unwrap();
        assert_eq!(moved, PAGES_PER_HUGE);
        // The evacuated frame still shares a single (live) home node.
        let home = m.node_of(a + 2 * HUGE_PAGE).unwrap();
        assert_ne!(home, dead);
        assert_eq!(m.node_of(a + 3 * HUGE_PAGE - SMALL_PAGE), Some(home));
        let total: u64 = m.node_used_pages().iter().sum();
        assert_eq!(total, 4 * PAGES_PER_HUGE, "evacuation must not leak capacity");
    }

    #[test]
    fn last_live_node_cannot_go_offline() {
        let mut m = mem();
        for n in 0..3 {
            m.set_node_offline(n).unwrap();
        }
        assert!(matches!(
            m.set_node_offline(3),
            Err(SimError::NodeOffline { node: 3 })
        ));
        assert!(!m.is_node_offline(3));
    }

    #[test]
    fn tlb_tags_differ_by_page_size() {
        let mut m = mem();
        let a = m.map(HUGE_PAGE, MemPolicy::FirstTouch, 0, true).unwrap();
        let t1 = m.tlb_tag(a, true);
        let t2 = m.tlb_tag(a + HUGE_PAGE - 1, true);
        assert_eq!(t1, t2, "whole huge frame shares one 2MB translation");
        assert_ne!(m.tlb_tag(a, false), m.tlb_tag(a + SMALL_PAGE, false));
    }
}
