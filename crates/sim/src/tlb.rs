//! A direct-mapped TLB model.
//!
//! The real TLBs of Table II are small set-associative structures; a
//! direct-mapped tag array of the same total capacity reproduces the two
//! behaviours the paper's THP analysis depends on — capacity misses when
//! the touched page set exceeds TLB reach, and the reach increase from
//! 2 MB pages — at O(1) cost per access.

/// Direct-mapped TLB for one page size.
///
/// Validity is tracked separately from the tag: an earlier version used
/// `u64::MAX` as an in-band empty-slot sentinel, which made page number
/// `u64::MAX` report a phantom hit on a cold slot and disappear from
/// `occupied()`. Every 64-bit page number is now a legal tag.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Tag per slot; meaningful only where `valid` is set.
    tags: Vec<u64>,
    /// Per-slot validity bit.
    valid: Vec<bool>,
    /// Slot mask (`tags.len() - 1`); tags length is a power of two.
    mask: u64,
}

impl Tlb {
    /// Create a TLB with at least `entries` slots (rounded up to a power
    /// of two so indexing is a mask). A zero-entry TLB is valid and
    /// misses on every lookup.
    pub fn new(entries: u64) -> Self {
        if entries == 0 {
            return Tlb { tags: Vec::new(), valid: Vec::new(), mask: 0 };
        }
        let size = entries.next_power_of_two() as usize;
        Tlb { tags: vec![0; size], valid: vec![false; size], mask: size as u64 - 1 }
    }

    /// Look up a page number; inserts on miss. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, page_number: u64) -> bool {
        if self.tags.is_empty() {
            return false;
        }
        let slot = (mix(page_number) & self.mask) as usize;
        if self.valid[slot] && self.tags[slot] == page_number {
            true
        } else {
            self.tags[slot] = page_number;
            self.valid[slot] = true;
            false
        }
    }

    /// Drop all translations (context switch / migration / shootdown).
    pub fn flush(&mut self) {
        self.valid.fill(false);
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    /// Number of currently valid translations.
    pub fn occupied(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

/// Cheap invertible mixer so that sequential page numbers spread across
/// slots (real TLBs index on low bits; mixing avoids pathological aliasing
/// with our synthetic address layout while preserving determinism).
#[inline]
fn mix(x: u64) -> u64 {
    crate::mix::xor_mul_shift(x, 33, 0xff51_afd7_ed55_8ccd, 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut tlb = Tlb::new(16);
        assert!(!tlb.access(42));
        assert!(tlb.access(42));
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut tlb = Tlb::new(0);
        assert!(!tlb.access(1));
        assert!(!tlb.access(1));
        assert_eq!(tlb.capacity(), 0);
    }

    #[test]
    fn flush_forgets_everything() {
        let mut tlb = Tlb::new(8);
        tlb.access(1);
        tlb.access(2);
        assert!(tlb.occupied() > 0);
        tlb.flush();
        assert_eq!(tlb.occupied(), 0);
        assert!(!tlb.access(1));
    }

    #[test]
    fn sentinel_page_number_is_a_real_translation() {
        // u64::MAX doubled as the empty-slot tag before validity bits:
        // a cold lookup of that page reported a phantom hit and the
        // inserted entry never showed up in occupied().
        let mut tlb = Tlb::new(8);
        assert!(!tlb.access(u64::MAX), "cold slot must miss, even for the old sentinel");
        assert!(tlb.access(u64::MAX), "second access is a genuine hit");
        assert_eq!(tlb.occupied(), 1, "the entry is counted as resident");
        tlb.flush();
        assert_eq!(tlb.occupied(), 0);
        assert!(!tlb.access(u64::MAX), "flush forgets the sentinel page too");
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Tlb::new(40).capacity(), 64);
        assert_eq!(Tlb::new(64).capacity(), 64);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut tlb = Tlb::new(1024);
        let pages: Vec<u64> = (0..64).collect();
        for &p in &pages {
            tlb.access(p);
        }
        // With 64 pages in 1024 slots, collisions are improbable but not
        // impossible; demand a high hit rate rather than perfection.
        let hits = pages.iter().filter(|&&p| tlb.access(p)).count();
        assert!(hits >= 60, "only {hits}/64 hits");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut tlb = Tlb::new(16);
        // Stream over 4096 pages, twice: second pass should still miss
        // nearly always because the set is 256x the capacity.
        let mut misses = 0;
        for _pass in 0..2 {
            for p in 0..4096u64 {
                if !tlb.access(p) {
                    misses += 1;
                }
            }
        }
        assert!(misses > 7000, "only {misses} misses");
    }
}
