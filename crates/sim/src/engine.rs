//! The simulation engine: logical threads, per-access cost resolution, and
//! the region-level bandwidth/oversubscription solver.
//!
//! # Execution model
//!
//! A parallel region runs one closure per logical thread, sequentially and
//! deterministically; each thread accumulates *model cycles* on its own
//! clock as it touches memory, computes, allocates, and takes locks. When
//! all threads have run, the region resolver combines:
//!
//! * the slowest thread's latency chain (compute + cache/TLB/DRAM latency
//!   with NUMA factors),
//! * per-core busy time (threads time-share a core when the scheduler
//!   packs them — oversubscription),
//! * per-memory-controller and per-interconnect-link busy time
//!   (lines transferred ÷ bandwidth — the roofline that makes
//!   consolidated placements collapse), and
//! * analytic lock waits,
//!
//! into the region's elapsed time: `max(latency, core, controller, link)`.
//! This reproduces the latency-vs-bandwidth tension at the heart of the
//! paper: local placement minimises latency, interleaved placement
//! minimises controller pressure, and which wins depends on machine and
//! workload.

use crate::cache::Llc;
use crate::config::{MemPolicy, SimConfig};
use crate::error::{SimError, SimResult};
use crate::fault::{ActiveFaults, FaultPlan};
use crate::lock::{resolve_waits, LockId, LockTable, ThreadLockUse};
use crate::mem::{MemDelta, Memory, ShardMemView, TouchResolution, VAddr, LINE, SMALL_PAGE};
use crate::metrics::{Bottleneck, Counters, RegionStats};
use crate::sched::{plan_region, ThreadSchedule};
use crate::tlb::Tlb;
use crate::trace::{TraceEvent, TraceLog, NO_TID};
use crate::tune::{EpochView, PageHeat, RegionHook, TuneAction};
use nqp_topology::{CoreId, NodeId};
use std::collections::{BTreeMap, HashMap};

/// Read or write; counted identically by the current cost model but kept
/// distinct in the API for workloads that want to annotate intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
}

/// How often AutoNUMA's scanner considers a touch for migration
/// bookkeeping (modelling its periodic page-table scans rather than
/// per-access hooks).
const AUTONUMA_SAMPLE_EVERY: u64 = 32;

/// Kernel cost of an `mmap`/`munmap` call in model cycles.
const MMAP_SYSCALL_CYCLES: u64 = 800;

/// Per-thread L1 size in cache lines (32 KB).
const L1_LINES: u64 = 512;

/// Slots in the global last-writer table used to model coherence
/// invalidations (collisions cause occasional spurious invalidations).
const WRITER_TABLE_SLOTS: usize = 1 << 20;

/// The NUMA machine simulator.
#[derive(Debug)]
pub struct NumaSim {
    cfg: SimConfig,
    memory: Memory,
    caches: Vec<Llc>,
    /// Per logical-thread TLBs, persistent across regions: `(4k, 2m)`.
    tlbs: Vec<(Tlb, Tlb)>,
    /// Per logical-thread L1 caches, persistent across regions.
    l1s: Vec<Tlb>,
    /// Persistent schedules for unpinned threads: a process's threads
    /// keep their cores *across* parallel regions (re-planning every
    /// region would teleport them away from the memory they faulted in).
    sched_plans: Vec<ThreadSchedule>,
    /// Coherence model: `(line, last writer tid)` so one thread's write
    /// invalidates other threads' L1 copies of the line.
    writer_table: Vec<(u64, u32)>,
    locks: LockTable,
    counters: Counters,
    region_idx: u64,
    now_cycles: u64,
    /// `link_paths[a][b]` = link indices along the a→b route.
    link_paths: Vec<Vec<Vec<u16>>>,
    num_links: usize,
    /// Deterministic trace recorder (None unless `SimConfig::trace` is
    /// set — the pay-for-what-you-use switch: every hook is one branch
    /// on this Option and hooks never charge cycles).
    trace: Option<Box<TraceLog>>,
    /// Runtime-tuning hook (None unless `SimConfig::tune` is set).
    /// Called after every region resolves; its actions are applied and
    /// charged before the next region runs.
    hook: Option<HookBox>,
    /// Whether the installed tune factory asked for per-page heat
    /// (`TuneFactory::wants_page_heat`): workers then count touches per
    /// page and the merged, home-annotated vector is handed to the hook
    /// in `EpochView::page_heat`. Strictly opt-in — collecting costs
    /// host time on the touch hot path, never model cycles.
    heat_on: bool,
}

/// Debug-opaque container for the installed tuning hook.
struct HookBox(Box<dyn RegionHook + Send>);

impl std::fmt::Debug for HookBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RegionHook(..)")
    }
}

impl NumaSim {
    /// Build a simulator for the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        let machine = &cfg.machine;
        let nodes = machine.topology.num_nodes();
        let caches = (0..nodes)
            .map(|_| Llc::new(machine.llc.num_lines(), machine.llc.hit_cycles))
            .collect();
        let links = machine.topology.links();
        let link_index = |a: NodeId, b: NodeId| -> u16 {
            let key = (a.min(b), a.max(b));
            links
                .iter()
                .position(|&(x, y)| (x.min(y), x.max(y)) == key)
                .unwrap_or_else(|| panic!("adjacent nodes {key:?} share no link"))
                as u16
        };
        let link_paths = (0..nodes)
            .map(|a| {
                (0..nodes)
                    .map(|b| {
                        let path = machine.topology.shortest_path(a, b);
                        path.windows(2).map(|w| link_index(w[0], w[1])).collect()
                    })
                    .collect()
            })
            .collect();
        let memory = Memory::new(machine);
        let trace = cfg.trace.as_ref().map(|tc| Box::new(TraceLog::new(tc.clone())));
        let hook = cfg.tune.as_ref().map(|f| HookBox(f.build()));
        let heat_on = cfg.tune.as_ref().is_some_and(|f| f.wants_page_heat());
        NumaSim {
            memory,
            trace,
            hook,
            heat_on,
            caches,
            tlbs: Vec::new(),
            l1s: Vec::new(),
            sched_plans: Vec::new(),
            writer_table: vec![(u64::MAX, u32::MAX); WRITER_TABLE_SLOTS],
            locks: LockTable::default(),
            counters: Counters::default(),
            region_idx: 0,
            now_cycles: 0,
            link_paths,
            num_links: links.len(),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Cumulative counters since construction.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Total simulated cycles elapsed across all regions so far.
    pub fn now_cycles(&self) -> u64 {
        self.now_cycles
    }

    /// Register a modelled lock (used by allocator models).
    pub fn new_lock(&mut self) -> LockId {
        self.locks.new_lock()
    }

    /// Whether deterministic tracing is recording.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Open a named phase span at the current model cycle. No-op when
    /// tracing is disabled.
    pub fn phase_begin(&mut self, name: &str) {
        let now = self.now_cycles;
        if let Some(t) = self.trace.as_deref_mut() {
            t.phase_begin(name, now);
        }
    }

    /// Close the innermost open phase span at the current model cycle.
    /// No-op when tracing is disabled or no phase is open.
    pub fn phase_end(&mut self) {
        let now = self.now_cycles;
        if let Some(t) = self.trace.as_deref_mut() {
            t.phase_end(now);
        }
    }

    /// Detach the trace log, finalising it first: the residual counter
    /// delta since the last region boundary is flushed into a final
    /// epoch sample and the live totals/elapsed are recorded, so
    /// `sum(samples) == totals` holds bit-for-bit. Returns `None` when
    /// tracing is disabled (or the log was already taken).
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        let now = self.now_cycles;
        let totals = self.counters;
        self.trace.take().map(|mut t| {
            t.finish(now, totals);
            *t
        })
    }

    /// Invalidate all LLCs and TLBs (cold-run experiments).
    pub fn flush_caches(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
        for (t4, t2) in &mut self.tlbs {
            t4.flush();
            t2.flush();
        }
        for l1 in &mut self.l1s {
            l1.flush();
        }
    }

    /// Pages currently resident on each node.
    pub fn node_used_pages(&self) -> &[u64] {
        self.memory.node_used_pages()
    }

    /// Home node of the page holding `addr`, if assigned.
    pub fn node_of(&self, addr: VAddr) -> Option<NodeId> {
        self.memory.node_of(addr)
    }

    /// Whether `addr` lies inside a live mapping.
    pub fn is_mapped(&self, addr: VAddr) -> bool {
        self.memory.is_mapped(addr)
    }

    /// Whether `addr` is backed by a 2 MB huge frame (THP).
    pub fn is_huge(&self, addr: VAddr) -> bool {
        self.memory.is_huge(addr)
    }

    /// High-water of mapped simulated address space, in bytes.
    pub fn mapped_high_water(&self) -> u64 {
        self.memory.mapped_high_water()
    }

    /// Number of locks registered with the contention model.
    pub fn num_locks(&self) -> usize {
        self.locks.len()
    }

    /// Run `threads` logical threads through `f`, sequentially and
    /// deterministically, then resolve the region's elapsed time.
    ///
    /// `shared` is handed to every thread in turn — the model of shared
    /// mutable state (a global hash table, an allocator) that real threads
    /// would synchronise on.
    ///
    /// Infallible wrapper for workloads that run on a healthy machine:
    /// panics if the region faults (OOM under `Bind`, an injected fault,
    /// a blown cycle budget, or an invalid mapping). Fault-aware callers
    /// use [`NumaSim::try_parallel`].
    pub fn parallel<S, F>(&mut self, threads: usize, shared: &mut S, f: F) -> RegionStats
    where
        F: FnMut(&mut Worker<'_>, &mut S),
    {
        self.try_parallel(threads, shared, f)
            .unwrap_or_else(|e| panic!("simulation fault in infallible region: {e}"))
    }

    /// Fallible variant of [`NumaSim::parallel`].
    ///
    /// Workers do not unwind on failure: the first fault *poisons* the
    /// worker — every subsequent operation on it becomes a cheap no-op, so
    /// the workload closure runs to completion structurally (fast-forward)
    /// — and the region reports the lowest-tid fault here instead of
    /// resolving stats. A failed region charges no elapsed time and no
    /// counters; the experiment runner decides whether to retry.
    pub fn try_parallel<S, F>(
        &mut self,
        threads: usize,
        shared: &mut S,
        mut f: F,
    ) -> SimResult<RegionStats>
    where
        F: FnMut(&mut Worker<'_>, &mut S),
    {
        assert!(threads > 0, "a region needs at least one thread");
        let mut setup = self.begin_region(threads)?;
        let schedules = std::mem::take(&mut setup.schedules);
        let mut finished: Vec<ThreadOutcome2> = Vec::with_capacity(threads);
        for (tid, sched) in schedules.into_iter().enumerate() {
            let (tlb4, tlb2) = std::mem::replace(
                &mut self.tlbs[tid],
                (Tlb::new(0), Tlb::new(0)),
            );
            let l1 = std::mem::replace(&mut self.l1s[tid], Tlb::new(0));
            let trace = match self.trace.as_deref_mut() {
                Some(t) => TraceLink::Live(t),
                None => TraceLink::Off,
            };
            let mut w = make_worker(
                &self.cfg,
                &self.link_paths,
                &setup,
                tid,
                sched,
                tlb4,
                tlb2,
                l1,
                MemLink::Direct(&mut self.memory),
                CacheLink::Direct(&mut self.caches),
                WriterLink::Direct(&mut self.writer_table),
                trace,
                self.num_links,
                self.now_cycles,
            );
            f(&mut w, shared);
            let outcome = w.finish();
            self.tlbs[tid] = (outcome.tlb4, outcome.tlb2);
            self.l1s[tid] = outcome.l1;
            if setup.unpinned {
                let mut sched = outcome.sched;
                sched.rebase(outcome.stats.clock);
                self.sched_plans[tid] = sched;
            }
            finished.push(outcome.stats);
        }

        if let Some(e) = self.region_fault(&finished) {
            return Err(e);
        }
        let heat = self.collect_heat(&mut finished);
        let stats = self.resolve(setup.region, finished, setup.total_cores, &setup.active);
        self.run_hook(setup.region, &stats, &setup.active, &heat)?;
        Ok(stats)
    }

    /// Run one parallel region with its logical threads sharded across
    /// up to [`SimConfig::shards`] host threads, with per-worker
    /// isolated state and a deterministic merge at the region boundary.
    ///
    /// Each worker executes against the *frozen* region-start memory,
    /// LLC, and writer-table state plus a private overlay of its own
    /// effects, so its execution (and every cycle it charges) is a pure
    /// function of that frozen state — independent of how workers are
    /// partitioned across host threads. Overlays are merged back in
    /// ascending-tid order when every worker has finished. Counters,
    /// region stats, trace logs, and downstream journal/advisor
    /// decisions are therefore byte-identical for every shard count,
    /// including `shards = 1` (which runs the same isolated-worker
    /// semantics inline, without spawning).
    ///
    /// This is a *declared model* for phases that adopt sharding, with
    /// three visible differences from [`NumaSim::try_parallel`]:
    ///
    /// * workers never observe a same-region peer's LLC insertions,
    ///   writer-table stores, or page-fault/migration effects (e.g. two
    ///   workers that both first-touch a shared boundary page each pay
    ///   the fault);
    /// * the closure takes `&S` (read-only shared state) and returns a
    ///   per-worker value `R`; cross-worker mutation happens by folding
    ///   the returned values after the merge;
    /// * mapping and unmapping inside the region fault the worker with
    ///   [`SimError::Harness`] — address space must be settled in a
    ///   serial region first.
    ///
    /// On a region fault nothing is merged: a failed trial charges no
    /// elapsed time, no counters, and no state changes.
    pub fn try_parallel_sharded<S, R, F>(
        &mut self,
        threads: usize,
        shared: &S,
        f: F,
    ) -> SimResult<(RegionStats, Vec<R>)>
    where
        S: Sync + ?Sized,
        R: Send,
        F: Fn(&mut Worker<'_>, &S) -> R + Sync,
    {
        assert!(threads > 0, "a region needs at least one thread");
        let mut setup = self.begin_region(threads)?;
        let schedules = std::mem::take(&mut setup.schedules);

        // Pull per-thread host state out so seats can move across host
        // threads; restored from the outcomes below.
        let mut seats: Vec<Seat> = Vec::with_capacity(threads);
        for (tid, sched) in schedules.into_iter().enumerate() {
            let (tlb4, tlb2) = std::mem::replace(
                &mut self.tlbs[tid],
                (Tlb::new(0), Tlb::new(0)),
            );
            let l1 = std::mem::replace(&mut self.l1s[tid], Tlb::new(0));
            seats.push((tid, sched, tlb4, tlb2, l1));
        }

        let shard_count = self.cfg.shards.max(1).min(threads);
        let cfg = &self.cfg;
        let link_paths = &self.link_paths;
        let num_links = self.num_links;
        let sim_now = self.now_cycles;
        let trace_on = self.trace.is_some();
        let memory = &self.memory;
        let caches: &[Llc] = &self.caches;
        let writer: &[(u64, u32)] = &self.writer_table;
        let setup_ref = &setup;
        let f_ref = &f;
        let run_seat = move |seat: Seat| -> (ThreadOutcome, R) {
            let (tid, sched, tlb4, tlb2, l1) = seat;
            let trace = if trace_on {
                TraceLink::Buffer(Vec::new())
            } else {
                TraceLink::Off
            };
            let mut w = make_worker(
                cfg,
                link_paths,
                setup_ref,
                tid,
                sched,
                tlb4,
                tlb2,
                l1,
                MemLink::Shard(ShardMemView::new(memory)),
                CacheLink::shard(caches),
                WriterLink::shard(writer),
                trace,
                num_links,
                sim_now,
            );
            let r = f_ref(&mut w, shared);
            (w.finish(), r)
        };

        let mut outcomes: Vec<(ThreadOutcome, R)> = Vec::with_capacity(threads);
        if shard_count <= 1 {
            // Same isolated-worker semantics, no host threads spawned.
            for seat in seats {
                outcomes.push(run_seat(seat));
            }
        } else {
            // Contiguous balanced tid chunks; collecting join results in
            // shard order is collecting them in ascending-tid order.
            let base = threads / shard_count;
            let extra = threads % shard_count;
            let mut chunks: Vec<Vec<Seat>> = Vec::with_capacity(shard_count);
            let mut it = seats.into_iter();
            for s in 0..shard_count {
                let take = base + usize::from(s < extra);
                chunks.push(it.by_ref().take(take).collect());
            }
            let mut host_panic = false;
            std::thread::scope(|scope| {
                let run_seat = &run_seat;
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk.into_iter().map(run_seat).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(batch) => outcomes.extend(batch),
                        Err(_) => host_panic = true,
                    }
                }
            });
            if host_panic {
                // The trial's state is torn; surface a typed fault so
                // the supervisor re-runs it on a fresh simulator
                // instead of unwinding through the harness.
                return Err(SimError::Harness {
                    what: "a shard host thread panicked mid-region".to_string(),
                });
            }
        }

        let mut finished: Vec<ThreadOutcome2> = Vec::with_capacity(threads);
        let mut deltas: Vec<ShardDelta> = Vec::with_capacity(threads);
        let mut returns: Vec<R> = Vec::with_capacity(threads);
        for (tid, (outcome, r)) in outcomes.into_iter().enumerate() {
            let ThreadOutcome { stats, tlb4, tlb2, l1, sched, shard } = outcome;
            self.tlbs[tid] = (tlb4, tlb2);
            self.l1s[tid] = l1;
            if setup.unpinned {
                let mut sched = sched;
                sched.rebase(stats.clock);
                self.sched_plans[tid] = sched;
            }
            match shard {
                Some(delta) => deltas.push(delta),
                // Unreachable by construction (every seat runs behind
                // Shard links), but a typed fault beats a panic if the
                // invariant ever breaks.
                None => {
                    return Err(SimError::Harness {
                        what: format!("sharded worker {tid} returned no merge delta"),
                    })
                }
            }
            finished.push(stats);
            returns.push(r);
        }
        if let Some(e) = self.region_fault(&finished) {
            return Err(e);
        }

        // Deterministic epoch-boundary merge, ascending tid order: later
        // tids win conflicting slots wholesale, exactly like the serial
        // path's last-writer ordering.
        for delta in deltas {
            for (node, llc) in delta.llcs.into_iter().enumerate() {
                if let Some(llc) = llc {
                    self.caches[node] = llc;
                }
            }
            merge_writer(&mut self.writer_table, delta.writer);
            self.memory.merge_shard(delta.mem);
            if let Some(t) = self.trace.as_deref_mut() {
                for (at, tid, ev) in delta.trace {
                    t.push(at, tid, ev);
                }
            }
        }
        let heat = self.collect_heat(&mut finished);
        let stats = self.resolve(setup.region, finished, setup.total_cores, &setup.active);
        self.run_hook(setup.region, &stats, &setup.active, &heat)?;
        Ok((stats, returns))
    }

    /// Infallible wrapper over [`NumaSim::try_parallel_sharded`]; panics
    /// if the region faults.
    pub fn parallel_sharded<S, R, F>(
        &mut self,
        threads: usize,
        shared: &S,
        f: F,
    ) -> (RegionStats, Vec<R>)
    where
        S: Sync + ?Sized,
        R: Send,
        F: Fn(&mut Worker<'_>, &S) -> R + Sync,
    {
        self.try_parallel_sharded(threads, shared, f)
            .unwrap_or_else(|e| panic!("simulation fault in infallible region: {e}"))
    }

    /// Region fault precedence, shared by the serial and sharded paths.
    ///
    /// A blown trial budget dominates every other fault. A poisoned
    /// worker keeps charging cycles but records only its *first* fault,
    /// so a thread that faulted early and then sailed past the budget
    /// would otherwise report the fault — conflating a timeout with
    /// `Faulted` in sweep tables even though the watchdog would have
    /// killed the attempt either way.
    fn region_fault(&self, finished: &[ThreadOutcome2]) -> Option<SimError> {
        if let Some(e) = finished
            .iter()
            .filter_map(|t| t.fault.as_ref())
            .find(|e| matches!(e, SimError::Timeout { .. }))
        {
            return Some(e.clone());
        }
        if finished.iter().any(|t| t.fault.is_some()) {
            if let Some(budget) = self.cfg.trial_budget_cycles {
                let elapsed = self
                    .now_cycles
                    .saturating_add(finished.iter().map(|t| t.clock).max().unwrap_or(0));
                if elapsed >= budget {
                    return Some(SimError::Timeout {
                        budget_cycles: budget,
                        elapsed_cycles: elapsed,
                    });
                }
            }
        }
        finished.iter().find_map(|t| t.fault.clone())
    }

    /// The shared region prologue: deadline check, fault activation,
    /// node-outage evacuation, schedule planning, TLB/L1 growth, the
    /// per-region integer latency tables, and the `RegionBegin` trace
    /// event. Byte-identical to the historical `try_parallel` prologue.
    fn begin_region(&mut self, threads: usize) -> SimResult<RegionSetup> {
        if let Some(deadline) = self.cfg.deadline_cycles {
            // Cooperative cancellation: a query whose deadline has
            // passed abandons *between* phases, never mid-region, and
            // the cycles burned so far stay charged (`now_cycles` is
            // not rolled back).
            if self.now_cycles >= deadline {
                let elapsed = self.now_cycles;
                if let Some(t) = self.trace.as_deref_mut() {
                    t.push(
                        elapsed,
                        NO_TID,
                        TraceEvent::DeadlineAbandon {
                            deadline_cycles: deadline,
                            elapsed_cycles: elapsed,
                        },
                    );
                }
                return Err(SimError::DeadlineExceeded {
                    deadline_cycles: deadline,
                    elapsed_cycles: elapsed,
                });
            }
        }
        let region = self.region_idx;
        self.region_idx += 1;
        let quiet_plan = FaultPlan::default();
        let active = self
            .cfg
            .fault_plan
            .as_ref()
            .unwrap_or(&quiet_plan)
            .active(
                region,
                self.cfg.fault_attempt,
                self.num_links,
                self.cfg.machine.topology.num_nodes(),
            );
        if active.any_node_offline() {
            // Node outages apply before the region's threads run: pages
            // are evacuated (charged as kernel migration traffic) and the
            // evacuation itself can blow the trial budget.
            self.apply_node_offline(&active)?;
        }
        let budget_limit = self
            .cfg
            .trial_budget_cycles
            .map(|b| b.saturating_sub(self.now_cycles));
        let unpinned = matches!(self.cfg.thread_placement, crate::config::ThreadPlacement::None);
        let schedules = if unpinned {
            // Reuse persistent schedules so threads stay where they were.
            if self.sched_plans.len() < threads {
                self.sched_plans = plan_region(&self.cfg, threads, 0);
            }
            let mut taken = Vec::with_capacity(threads);
            for tid in 0..threads {
                taken.push(std::mem::replace(
                    &mut self.sched_plans[tid],
                    ThreadSchedule::Pinned(0),
                ));
            }
            taken
        } else {
            plan_region(&self.cfg, threads, region)
        };
        let schedules = if active.any_node_offline() {
            self.remap_offline_schedules(schedules, &active)
        } else {
            schedules
        };
        while self.tlbs.len() < threads {
            let (t4, t2) = (
                Tlb::new(self.cfg.machine.tlb_4k.total_entries()),
                Tlb::new(self.cfg.machine.tlb_2m.total_entries()),
            );
            self.tlbs.push((t4, t2));
            self.l1s.push(Tlb::new(L1_LINES));
        }

        let total_cores = self.cfg.machine.total_hw_threads();
        let nodes = self.cfg.machine.topology.num_nodes();

        // Integer DRAM-latency tables for this region, indexed by
        // [(running_node * nodes + home_node) * 2 + is_write]: the f64
        // latency-factor chain (fault-degradation multipliers and the
        // home node's memory-tier read/write factor folded in) is
        // evaluated once per (node pair, direction) instead of once per
        // LLC miss. The expressions mirror the reference model's
        // per-miss math operation for operation, so the values are
        // bit-identical; on an all-DRAM machine both tier factors are
        // exactly 1.0 and the table degenerates to the untiered model.
        let mut lat_full = vec![0u64; nodes * nodes * 2];
        let mut lat_seq = vec![0u64; nodes * nodes * 2];
        for a in 0..nodes {
            for h in 0..nodes {
                let mut factor = self.cfg.machine.topology.latency_factor(a, h);
                if !active.is_quiet() && h != a {
                    factor *= active.path_latency_mult(&self.link_paths[a][h]);
                }
                let tier = self.cfg.machine.tier_of(h);
                for (dir, tf) in [(0, tier.read_factor()), (1, tier.write_factor())] {
                    let full = (self.cfg.machine.dram_latency_cycles as f64 * (factor * tf))
                        as u64;
                    lat_full[(a * nodes + h) * 2 + dir] = full;
                    lat_seq[(a * nodes + h) * 2 + dir] = full / self.cfg.costs.mlp.max(1);
                }
            }
        }
        let tier_slow: Vec<bool> =
            (0..nodes).map(|n| self.memory.is_slow_node(n)).collect();

        if let Some(t) = self.trace.as_deref_mut() {
            t.push(
                self.now_cycles,
                NO_TID,
                TraceEvent::RegionBegin { region, threads: threads as u32 },
            );
        }

        Ok(RegionSetup {
            region,
            active,
            budget_limit,
            unpinned,
            schedules,
            total_cores,
            nodes,
            lat_full,
            lat_seq,
            tier_slow,
            heat_on: self.heat_on,
        })
    }

    /// Run a single logical thread (setup phases, coordinators).
    /// Infallible wrapper over [`NumaSim::try_serial`]; panics on fault.
    pub fn serial<S, F>(&mut self, shared: &mut S, f: F) -> RegionStats
    where
        F: FnMut(&mut Worker<'_>, &mut S),
    {
        self.parallel(1, shared, f)
    }

    /// Fallible variant of [`NumaSim::serial`].
    pub fn try_serial<S, F>(&mut self, shared: &mut S, f: F) -> SimResult<RegionStats>
    where
        F: FnMut(&mut Worker<'_>, &mut S),
    {
        self.try_parallel(1, shared, f)
    }

    /// Apply node-offline faults that have not been applied yet: evacuate
    /// each newly-dead node's pages to the nearest live node and charge
    /// the copies like kernel page migrations. Outages are sticky — a
    /// node already offline is skipped. Fails typed when the last live
    /// node dies, the survivors cannot absorb the pages, or the
    /// evacuation cost blows the trial budget.
    fn apply_node_offline(&mut self, active: &ActiveFaults) -> SimResult<()> {
        let nodes = self.cfg.machine.topology.num_nodes();
        for node in 0..nodes {
            if !active.node_offline(node) || self.memory.is_node_offline(node) {
                continue;
            }
            let moved = self.memory.set_node_offline(node)?;
            let costs = &self.cfg.costs;
            let cost = costs.page_migration_fixed_cycles
                + costs.page_migration_per_line_cycles * (SMALL_PAGE / LINE) * moved;
            self.now_cycles += cost;
            self.counters.kernel_cycles += cost;
            self.counters.page_migrations += moved;
            self.counters.evacuated_pages += moved;
            self.counters.nodes_offlined += 1;
            if let Some(t) = self.trace.as_deref_mut() {
                t.push(
                    self.now_cycles,
                    NO_TID,
                    TraceEvent::NodeOffline { node, evacuated_pages: moved },
                );
            }
        }
        if let Some(budget) = self.cfg.trial_budget_cycles {
            if self.now_cycles >= budget {
                return Err(SimError::Timeout {
                    budget_cycles: budget,
                    elapsed_cycles: self.now_cycles,
                });
            }
        }
        Ok(())
    }

    /// Install a runtime-tuning hook on a live simulator (tests and
    /// ad-hoc drivers; sweeps install one via [`SimConfig::with_tune`],
    /// which builds a fresh hook per `NumaSim::new`).
    pub fn install_hook(&mut self, hook: Box<dyn RegionHook + Send>) {
        self.hook = Some(HookBox(hook));
    }

    /// Toggle per-page heat collection on a live simulator (pairs with
    /// [`NumaSim::install_hook`] for tests and ad-hoc drivers; sweeps
    /// opt in via [`crate::TuneFactory::with_page_heat`]).
    pub fn collect_page_heat(&mut self, on: bool) {
        self.heat_on = on;
    }

    /// Run the installed tuning hook against the region that just
    /// resolved and apply its actions. The hook sees only model-cycle
    /// state (an [`EpochView`]), so its decision sequence is a
    /// deterministic function of the simulated execution; every action
    /// it returns is applied *and charged* here, before the next region
    /// runs — the one point where the machine is quiescent (the same
    /// boundary node-offline evacuation uses), so no cache, TLB, or
    /// walk-memo invalidation is needed.
    fn run_hook(
        &mut self,
        region: u64,
        stats: &RegionStats,
        active: &ActiveFaults,
        page_heat: &[PageHeat],
    ) -> SimResult<()> {
        let Some(mut hook) = self.hook.take() else { return Ok(()) };
        let view = EpochView {
            region,
            now_cycles: self.now_cycles,
            elapsed_cycles: stats.elapsed_cycles,
            counters: self.counters,
            node_used_pages: self.memory.node_used_pages(),
            mem_policy: self.cfg.mem_policy,
            thread_placement: self.cfg.thread_placement,
            autonuma: self.cfg.autonuma,
            threads: stats.threads,
            fault_active: !active.is_quiet(),
            page_heat,
        };
        let actions = hook.0.on_region_end(&view);
        self.hook = Some(hook);
        for action in actions {
            self.apply_action(region, stats.threads, action)?;
        }
        Ok(())
    }

    /// Merge the per-worker page-touch maps into one additively merged
    /// heat vector sorted by page, annotated with each page's canonical
    /// home node — read *after* any sharded merge, so serial and
    /// sharded runs report identical heat. Pages unmapped by region end
    /// are dropped (nothing a hook could migrate). Empty (and free)
    /// unless heat collection is on.
    fn collect_heat(&self, finished: &mut [ThreadOutcome2]) -> Vec<PageHeat> {
        if !self.heat_on {
            return Vec::new();
        }
        let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
        for t in finished.iter_mut() {
            for &(page, touches) in &t.heat {
                *merged.entry(page).or_insert(0) += touches;
            }
            t.heat = Vec::new();
        }
        merged
            .into_iter()
            .filter_map(|(page, touches)| {
                self.memory
                    .node_of(page * SMALL_PAGE)
                    .map(|home| PageHeat { page, home, touches })
            })
            .collect()
    }

    /// Apply one hook action, charge its model-cycle cost, and record
    /// it as a trace event. Page moves are charged at the same
    /// `CostParams` rates as kernel migrations, and — like node-offline
    /// evacuation — the charge can blow the trial budget.
    fn apply_action(&mut self, region: u64, threads: usize, action: TuneAction) -> SimResult<()> {
        let mut tier_event = false;
        let decision = match action {
            TuneAction::SetMemPolicy(policy) => {
                self.cfg.mem_policy = policy;
                format!("policy={}", policy.label())
            }
            TuneAction::SetThreadPlacement(placement) => {
                if placement != self.cfg.thread_placement {
                    self.cfg.thread_placement = placement;
                    // Every seat can move when the placement regime
                    // changes: charge one migration per logical thread.
                    let cost = self.cfg.costs.thread_migration_cycles * threads as u64;
                    self.now_cycles += cost;
                    self.counters.kernel_cycles += cost;
                    self.counters.thread_migrations += threads as u64;
                }
                format!("placement={}", placement.label())
            }
            TuneAction::SetAutonuma(on) => {
                self.cfg.autonuma = on;
                format!("autonuma={}", if on { "on" } else { "off" })
            }
            TuneAction::RehomePages { policy, max_pages } => {
                let moved = self.memory.rehome_pages(policy, max_pages);
                if moved > 0 {
                    let costs = &self.cfg.costs;
                    let cost = costs.page_migration_fixed_cycles
                        + costs.page_migration_per_line_cycles * (SMALL_PAGE / LINE) * moved;
                    self.now_cycles += cost;
                    self.counters.kernel_cycles += cost;
                    self.counters.page_migrations += moved;
                }
                format!("rehome={}:moved={moved}", policy.label())
            }
            TuneAction::PromotePages { pages, max_pages } => {
                tier_event = true;
                let moved = self.memory.retier_pages(&pages, false, max_pages);
                self.charge_retier(moved);
                self.counters.promotions += moved;
                format!("promote:moved={moved}")
            }
            TuneAction::DemotePages { pages, max_pages } => {
                tier_event = true;
                let moved = self.memory.retier_pages(&pages, true, max_pages);
                self.charge_retier(moved);
                self.counters.demotions += moved;
                format!("demote:moved={moved}")
            }
            TuneAction::Note(token) => token,
        };
        if let Some(t) = self.trace.as_deref_mut() {
            let event = if tier_event {
                TraceEvent::TierDecision { region, decision }
            } else {
                TraceEvent::AdvisorDecision { region, decision }
            };
            t.push(self.now_cycles, NO_TID, event);
        }
        if let Some(budget) = self.cfg.trial_budget_cycles {
            if self.now_cycles >= budget {
                return Err(SimError::Timeout {
                    budget_cycles: budget,
                    elapsed_cycles: self.now_cycles,
                });
            }
        }
        Ok(())
    }

    /// Bill one promotion/demotion batch: kernel migration rates for
    /// the copies, plus the copied lines as slow-tier traffic (one
    /// endpoint of every moved page is a slow-tier node by definition).
    fn charge_retier(&mut self, moved: u64) {
        if moved == 0 {
            return;
        }
        let costs = &self.cfg.costs;
        let cost = costs.page_migration_fixed_cycles
            + costs.page_migration_per_line_cycles * (SMALL_PAGE / LINE) * moved;
        self.now_cycles += cost;
        self.counters.kernel_cycles += cost;
        self.counters.page_migrations += moved;
        self.counters.slow_tier_lines += (SMALL_PAGE / LINE) * moved;
    }

    /// Re-place threads scheduled onto offline cores, following the
    /// active placement policy over the surviving nodes: `Sparse` spreads
    /// displaced threads round-robin across live nodes, every other
    /// policy packs them node-major. Roaming pools are filtered to live
    /// cores. Each displaced thread is charged a migration.
    fn remap_offline_schedules(
        &mut self,
        mut schedules: Vec<ThreadSchedule>,
        active: &ActiveFaults,
    ) -> Vec<ThreadSchedule> {
        let machine = &self.cfg.machine;
        // Displaced threads can only land on compute nodes: memory-only
        // slow-tier nodes have no cores.
        let nodes = machine.compute_nodes();
        let tpn = machine.threads_per_node;
        let live: Vec<NodeId> = (0..nodes).filter(|&n| !active.node_offline(n)).collect();
        let sparse =
            matches!(self.cfg.thread_placement, crate::config::ThreadPlacement::Sparse);
        let order: Vec<CoreId> = if sparse {
            (0..tpn)
                .flat_map(|slot| live.iter().map(move |&n| n * tpn + slot))
                .collect()
        } else {
            live.iter().flat_map(|&n| (0..tpn).map(move |slot| n * tpn + slot)).collect()
        };
        let mut displaced = 0u64;
        let mut next = 0usize;
        let now = self.now_cycles;
        for (tid, s) in schedules.iter_mut().enumerate() {
            match s {
                ThreadSchedule::Pinned(c) => {
                    if active.node_offline(machine.node_of_core(*c)) {
                        let from = *c;
                        *c = order[next % order.len()];
                        next += 1;
                        displaced += 1;
                        if let Some(t) = self.trace.as_deref_mut() {
                            t.push(
                                now,
                                tid as u32,
                                TraceEvent::ThreadMigration { from_core: from, to_core: *c },
                            );
                        }
                    }
                }
                ThreadSchedule::Roaming { pool, idx, .. } => {
                    let cur = pool[*idx];
                    if pool.iter().all(|&c| active.node_offline(machine.node_of_core(c))) {
                        // The whole pool died: fall back to every live core.
                        *pool = order.clone();
                    } else {
                        pool.retain(|&c| !active.node_offline(machine.node_of_core(c)));
                    }
                    if active.node_offline(machine.node_of_core(cur)) {
                        *idx = next % pool.len();
                        next += 1;
                        displaced += 1;
                        if let Some(t) = self.trace.as_deref_mut() {
                            t.push(
                                now,
                                tid as u32,
                                TraceEvent::ThreadMigration {
                                    from_core: cur,
                                    to_core: pool[*idx],
                                },
                            );
                        }
                    } else {
                        *idx = pool.iter().position(|&c| c == cur).unwrap_or(0);
                    }
                }
            }
        }
        if displaced > 0 {
            let cost = self.cfg.costs.thread_migration_cycles * displaced;
            self.now_cycles += cost;
            self.counters.kernel_cycles += cost;
            self.counters.thread_migrations += displaced;
        }
        schedules
    }

    fn resolve(
        &mut self,
        region: u64,
        mut threads: Vec<ThreadOutcome2>,
        total_cores: usize,
        faults: &ActiveFaults,
    ) -> RegionStats {
        let t0 = threads.iter().map(|t| t.clock).max().unwrap_or(0);

        // Analytic lock waits.
        let uses: Vec<ThreadLockUse> = threads.iter().map(|t| t.locks.clone()).collect();
        let waits = resolve_waits(&uses, t0);
        for (t, w) in threads.iter_mut().zip(&waits) {
            t.clock += w;
            t.counters.lock_wait_cycles += w;
        }
        let latency_bound = threads.iter().map(|t| t.clock).max().unwrap_or(0);

        // Core oversubscription: threads sharing a core serialise.
        let mut core_busy = vec![0u64; total_cores];
        for t in &threads {
            for &(core, cycles) in &t.core_time {
                core_busy[core] += cycles;
            }
        }
        let core_bound = core_busy.iter().copied().max().unwrap_or(0);

        // Bandwidth rooflines.
        let machine = &self.cfg.machine;
        let nodes = machine.topology.num_nodes();
        let mut node_lines = vec![0u64; nodes];
        let mut link_lines = vec![0u64; self.num_links];
        let mut counters = Counters::default();
        for t in &threads {
            counters += t.counters;
            for (n, l) in t.dram_lines_by_node.iter().enumerate() {
                node_lines[n] += l;
            }
            for (l, c) in t.link_lines.iter().enumerate() {
                link_lines[l] += c;
            }
        }
        // A slow-tier controller delivers a fraction of DRAM bandwidth
        // (`bandwidth_factor`); ×1.0 on DRAM nodes keeps the division
        // bit-identical to the untiered model.
        let ctrl_busy: Vec<f64> = node_lines
            .iter()
            .enumerate()
            .map(|(n, &l)| {
                l as f64
                    / (machine.controller_lines_per_cycle
                        * machine.tier_of(n).bandwidth_factor())
            })
            .collect();
        // A degraded link's effective bandwidth is divided by the fault
        // plan's divisor, inflating its busy time.
        let link_busy: Vec<f64> = link_lines
            .iter()
            .enumerate()
            .map(|(i, &l)| l as f64 * faults.link_bw_div[i] / machine.link_lines_per_cycle)
            .collect();

        // Queueing: a resource whose busy time exceeds the latency-bound
        // window is overloaded; its backlog is distributed to the threads
        // that used it, proportionally to their line counts. This keeps
        // saturation *additive* — threads still pay their compute and
        // other-latency costs on top of the stalls — instead of a flat
        // roofline max that would hide everything else.
        let t0 = latency_bound as f64;
        let ctrl_backlog: Vec<f64> =
            ctrl_busy.iter().map(|&b| (b - t0).max(0.0)).collect();
        let link_backlog: Vec<f64> =
            link_busy.iter().map(|&b| (b - t0).max(0.0)).collect();
        // A saturated resource is serial: every thread queueing on it sees
        // the full backlog, scaled down only when the thread uses the
        // resource less than an even share.
        let ctrl_users: Vec<f64> = (0..nodes)
            .map(|n| threads.iter().filter(|t| t.dram_lines_by_node[n] > 0).count() as f64)
            .collect();
        let link_users: Vec<f64> = (0..self.num_links)
            .map(|l| threads.iter().filter(|t| t.link_lines[l] > 0).count() as f64)
            .collect();
        let mut stalled_max = latency_bound;
        let mut any_ctrl_overload = None;
        let mut any_link_overload = None;
        for t in &mut threads {
            let mut extra = 0.0f64;
            for (n, &bl) in ctrl_backlog.iter().enumerate() {
                if bl > 0.0 && node_lines[n] > 0 {
                    let share = t.dram_lines_by_node[n] as f64 / node_lines[n] as f64;
                    extra += bl * (share * ctrl_users[n]).min(1.0);
                    any_ctrl_overload = Some(n);
                }
            }
            for (l, &bl) in link_backlog.iter().enumerate() {
                if bl > 0.0 && link_lines[l] > 0 {
                    let share = t.link_lines[l] as f64 / link_lines[l] as f64;
                    extra += bl * (share * link_users[l]).min(1.0);
                    any_link_overload = Some(l);
                }
            }
            t.clock += extra.round() as u64;
            stalled_max = stalled_max.max(t.clock);
        }

        let mut elapsed = stalled_max;
        let mut bottleneck = Bottleneck::ThreadLatency;
        if let Some(n) = any_ctrl_overload {
            bottleneck = Bottleneck::MemoryController(n);
        }
        if let Some(l) = any_link_overload {
            bottleneck = Bottleneck::InterconnectLink(l);
        }
        if core_bound > elapsed {
            elapsed = core_bound;
            bottleneck = Bottleneck::CoreOversubscription;
        }
        let elapsed = elapsed.max(1);

        self.counters += counters;
        self.now_cycles += elapsed;

        if let Some(t) = self.trace.as_deref_mut() {
            for (tid, &w) in waits.iter().enumerate() {
                if w > 0 {
                    t.push(
                        self.now_cycles,
                        tid as u32,
                        TraceEvent::LockContention { wait_cycles: w },
                    );
                }
            }
            t.push(
                self.now_cycles,
                NO_TID,
                TraceEvent::RegionEnd { region, elapsed_cycles: elapsed },
            );
            // Epoch sample at the region boundary: the delta since the
            // previous boundary telescopes, so bins sum to the totals.
            t.sample(self.now_cycles, self.counters, &node_lines, &link_lines);
        }

        RegionStats {
            elapsed_cycles: elapsed,
            max_thread_cycles: latency_bound,
            bottleneck,
            controller_utilisation: ctrl_busy.iter().map(|b| b / elapsed as f64).collect(),
            link_utilisation: link_busy.iter().map(|b| b / elapsed as f64).collect(),
            counters,
            threads: threads.len(),
        }
    }
}

/// Final per-thread record handed to the resolver.
#[derive(Debug)]
struct ThreadOutcome2 {
    clock: u64,
    core_time: Vec<(CoreId, u64)>,
    counters: Counters,
    locks: ThreadLockUse,
    dram_lines_by_node: Vec<u64>,
    link_lines: Vec<u64>,
    /// Per-page touch counts `(page, touches)` sorted by page; empty
    /// unless heat collection is on.
    heat: Vec<(u64, u64)>,
    /// The fault that poisoned this thread, if any.
    fault: Option<SimError>,
}

struct ThreadOutcome {
    stats: ThreadOutcome2,
    tlb4: Tlb,
    tlb2: Tlb,
    l1: Tlb,
    sched: ThreadSchedule,
    /// The isolated-state overlay of a sharded-region worker (None on
    /// the serial path, which mutates canonical state directly).
    shard: Option<ShardDelta>,
}

/// A seat is the per-logical-thread host state a sharded region moves
/// onto whichever host thread runs that worker.
type Seat = (usize, ThreadSchedule, Tlb, Tlb, Tlb);

/// Region prologue products shared by the serial and sharded paths.
struct RegionSetup {
    region: u64,
    active: ActiveFaults,
    budget_limit: Option<u64>,
    unpinned: bool,
    schedules: Vec<ThreadSchedule>,
    total_cores: usize,
    nodes: usize,
    lat_full: Vec<u64>,
    lat_seq: Vec<u64>,
    /// Per-node "is a slow memory tier" flags, for the hit counters.
    tier_slow: Vec<bool>,
    /// Whether workers should count per-page touches this region.
    heat_on: bool,
}

/// Construct one region worker over the given state links. Shared by
/// the serial path (direct links into the simulator) and the sharded
/// path (isolated per-worker views), so the two cannot drift.
#[allow(clippy::too_many_arguments)]
fn make_worker<'a>(
    cfg: &'a SimConfig,
    link_paths: &'a Vec<Vec<Vec<u16>>>,
    setup: &'a RegionSetup,
    tid: usize,
    sched: ThreadSchedule,
    tlb4: Tlb,
    tlb2: Tlb,
    l1: Tlb,
    memory: MemLink<'a>,
    caches: CacheLink<'a>,
    writer_table: WriterLink<'a>,
    trace: TraceLink<'a>,
    num_links: usize,
    sim_now: u64,
) -> Worker<'a> {
    let core = sched.initial_core();
    let node = cfg.machine.node_of_core(core);
    let mut w = Worker {
        cfg,
        memory,
        caches,
        link_paths,
        tid,
        core,
        node,
        clock: 0,
        sched,
        next_sched_at: 0,
        next_scan_at: 0,
        core_since: 0,
        core_time: Vec::new(),
        tlb4,
        tlb2,
        l1,
        writer_table,
        counters: Counters::default(),
        locks: ThreadLockUse::default(),
        dram_lines_by_node: vec![0; setup.nodes],
        link_lines: vec![0; num_links],
        autonuma_countdown: AUTONUMA_SAMPLE_EVERY,
        last_line: u64::MAX - 1,
        uwalk: UWalk::EMPTY,
        lat_full: &setup.lat_full,
        lat_seq: &setup.lat_seq,
        num_nodes: setup.nodes,
        tier_slow: &setup.tier_slow,
        heat_on: setup.heat_on,
        heat_page: u64::MAX,
        heat_run: 0,
        heat: HashMap::new(),
        reference: cfg.reference_model,
        epoch_cur: 0,
        epoch_valid_until: 0,
        faults: &setup.active,
        faults_quiet: setup.active.is_quiet(),
        region: setup.region,
        alloc_seq: 0,
        next_preempt_at: setup.active.preempt_period.unwrap_or(u64::MAX),
        budget_limit: setup.budget_limit,
        sim_now,
        fault: None,
        trace,
    };
    w.next_sched_at = w.sched.next_event_at();
    w.next_scan_at = if cfg.autonuma {
        cfg.costs.autonuma_scan_period_cycles
    } else {
        u64::MAX
    };
    w
}

// ---- per-worker state links for sharded regions ---------------------

/// Worker handle on simulated memory: direct mutable access on the
/// serial path, an isolated copy-on-write view on the sharded path.
/// The forwarding methods mirror [`Memory`]'s signatures exactly so
/// `Worker` bodies compile unchanged against either.
enum MemLink<'a> {
    Direct(&'a mut Memory),
    Shard(ShardMemView<'a>),
}

impl MemLink<'_> {
    fn map(
        &mut self,
        bytes: u64,
        policy: MemPolicy,
        node: NodeId,
        thp: bool,
    ) -> SimResult<VAddr> {
        match self {
            MemLink::Direct(m) => m.map(bytes, policy, node, thp),
            MemLink::Shard(_) => Err(shard_map_fault()),
        }
    }

    fn map_shared(
        &mut self,
        bytes: u64,
        policy: MemPolicy,
        node: NodeId,
        thp: bool,
    ) -> SimResult<VAddr> {
        match self {
            MemLink::Direct(m) => m.map_shared(bytes, policy, node, thp),
            MemLink::Shard(_) => Err(shard_map_fault()),
        }
    }

    fn unmap(&mut self, addr: VAddr, bytes: u64) -> SimResult<()> {
        match self {
            MemLink::Direct(m) => m.unmap(addr, bytes),
            MemLink::Shard(_) => Err(shard_map_fault()),
        }
    }

    #[inline]
    fn resolve_touch(&mut self, addr: VAddr, node: NodeId) -> SimResult<TouchResolution> {
        match self {
            MemLink::Direct(m) => m.resolve_touch(addr, node),
            MemLink::Shard(v) => v.resolve_touch(addr, node),
        }
    }

    #[inline]
    fn autonuma_touch(
        &mut self,
        addr: VAddr,
        node: NodeId,
        threshold: u32,
        allow_migrate: bool,
    ) -> (u64, bool) {
        match self {
            MemLink::Direct(m) => m.autonuma_touch(addr, node, threshold, allow_migrate),
            MemLink::Shard(v) => v.autonuma_touch(addr, node, threshold, allow_migrate),
        }
    }

    #[inline]
    fn hint_fault_due(&mut self, addr: VAddr, epoch: u8) -> bool {
        match self {
            MemLink::Direct(m) => m.hint_fault_due(addr, epoch),
            MemLink::Shard(v) => v.hint_fault_due(addr, epoch),
        }
    }

    #[inline]
    fn tlb_tag(&self, addr: VAddr, huge: bool) -> u64 {
        match self {
            MemLink::Direct(m) => m.tlb_tag(addr, huge),
            MemLink::Shard(v) => v.tlb_tag(addr, huge),
        }
    }

    #[inline]
    fn prefetch_page(&self, addr: VAddr) {
        match self {
            MemLink::Direct(m) => m.prefetch_page(addr),
            MemLink::Shard(v) => v.prefetch_page(addr),
        }
    }

    #[inline]
    fn write_bytes(&mut self, addr: VAddr, data: &[u8]) {
        match self {
            MemLink::Direct(m) => m.write_bytes(addr, data),
            MemLink::Shard(v) => v.write_bytes(addr, data),
        }
    }

    #[inline]
    fn read_bytes(&mut self, addr: VAddr, out: &mut [u8]) {
        match self {
            MemLink::Direct(m) => m.read_bytes(addr, out),
            MemLink::Shard(v) => v.read_bytes(addr, out),
        }
    }
}

/// The fault a sharded-region worker takes on `map`/`unmap`: address
/// space must be settled in a serial region before workers shard.
fn shard_map_fault() -> SimError {
    SimError::Harness {
        what: "mmap/munmap inside a sharded parallel region \
               (settle address space in a serial region first)"
            .into(),
    }
}

/// Worker handle on the per-node LLCs: lazily clones a node's LLC image
/// into the worker on first mutation (sharded path). Indexing mirrors
/// `Vec<Llc>` so `self.caches[node]` call sites compile unchanged.
enum CacheLink<'a> {
    Direct(&'a mut Vec<Llc>),
    Shard {
        base: &'a [Llc],
        local: Vec<Option<Llc>>,
    },
}

impl<'a> CacheLink<'a> {
    fn shard(base: &'a [Llc]) -> Self {
        CacheLink::Shard { base, local: vec![None; base.len()] }
    }
}

impl std::ops::Index<usize> for CacheLink<'_> {
    type Output = Llc;
    #[inline]
    fn index(&self, i: usize) -> &Llc {
        match self {
            CacheLink::Direct(v) => &v[i],
            CacheLink::Shard { base, local } => local[i].as_ref().unwrap_or(&base[i]),
        }
    }
}

impl std::ops::IndexMut<usize> for CacheLink<'_> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut Llc {
        match self {
            CacheLink::Direct(v) => &mut v[i],
            CacheLink::Shard { base, local } => {
                local[i].get_or_insert_with(|| base[i].clone())
            }
        }
    }
}

/// Slots per copy-on-write chunk of the last-writer table. 4096 slots
/// (64 KB) keeps the clone unit small enough that a worker touching a
/// few hot lines copies kilobytes, not the table's megabytes.
const WRITER_CHUNK: usize = 1 << 12;
/// Chunks covering the whole table.
const WRITER_CHUNKS: usize = WRITER_TABLE_SLOTS / WRITER_CHUNK;

/// One cloned writer-table chunk plus a written-slot bitmap: the merge
/// copies exactly the slots this worker stored, so workers writing
/// disjoint slots of the same chunk never clobber each other.
struct WriterChunk {
    slots: [(u64, u32); WRITER_CHUNK],
    written: [u64; WRITER_CHUNK / 64],
}

/// Worker handle on the last-writer table: chunked copy-on-write on the
/// sharded path. `Index` is the read path; `IndexMut` is used by worker
/// code exactly for stores, so it also marks the written bitmap.
enum WriterLink<'a> {
    Direct(&'a mut Vec<(u64, u32)>),
    Shard {
        base: &'a [(u64, u32)],
        chunks: Vec<Option<Box<WriterChunk>>>,
    },
}

impl<'a> WriterLink<'a> {
    fn shard(base: &'a [(u64, u32)]) -> Self {
        WriterLink::Shard {
            base,
            chunks: std::iter::repeat_with(|| None).take(WRITER_CHUNKS).collect(),
        }
    }
}

impl std::ops::Index<usize> for WriterLink<'_> {
    type Output = (u64, u32);
    #[inline]
    fn index(&self, i: usize) -> &(u64, u32) {
        match self {
            WriterLink::Direct(v) => &v[i],
            WriterLink::Shard { base, chunks } => match &chunks[i / WRITER_CHUNK] {
                Some(c) => &c.slots[i % WRITER_CHUNK],
                None => &base[i],
            },
        }
    }
}

impl std::ops::IndexMut<usize> for WriterLink<'_> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut (u64, u32) {
        match self {
            WriterLink::Direct(v) => &mut v[i],
            WriterLink::Shard { base, chunks } => {
                let c = chunks[i / WRITER_CHUNK].get_or_insert_with(|| {
                    let start = i / WRITER_CHUNK * WRITER_CHUNK;
                    let mut c = Box::new(WriterChunk {
                        slots: [(0u64, 0u32); WRITER_CHUNK],
                        written: [0; WRITER_CHUNK / 64],
                    });
                    c.slots.copy_from_slice(&base[start..start + WRITER_CHUNK]);
                    c
                });
                let off = i % WRITER_CHUNK;
                c.written[off >> 6] |= 1u64 << (off & 63);
                &mut c.slots[off]
            }
        }
    }
}

/// Copy one worker's written slots into the canonical table (tid-order
/// caller; later tids overwrite conflicting slots, like the serial
/// path's last-writer ordering).
fn merge_writer(table: &mut [(u64, u32)], chunks: Vec<Option<Box<WriterChunk>>>) {
    for (ci, chunk) in chunks.into_iter().enumerate() {
        let Some(c) = chunk else { continue };
        let start = ci * WRITER_CHUNK;
        for (wi, &word) in c.written.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let off = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                table[start + off] = c.slots[off];
            }
        }
    }
}

/// Worker handle on the trace recorder: a live borrow on the serial
/// path, a local buffer replayed at merge time on the sharded path
/// (the serial path emits each worker's events as one ascending-tid
/// block anyway, so the replay is byte-identical).
enum TraceLink<'a> {
    Off,
    Live(&'a mut TraceLog),
    Buffer(Vec<(u64, u32, TraceEvent)>),
}

impl TraceLink<'_> {
    #[inline]
    fn enabled(&self) -> bool {
        !matches!(self, TraceLink::Off)
    }

    #[inline]
    fn push(&mut self, at: u64, tid: u32, event: TraceEvent) {
        match self {
            TraceLink::Off => {}
            TraceLink::Live(t) => t.push(at, tid, event),
            TraceLink::Buffer(b) => b.push((at, tid, event)),
        }
    }
}

/// Everything a sharded-region worker mutated, detached from the view
/// borrows so the engine can merge it into `&mut self` state.
struct ShardDelta {
    mem: MemDelta,
    llcs: Vec<Option<Llc>>,
    writer: Vec<Option<Box<WriterChunk>>>,
    trace: Vec<(u64, u32, TraceEvent)>,
}

/// One-entry translation memo (the "uWalk cache"): the last 4 KB page
/// this worker resolved, so the other lines of that page skip the page
/// table, the TLB model, and the AutoNUMA hint check. Sound because
/// logical threads execute sequentially — nothing else mutates page
/// state while a worker runs — and every skip it enables replaces an
/// operation the reference model performs *without side effects*
/// (`resolve_touch` on a faulted page is a pure read, a guaranteed TLB
/// hit mutates nothing, `hint_fault_due` with a matching epoch mutates
/// nothing), so skipping is bit-identical. Invalidated on unmap;
/// `node` is resynced across AutoNUMA migration; `tlb_ok` is cleared
/// whenever the TLBs are flushed (thread migration, preemption storm).
#[derive(Clone, Copy)]
struct UWalk {
    /// 4 KB page index (`addr / SMALL_PAGE`); `u64::MAX` = empty.
    page: u64,
    /// The page's home node (kept in sync across AutoNUMA migration).
    node: NodeId,
    /// Whether the page lives in a huge (2 MB) frame.
    huge: bool,
    /// The page's TLB tag is known resident: a probe would hit without
    /// mutating the TLB. Never set by `dma_lines` fills (kernel copies
    /// bypass the TLBs), so the first demand touch still probes.
    tlb_ok: bool,
    /// Last AutoNUMA scan epoch synced into the page entry; `u16::MAX`
    /// means "not synced" (valid epochs are 0..=255, hence the widening).
    hint_epoch: u16,
}

impl UWalk {
    const EMPTY: UWalk = UWalk {
        page: u64::MAX,
        node: 0,
        huge: false,
        tlb_ok: false,
        hint_epoch: u16::MAX,
    };
}

/// Handle through which workload code executes on one logical thread.
pub struct Worker<'a> {
    cfg: &'a SimConfig,
    memory: MemLink<'a>,
    caches: CacheLink<'a>,
    link_paths: &'a Vec<Vec<Vec<u16>>>,
    tid: usize,
    core: CoreId,
    node: NodeId,
    clock: u64,
    sched: ThreadSchedule,
    next_sched_at: u64,
    next_scan_at: u64,
    core_since: u64,
    core_time: Vec<(CoreId, u64)>,
    tlb4: Tlb,
    tlb2: Tlb,
    l1: Tlb,
    writer_table: WriterLink<'a>,
    counters: Counters,
    locks: ThreadLockUse,
    dram_lines_by_node: Vec<u64>,
    link_lines: Vec<u64>,
    autonuma_countdown: u64,
    /// Last line index touched, for the streaming detector.
    last_line: u64,
    /// Page-granular fast-path memo (unused when `reference` is set).
    uwalk: UWalk,
    /// Per-region `[running * num_nodes + home]` DRAM latency for
    /// dependent misses, fault degradation folded in.
    lat_full: &'a [u64],
    /// Same, divided by MLP for sequential (pipelined) misses.
    lat_seq: &'a [u64],
    /// Node count; the latency tables are indexed
    /// `[(running * num_nodes + home) * 2 + is_write]`.
    num_nodes: usize,
    /// Per-node slow-tier flags, for the slow-tier hit counters.
    tier_slow: &'a [bool],
    /// Count per-page touches for `EpochView::page_heat` this region.
    heat_on: bool,
    /// One-entry run memo batching consecutive same-page heat counts
    /// (`u64::MAX` = empty).
    heat_page: u64,
    /// Touches accumulated on `heat_page` since the memo last spilled.
    heat_run: u64,
    /// Spilled per-page touch counts (sorted into `ThreadOutcome2::heat`
    /// at `finish`).
    heat: HashMap<u64, u64>,
    /// Run the per-line reference model instead of the fast path.
    reference: bool,
    /// Cached AutoNUMA scan epoch (`(clock / period) & 0xFF`) ...
    epoch_cur: u8,
    /// ... valid until the thread clock reaches this cycle.
    epoch_valid_until: u64,
    /// Faults active this region (quiet view when no plan is configured).
    faults: &'a ActiveFaults,
    /// Fast-path guard: nothing is degraded this region.
    faults_quiet: bool,
    /// The region index, for fault attribution.
    region: u64,
    /// Allocations performed so far this region (fault-decision key).
    alloc_seq: u64,
    /// Next forced preemption (preemption storm), or `u64::MAX`.
    next_preempt_at: u64,
    /// Thread-clock ceiling derived from the trial cycle budget.
    budget_limit: Option<u64>,
    /// Simulator cycles elapsed before this region (for timeout reports).
    sim_now: u64,
    /// Poison: the first fault this thread hit. All subsequent operations
    /// fast-forward (cheap no-ops) so the workload closure completes
    /// structurally without unwinding.
    fault: Option<SimError>,
    /// Trace recorder: a live borrow of the simulator's log on the
    /// serial path, a local buffer on the sharded path (replayed in tid
    /// order at the merge), `Off` when tracing is disabled — every hook
    /// is one branch and never charges cycles.
    trace: TraceLink<'a>,
}

impl<'a> Worker<'a> {
    /// Logical thread id within the region, `0..threads`.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The NUMA node the thread currently runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The hardware thread currently hosting this logical thread.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// This thread's accumulated model cycles so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &nqp_topology::MachineSpec {
        &self.cfg.machine
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        self.cfg
    }

    /// The fault that poisoned this worker, if any. Once set, every
    /// operation on the worker is a cheap no-op; [`NumaSim::try_parallel`]
    /// surfaces the fault when the region ends.
    pub fn fault(&self) -> Option<&SimError> {
        self.fault.as_ref()
    }

    /// Poison this worker with `fault` (used by allocator models and
    /// harness code that detect failure conditions of their own).
    pub fn fail(&mut self, fault: SimError) {
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    /// Charge pure compute work.
    #[inline]
    pub fn compute(&mut self, cycles: u64) {
        if self.fault.is_some() {
            return;
        }
        self.clock += cycles;
        self.counters.compute_cycles += cycles;
        self.check_events();
    }

    /// Map fresh address space under the configured placement policy.
    ///
    /// On failure (strict `Bind` OOM, machine-wide exhaustion, or an
    /// injected transient fault) the worker is poisoned and the null
    /// address 0 is returned; subsequent accesses through it are no-ops.
    pub fn map_pages(&mut self, bytes: u64) -> VAddr {
        if self.fault.is_some() {
            return 0;
        }
        self.clock += MMAP_SYSCALL_CYCLES;
        self.counters.kernel_cycles += MMAP_SYSCALL_CYCLES;
        if self.alloc_fault_injected() {
            return 0;
        }
        match self
            .memory
            .map(bytes, self.cfg.mem_policy, self.node, self.cfg.thp)
        {
            Ok(addr) => addr,
            Err(e) => {
                self.fail(e);
                0
            }
        }
    }

    /// Map fresh address space that concurrent workers will fault in
    /// uniformly (see `Memory::map_shared` for the modelling rationale).
    /// Fails like [`Worker::map_pages`].
    pub fn map_pages_shared(&mut self, bytes: u64) -> VAddr {
        if self.fault.is_some() {
            return 0;
        }
        self.clock += MMAP_SYSCALL_CYCLES;
        self.counters.kernel_cycles += MMAP_SYSCALL_CYCLES;
        if self.alloc_fault_injected() {
            return 0;
        }
        match self
            .memory
            .map_shared(bytes, self.cfg.mem_policy, self.node, self.cfg.thp)
        {
            Ok(addr) => addr,
            Err(e) => {
                self.fail(e);
                0
            }
        }
    }

    /// Decide (deterministically) whether the fault plan fails this
    /// allocation; poisons the worker and counts the injection if so.
    #[inline]
    fn alloc_fault_injected(&mut self) -> bool {
        let seq = self.alloc_seq;
        self.alloc_seq += 1;
        if self.faults_quiet || !self.faults.alloc_should_fail(self.tid, seq) {
            return false;
        }
        self.counters.alloc_fault_injections += 1;
        if self.trace.enabled() {
            let region = self.region;
            self.trace_event(TraceEvent::AllocFaultInjected { region });
        }
        self.fail(SimError::InjectedAllocFault {
            region: self.region,
            attempt: self.faults.attempt(),
        });
        true
    }

    /// Release a mapping. An invalid range poisons the worker.
    pub fn unmap_pages(&mut self, addr: VAddr, bytes: u64) {
        if self.fault.is_some() {
            return;
        }
        self.clock += MMAP_SYSCALL_CYCLES;
        self.counters.kernel_cycles += MMAP_SYSCALL_CYCLES;
        // The memoized page may be inside the released range; its entry
        // is reset, so the memo must not outlive it.
        self.uwalk = UWalk::EMPTY;
        if let Err(e) = self.memory.unmap(addr, bytes) {
            self.fail(e);
        }
    }

    /// Charge the cost of touching `[addr, addr+len)` without moving data.
    ///
    /// An empty touch is a no-op. (It used to be a `debug_assert!`, which
    /// meant a release build computed `addr + len - 1` with `len == 0`,
    /// wrapped, and walked on the order of 2^58 lines.)
    pub fn touch(&mut self, addr: VAddr, len: u64, access: Access) {
        if self.fault.is_some() || len == 0 {
            return;
        }
        let first = addr / LINE;
        let last = (addr + len - 1) / LINE;
        if self.reference {
            for line in first..=last {
                self.touch_line(line * LINE, access);
                if self.fault.is_some() {
                    return;
                }
            }
        } else {
            self.touch_run(first, last, access);
        }
    }

    /// Fast-path bulk touch of lines `first..=last`. The L1, writer
    /// table, and LLC are still probed per line (they are cheap
    /// direct-mapped array ops whose per-line state transitions the
    /// model depends on), but all page-invariant work — fault charging,
    /// TLB residency, AutoNUMA hint checks, home-node resolution, and
    /// the DRAM latency arithmetic (precomputed integer tables, so the
    /// sequential-MLP division never runs per line) — is amortised to
    /// once per 4 KB page through the uWalk memo.
    #[inline]
    fn touch_run(&mut self, first: u64, last: u64, access: Access) {
        // Software-pipeline the host-cache misses: the model structures a
        // line needs (LLC tag slot, page-table entry, writer-table slot)
        // live in multi-megabyte host arrays, and walking them serially
        // costs one dependent miss after another. Prefetching the next
        // line's slots while the current line is processed overlaps
        // those misses without touching any model state.
        self.prefetch_line(first * LINE, access);
        for line in first..=last {
            if line < last {
                self.prefetch_line((line + 1) * LINE, access);
            }
            self.touch_line_fast(line * LINE, access);
            if self.fault.is_some() {
                return;
            }
        }
    }

    /// Issue host prefetches for the model structures `touch_line_fast`
    /// will index for `line_addr`. Purely a latency hint (see
    /// [`crate::mix::prefetch`]); model state is never read or written.
    #[inline]
    fn prefetch_line(&self, line_addr: VAddr, access: Access) {
        let line = line_addr / LINE;
        self.caches[self.node].prefetch(line);
        if access == Access::Write {
            let slot = (mix_line(line) as usize) & (WRITER_TABLE_SLOTS - 1);
            crate::mix::prefetch(&self.writer_table[slot]);
        }
        if self.uwalk.page != line_addr / SMALL_PAGE {
            self.memory.prefetch_page(line_addr);
        }
    }

    /// The per-line reference model (`SimConfig::reference_model`): the
    /// oracle the page-granular fast path is differentially tested
    /// against. [`Worker::touch_line_fast`] must stay bit-identical to
    /// this function — edit them together.
    #[inline]
    fn touch_line(&mut self, line_addr: VAddr, access: Access) {
        let costs = &self.cfg.costs;
        self.clock += costs.touch_base_cycles;
        if self.heat_on {
            self.heat_note(line_addr / SMALL_PAGE);
        }

        // Private L1 with MESI-style invalidation: a hit is only valid if
        // no other thread wrote the line since we cached it.
        let line = line_addr / LINE;
        let slot = (mix_line(line) as usize) & (WRITER_TABLE_SLOTS - 1);
        let l1_hit = self.l1.access(line);
        let (wt_line, wt_tid) = self.writer_table[slot];
        let invalidated = wt_line == line && wt_tid != self.tid as u32;
        if access == Access::Write {
            self.writer_table[slot] = (line, self.tid as u32);
        }
        if l1_hit && !invalidated {
            self.counters.l1_hits += 1;
            self.last_line = line;
            self.check_events();
            return;
        }

        let res = match self.memory.resolve_touch(line_addr, self.node) {
            Ok(r) => r,
            Err(e) => {
                self.fail(e);
                return;
            }
        };
        if res.faulted {
            let lines_per_page = SMALL_PAGE / LINE;
            let cost = costs.fault_fixed_cycles
                + costs.fault_per_line_cycles * lines_per_page * res.fault_pages;
            self.clock += cost;
            self.counters.kernel_cycles += cost;
            self.counters.page_faults += res.fault_pages;
            if self.trace.enabled() {
                self.trace_event(TraceEvent::PageFault {
                    node: res.node,
                    pages: res.fault_pages,
                });
            }
        }

        // TLB.
        let tag = self.memory.tlb_tag(line_addr, res.huge);
        let (hit, walk) = if res.huge {
            (self.tlb2.access(tag), costs.walk_2m_cycles)
        } else {
            (self.tlb4.access(tag), costs.walk_4k_cycles)
        };
        if hit {
            self.counters.tlb_hits += 1;
        } else {
            self.clock += walk;
            if res.huge {
                self.counters.tlb_misses_2m += 1;
            } else {
                self.counters.tlb_misses_4k += 1;
            }
        }

        // AutoNUMA sampling.
        let mut home = res.node;
        if self.cfg.autonuma {
            // NUMA-hinting faults: the scanner unmaps each page once per
            // scan period; the first touch afterwards traps, walks page
            // tables, and touches page metadata (real traffic at the
            // page's home controller).
            let epoch = ((self.clock / costs.autonuma_scan_period_cycles) & 0xFF) as u8;
            if self.memory.hint_fault_due(line_addr, epoch) {
                self.clock += costs.autonuma_hint_fault_cycles;
                self.counters.kernel_cycles += costs.autonuma_hint_fault_cycles;
                self.counters.page_faults += 1;
                self.dma_lines(line_addr, 4);
            }
            self.autonuma_countdown -= 1;
            if self.autonuma_countdown == 0 {
                self.autonuma_countdown = AUTONUMA_SAMPLE_EVERY;
                let (migrated, blocked) = self.memory.autonuma_touch(
                    line_addr,
                    self.node,
                    costs.autonuma_migrate_threshold,
                    !self.faults.block_migrations,
                );
                if blocked {
                    // The kernel tried and failed (injected migration
                    // fault): isolate/copy setup was paid, the page stayed.
                    let cost = costs.page_migration_fixed_cycles / 2;
                    self.clock += cost;
                    self.counters.kernel_cycles += cost;
                    self.counters.page_migration_failures += 1;
                    if self.trace.enabled() {
                        self.trace_event(TraceEvent::PageMigrationBlocked { node: home });
                    }
                }
                if migrated > 0 {
                    // One migration event: the kernel rate-limits the
                    // copy work, so a huge frame costs a bounded burst,
                    // not 512 page-sized copies.
                    let cost = costs.page_migration_fixed_cycles;
                    self.clock += cost;
                    self.counters.kernel_cycles += cost;
                    self.counters.page_migrations += migrated;
                    if self.trace.enabled() {
                        self.trace_event(TraceEvent::PageMigration {
                            from_node: home,
                            to_node: self.node,
                            pages: migrated,
                        });
                    }
                    let lines_per_page = SMALL_PAGE / LINE;
                    self.dma_lines(line_addr, lines_per_page * migrated.min(8));
                    home = self.node;
                }
            }
        }

        // LLC of the node the thread currently runs on.
        if self.caches[self.node].access(line_addr / LINE) {
            self.clock += self.caches[self.node].hit_cycles;
            self.counters.cache_hits += 1;
        } else {
            self.counters.cache_misses += 1;
            let mut factor = self.cfg.machine.topology.latency_factor(self.node, home);
            if !self.faults_quiet && home != self.node {
                // Degraded links slow every access routed across them.
                factor *= self
                    .faults
                    .path_latency_mult(&self.link_paths[self.node][home]);
            }
            // The home node's memory tier scales the miss: a slow tier
            // (NVM/CXL) serves reads and writes at asymmetric latency;
            // ×1.0 for DRAM homes, bit-identical to the untiered model.
            let tier = self.cfg.machine.tier_of(home);
            factor *= match access {
                Access::Read => tier.read_factor(),
                Access::Write => tier.write_factor(),
            };
            let mut dram = (self.cfg.machine.dram_latency_cycles as f64 * factor) as u64;
            if line_addr / LINE == self.last_line + 1 {
                // Sequential miss: prefetched/pipelined.
                dram /= self.cfg.costs.mlp.max(1);
            }
            self.clock += dram;
            self.counters.dram_cycles += dram;
            self.dram_lines_by_node[home] += 1;
            if self.tier_slow[home] {
                self.counters.slow_tier_hits += 1;
                self.counters.slow_tier_lines += 1;
            }
            if home == self.node {
                self.counters.local_accesses += 1;
            } else {
                self.counters.remote_accesses += 1;
                for &l in &self.link_paths[self.node][home] {
                    self.link_lines[l as usize] += 1;
                }
            }
        }

        self.last_line = line_addr / LINE;
        self.check_events();
    }

    /// Page-granular fast path, bit-identical to [`Worker::touch_line`]
    /// (see DESIGN.md §4e for the identity argument): page-invariant
    /// work is memoized in the uWalk entry and DRAM latency comes from
    /// the per-region integer tables. Every probe that mutates per-line
    /// state (L1, writer table, LLC) still runs per line.
    #[inline]
    fn touch_line_fast(&mut self, line_addr: VAddr, access: Access) {
        let costs = &self.cfg.costs;
        self.clock += costs.touch_base_cycles;
        if self.heat_on {
            self.heat_note(line_addr / SMALL_PAGE);
        }

        // The writer-table probe is a random read into a multi-megabyte
        // host array. Its value only matters when the line is stored
        // (writes) or when an L1 hit must be checked for invalidation —
        // an L1-missing read never consumes it, so skipping the pure
        // read there is exact and saves the hottest host cache miss on
        // read-dominated scans and probe chains.
        let line = line_addr / LINE;
        let l1_hit = self.l1.access(line);
        if access == Access::Write {
            let slot = (mix_line(line) as usize) & (WRITER_TABLE_SLOTS - 1);
            if l1_hit {
                let (wt_line, wt_tid) = self.writer_table[slot];
                let invalidated = wt_line == line && wt_tid != self.tid as u32;
                self.writer_table[slot] = (line, self.tid as u32);
                if !invalidated {
                    self.counters.l1_hits += 1;
                    self.last_line = line;
                    self.check_events();
                    return;
                }
            } else {
                // L1-miss write: the previous entry is never consumed, so
                // store without the dependent load — the store retires
                // asynchronously instead of stalling on a cache miss.
                self.writer_table[slot] = (line, self.tid as u32);
            }
        } else if l1_hit {
            let slot = (mix_line(line) as usize) & (WRITER_TABLE_SLOTS - 1);
            let (wt_line, wt_tid) = self.writer_table[slot];
            if !(wt_line == line && wt_tid != self.tid as u32) {
                self.counters.l1_hits += 1;
                self.last_line = line;
                self.check_events();
                return;
            }
        }

        // uWalk memo: page resolution and fault charging once per page.
        // A hit is pure to skip — the reference's `resolve_touch` on an
        // already-faulted page only reads, and the fault could only have
        // been charged at the fill below (or silently absorbed by a DMA
        // resolve, which the reference also charges nothing for).
        let page = line_addr / SMALL_PAGE;
        if self.uwalk.page != page {
            let res = match self.memory.resolve_touch(line_addr, self.node) {
                Ok(r) => r,
                Err(e) => {
                    self.fail(e);
                    return;
                }
            };
            if res.faulted {
                let lines_per_page = SMALL_PAGE / LINE;
                let cost = costs.fault_fixed_cycles
                    + costs.fault_per_line_cycles * lines_per_page * res.fault_pages;
                self.clock += cost;
                self.counters.kernel_cycles += cost;
                self.counters.page_faults += res.fault_pages;
                if self.trace.enabled() {
                    self.trace_event(TraceEvent::PageFault {
                        node: res.node,
                        pages: res.fault_pages,
                    });
                }
            }
            self.uwalk = UWalk {
                page,
                node: res.node,
                huge: res.huge,
                tlb_ok: false,
                hint_epoch: u16::MAX,
            };
        }
        let huge = self.uwalk.huge;

        // TLB: with `tlb_ok` the tag is resident and the reference's
        // probe would record a hit without mutating anything.
        if self.uwalk.tlb_ok {
            self.counters.tlb_hits += 1;
        } else {
            let tag = self.memory.tlb_tag(line_addr, huge);
            let (hit, walk) = if huge {
                (self.tlb2.access(tag), costs.walk_2m_cycles)
            } else {
                (self.tlb4.access(tag), costs.walk_4k_cycles)
            };
            if hit {
                self.counters.tlb_hits += 1;
            } else {
                self.clock += walk;
                if huge {
                    self.counters.tlb_misses_2m += 1;
                } else {
                    self.counters.tlb_misses_4k += 1;
                }
            }
            self.uwalk.tlb_ok = true;
        }

        // AutoNUMA sampling: the hint check runs only when the memoized
        // epoch is stale (`hint_fault_due` with a matching epoch returns
        // false without mutating, so the skip is exact).
        let mut home = self.uwalk.node;
        if self.cfg.autonuma {
            let epoch = self.autonuma_epoch();
            if self.uwalk.hint_epoch != epoch as u16 {
                if self.memory.hint_fault_due(line_addr, epoch) {
                    self.clock += costs.autonuma_hint_fault_cycles;
                    self.counters.kernel_cycles += costs.autonuma_hint_fault_cycles;
                    self.counters.page_faults += 1;
                    self.dma_lines(line_addr, 4);
                }
                self.uwalk.hint_epoch = epoch as u16;
            }
            self.autonuma_countdown -= 1;
            if self.autonuma_countdown == 0 {
                self.autonuma_countdown = AUTONUMA_SAMPLE_EVERY;
                let (migrated, blocked) = self.memory.autonuma_touch(
                    line_addr,
                    self.node,
                    costs.autonuma_migrate_threshold,
                    !self.faults.block_migrations,
                );
                if blocked {
                    let cost = costs.page_migration_fixed_cycles / 2;
                    self.clock += cost;
                    self.counters.kernel_cycles += cost;
                    self.counters.page_migration_failures += 1;
                    if self.trace.enabled() {
                        self.trace_event(TraceEvent::PageMigrationBlocked { node: home });
                    }
                }
                if migrated > 0 {
                    let cost = costs.page_migration_fixed_cycles;
                    self.clock += cost;
                    self.counters.kernel_cycles += cost;
                    self.counters.page_migrations += migrated;
                    if self.trace.enabled() {
                        self.trace_event(TraceEvent::PageMigration {
                            from_node: home,
                            to_node: self.node,
                            pages: migrated,
                        });
                    }
                    // The home moves before the copy traffic is charged
                    // (the reference's nested resolve sees the
                    // post-migration node), so resync the memo first.
                    self.uwalk.node = self.node;
                    let lines_per_page = SMALL_PAGE / LINE;
                    self.dma_lines(line_addr, lines_per_page * migrated.min(8));
                    home = self.node;
                }
            }
        }

        // LLC of the node the thread currently runs on.
        if self.caches[self.node].access(line) {
            self.clock += self.caches[self.node].hit_cycles;
            self.counters.cache_hits += 1;
        } else {
            self.counters.cache_misses += 1;
            let idx = (self.node * self.num_nodes + home) * 2
                + usize::from(access == Access::Write);
            let dram = if line == self.last_line + 1 {
                // Sequential miss: prefetched/pipelined.
                self.lat_seq[idx]
            } else {
                self.lat_full[idx]
            };
            self.clock += dram;
            self.counters.dram_cycles += dram;
            self.dram_lines_by_node[home] += 1;
            if self.tier_slow[home] {
                self.counters.slow_tier_hits += 1;
                self.counters.slow_tier_lines += 1;
            }
            if home == self.node {
                self.counters.local_accesses += 1;
            } else {
                self.counters.remote_accesses += 1;
                for &l in &self.link_paths[self.node][home] {
                    self.link_lines[l as usize] += 1;
                }
            }
        }

        self.last_line = line;
        self.check_events();
    }

    /// Current AutoNUMA scan epoch — the reference's per-line
    /// `(clock / period) & 0xFF`, but paying the division only when the
    /// thread clock crosses into a new period.
    #[inline]
    #[must_use]
    fn autonuma_epoch(&mut self) -> u8 {
        if self.clock >= self.epoch_valid_until {
            let period = self.cfg.costs.autonuma_scan_period_cycles;
            let q = self.clock / period;
            self.epoch_cur = (q & 0xFF) as u8;
            self.epoch_valid_until = q.saturating_add(1).saturating_mul(period);
        }
        self.epoch_cur
    }

    /// Count one page touch for the heat map. Both touch paths call
    /// this at the same point (once per line touched), so heat is
    /// identical under the fast and reference models; it never charges
    /// cycles, so collection cannot perturb results. The one-entry run
    /// memo batches consecutive same-page touches into one map update.
    #[inline]
    fn heat_note(&mut self, page: u64) {
        if page == self.heat_page {
            self.heat_run += 1;
        } else {
            self.heat_flush();
            self.heat_page = page;
            self.heat_run = 1;
        }
    }

    /// Spill the heat run memo into the per-page map.
    fn heat_flush(&mut self) {
        if self.heat_run > 0 {
            *self.heat.entry(self.heat_page).or_insert(0) += self.heat_run;
        }
        self.heat_run = 0;
    }

    /// Charge an uncached, streamed kernel copy of `lines` cache lines
    /// starting at `addr` (page-migration copies, khugepaged compaction):
    /// pipelined DRAM latency per line plus full controller/link demand,
    /// bypassing the caches.
    pub fn dma_lines(&mut self, addr: VAddr, lines: u64) {
        if self.fault.is_some() {
            return;
        }
        // Fast path: a uWalk hit implies the page is faulted, so the
        // reference's resolve would be a pure read of the same node.
        let home = if !self.reference && self.uwalk.page == addr / SMALL_PAGE {
            self.uwalk.node
        } else {
            let res = match self.memory.resolve_touch(addr, self.node) {
                Ok(r) => r,
                Err(e) => {
                    self.fail(e);
                    return;
                }
            };
            if !self.reference {
                // A DMA resolve fills the memo for subsequent demand
                // touches but says nothing about TLB residency (kernel
                // copies bypass the TLBs): `tlb_ok` stays false.
                self.uwalk = UWalk {
                    page: addr / SMALL_PAGE,
                    node: res.node,
                    huge: res.huge,
                    tlb_ok: false,
                    hint_epoch: u16::MAX,
                };
            }
            res.node
        };
        // Kernel copies stream as reads: the slow tier's read factor
        // applies (its write half is charged where the copy lands, a
        // refinement the model folds into the read-side charge).
        let per_line = if self.reference {
            let mut factor = self.cfg.machine.topology.latency_factor(self.node, home);
            if !self.faults_quiet && home != self.node {
                factor *= self
                    .faults
                    .path_latency_mult(&self.link_paths[self.node][home]);
            }
            factor *= self.cfg.machine.tier_of(home).read_factor();
            ((self.cfg.machine.dram_latency_cycles as f64 * factor) as u64
                / self.cfg.costs.mlp.max(1))
            .max(1)
        } else {
            self.lat_seq[(self.node * self.num_nodes + home) * 2].max(1)
        };
        self.clock += per_line * lines;
        self.counters.dram_cycles += per_line * lines;
        self.dram_lines_by_node[home] += lines;
        if self.tier_slow[home] {
            self.counters.slow_tier_lines += lines;
        }
        // Kernel copies consume bandwidth (and cross links) but are not
        // application memory accesses: they stay out of the LAR counters.
        if home != self.node {
            for &l in &self.link_paths[self.node][home] {
                self.link_lines[l as usize] += lines;
            }
        }
        self.check_events();
    }

    /// Write raw bytes, charging access costs. No-op on a poisoned worker.
    pub fn write_bytes(&mut self, addr: VAddr, data: &[u8]) {
        self.touch(addr, data.len() as u64, Access::Write);
        if self.fault.is_none() {
            self.memory.write_bytes(addr, data);
        }
    }

    /// Read raw bytes, charging access costs. A poisoned worker reads
    /// zeroes (the data is discarded with the failed trial anyway).
    pub fn read_bytes(&mut self, addr: VAddr, out: &mut [u8]) {
        self.touch(addr, out.len() as u64, Access::Read);
        if self.fault.is_none() {
            self.memory.read_bytes(addr, out);
        } else {
            out.fill(0);
        }
    }

    /// Read a little-endian `u64`, charging access costs.
    #[inline]
    pub fn read_u64(&mut self, addr: VAddr) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Write a little-endian `u64`, charging access costs.
    #[inline]
    pub fn write_u64(&mut self, addr: VAddr, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Read a little-endian `u32`, charging access costs.
    #[inline]
    pub fn read_u32(&mut self, addr: VAddr) -> u32 {
        let mut buf = [0u8; 4];
        self.read_bytes(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Write a little-endian `u32`, charging access costs.
    #[inline]
    pub fn write_u32(&mut self, addr: VAddr, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Read one byte, charging access costs.
    #[inline]
    pub fn read_u8(&mut self, addr: VAddr) -> u8 {
        let mut buf = [0u8; 1];
        self.read_bytes(addr, &mut buf);
        buf[0]
    }

    /// Write one byte, charging access costs.
    #[inline]
    pub fn write_u8(&mut self, addr: VAddr, value: u8) {
        self.write_bytes(addr, &[value]);
    }

    /// Read `out.len()` consecutive little-endian `u64`s with a single
    /// ranged touch — the bulk path hot operators use for tuple-at-once
    /// reads instead of one access charge per field. A poisoned worker
    /// fills `out` with zeroes.
    #[inline]
    pub fn read_u64_run(&mut self, addr: VAddr, out: &mut [u64]) {
        self.touch(addr, (out.len() as u64) * 8, Access::Read);
        if self.fault.is_some() {
            out.fill(0);
            return;
        }
        let mut buf = [0u8; 8];
        for (i, slot) in out.iter_mut().enumerate() {
            self.memory.read_bytes(addr + (i as u64) * 8, &mut buf);
            *slot = u64::from_le_bytes(buf);
        }
    }

    /// Read two consecutive `u64`s (e.g. a 16-byte tuple) in one touch.
    #[inline]
    #[must_use]
    pub fn read_u64_pair(&mut self, addr: VAddr) -> (u64, u64) {
        let mut out = [0u64; 2];
        self.read_u64_run(addr, &mut out);
        (out[0], out[1])
    }

    /// Read three consecutive `u64`s (e.g. a 24-byte hash-table entry)
    /// in one touch.
    #[inline]
    #[must_use]
    pub fn read_u64_triple(&mut self, addr: VAddr) -> (u64, u64, u64) {
        let mut out = [0u64; 3];
        self.read_u64_run(addr, &mut out);
        (out[0], out[1], out[2])
    }

    /// Write `values` as consecutive little-endian `u64`s with a single
    /// ranged touch (e.g. initialising a fresh hash-table entry).
    #[inline]
    pub fn write_u64_run(&mut self, addr: VAddr, values: &[u64]) {
        self.touch(addr, (values.len() as u64) * 8, Access::Write);
        if self.fault.is_some() {
            return;
        }
        for (i, v) in values.iter().enumerate() {
            self.memory.write_bytes(addr + (i as u64) * 8, &v.to_le_bytes());
        }
    }

    /// Read-modify-write one `u64` as a single write-intent access
    /// (an in-place counter bump is one memory operation, not a read
    /// charge plus a write charge). Returns the value written; a
    /// poisoned worker returns 0 without calling `f`.
    #[inline]
    pub fn rmw_u64(&mut self, addr: VAddr, f: impl FnOnce(u64) -> u64) -> u64 {
        self.touch(addr, 8, Access::Write);
        if self.fault.is_some() {
            return 0;
        }
        let mut buf = [0u8; 8];
        self.memory.read_bytes(addr, &mut buf);
        let v = f(u64::from_le_bytes(buf));
        self.memory.write_bytes(addr, &v.to_le_bytes());
        v
    }

    /// Acquire a modelled lock whose critical section lasts `hold_cycles`.
    ///
    /// Charges only the uncontended acquisition cost (an atomic RMW) to
    /// this thread — the critical-section *work* is whatever the caller
    /// does while holding the lock and is charged by those operations
    /// themselves. `hold_cycles` feeds the analytic contention model: at
    /// region resolution every thread is charged an expected wait based
    /// on how heavily other threads held the same lock.
    pub fn lock(&mut self, lock: LockId, hold_cycles: u64) {
        if self.fault.is_some() {
            return;
        }
        const LOCK_ACQUIRE_CYCLES: u64 = 20;
        self.clock += LOCK_ACQUIRE_CYCLES;
        self.locks.record(lock, hold_cycles);
        self.check_events();
    }

    /// Counters accumulated by this thread so far in the region.
    pub fn thread_counters(&self) -> Counters {
        self.counters
    }

    /// Record a trace event at this thread's current model cycle.
    /// A no-op single branch when tracing is disabled; never charges
    /// cycles, so tracing cannot perturb results.
    #[inline]
    fn trace_event(&mut self, event: TraceEvent) {
        let at = self.sim_now + self.clock;
        let tid = self.tid as u32;
        self.trace.push(at, tid, event);
    }

    #[inline]
    fn check_events(&mut self) {
        while self.clock >= self.next_sched_at {
            // OS load balancer migrates this thread.
            self.core_time.push((self.core, self.clock - self.core_since));
            self.core_since = self.clock;
            let from_core = self.core;
            self.core = self.sched.migrate();
            self.node = self.cfg.machine.node_of_core(self.core);
            self.next_sched_at = self.sched.next_event_at();
            self.clock += self.cfg.costs.thread_migration_cycles;
            self.counters.kernel_cycles += self.cfg.costs.thread_migration_cycles;
            self.counters.thread_migrations += 1;
            if self.trace.enabled() {
                let to_core = self.core;
                self.trace_event(TraceEvent::ThreadMigration { from_core, to_core });
            }
            self.tlb4.flush();
            self.tlb2.flush();
            self.l1.flush();
            // The memoized page/node/huge stay correct (migrating the
            // thread moves no pages), but its TLB residency is gone.
            self.uwalk.tlb_ok = false;
        }
        while self.clock >= self.next_preempt_at {
            // Preemption storm: an antagonist process steals the core for
            // a scheduling slice. The thread resumes on the same core but
            // pays the context switch and comes back to cold L1/TLBs.
            self.next_preempt_at = self
                .next_preempt_at
                .saturating_add(self.faults.preempt_period.unwrap_or(u64::MAX));
            self.clock += self.cfg.costs.thread_migration_cycles;
            self.counters.kernel_cycles += self.cfg.costs.thread_migration_cycles;
            self.counters.preemptions += 1;
            if self.trace.enabled() {
                let core = self.core;
                self.trace_event(TraceEvent::Preemption { core });
            }
            self.tlb4.flush();
            self.tlb2.flush();
            self.l1.flush();
            self.uwalk.tlb_ok = false;
        }
        if self.clock >= self.next_scan_at {
            self.clock += self.cfg.costs.autonuma_scan_cycles;
            self.counters.kernel_cycles += self.cfg.costs.autonuma_scan_cycles;
            self.next_scan_at =
                self.clock + self.cfg.costs.autonuma_scan_period_cycles;
        }
        if let Some(limit) = self.budget_limit {
            if self.clock >= limit && self.fault.is_none() {
                self.fault = Some(SimError::Timeout {
                    budget_cycles: self.cfg.trial_budget_cycles.unwrap_or(limit),
                    elapsed_cycles: self.sim_now + self.clock,
                });
            }
        }
    }

    fn finish(mut self) -> ThreadOutcome {
        self.core_time.push((self.core, self.clock - self.core_since));
        self.heat_flush();
        let Worker {
            clock,
            core_time,
            counters,
            locks,
            dram_lines_by_node,
            link_lines,
            heat,
            fault,
            tlb4,
            tlb2,
            l1,
            sched,
            memory,
            caches,
            writer_table,
            trace,
            ..
        } = self;
        // A sharded worker carries its isolated overlays out for the
        // engine's tid-order merge; a serial worker mutated canonical
        // state in place and carries nothing.
        let shard = match (memory, caches, writer_table) {
            (
                MemLink::Shard(view),
                CacheLink::Shard { local, .. },
                WriterLink::Shard { chunks, .. },
            ) => Some(ShardDelta {
                mem: view.into_delta(),
                llcs: local,
                writer: chunks,
                trace: match trace {
                    TraceLink::Buffer(b) => b,
                    _ => Vec::new(),
                },
            }),
            _ => None,
        };
        let mut heat: Vec<(u64, u64)> = heat.into_iter().collect();
        heat.sort_unstable();
        ThreadOutcome {
            stats: ThreadOutcome2 {
                clock,
                core_time,
                counters,
                locks,
                dram_lines_by_node,
                link_lines,
                heat,
                fault,
            },
            tlb4,
            tlb2,
            l1,
            sched,
            shard,
        }
    }
}

/// Mixer for the writer-table slot index.
#[inline]
fn mix_line(x: u64) -> u64 {
    crate::mix::xor_mul_shift(x, 30, 0xbf58_476d_1ce4_e5b9, 27)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MemPolicy, ThreadPlacement};
    use nqp_topology::machines;

    fn quiet_cfg(machine: nqp_topology::MachineSpec) -> SimConfig {
        SimConfig::os_default(machine)
            .with_threads(ThreadPlacement::Sparse)
            .with_autonuma(false)
            .with_thp(false)
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut sim = NumaSim::new(SimConfig::os_default(machines::machine_a()));
            let stats = sim.parallel(4, &mut (), |w, _| {
                let a = w.map_pages(1 << 16);
                for i in 0..256 {
                    w.write_u64(a + i * 64, i);
                }
                w.compute(1000);
            });
            (stats.elapsed_cycles, sim.counters())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn first_touch_places_pages_on_toucher() {
        let mut sim = NumaSim::new(quiet_cfg(machines::machine_b()));
        let mut addrs = Vec::new();
        sim.parallel(4, &mut addrs, |w, addrs| {
            let a = w.map_pages(SMALL_PAGE);
            w.write_u64(a, w.tid() as u64);
            addrs.push((w.tid(), a, w.node()));
        });
        for (_, addr, node) in addrs {
            assert_eq!(sim.node_of(addr), Some(node));
        }
    }

    #[test]
    fn interleave_spreads_one_threads_pages() {
        let cfg = quiet_cfg(machines::machine_b()).with_policy(MemPolicy::Interleave);
        let mut sim = NumaSim::new(cfg);
        let mut addr = 0;
        sim.serial(&mut addr, |w, addr| {
            *addr = w.map_pages(SMALL_PAGE * 8);
            for p in 0..8 {
                w.write_u64(*addr + p * SMALL_PAGE, p);
            }
        });
        let nodes: Vec<_> = (0..8)
            .map(|p| sim.node_of(addr + p * SMALL_PAGE).unwrap())
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // 3 of 4 pages are remote for the node-0 thread.
        let c = sim.counters();
        assert!(c.remote_accesses > c.local_accesses);
    }

    #[test]
    fn repeated_access_hits_cache() {
        let mut sim = NumaSim::new(quiet_cfg(machines::machine_b()));
        let mut addr = 0;
        sim.serial(&mut addr, |w, addr| {
            *addr = w.map_pages(SMALL_PAGE);
            w.write_u64(*addr, 1);
        });
        let before = sim.counters();
        sim.serial(&mut addr, |w, addr| {
            for _ in 0..100 {
                w.read_u64(*addr);
            }
        });
        let delta = sim.counters() - before;
        // Repeats are served by the L1 (or the LLC after a migration);
        // DRAM is never touched again.
        assert!(delta.l1_hits + delta.cache_hits >= 99, "{delta:?}");
        assert_eq!(delta.cache_misses, 0);
    }

    #[test]
    fn flush_caches_forces_misses() {
        let mut sim = NumaSim::new(quiet_cfg(machines::machine_b()));
        let mut addr = 0;
        sim.serial(&mut addr, |w, addr| {
            *addr = w.map_pages(SMALL_PAGE);
            w.write_u64(*addr, 1);
        });
        sim.flush_caches();
        let before = sim.counters().cache_misses;
        sim.serial(&mut addr, |w, addr| {
            w.read_u64(*addr);
        });
        assert_eq!(sim.counters().cache_misses - before, 1);
    }

    #[test]
    fn byte_data_round_trips_through_workers() {
        let mut sim = NumaSim::new(quiet_cfg(machines::machine_b()));
        let mut addr = 0;
        sim.serial(&mut addr, |w, addr| {
            *addr = w.map_pages(SMALL_PAGE);
            w.write_u64(*addr + 16, 0xdead_beef);
            w.write_u32(*addr + 24, 7);
            w.write_u8(*addr + 28, 9);
        });
        sim.serial(&mut addr, |w, addr| {
            assert_eq!(w.read_u64(*addr + 16), 0xdead_beef);
            assert_eq!(w.read_u32(*addr + 24), 7);
            assert_eq!(w.read_u8(*addr + 28), 9);
            assert_eq!(w.read_u64(*addr), 0, "untouched memory reads zero");
        });
    }

    #[test]
    fn unbound_threads_migrate_affinitized_do_not() {
        let long_run = |placement| {
            let cfg = SimConfig::os_default(machines::machine_a())
                .with_threads(placement)
                .with_autonuma(false)
                .with_thp(false);
            let mut sim = NumaSim::new(cfg);
            sim.parallel(8, &mut (), |w, _| {
                let a = w.map_pages(1 << 20);
                for rep in 0..4u64 {
                    for i in 0..(1 << 14) {
                        w.write_u64(a + (i * 64) % (1 << 20), rep + i);
                    }
                }
            });
            sim.counters().thread_migrations
        };
        assert_eq!(long_run(ThreadPlacement::Sparse), 0);
        assert!(long_run(ThreadPlacement::None) > 0);
    }

    #[test]
    fn autonuma_migrates_remotely_hammered_pages() {
        let cfg = quiet_cfg(machines::machine_b()).with_autonuma(true);
        let mut sim = NumaSim::new(cfg);
        let mut addr = 0;
        // Thread on node 0 faults the pages...
        sim.serial(&mut addr, |w, addr| {
            *addr = w.map_pages(SMALL_PAGE * 16);
            for p in 0..16 {
                w.write_u64(*addr + p * SMALL_PAGE, p);
            }
        });
        // ...then threads on other nodes hammer them.
        sim.parallel(4, &mut addr, |w, addr| {
            if w.tid() == 1 {
                for rep in 0..200u64 {
                    for p in 0..16 {
                        w.read_u64(*addr + p * SMALL_PAGE + (rep % 8) * 64);
                    }
                }
            }
        });
        assert!(
            sim.counters().page_migrations > 0,
            "AutoNUMA never migrated a page"
        );
    }

    #[test]
    fn preferred_saturates_one_controller() {
        let run = |policy| {
            let cfg = quiet_cfg(machines::machine_a()).with_policy(policy);
            let mut sim = NumaSim::new(cfg);
            let stats = sim.parallel(16, &mut (), |w, _| {
                let a = w.map_pages(1 << 22);
                // Stream far beyond LLC to force DRAM traffic.
                for i in 0..(1 << 16) {
                    w.write_u64(a + i * 64, i);
                }
            });
            stats
        };
        let pref = run(MemPolicy::Preferred(0));
        let inter = run(MemPolicy::Interleave);
        // Preferred funnels all demand to node 0; Interleave spreads it.
        assert!(
            pref.controller_utilisation[1..].iter().all(|&u| u < 0.05),
            "pref={:?}",
            pref.controller_utilisation
        );
        let spread = inter
            .controller_utilisation
            .iter()
            .filter(|&&u| u > 0.01)
            .count();
        assert!(spread >= 4, "inter={:?}", inter.controller_utilisation);
        assert!(pref.elapsed_cycles > inter.elapsed_cycles);
    }

    #[test]
    fn oversubscription_extends_elapsed_time() {
        // 32 threads on machine A's 16 hardware threads must take ~2x the
        // per-thread time.
        let cfg = quiet_cfg(machines::machine_a());
        let mut sim = NumaSim::new(cfg);
        let stats = sim.parallel(32, &mut (), |w, _| {
            w.compute(100_000);
        });
        assert!(stats.elapsed_cycles >= 200_000);
        assert_eq!(stats.max_thread_cycles, 100_000);
    }

    #[test]
    fn lock_contention_charges_waits() {
        let cfg = quiet_cfg(machines::machine_b());
        let mut sim = NumaSim::new(cfg);
        let lock = sim.new_lock();
        let stats = sim.parallel(8, &mut (), |w, _| {
            for _ in 0..100 {
                w.lock(lock, 500);
                w.compute(100);
            }
        });
        assert!(stats.counters.lock_wait_cycles > 0);
        assert!(stats.elapsed_cycles > stats.counters.lock_wait_cycles / 8);
    }

    #[test]
    fn thp_reduces_tlb_misses_on_big_scans() {
        let run = |thp: bool| {
            let cfg = quiet_cfg(machines::machine_a()).with_thp(thp);
            let mut sim = NumaSim::new(cfg);
            sim.serial(&mut (), |w, _| {
                let a = w.map_pages(64 << 20);
                // Touch one line per page over 16k pages, twice: the second
                // pass exceeds the 4k TLB (544 entries) but fits the 2M
                // side (8 entries x 2MB... it does not fit either, but far
                // fewer distinct huge tags exist).
                for _ in 0..2 {
                    for p in 0..(16 << 10) {
                        w.read_u64(a + p * SMALL_PAGE);
                    }
                }
            });
            let c = sim.counters();
            (c.tlb_misses_4k, c.tlb_misses_2m)
        };
        let (m4_off, m2_off) = run(false);
        let (m4_on, m2_on) = run(true);
        assert_eq!(m2_off, 0);
        assert_eq!(m4_on, 0);
        assert!(
            m2_on < m4_off / 4,
            "huge pages should slash TLB misses: 4k={m4_off} 2m={m2_on}"
        );
    }

    #[test]
    fn unpinned_placement_persists_across_regions() {
        // A thread that faults pages in one region must still be local to
        // them in the next (the settled-server property): re-reading its
        // own page produces zero remote accesses.
        let cfg = SimConfig::os_default(machines::machine_b())
            .with_autonuma(false)
            .with_thp(false)
            .with_settled_scheduler(true);
        let mut sim = NumaSim::new(cfg);
        let mut addrs = vec![0u64; 4];
        sim.parallel(4, &mut addrs, |w, addrs| {
            let a = w.map_pages(SMALL_PAGE);
            w.write_u64(a, 1);
            addrs[w.tid()] = a;
        });
        sim.flush_caches();
        let before = sim.counters();
        sim.parallel(4, &mut addrs, |w, addrs| {
            w.read_u64(addrs[w.tid()]);
        });
        let delta = sim.counters() - before;
        assert_eq!(delta.remote_accesses, 0, "threads moved between regions");
        assert_eq!(delta.local_accesses, 4);
    }

    #[test]
    fn dma_lines_add_demand_without_lar_noise() {
        let mut sim = NumaSim::new(quiet_cfg(machines::machine_b()));
        let mut addr = 0;
        sim.serial(&mut addr, |w, addr| {
            *addr = w.map_pages(SMALL_PAGE);
            w.write_u64(*addr, 1);
        });
        let before = sim.counters();
        let stats = sim.serial(&mut addr, |w, addr| {
            w.dma_lines(*addr, 16);
        });
        let delta = sim.counters() - before;
        // Demand shows on the controller; LAR counters stay untouched.
        assert!(stats.controller_utilisation.iter().any(|&u| u > 0.0));
        assert_eq!(delta.remote_accesses, 0);
        assert!(delta.dram_cycles > 0);
    }

    #[test]
    fn map_pages_shared_spreads_under_first_touch() {
        let cfg = quiet_cfg(machines::machine_b());
        let mut sim = NumaSim::new(cfg);
        let mut addr = 0;
        sim.serial(&mut addr, |w, addr| {
            *addr = w.map_pages_shared(SMALL_PAGE * 4);
        });
        let nodes: Vec<_> = (0..4)
            .map(|p| sim.node_of(addr + p * SMALL_PAGE).unwrap())
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn region_stats_report_threads_and_bottleneck() {
        let mut sim = NumaSim::new(quiet_cfg(machines::machine_b()));
        let stats = sim.parallel(3, &mut (), |w, _| w.compute(10));
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.bottleneck, Bottleneck::ThreadLatency);
        assert_eq!(stats.elapsed_cycles, 10);
    }

    #[test]
    fn bind_policy_fails_strictly_when_node_is_full() {
        let mut machine = machines::machine_b();
        machine.mem_per_node_bytes = 4 * SMALL_PAGE;
        let cfg = quiet_cfg(machine).with_policy(MemPolicy::Bind(1));
        let mut sim = NumaSim::new(cfg);
        let err = sim
            .try_serial(&mut (), |w, _| {
                let a = w.map_pages(SMALL_PAGE * 8);
                w.write_u64(a, 1);
            })
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { node: 1, .. }), "{err}");
        // Nothing leaked from the failed strict allocation.
        assert!(sim.node_used_pages().iter().all(|&p| p == 0));
    }

    #[test]
    fn injected_alloc_fault_poisons_and_clears_on_retry_attempt() {
        let run = |attempt: u32| {
            let plan = FaultPlan::new(3).with_alloc_fail(0, 0, 1);
            let cfg = quiet_cfg(machines::machine_b())
                .with_faults(plan)
                .with_fault_attempt(attempt);
            let mut sim = NumaSim::new(cfg);
            let mut writes = 0u64;
            let r = sim.try_serial(&mut writes, |w, writes| {
                let a = w.map_pages(SMALL_PAGE);
                w.write_u64(a, 7);
                if w.fault().is_none() {
                    *writes += 1;
                }
            });
            (r, writes)
        };
        let (r0, writes0) = run(0);
        let err = r0.unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(writes0, 0, "poisoned worker must not report progress");
        let (r1, writes1) = run(1);
        assert!(r1.is_ok(), "fault must clear on the retry attempt");
        assert_eq!(writes1, 1);
    }

    #[test]
    fn trial_budget_times_out_long_regions() {
        let cfg = quiet_cfg(machines::machine_b()).with_trial_budget(50_000);
        let mut sim = NumaSim::new(cfg);
        let err = sim
            .try_serial(&mut (), |w, _| {
                for _ in 0..100 {
                    w.compute(10_000);
                }
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Timeout { budget_cycles: 50_000, .. }), "{err}");
        // An under-budget region still succeeds.
        let cfg = quiet_cfg(machines::machine_b()).with_trial_budget(50_000);
        let mut sim = NumaSim::new(cfg);
        assert!(sim.try_serial(&mut (), |w, _| w.compute(10_000)).is_ok());
    }

    #[test]
    fn budget_timeout_dominates_earlier_faults() {
        // The region error used to be the lowest-tid fault: when
        // thread 0 caught an injected fault and thread 1 blew the
        // trial budget, the trial reported `Faulted` — conflating a
        // timeout the watchdog would have killed the attempt for
        // anyway. Timeout must dominate.
        let run = |budget: u64| {
            let plan = FaultPlan::new(3).with_alloc_fail(0, 0, 1);
            let cfg = quiet_cfg(machines::machine_b())
                .with_faults(plan)
                .with_trial_budget(budget);
            let mut sim = NumaSim::new(cfg);
            sim.try_parallel(2, &mut (), |w, _| {
                if w.tid() == 0 {
                    let a = w.map_pages(SMALL_PAGE); // injected fault fires here
                    w.write_u64(a, 1);
                } else {
                    for _ in 0..100 {
                        w.compute(10_000); // blows a 50k budget
                    }
                }
            })
            .unwrap_err()
        };
        let err = run(50_000);
        assert!(matches!(err, SimError::Timeout { budget_cycles: 50_000, .. }), "{err}");
        // Under an ample budget, the injected fault still wins.
        let err = run(50_000_000);
        assert!(err.is_transient(), "{err}");
    }

    #[test]
    fn deadline_abandons_at_region_boundary_charging_burned_cycles() {
        let cfg = quiet_cfg(machines::machine_b()).with_deadline(10_000);
        let mut sim = NumaSim::new(cfg);
        // The first region runs to completion even though it crosses
        // the deadline mid-region — cancellation is cooperative.
        let stats = sim.try_serial(&mut (), |w, _| w.compute(25_000)).unwrap();
        assert!(stats.elapsed_cycles >= 25_000);
        let burned = sim.now_cycles();
        // The next region boundary observes the passed deadline.
        let err = sim.try_serial(&mut (), |w, _| w.compute(1)).unwrap_err();
        match err {
            SimError::DeadlineExceeded { deadline_cycles, elapsed_cycles } => {
                assert_eq!(deadline_cycles, 10_000);
                assert_eq!(elapsed_cycles, burned, "burned cycles stay charged");
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        // A fresh sim with an ample deadline never trips.
        let cfg = quiet_cfg(machines::machine_b()).with_deadline(10_000_000);
        let mut sim = NumaSim::new(cfg);
        assert!(sim.try_serial(&mut (), |w, _| w.compute(1_000)).is_ok());
        assert!(sim.try_serial(&mut (), |w, _| w.compute(1_000)).is_ok());
    }

    #[test]
    fn preemption_storm_flushes_and_counts() {
        let plan = FaultPlan::new(0).with_event(
            0,
            0,
            crate::fault::FaultKind::PreemptionStorm { period_cycles: 5_000 },
        );
        let cfg = quiet_cfg(machines::machine_b()).with_faults(plan);
        let mut sim = NumaSim::new(cfg);
        let stats = sim
            .try_serial(&mut (), |w, _| w.compute(50_000))
            .unwrap();
        assert!(stats.counters.preemptions >= 5, "{:?}", stats.counters);
        assert_eq!(stats.counters.thread_migrations, 0, "storms are not migrations");
    }

    #[test]
    fn migration_failure_blocks_autonuma_and_counts() {
        let run = |migfail: bool| {
            let mut plan = FaultPlan::new(0);
            if migfail {
                plan = plan.with_event(0, u64::MAX, crate::fault::FaultKind::MigrationFail);
            }
            let cfg = quiet_cfg(machines::machine_b())
                .with_autonuma(true)
                .with_faults(plan);
            let mut sim = NumaSim::new(cfg);
            let mut addr = 0;
            sim.try_serial(&mut addr, |w, addr| {
                *addr = w.map_pages(SMALL_PAGE * 16);
                for p in 0..16 {
                    w.write_u64(*addr + p * SMALL_PAGE, p);
                }
            })
            .unwrap();
            sim.try_parallel(4, &mut addr, |w, addr| {
                if w.tid() == 1 {
                    for rep in 0..200u64 {
                        for p in 0..16 {
                            w.read_u64(*addr + p * SMALL_PAGE + (rep % 8) * 64);
                        }
                    }
                }
            })
            .unwrap();
            sim.counters()
        };
        let healthy = run(false);
        let degraded = run(true);
        assert!(healthy.page_migrations > 0);
        assert_eq!(healthy.page_migration_failures, 0);
        assert_eq!(degraded.page_migrations, 0, "blocked migrations must not move pages");
        assert!(degraded.page_migration_failures > 0);
    }

    #[test]
    fn link_degradation_slows_remote_traffic() {
        let run = |lat: f64| {
            let mut cfg = quiet_cfg(machines::machine_b())
                .with_policy(MemPolicy::Preferred(1));
            if lat > 1.0 {
                let num_links = cfg.machine.topology.links().len();
                let mut plan = FaultPlan::new(0);
                for l in 0..num_links {
                    plan = plan.with_event(
                        0,
                        u64::MAX,
                        crate::fault::FaultKind::LinkDegrade {
                            link: l,
                            latency_x: lat,
                            bandwidth_div: 1.0,
                        },
                    );
                }
                cfg = cfg.with_faults(plan);
            }
            let mut sim = NumaSim::new(cfg);
            sim.try_serial(&mut (), |w, _| {
                let a = w.map_pages(1 << 20);
                for i in 0..(1 << 12) {
                    // Strided reads defeat the streaming detector: full
                    // remote latency on every miss.
                    w.read_u64(a + (i * 8192) % (1 << 20));
                }
            })
            .unwrap()
            .elapsed_cycles
        };
        let healthy = run(1.0);
        let degraded = run(4.0);
        assert!(
            degraded > healthy + healthy / 4,
            "degraded links must slow remote-heavy runs: {healthy} vs {degraded}"
        );
    }

    #[test]
    fn touch_with_len_zero_is_a_noop() {
        // Regression: `addr + len - 1` used to wrap in release builds
        // (the guard was only a debug_assert) and walk ~2^58 lines.
        let mut sim = NumaSim::new(quiet_cfg(machines::machine_b()));
        let mut addr = 0;
        sim.serial(&mut addr, |w, addr| {
            *addr = w.map_pages(SMALL_PAGE);
            w.write_u64(*addr, 1);
        });
        let before = sim.counters();
        let empty = sim.serial(&mut (), |_, _| {}).elapsed_cycles;
        let elapsed = sim
            .serial(&mut addr, |w, addr| {
                w.touch(*addr, 0, Access::Read);
                w.read_bytes(*addr, &mut []);
                w.write_bytes(*addr, &[]);
            })
            .elapsed_cycles;
        assert_eq!(elapsed, empty, "an empty touch must charge nothing");
        assert_eq!(sim.counters(), before);
    }

    /// Differential harness: the same workload under the fast path and
    /// the per-line reference model must agree on every cycle and
    /// counter. The heavy mixed-workload sweep lives in
    /// `tests/hotpath.rs`; this is the in-crate smoke version.
    fn assert_paths_agree(cfg: SimConfig, threads: usize) {
        let run = |reference: bool| {
            let mut sim = NumaSim::new(cfg.clone().with_reference_model(reference));
            let mut stats = Vec::new();
            for round in 0..3u64 {
                let s = sim.parallel(threads, &mut (), |w, _| {
                    let a = w.map_pages(SMALL_PAGE * 32);
                    for i in 0..(SMALL_PAGE * 32 / 64) {
                        w.touch(a + i * 64, 64, Access::Write);
                    }
                    // Strided re-reads, cross-line and page-crossing
                    // ranged touches, an unmap, and a DMA burst.
                    for i in 0..512u64 {
                        w.read_u64(a + (i * 4096 + round * 24) % (SMALL_PAGE * 31));
                    }
                    w.touch(a + SMALL_PAGE - 8, 4096, Access::Read);
                    w.dma_lines(a + SMALL_PAGE, 16);
                    w.unmap_pages(a, SMALL_PAGE * 32);
                    let b = w.map_pages(SMALL_PAGE * 4);
                    w.read_u64_run(b, &mut [0u64; 8]);
                    w.rmw_u64(b + 64, |v| v + 1);
                });
                stats.push((s.elapsed_cycles, s.counters));
            }
            (sim.now_cycles(), sim.counters(), stats)
        };
        let fast = run(false);
        let reference = run(true);
        assert_eq!(fast.0, reference.0, "elapsed cycles diverge");
        assert_eq!(fast.1, reference.1, "counters diverge");
        assert_eq!(fast.2, reference.2, "per-region stats diverge");
    }

    #[test]
    fn fast_path_matches_reference_quiet() {
        assert_paths_agree(quiet_cfg(machines::machine_b()), 4);
    }

    #[test]
    fn fast_path_matches_reference_os_default() {
        // AutoNUMA on, THP on, unpinned threads: hint faults, epoch
        // math, migrations, and TLB flushes all in play.
        assert_paths_agree(SimConfig::os_default(machines::machine_b()), 4);
    }

    #[test]
    fn fast_path_matches_reference_under_faults() {
        let plan = FaultPlan::new(9)
            .with_event(
                0,
                u64::MAX,
                crate::fault::FaultKind::LinkDegrade {
                    link: 0,
                    latency_x: 3.0,
                    bandwidth_div: 2.0,
                },
            )
            .with_event(
                1,
                u64::MAX,
                crate::fault::FaultKind::PreemptionStorm { period_cycles: 40_000 },
            )
            .with_event(2, u64::MAX, crate::fault::FaultKind::MigrationFail);
        assert_paths_agree(
            SimConfig::os_default(machines::machine_b()).with_faults(plan),
            4,
        );
    }
}
