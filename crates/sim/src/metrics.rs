//! Hardware-counter-style metrics: the quantities `perf` reports in
//! Table III and Figure 5b, counted natively by the simulator.

use std::ops::{Add, AddAssign, Sub};

/// Event counters accumulated during simulation.
///
/// Counters are additive; per-thread counters are merged into per-region
/// and whole-simulation totals with `+`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Memory touches that hit the thread's private L1 (valid, not
    /// invalidated by another thread's write).
    pub l1_hits: u64,
    /// Memory touches that hit the last-level cache.
    pub cache_hits: u64,
    /// Memory touches that missed the LLC and went to DRAM.
    pub cache_misses: u64,
    /// DRAM accesses satisfied by the local node's memory.
    pub local_accesses: u64,
    /// DRAM accesses that crossed the interconnect.
    pub remote_accesses: u64,
    /// 4 KB-page TLB misses.
    pub tlb_misses_4k: u64,
    /// 2 MB-page TLB misses.
    pub tlb_misses_2m: u64,
    /// TLB hits (either page size).
    pub tlb_hits: u64,
    /// Minor page faults (first touch of a page).
    pub page_faults: u64,
    /// Threads moved between cores by the OS scheduler.
    pub thread_migrations: u64,
    /// Pages moved between nodes by AutoNUMA.
    pub page_migrations: u64,
    /// Cycles spent on pure compute (as charged by `Worker::compute`).
    pub compute_cycles: u64,
    /// Cycles spent waiting on DRAM (latency portion, after NUMA factor).
    pub dram_cycles: u64,
    /// Cycles spent in kernel overhead: faults, migrations, AutoNUMA scans.
    pub kernel_cycles: u64,
    /// Cycles spent waiting on contended locks.
    pub lock_wait_cycles: u64,
    /// Transient allocation failures injected by the fault plan.
    pub alloc_fault_injections: u64,
    /// AutoNUMA page migrations that failed under an injected
    /// migration-failure fault (cycles burned, page left in place).
    pub page_migration_failures: u64,
    /// Forced context switches injected by a preemption storm.
    pub preemptions: u64,
    /// Pages moved off a dying node by node-offline evacuation (also
    /// counted in `page_migrations`).
    pub evacuated_pages: u64,
    /// Node-offline events applied (a nonzero value marks the trial as
    /// degraded: it completed without part of the machine).
    pub nodes_offlined: u64,
    /// 4 KB pages the tier daemon moved from a slow tier up to DRAM.
    pub promotions: u64,
    /// 4 KB pages the tier daemon moved from DRAM down to a slow tier.
    pub demotions: u64,
    /// DRAM touches (LLC misses) served by a slow-tier home node.
    pub slow_tier_hits: u64,
    /// Cache lines transferred to/from slow-tier nodes, including bulk
    /// DMA traffic (`slow_tier_hits` counts only demand misses).
    pub slow_tier_lines: u64,
}

/// Apply a macro to the full counter field list. Single source of truth
/// for `AddAssign`/`Sub`/`fields`/`set`: adding a counter to the struct
/// without extending this list is a compile error in `fields()` (array
/// length mismatch), not a silent drift.
macro_rules! for_each_counter {
    ($m:ident) => {
        $m!(
            l1_hits,
            cache_hits,
            cache_misses,
            local_accesses,
            remote_accesses,
            tlb_misses_4k,
            tlb_misses_2m,
            tlb_hits,
            page_faults,
            thread_migrations,
            page_migrations,
            compute_cycles,
            dram_cycles,
            kernel_cycles,
            lock_wait_cycles,
            alloc_fault_injections,
            page_migration_failures,
            preemptions,
            evacuated_pages,
            nodes_offlined,
            promotions,
            demotions,
            slow_tier_hits,
            slow_tier_lines
        )
    };
}

impl Counters {
    /// Number of counter fields, = `fields().len()`.
    pub const FIELD_COUNT: usize = 24;

    /// All counters as `(name, value)` pairs in declaration order, for
    /// serialisers and report formatters that must stay in sync with the
    /// struct.
    #[must_use]
    pub fn fields(&self) -> [(&'static str, u64); Self::FIELD_COUNT] {
        macro_rules! emit {
            ($($f:ident),*) => { [$((stringify!($f), self.$f)),*] };
        }
        for_each_counter!(emit)
    }

    /// Set one counter by its `fields()` name. Returns `false` (and
    /// changes nothing) for an unknown name.
    pub fn set(&mut self, name: &str, value: u64) -> bool {
        macro_rules! emit {
            ($($f:ident),*) => {
                match name {
                    $(stringify!($f) => { self.$f = value; true })*
                    _ => false,
                }
            };
        }
        for_each_counter!(emit)
    }

    /// Counter delta between two snapshots: `self` (later) minus
    /// `earlier`, saturating per field at zero.
    ///
    /// Saturation matters for degraded trials: a post-evacuation
    /// snapshot subtracted from a snapshot taken mid-fault can be
    /// momentarily "behind" on fields charged outside regions, and a
    /// plain `-` would panic in debug builds.
    #[must_use]
    pub fn delta(self, earlier: Counters) -> Counters {
        let mut out = Counters::default();
        macro_rules! emit {
            ($($f:ident),*) => {
                $(out.$f = self.$f.saturating_sub(earlier.$f);)*
            };
        }
        for_each_counter!(emit);
        out
    }

    /// Total DRAM accesses (local + remote).
    pub fn dram_accesses(&self) -> u64 {
        self.local_accesses + self.remote_accesses
    }

    /// Local Access Ratio: local / (local + remote) DRAM accesses, the
    /// metric of Figure 5b. Returns 1.0 when no DRAM access occurred.
    pub fn local_access_ratio(&self) -> f64 {
        let total = self.dram_accesses();
        if total == 0 {
            1.0
        } else {
            self.local_accesses as f64 / total as f64
        }
    }

    /// LLC hit ratio. Returns 1.0 when no memory touch occurred.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of DRAM accesses served by a slow-tier node — the
    /// tiering study's headline ratio. Returns 0.0 when no DRAM access
    /// occurred (an all-DRAM machine reports 0 by construction).
    pub fn slow_tier_hit_ratio(&self) -> f64 {
        let total = self.dram_accesses();
        if total == 0 {
            0.0
        } else {
            self.slow_tier_hits as f64 / total as f64
        }
    }

    /// TLB miss ratio across both page sizes.
    pub fn tlb_miss_ratio(&self) -> f64 {
        let misses = self.tlb_misses_4k + self.tlb_misses_2m;
        let total = misses + self.tlb_hits;
        if total == 0 {
            0.0
        } else {
            misses as f64 / total as f64
        }
    }
}

impl Add for Counters {
    type Output = Counters;
    fn add(mut self, rhs: Counters) -> Counters {
        self += rhs;
        self
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        macro_rules! emit {
            ($($f:ident),*) => { $(self.$f += rhs.$f;)* };
        }
        for_each_counter!(emit);
    }
}

impl Sub for Counters {
    type Output = Counters;
    /// Counter delta between two snapshots (`later - earlier`),
    /// saturating at zero per field — see [`Counters::delta`].
    fn sub(self, rhs: Counters) -> Counters {
        self.delta(rhs)
    }
}

/// Which modelled resource bounded a parallel region's elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The slowest thread's own latency chain (compute + memory latency).
    ThreadLatency,
    /// A core ran more than one thread (oversubscription / bad scheduling).
    CoreOversubscription,
    /// A node's memory controller was bandwidth-saturated.
    MemoryController(usize),
    /// An interconnect link was bandwidth-saturated.
    InterconnectLink(usize),
}

/// Outcome of one parallel region.
#[derive(Debug, Clone)]
pub struct RegionStats {
    /// Simulated elapsed cycles for the region (what "runtime" means in
    /// every figure).
    pub elapsed_cycles: u64,
    /// The slowest single thread's accumulated cycles (latency bound).
    pub max_thread_cycles: u64,
    /// Which resource set the elapsed time.
    pub bottleneck: Bottleneck,
    /// Peak memory-controller utilisation (demand / capacity over the
    /// latency-bound window), per node.
    pub controller_utilisation: Vec<f64>,
    /// Peak interconnect-link utilisation, indexed like `Topology::links`.
    pub link_utilisation: Vec<f64>,
    /// Counters accumulated during this region only.
    pub counters: Counters,
    /// Number of threads that ran in the region.
    pub threads: usize,
}

impl RegionStats {
    /// Utilisation of the busiest memory controller.
    pub fn peak_controller_utilisation(&self) -> f64 {
        self.controller_utilisation.iter().copied().fold(0.0, f64::max)
    }

    /// Utilisation of the busiest interconnect link.
    pub fn peak_link_utilisation(&self) -> f64 {
        self.link_utilisation.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add() {
        let a = Counters { cache_hits: 1, local_accesses: 2, ..Default::default() };
        let b = Counters { cache_hits: 3, remote_accesses: 4, ..Default::default() };
        let c = a + b;
        assert_eq!(c.cache_hits, 4);
        assert_eq!(c.local_accesses, 2);
        assert_eq!(c.remote_accesses, 4);
    }

    #[test]
    fn lar_of_empty_counters_is_one() {
        assert_eq!(Counters::default().local_access_ratio(), 1.0);
    }

    #[test]
    fn lar_computation() {
        let c = Counters { local_accesses: 70, remote_accesses: 30, ..Default::default() };
        assert!((c.local_access_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(c.dram_accesses(), 100);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = Counters::default();
        assert_eq!(c.cache_hit_ratio(), 1.0);
        assert_eq!(c.tlb_miss_ratio(), 0.0);
    }

    #[test]
    fn tlb_miss_ratio_counts_both_sizes() {
        let c = Counters { tlb_hits: 6, tlb_misses_4k: 3, tlb_misses_2m: 1, ..Default::default() };
        assert!((c.tlb_miss_ratio() - 0.4).abs() < 1e-12);
    }

    /// Regression: subtracting snapshots out of order (a degraded
    /// trial's pre-evacuation snapshot minus a later one) used to
    /// underflow and panic in debug builds; it must now saturate.
    #[test]
    fn sub_saturates_on_out_of_order_snapshots() {
        let earlier = Counters { page_faults: 3, evacuated_pages: 0, ..Default::default() };
        let later = Counters { page_faults: 5, evacuated_pages: 128, ..Default::default() };
        // Backwards subtraction: every field clamps at zero.
        let d = earlier - later;
        assert_eq!(d, Counters::default());
        // Forward subtraction still yields the exact delta.
        let d = later.delta(earlier);
        assert_eq!(d.page_faults, 2);
        assert_eq!(d.evacuated_pages, 128);
    }

    #[test]
    fn fields_and_set_round_trip_every_counter() {
        let mut c = Counters::default();
        // Give every field a distinct value via `set`, then read back.
        for (i, (name, _)) in Counters::default().fields().iter().enumerate() {
            assert!(c.set(name, (i as u64 + 1) * 10), "unknown field {name}");
        }
        for (i, (_, v)) in c.fields().iter().enumerate() {
            assert_eq!(*v, (i as u64 + 1) * 10);
        }
        assert_eq!(c.fields().len(), Counters::FIELD_COUNT);
        assert!(!c.set("not_a_counter", 1));
    }
}
