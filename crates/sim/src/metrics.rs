//! Hardware-counter-style metrics: the quantities `perf` reports in
//! Table III and Figure 5b, counted natively by the simulator.

use std::ops::{Add, AddAssign, Sub};

/// Event counters accumulated during simulation.
///
/// Counters are additive; per-thread counters are merged into per-region
/// and whole-simulation totals with `+`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Memory touches that hit the thread's private L1 (valid, not
    /// invalidated by another thread's write).
    pub l1_hits: u64,
    /// Memory touches that hit the last-level cache.
    pub cache_hits: u64,
    /// Memory touches that missed the LLC and went to DRAM.
    pub cache_misses: u64,
    /// DRAM accesses satisfied by the local node's memory.
    pub local_accesses: u64,
    /// DRAM accesses that crossed the interconnect.
    pub remote_accesses: u64,
    /// 4 KB-page TLB misses.
    pub tlb_misses_4k: u64,
    /// 2 MB-page TLB misses.
    pub tlb_misses_2m: u64,
    /// TLB hits (either page size).
    pub tlb_hits: u64,
    /// Minor page faults (first touch of a page).
    pub page_faults: u64,
    /// Threads moved between cores by the OS scheduler.
    pub thread_migrations: u64,
    /// Pages moved between nodes by AutoNUMA.
    pub page_migrations: u64,
    /// Cycles spent on pure compute (as charged by `Worker::compute`).
    pub compute_cycles: u64,
    /// Cycles spent waiting on DRAM (latency portion, after NUMA factor).
    pub dram_cycles: u64,
    /// Cycles spent in kernel overhead: faults, migrations, AutoNUMA scans.
    pub kernel_cycles: u64,
    /// Cycles spent waiting on contended locks.
    pub lock_wait_cycles: u64,
    /// Transient allocation failures injected by the fault plan.
    pub alloc_fault_injections: u64,
    /// AutoNUMA page migrations that failed under an injected
    /// migration-failure fault (cycles burned, page left in place).
    pub page_migration_failures: u64,
    /// Forced context switches injected by a preemption storm.
    pub preemptions: u64,
    /// Pages moved off a dying node by node-offline evacuation (also
    /// counted in `page_migrations`).
    pub evacuated_pages: u64,
    /// Node-offline events applied (a nonzero value marks the trial as
    /// degraded: it completed without part of the machine).
    pub nodes_offlined: u64,
}

impl Counters {
    /// Total DRAM accesses (local + remote).
    pub fn dram_accesses(&self) -> u64 {
        self.local_accesses + self.remote_accesses
    }

    /// Local Access Ratio: local / (local + remote) DRAM accesses, the
    /// metric of Figure 5b. Returns 1.0 when no DRAM access occurred.
    pub fn local_access_ratio(&self) -> f64 {
        let total = self.dram_accesses();
        if total == 0 {
            1.0
        } else {
            self.local_accesses as f64 / total as f64
        }
    }

    /// LLC hit ratio. Returns 1.0 when no memory touch occurred.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// TLB miss ratio across both page sizes.
    pub fn tlb_miss_ratio(&self) -> f64 {
        let misses = self.tlb_misses_4k + self.tlb_misses_2m;
        let total = misses + self.tlb_hits;
        if total == 0 {
            0.0
        } else {
            misses as f64 / total as f64
        }
    }
}

impl Add for Counters {
    type Output = Counters;
    fn add(mut self, rhs: Counters) -> Counters {
        self += rhs;
        self
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        self.l1_hits += rhs.l1_hits;
        self.cache_hits += rhs.cache_hits;
        self.cache_misses += rhs.cache_misses;
        self.local_accesses += rhs.local_accesses;
        self.remote_accesses += rhs.remote_accesses;
        self.tlb_misses_4k += rhs.tlb_misses_4k;
        self.tlb_misses_2m += rhs.tlb_misses_2m;
        self.tlb_hits += rhs.tlb_hits;
        self.page_faults += rhs.page_faults;
        self.thread_migrations += rhs.thread_migrations;
        self.page_migrations += rhs.page_migrations;
        self.compute_cycles += rhs.compute_cycles;
        self.dram_cycles += rhs.dram_cycles;
        self.kernel_cycles += rhs.kernel_cycles;
        self.lock_wait_cycles += rhs.lock_wait_cycles;
        self.alloc_fault_injections += rhs.alloc_fault_injections;
        self.page_migration_failures += rhs.page_migration_failures;
        self.preemptions += rhs.preemptions;
        self.evacuated_pages += rhs.evacuated_pages;
        self.nodes_offlined += rhs.nodes_offlined;
    }
}

impl Sub for Counters {
    type Output = Counters;
    /// Counter delta between two snapshots (`later - earlier`).
    fn sub(self, rhs: Counters) -> Counters {
        Counters {
            l1_hits: self.l1_hits - rhs.l1_hits,
            cache_hits: self.cache_hits - rhs.cache_hits,
            cache_misses: self.cache_misses - rhs.cache_misses,
            local_accesses: self.local_accesses - rhs.local_accesses,
            remote_accesses: self.remote_accesses - rhs.remote_accesses,
            tlb_misses_4k: self.tlb_misses_4k - rhs.tlb_misses_4k,
            tlb_misses_2m: self.tlb_misses_2m - rhs.tlb_misses_2m,
            tlb_hits: self.tlb_hits - rhs.tlb_hits,
            page_faults: self.page_faults - rhs.page_faults,
            thread_migrations: self.thread_migrations - rhs.thread_migrations,
            page_migrations: self.page_migrations - rhs.page_migrations,
            compute_cycles: self.compute_cycles - rhs.compute_cycles,
            dram_cycles: self.dram_cycles - rhs.dram_cycles,
            kernel_cycles: self.kernel_cycles - rhs.kernel_cycles,
            lock_wait_cycles: self.lock_wait_cycles - rhs.lock_wait_cycles,
            alloc_fault_injections: self.alloc_fault_injections
                - rhs.alloc_fault_injections,
            page_migration_failures: self.page_migration_failures
                - rhs.page_migration_failures,
            preemptions: self.preemptions - rhs.preemptions,
            evacuated_pages: self.evacuated_pages - rhs.evacuated_pages,
            nodes_offlined: self.nodes_offlined - rhs.nodes_offlined,
        }
    }
}

/// Which modelled resource bounded a parallel region's elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The slowest thread's own latency chain (compute + memory latency).
    ThreadLatency,
    /// A core ran more than one thread (oversubscription / bad scheduling).
    CoreOversubscription,
    /// A node's memory controller was bandwidth-saturated.
    MemoryController(usize),
    /// An interconnect link was bandwidth-saturated.
    InterconnectLink(usize),
}

/// Outcome of one parallel region.
#[derive(Debug, Clone)]
pub struct RegionStats {
    /// Simulated elapsed cycles for the region (what "runtime" means in
    /// every figure).
    pub elapsed_cycles: u64,
    /// The slowest single thread's accumulated cycles (latency bound).
    pub max_thread_cycles: u64,
    /// Which resource set the elapsed time.
    pub bottleneck: Bottleneck,
    /// Peak memory-controller utilisation (demand / capacity over the
    /// latency-bound window), per node.
    pub controller_utilisation: Vec<f64>,
    /// Peak interconnect-link utilisation, indexed like `Topology::links`.
    pub link_utilisation: Vec<f64>,
    /// Counters accumulated during this region only.
    pub counters: Counters,
    /// Number of threads that ran in the region.
    pub threads: usize,
}

impl RegionStats {
    /// Utilisation of the busiest memory controller.
    pub fn peak_controller_utilisation(&self) -> f64 {
        self.controller_utilisation.iter().copied().fold(0.0, f64::max)
    }

    /// Utilisation of the busiest interconnect link.
    pub fn peak_link_utilisation(&self) -> f64 {
        self.link_utilisation.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add() {
        let a = Counters { cache_hits: 1, local_accesses: 2, ..Default::default() };
        let b = Counters { cache_hits: 3, remote_accesses: 4, ..Default::default() };
        let c = a + b;
        assert_eq!(c.cache_hits, 4);
        assert_eq!(c.local_accesses, 2);
        assert_eq!(c.remote_accesses, 4);
    }

    #[test]
    fn lar_of_empty_counters_is_one() {
        assert_eq!(Counters::default().local_access_ratio(), 1.0);
    }

    #[test]
    fn lar_computation() {
        let c = Counters { local_accesses: 70, remote_accesses: 30, ..Default::default() };
        assert!((c.local_access_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(c.dram_accesses(), 100);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = Counters::default();
        assert_eq!(c.cache_hit_ratio(), 1.0);
        assert_eq!(c.tlb_miss_ratio(), 0.0);
    }

    #[test]
    fn tlb_miss_ratio_counts_both_sizes() {
        let c = Counters { tlb_hits: 6, tlb_misses_4k: 3, tlb_misses_2m: 1, ..Default::default() };
        assert!((c.tlb_miss_ratio() - 0.4).abs() < 1e-12);
    }
}
