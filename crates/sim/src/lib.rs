// Harness-path code must surface faults, never panic on them: unwrap()
// and expect() are denied outside tests (enforced by scripts/check.sh).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! A deterministic NUMA machine simulator.
//!
//! This crate is the measurement substrate for the whole workspace: it
//! models the hardware and OS mechanisms that the paper's tuning knobs
//! act on —
//!
//! * the **page table and placement policies** (First Touch, Interleave,
//!   Localalloc, Preferred) of `numactl`,
//! * per-node **last-level caches** and per-thread **TLBs** (4 KB and
//!   2 MB entries, so Transparent Hugepages has its real effect),
//! * **memory-controller and interconnect bandwidth** rooflines, which
//!   punish consolidated placements,
//! * the **OS thread scheduler** (free migration vs. Sparse/Dense
//!   affinity) and the **AutoNUMA** balancing daemon,
//! * an analytic **lock contention** model used by the allocator models.
//!
//! Workloads run as logical threads inside [`NumaSim::parallel`]; all
//! randomness is seeded, so identical configurations produce identical
//! cycle counts and hardware-counter values. A region can also shard
//! its simulated workers across host threads with
//! [`NumaSim::try_parallel_sharded`] (`SimConfig::shards`, the CLI's
//! `--shards N`): each worker runs against the frozen region-start
//! state through private copy-on-write overlays that merge back in
//! ascending-tid order at the region boundary, so the model's output
//! is byte-identical at every shard count — only host wall-clock
//! changes (DESIGN.md §4h; `examples/sharded_trial.rs` demonstrates
//! it, `tests/shards.rs` enforces it).
//!
//! ```
//! use nqp_sim::{NumaSim, SimConfig};
//! use nqp_topology::machines;
//!
//! let mut sim = NumaSim::new(SimConfig::tuned(machines::machine_a()));
//! let stats = sim.parallel(16, &mut (), |w, _| {
//!     let buf = w.map_pages(1 << 16);
//!     for i in 0..1024u64 {
//!         w.write_u64(buf + i * 8, i);
//!     }
//! });
//! assert!(stats.elapsed_cycles > 0);
//! assert_eq!(stats.counters.thread_migrations, 0); // affinitized
//! ```

mod cache;
mod config;
mod engine;
mod error;
mod fault;
mod lock;
mod mem;
mod metrics;
mod mix;
mod sched;
mod tlb;
mod trace;
mod tune;

pub use cache::Llc;
pub use config::{machine_by_name, CostParams, MemPolicy, SimConfig, ThreadPlacement};
pub use engine::{Access, NumaSim, Worker};
pub use error::{SimError, SimResult};
pub use fault::{ActiveFaults, FaultEvent, FaultKind, FaultPlan};
pub use lock::LockId;
pub use mem::{VAddr, HUGE_PAGE, LINE, PAGES_PER_HUGE, SMALL_PAGE};
pub use metrics::{Bottleneck, Counters, RegionStats};
pub use tlb::Tlb;
pub use trace::{
    EpochSample, PhaseSpan, TraceConfig, TraceEvent, TraceLog, TraceRecord, NO_TID,
};
pub use tune::{EpochView, HookChain, PageHeat, RegionHook, TuneAction, TuneFactory};

