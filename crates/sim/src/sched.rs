//! OS thread scheduler model: affinity plans and, for the unbound default,
//! the migration behaviour responsible for the run-to-run jitter of
//! Figure 3.

use crate::config::{SimConfig, ThreadPlacement};
use nqp_topology::CoreId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Where a thread runs over time within one parallel region.
#[derive(Debug)]
pub enum ThreadSchedule {
    /// Affinitized: the thread never leaves its core.
    Pinned(CoreId),
    /// Unbound: the load balancer moves the thread at a fixed cadence
    /// within an (often reduced) core pool. Threads occupy slots of a
    /// shuffled pool and every balancing tick rotates all of them by one
    /// slot — the balancer targets idle cores, so threads never pile up
    /// on one core unless the pool itself is smaller than the thread
    /// count (the oversubscribed draws of Figure 3).
    Roaming {
        pool: Vec<CoreId>,
        /// This thread's current slot in the pool.
        idx: usize,
        /// Cycles between balancing ticks.
        period: u64,
        next_at: u64,
    },
}

impl ThreadSchedule {
    /// The core the thread starts the region on.
    pub fn initial_core(&self) -> CoreId {
        match self {
            ThreadSchedule::Pinned(c) => *c,
            ThreadSchedule::Roaming { pool, idx, .. } => pool[*idx],
        }
    }

    /// Cycle timestamp of the next migration (`u64::MAX` when pinned).
    pub fn next_event_at(&self) -> u64 {
        match self {
            ThreadSchedule::Pinned(_) => u64::MAX,
            ThreadSchedule::Roaming { next_at, .. } => *next_at,
        }
    }

    /// Shift the migration clock down by `elapsed` cycles (called between
    /// regions: each region's thread clock restarts at zero). The result
    /// stays on the shared tick grid so all threads keep rotating in
    /// lockstep.
    pub fn rebase(&mut self, elapsed: u64) {
        if let ThreadSchedule::Roaming { next_at, period, .. } = self {
            while *next_at <= elapsed {
                *next_at += *period;
            }
            *next_at -= elapsed;
        }
    }

    /// Apply the pending migration and schedule the next one. Returns the
    /// new core.
    pub fn migrate(&mut self) -> CoreId {
        match self {
            ThreadSchedule::Pinned(c) => *c,
            ThreadSchedule::Roaming { pool, idx, period, next_at } => {
                *idx = (*idx + 1) % pool.len();
                *next_at += *period;
                pool[*idx]
            }
        }
    }
}

/// Build the per-thread schedules for one region.
///
/// * `Sparse` spreads threads round-robin across nodes (thread `i` on node
///   `i mod N`), using one hardware thread per visit.
/// * `Dense` packs threads into consecutive hardware threads, filling node
///   0 before node 1.
/// * `None` samples, per region, the "scheduler luck" of the run: a core
///   pool (sometimes the whole machine, sometimes a few cores — the
///   consolidation behaviour real kernels exhibit for power and thermal
///   balancing) and a migration cadence. This is what makes consecutive
///   unbound runs differ by large factors (Figure 3).
pub fn plan_region(cfg: &SimConfig, nthreads: usize, region_idx: u64) -> Vec<ThreadSchedule> {
    let machine = &cfg.machine;
    let total = machine.total_hw_threads();
    // Only compute nodes have cores: memory-only slow-tier nodes are
    // skipped by every placement.
    let nodes = machine.compute_nodes();
    let tpn = machine.threads_per_node;
    match cfg.thread_placement {
        ThreadPlacement::Sparse => (0..nthreads)
            .map(|i| {
                let node = i % nodes;
                let slot = (i / nodes) % tpn;
                ThreadSchedule::Pinned(node * tpn + slot)
            })
            .collect(),
        ThreadPlacement::Dense => {
            (0..nthreads).map(|i| ThreadSchedule::Pinned(i % total)).collect()
        }
        ThreadPlacement::None => {
            let mut region_rng = StdRng::seed_from_u64(
                cfg.seed ^ region_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            // Scheduler luck: how much of the machine does this region get,
            // and how frantically does the balancer move threads? A
            // settled server process always gets the whole machine with
            // calm balancing; short runs roll the dice (Figure 3).
            let luck: f64 = region_rng.random();
            // Settled processes keep the whole machine and are migrated
            // orders of magnitude less often than fresh ones.
            if cfg.sched_settled {
                let period = cfg.costs.sched_migration_period_cycles * 32;
                let mut pool: Vec<CoreId> = (0..total).collect();
                for i in (1..pool.len()).rev() {
                    let j = region_rng.random_range(0..=i);
                    pool.swap(i, j);
                }
                return (0..nthreads)
                    .map(|i| ThreadSchedule::Roaming {
                        pool: pool.clone(),
                        idx: i % total,
                        period,
                        next_at: period,
                    })
                    .collect();
            }
            let (pool_size, storm) = if luck < 0.40 {
                (total, 1)
            } else if luck < 0.70 {
                ((total / 2).max(1), 2)
            } else if luck < 0.90 {
                ((total / 4).max(1), 8)
            } else {
                (1, 32)
            };
            let mut pool: Vec<CoreId> = (0..total).collect();
            // Deterministic shuffle, then truncate to the sampled pool.
            for i in (1..pool.len()).rev() {
                let j = region_rng.random_range(0..=i);
                pool.swap(i, j);
            }
            pool.truncate(pool_size);
            let period = (cfg.costs.sched_migration_period_cycles / storm).max(1);
            (0..nthreads)
                .map(|i| ThreadSchedule::Roaming {
                    pool: pool.clone(),
                    idx: i % pool.len(),
                    period,
                    next_at: period,
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_topology::machines;

    fn cfg(p: ThreadPlacement) -> SimConfig {
        SimConfig::os_default(machines::machine_b()).with_threads(p)
    }

    #[test]
    fn sparse_spreads_across_nodes() {
        let plans = plan_region(&cfg(ThreadPlacement::Sparse), 4, 0);
        let m = machines::machine_b();
        let nodes: Vec<_> = plans
            .iter()
            .map(|p| m.node_of_core(p.initial_core()))
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sparse_reuses_nodes_only_after_all_visited() {
        let plans = plan_region(&cfg(ThreadPlacement::Sparse), 8, 0);
        let m = machines::machine_b();
        let nodes: Vec<_> = plans
            .iter()
            .map(|p| m.node_of_core(p.initial_core()))
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Second pass lands on different hardware threads.
        assert_ne!(plans[0].initial_core(), plans[4].initial_core());
    }

    #[test]
    fn dense_packs_node_zero_first() {
        let plans = plan_region(&cfg(ThreadPlacement::Dense), 8, 0);
        let m = machines::machine_b();
        assert!(plans
            .iter()
            .all(|p| m.node_of_core(p.initial_core()) == 0));
    }

    #[test]
    fn pinned_threads_never_migrate() {
        let mut plans = plan_region(&cfg(ThreadPlacement::Sparse), 2, 0);
        assert_eq!(plans[0].next_event_at(), u64::MAX);
        let before = plans[0].initial_core();
        assert_eq!(plans[0].migrate(), before);
    }

    #[test]
    fn unbound_is_deterministic_per_seed_and_region() {
        let c = cfg(ThreadPlacement::None);
        let a = plan_region(&c, 4, 7);
        let b = plan_region(&c, 4, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.initial_core(), y.initial_core());
            assert_eq!(x.next_event_at(), y.next_event_at());
        }
    }

    #[test]
    fn unbound_varies_between_regions() {
        let c = cfg(ThreadPlacement::None);
        let differs = (0..16).any(|r| {
            let a = plan_region(&c, 8, r);
            let b = plan_region(&c, 8, r + 1);
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.initial_core() != y.initial_core())
        });
        assert!(differs, "scheduler produced identical plans for 17 regions");
    }

    #[test]
    fn unbound_migrations_advance_monotonically() {
        let c = cfg(ThreadPlacement::None);
        let mut plans = plan_region(&c, 1, 3);
        let mut last = 0;
        for _ in 0..32 {
            let at = plans[0].next_event_at();
            assert!(at > last);
            last = at;
            plans[0].migrate();
        }
    }

    #[test]
    fn oversubscription_happens_sometimes() {
        // Over many regions, at least one should get a single-core pool.
        let c = cfg(ThreadPlacement::None);
        let m = machines::machine_b();
        let got_tiny_pool = (0..64).any(|r| {
            let plans = plan_region(&c, m.total_hw_threads(), r);
            let mut cores: Vec<_> = plans.iter().map(|p| p.initial_core()).collect();
            cores.sort_unstable();
            cores.dedup();
            cores.len() <= m.total_hw_threads() / 4
        });
        assert!(got_tiny_pool, "no consolidated region in 64 samples");
    }
}
