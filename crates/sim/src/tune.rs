//! Mid-run tuning: the epoch hook a runtime controller plugs into.
//!
//! The simulator's unit of time attribution is the parallel region; a
//! region boundary is the only point where the machine is quiescent
//! (no worker holds caches or schedules mid-flight), so it is the only
//! point where re-tuning is safe without invalidation machinery — the
//! same reason `NodeOffline` evacuation applies between regions. A
//! [`RegionHook`] installed on [`crate::NumaSim`] is called after every
//! region resolves, sees an [`EpochView`] of pure model-cycle state
//! (cycles, cumulative counters, page residency), and returns
//! [`TuneAction`]s the engine applies and *charges* before the next
//! region runs. Hooks receive no wall-clock, no RNG, and no trace
//! state, so a controller's decisions are a deterministic function of
//! the simulated execution: serial, `--jobs N`, and killed-then-resumed
//! sweeps see byte-identical decision sequences, and tracing on/off
//! cannot change them.

use std::fmt;
use std::sync::Arc;

use crate::config::{MemPolicy, ThreadPlacement};
use crate::metrics::Counters;

/// Per-page access intensity over the region that just resolved, fed
/// to heat-driven hooks (the tier daemon). Collected only when the
/// installed [`TuneFactory`] asks for it (`wants_page_heat`), counted
/// identically by the fast and reference touch paths (one increment
/// per touch call), merged across workers in ascending-tid order, and
/// reported sorted by page — so the vector is a pure function of the
/// simulated execution, like every other `EpochView` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeat {
    /// 4 KB page index (`addr / SMALL_PAGE`).
    pub page: u64,
    /// The page's home node after the region's merges resolved.
    pub home: usize,
    /// Touches the page received during the region (all workers).
    pub touches: u64,
}

/// What a controller sees at a region boundary: model-cycle state only.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochView<'a> {
    /// Index of the region that just resolved.
    pub region: u64,
    /// Simulated clock after the region resolved.
    pub now_cycles: u64,
    /// Model cycles the region itself took.
    pub elapsed_cycles: u64,
    /// Cumulative counters since simulator construction (the same
    /// telescoping anchor nqp-trace samples from: a controller keeps
    /// its previous snapshot and differences the two, so its epoch
    /// deltas agree bit-for-bit with the trace's `EpochSample`s).
    pub counters: Counters,
    /// Pages currently resident on each node.
    pub node_used_pages: &'a [u64],
    /// The memory policy future placements will use.
    pub mem_policy: MemPolicy,
    /// The thread placement future regions will be scheduled with.
    pub thread_placement: ThreadPlacement,
    /// Whether AutoNUMA is currently on.
    pub autonuma: bool,
    /// Logical threads the region ran.
    pub threads: usize,
    /// Whether any injected fault was active over the region (storms,
    /// link degradation, node outages). Controllers should freeze
    /// rather than tune through a fault window.
    pub fault_active: bool,
    /// Pages touched during the region with their touch counts, sorted
    /// by page. Empty unless the installed factory set
    /// [`TuneFactory::wants_page_heat`] (collecting it costs host time
    /// on the touch hot path, so it is strictly opt-in).
    pub page_heat: &'a [PageHeat],
}

/// One knob turn a controller asks the engine to apply. Every action
/// is charged in model cycles by the engine (page moves at the same
/// `CostParams` rates as kernel migrations), so a controller that
/// tunes too eagerly pays for it in the results it is judged on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneAction {
    /// Flip the placement policy for *future* mappings and touches.
    SetMemPolicy(MemPolicy),
    /// Re-place threads: future regions are scheduled under this
    /// placement. Charged as one thread migration per logical thread
    /// of the region that just ran (every seat can move).
    SetThreadPlacement(ThreadPlacement),
    /// Toggle AutoNUMA from the next region on.
    SetAutonuma(bool),
    /// Migrate already-placed pages so residency matches `policy`,
    /// moving at most `max_pages` 4 KB pages (the per-epoch migration
    /// budget). Huge frames move whole. `FirstTouch`/`Localalloc`
    /// targets are no-ops — there is no record of who would have
    /// touched first.
    RehomePages {
        /// Placement the resident pages should be rearranged to match.
        policy: MemPolicy,
        /// Budget in 4 KB pages; a frame that would exceed it stays.
        max_pages: u64,
    },
    /// Move specific slow-tier pages up to DRAM, in the given order,
    /// within a 4 KB-page budget. Pages already on DRAM (or unmapped)
    /// are skipped; huge frames move whole. Charged like kernel page
    /// migrations and counted in `Counters::promotions`.
    PromotePages {
        /// 4 KB page indices, hottest first.
        pages: Vec<u64>,
        /// Budget in 4 KB pages for this epoch.
        max_pages: u64,
    },
    /// Move specific DRAM pages down to the slow tier (to make room for
    /// promotions, or to park cold data). The mirror image of
    /// [`TuneAction::PromotePages`]; counted in `Counters::demotions`.
    DemotePages {
        /// 4 KB page indices, coldest first.
        pages: Vec<u64>,
        /// Budget in 4 KB pages for this epoch.
        max_pages: u64,
    },
    /// Record a controller state transition (freeze, re-arm, rollback,
    /// commit) as a trace event without touching any knob. Free.
    Note(String),
}

/// A controller observing region boundaries on one `NumaSim`.
pub trait RegionHook {
    /// Called after each region resolves; returns the actions to apply
    /// (and charge) before the next region runs.
    fn on_region_end(&mut self, view: &EpochView<'_>) -> Vec<TuneAction>;
}

/// Runs several hooks in order at each region boundary, concatenating
/// their actions (earlier hooks' actions apply first). Lets one
/// simulator carry both the online advisor and the tier daemon.
pub struct HookChain(pub Vec<Box<dyn RegionHook + Send>>);

impl RegionHook for HookChain {
    fn on_region_end(&mut self, view: &EpochView<'_>) -> Vec<TuneAction> {
        self.0.iter_mut().flat_map(|h| h.on_region_end(view)).collect()
    }
}

/// Clonable constructor for a [`RegionHook`], carried on
/// [`crate::SimConfig`]. Each `NumaSim::new` builds a *fresh* hook, so
/// a cloned config replayed for a retry or a resumed sweep cell starts
/// the controller from the same initial state — the determinism
/// contract would break if controller state leaked between trials.
#[derive(Clone)]
pub struct TuneFactory {
    make: Arc<dyn Fn() -> Box<dyn RegionHook + Send> + Send + Sync>,
    wants_page_heat: bool,
}

impl TuneFactory {
    /// Wrap a constructor closure.
    pub fn new<F>(make: F) -> Self
    where
        F: Fn() -> Box<dyn RegionHook + Send> + Send + Sync + 'static,
    {
        TuneFactory { make: Arc::new(make), wants_page_heat: false }
    }

    /// Opt the hook into per-page heat collection: every region's
    /// [`EpochView::page_heat`] is populated. Heat never changes model
    /// cycles — it only costs host time — so a heat-blind hook behaves
    /// identically with or without this.
    #[must_use]
    pub fn with_page_heat(mut self) -> Self {
        self.wants_page_heat = true;
        self
    }

    /// Whether hooks built by this factory want [`EpochView::page_heat`].
    #[must_use]
    pub fn wants_page_heat(&self) -> bool {
        self.wants_page_heat
    }

    /// Build a fresh hook instance.
    #[must_use]
    pub fn build(&self) -> Box<dyn RegionHook + Send> {
        (self.make)()
    }
}

impl fmt::Debug for TuneFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TuneFactory(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingHook(u64);
    impl RegionHook for CountingHook {
        fn on_region_end(&mut self, _view: &EpochView<'_>) -> Vec<TuneAction> {
            self.0 += 1;
            vec![TuneAction::Note(format!("epoch-{}", self.0))]
        }
    }

    #[test]
    fn factory_builds_fresh_hooks() {
        let factory = TuneFactory::new(|| Box::new(CountingHook(0)));
        let view = EpochView {
            region: 0,
            now_cycles: 0,
            elapsed_cycles: 0,
            counters: Counters::default(),
            node_used_pages: &[],
            mem_policy: MemPolicy::FirstTouch,
            thread_placement: ThreadPlacement::None,
            autonuma: false,
            threads: 1,
            fault_active: false,
            page_heat: &[],
        };
        let mut a = factory.build();
        a.on_region_end(&view);
        let actions = a.on_region_end(&view);
        assert_eq!(actions, vec![TuneAction::Note("epoch-2".to_string())]);
        // A second build starts over: no state leaks through the factory.
        let mut b = factory.build();
        assert_eq!(
            b.on_region_end(&view),
            vec![TuneAction::Note("epoch-1".to_string())]
        );
    }
}
