//! Mid-run tuning: the epoch hook a runtime controller plugs into.
//!
//! The simulator's unit of time attribution is the parallel region; a
//! region boundary is the only point where the machine is quiescent
//! (no worker holds caches or schedules mid-flight), so it is the only
//! point where re-tuning is safe without invalidation machinery — the
//! same reason `NodeOffline` evacuation applies between regions. A
//! [`RegionHook`] installed on [`crate::NumaSim`] is called after every
//! region resolves, sees an [`EpochView`] of pure model-cycle state
//! (cycles, cumulative counters, page residency), and returns
//! [`TuneAction`]s the engine applies and *charges* before the next
//! region runs. Hooks receive no wall-clock, no RNG, and no trace
//! state, so a controller's decisions are a deterministic function of
//! the simulated execution: serial, `--jobs N`, and killed-then-resumed
//! sweeps see byte-identical decision sequences, and tracing on/off
//! cannot change them.

use std::fmt;
use std::sync::Arc;

use crate::config::{MemPolicy, ThreadPlacement};
use crate::metrics::Counters;

/// What a controller sees at a region boundary: model-cycle state only.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochView<'a> {
    /// Index of the region that just resolved.
    pub region: u64,
    /// Simulated clock after the region resolved.
    pub now_cycles: u64,
    /// Model cycles the region itself took.
    pub elapsed_cycles: u64,
    /// Cumulative counters since simulator construction (the same
    /// telescoping anchor nqp-trace samples from: a controller keeps
    /// its previous snapshot and differences the two, so its epoch
    /// deltas agree bit-for-bit with the trace's `EpochSample`s).
    pub counters: Counters,
    /// Pages currently resident on each node.
    pub node_used_pages: &'a [u64],
    /// The memory policy future placements will use.
    pub mem_policy: MemPolicy,
    /// The thread placement future regions will be scheduled with.
    pub thread_placement: ThreadPlacement,
    /// Whether AutoNUMA is currently on.
    pub autonuma: bool,
    /// Logical threads the region ran.
    pub threads: usize,
    /// Whether any injected fault was active over the region (storms,
    /// link degradation, node outages). Controllers should freeze
    /// rather than tune through a fault window.
    pub fault_active: bool,
}

/// One knob turn a controller asks the engine to apply. Every action
/// is charged in model cycles by the engine (page moves at the same
/// `CostParams` rates as kernel migrations), so a controller that
/// tunes too eagerly pays for it in the results it is judged on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneAction {
    /// Flip the placement policy for *future* mappings and touches.
    SetMemPolicy(MemPolicy),
    /// Re-place threads: future regions are scheduled under this
    /// placement. Charged as one thread migration per logical thread
    /// of the region that just ran (every seat can move).
    SetThreadPlacement(ThreadPlacement),
    /// Toggle AutoNUMA from the next region on.
    SetAutonuma(bool),
    /// Migrate already-placed pages so residency matches `policy`,
    /// moving at most `max_pages` 4 KB pages (the per-epoch migration
    /// budget). Huge frames move whole. `FirstTouch`/`Localalloc`
    /// targets are no-ops — there is no record of who would have
    /// touched first.
    RehomePages {
        /// Placement the resident pages should be rearranged to match.
        policy: MemPolicy,
        /// Budget in 4 KB pages; a frame that would exceed it stays.
        max_pages: u64,
    },
    /// Record a controller state transition (freeze, re-arm, rollback,
    /// commit) as a trace event without touching any knob. Free.
    Note(String),
}

/// A controller observing region boundaries on one `NumaSim`.
pub trait RegionHook {
    /// Called after each region resolves; returns the actions to apply
    /// (and charge) before the next region runs.
    fn on_region_end(&mut self, view: &EpochView<'_>) -> Vec<TuneAction>;
}

/// Clonable constructor for a [`RegionHook`], carried on
/// [`crate::SimConfig`]. Each `NumaSim::new` builds a *fresh* hook, so
/// a cloned config replayed for a retry or a resumed sweep cell starts
/// the controller from the same initial state — the determinism
/// contract would break if controller state leaked between trials.
#[derive(Clone)]
pub struct TuneFactory(Arc<dyn Fn() -> Box<dyn RegionHook + Send> + Send + Sync>);

impl TuneFactory {
    /// Wrap a constructor closure.
    pub fn new<F>(make: F) -> Self
    where
        F: Fn() -> Box<dyn RegionHook + Send> + Send + Sync + 'static,
    {
        TuneFactory(Arc::new(make))
    }

    /// Build a fresh hook instance.
    #[must_use]
    pub fn build(&self) -> Box<dyn RegionHook + Send> {
        (self.0)()
    }
}

impl fmt::Debug for TuneFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TuneFactory(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingHook(u64);
    impl RegionHook for CountingHook {
        fn on_region_end(&mut self, _view: &EpochView<'_>) -> Vec<TuneAction> {
            self.0 += 1;
            vec![TuneAction::Note(format!("epoch-{}", self.0))]
        }
    }

    #[test]
    fn factory_builds_fresh_hooks() {
        let factory = TuneFactory::new(|| Box::new(CountingHook(0)));
        let view = EpochView {
            region: 0,
            now_cycles: 0,
            elapsed_cycles: 0,
            counters: Counters::default(),
            node_used_pages: &[],
            mem_policy: MemPolicy::FirstTouch,
            thread_placement: ThreadPlacement::None,
            autonuma: false,
            threads: 1,
            fault_active: false,
        };
        let mut a = factory.build();
        a.on_region_end(&view);
        let actions = a.on_region_end(&view);
        assert_eq!(actions, vec![TuneAction::Note("epoch-2".to_string())]);
        // A second build starts over: no state leaks through the factory.
        let mut b = factory.build();
        assert_eq!(
            b.on_region_end(&view),
            vec![TuneAction::Note("epoch-1".to_string())]
        );
    }
}
