//! The shared xor-multiply-shift bit mixer behind every hash in the
//! simulator: LLC set selection, TLB set selection, the writer table,
//! and the fault plan's deterministic PRNG all finalize addresses (or
//! seeds) through one round of this construction, each with its own
//! shift/multiplier constants so the structures stay decorrelated.
//!
//! Keeping the round in one place means the page-granular fast path and
//! the per-line reference path cannot drift apart by editing one copy
//! of the hash and not another — any change here changes both.

/// One xor-shift / multiply / xor-shift finalization round.
///
/// The callers' constants are load-bearing: they determine which sets
/// and slots every address in every seeded experiment maps to, so
/// changing any of them changes simulation results.
#[inline]
#[must_use]
pub(crate) const fn xor_mul_shift(mut x: u64, pre: u32, mult: u64, post: u32) -> u64 {
    x ^= x >> pre;
    x = x.wrapping_mul(mult);
    x ^ (x >> post)
}

/// Hint the host CPU to pull `r`'s cache line closer.
///
/// Purely a host-side latency hint — it reads nothing and writes
/// nothing, so issuing (or not issuing) it can never change model
/// cycles or counters. The fast path uses it to overlap the otherwise
/// serialized host-cache misses on the page table, LLC tag array, and
/// writer table.
#[inline]
pub(crate) fn prefetch<T>(r: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` performs no memory access and is defined
    // for any address; `r` is a live reference.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
            (r as *const T).cast::<i8>(),
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = r;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_matches_hand_computation() {
        let x = 0xdead_beef_u64;
        let mut y = x;
        y ^= y >> 33;
        y = y.wrapping_mul(0xff51_afd7_ed55_8ccd);
        y ^= y >> 33;
        assert_eq!(xor_mul_shift(x, 33, 0xff51_afd7_ed55_8ccd, 33), y);
    }

    #[test]
    fn distinct_constants_decorrelate() {
        let x = 0x1234_5678_9abc_def0_u64;
        let a = xor_mul_shift(x, 31, 0x7fb5_d329_728e_a185, 27);
        let b = xor_mul_shift(x, 33, 0xff51_afd7_ed55_8ccd, 33);
        let c = xor_mul_shift(x, 30, 0xbf58_476d_1ce4_e5b9, 27);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}
