//! Deterministic fault injection: seeded plans that degrade the simulated
//! machine at chosen parallel-region indices.
//!
//! A [`FaultPlan`] is part of the [`crate::SimConfig`], so two runs with
//! the same seed and the same plan produce bit-identical counters and the
//! same failures — chaos experiments stay reproducible. Four fault
//! families are modelled:
//!
//! * **Transient allocation failures** — `mmap` returns failure, the model
//!   of allocation under memory pressure. Keyed on the retry attempt so a
//!   bounded-retry harness observes the fault *clearing*.
//! * **Interconnect link degradation** — a latency multiplier and a
//!   bandwidth divisor applied to one link (a flaky or thermally throttled
//!   QPI/IF hop).
//! * **Page-migration failures** — AutoNUMA migrations fail (target busy
//!   or isolated), burning kernel cycles without moving the page.
//! * **Preemption storms** — an antagonist process forces periodic
//!   context switches that flush the thread's L1 and TLBs.
//!
//! Fault windows are expressed in *region indices*: the n-th
//! parallel/serial region the simulator runs. Region indices are
//! deterministic for a given workload, which is what lets a plan say
//! "fail the allocation in the build phase".

use crate::error::{SimError, SimResult};

/// Denominator of [`FaultKind::AllocFail`] rates: 1_000_000 = always.
pub const PPM: u32 = 1_000_000;

/// One fault, active over an inclusive window of region indices.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// First region index (inclusive) the fault is active in.
    pub from_region: u64,
    /// Last region index (inclusive) the fault is active in.
    pub to_region: u64,
    /// What the fault does.
    pub kind: FaultKind,
}

/// The fault families a plan can inject.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Fail mappings in the window with probability `rate_ppm`/1e6
    /// (decided by a seeded hash — deterministic per allocation), but only
    /// while the trial's retry attempt is below `fail_attempts`: the
    /// transient clears after that many failing attempts.
    AllocFail {
        /// Failure probability in parts per million ([`PPM`] = certain).
        rate_ppm: u32,
        /// Attempts (0-based) on which the fault is live; attempt
        /// `fail_attempts` and later run clean.
        fail_attempts: u32,
    },
    /// Degrade one interconnect link: accesses whose route crosses it pay
    /// `latency_x` times the latency, and its bandwidth is divided by
    /// `bandwidth_div` in the region roofline.
    LinkDegrade {
        /// Link index, as in `Topology::links`.
        link: usize,
        /// Latency multiplier (≥ 1.0).
        latency_x: f64,
        /// Bandwidth divisor (≥ 1.0).
        bandwidth_div: f64,
    },
    /// AutoNUMA page migrations fail during the window.
    MigrationFail,
    /// A whole NUMA node — its CPUs and its memory controller — drops out
    /// at `from_region` and stays out for the rest of the trial (the
    /// window's `to_region` is ignored: real node outages do not heal
    /// mid-query). The engine evacuates the node's pages to the nearest
    /// live node (charged as migration traffic) and re-places threads
    /// pinned there; strict `Bind` placements on the dead node fail with
    /// [`SimError::NodeOffline`].
    NodeOffline {
        /// The node to take offline.
        node: usize,
    },
    /// Preempt every thread each `period_cycles` of its execution,
    /// charging a context switch and flushing its L1/TLBs.
    PreemptionStorm {
        /// Cycles between forced preemptions per thread.
        period_cycles: u64,
    },
}

/// A seeded, deterministic schedule of injected faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed mixed into per-allocation failure decisions.
    pub seed: u64,
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, events: Vec::new() }
    }

    /// Builder-style: add a fault over `[from, to]` region indices.
    pub fn with_event(mut self, from_region: u64, to_region: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { from_region, to_region, kind });
        self
    }

    /// Builder-style: certain transient allocation failure in the window,
    /// clearing after `fail_attempts` retries.
    pub fn with_alloc_fail(self, from: u64, to: u64, fail_attempts: u32) -> Self {
        self.with_event(from, to, FaultKind::AllocFail { rate_ppm: PPM, fail_attempts })
    }

    /// Whether the plan has no events (always quiet).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Resolve the faults active in `region` on retry `attempt` into a
    /// flat per-region view the engine consults on hot paths.
    ///
    /// `num_nodes` sizes the node-offline set; [`FaultKind::NodeOffline`]
    /// events are *sticky* — active from their `from_region` onward, with
    /// `to_region` ignored.
    pub fn active(
        &self,
        region: u64,
        attempt: u32,
        num_links: usize,
        num_nodes: usize,
    ) -> ActiveFaults {
        let mut a = ActiveFaults {
            seed: self.seed,
            region,
            attempt,
            alloc_fail_ppm: 0,
            link_latency: vec![1.0; num_links],
            link_bw_div: vec![1.0; num_links],
            block_migrations: false,
            preempt_period: None,
            offline: vec![false; num_nodes],
        };
        for ev in &self.events {
            if let FaultKind::NodeOffline { node } = ev.kind {
                // Sticky: outages never heal within a trial.
                if region >= ev.from_region && node < num_nodes {
                    a.offline[node] = true;
                }
                continue;
            }
            if region < ev.from_region || region > ev.to_region {
                continue;
            }
            match ev.kind {
                FaultKind::AllocFail { rate_ppm, fail_attempts } => {
                    if attempt < fail_attempts {
                        a.alloc_fail_ppm = a.alloc_fail_ppm.max(rate_ppm.min(PPM));
                    }
                }
                FaultKind::LinkDegrade { link, latency_x, bandwidth_div } => {
                    if link < num_links {
                        a.link_latency[link] *= latency_x.max(1.0);
                        a.link_bw_div[link] *= bandwidth_div.max(1.0);
                    }
                }
                FaultKind::MigrationFail => a.block_migrations = true,
                FaultKind::PreemptionStorm { period_cycles } => {
                    let p = period_cycles.max(1);
                    a.preempt_period =
                        Some(a.preempt_period.map_or(p, |prev: u64| prev.min(p)));
                }
                // Handled (sticky) before the window filter above.
                FaultKind::NodeOffline { .. } => {}
            }
        }
        a
    }

    /// Parse a plan from a compact spec string (the `--faults` flag):
    ///
    /// ```text
    /// event(;event)*
    /// event   := kind '@' window (':' key '=' value (',' key '=' value)*)?
    /// window  := REGION | REGION '..' REGION        (inclusive)
    /// kind    := 'alloc'   [rate=0.0..1.0] [attempts=N]
    ///          | 'link'    [link=N] [lat=F] [bw=F]
    ///          | 'migfail'
    ///          | 'preempt' [period=N]
    ///          | 'offline' [node=N]                  (sticky from window start)
    /// ```
    ///
    /// Example: `alloc@2:attempts=1;link@0..9:link=0,lat=2.5,bw=4` or
    /// `offline@6:node=1` (node 1 dies at region 6 and stays dead).
    pub fn parse(spec: &str, seed: u64) -> SimResult<FaultPlan> {
        fn bad(token: &str, why: &str) -> SimError {
            SimError::BadSpec {
                flag: "--faults".to_string(),
                token: token.to_string(),
                why: why.to_string(),
            }
        }
        let mut plan = FaultPlan::new(seed);
        for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
            let part = part.trim();
            let (head, params) = match part.split_once(':') {
                Some((h, p)) => (h, Some(p)),
                None => (part, None),
            };
            let (kind_name, window) =
                head.split_once('@').ok_or_else(|| bad(part, "missing @window"))?;
            let (from, to) = match window.split_once("..") {
                Some((a, b)) => (
                    a.parse().map_err(|_| bad(a, "bad window start"))?,
                    b.parse().map_err(|_| bad(b, "bad window end"))?,
                ),
                None => {
                    let r = window.parse().map_err(|_| bad(window, "bad window"))?;
                    (r, r)
                }
            };
            let mut kv = std::collections::HashMap::new();
            if let Some(params) = params {
                for pair in params.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) =
                        pair.split_once('=').ok_or_else(|| bad(pair, "expected key=value"))?;
                    kv.insert(k.trim().to_string(), v.trim().to_string());
                }
            }
            let getf = |k: &str, default: f64| -> SimResult<f64> {
                match kv.get(k) {
                    Some(v) => v.parse().map_err(|_| bad(v, "expected a float")),
                    None => Ok(default),
                }
            };
            let getu = |k: &str, default: u64| -> SimResult<u64> {
                match kv.get(k) {
                    Some(v) => v.parse().map_err(|_| bad(v, "expected an integer")),
                    None => Ok(default),
                }
            };
            let kind = match kind_name.trim() {
                "alloc" => FaultKind::AllocFail {
                    rate_ppm: (getf("rate", 1.0)?.clamp(0.0, 1.0) * PPM as f64) as u32,
                    fail_attempts: getu("attempts", 1)? as u32,
                },
                "link" => FaultKind::LinkDegrade {
                    link: getu("link", 0)? as usize,
                    latency_x: getf("lat", 2.0)?,
                    bandwidth_div: getf("bw", 2.0)?,
                },
                "migfail" => FaultKind::MigrationFail,
                "preempt" => FaultKind::PreemptionStorm {
                    period_cycles: getu("period", 100_000)?.max(1),
                },
                "offline" => FaultKind::NodeOffline { node: getu("node", 0)? as usize },
                other => {
                    return Err(bad(
                        other,
                        "unknown fault kind (expected alloc, link, migfail, preempt, or offline)",
                    ))
                }
            };
            plan.events.push(FaultEvent { from_region: from, to_region: to, kind });
        }
        Ok(plan)
    }
}

/// The faults in force for one region, resolved to flat lookups.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveFaults {
    seed: u64,
    region: u64,
    attempt: u32,
    alloc_fail_ppm: u32,
    /// Per-link latency multipliers (1.0 = healthy).
    pub link_latency: Vec<f64>,
    /// Per-link bandwidth divisors (1.0 = healthy).
    pub link_bw_div: Vec<f64>,
    /// AutoNUMA migrations fail this region.
    pub block_migrations: bool,
    /// Forced preemption period, when a storm is active.
    pub preempt_period: Option<u64>,
    /// Per-node offline flags (true = the node is dead by this region).
    pub offline: Vec<bool>,
}

impl ActiveFaults {
    /// Whether the `n`-th allocation by thread `tid` this region fails.
    /// Pure function of (seed, region, tid, n) — deterministic across
    /// runs and across retries (the *attempt* gate lives in
    /// [`FaultPlan::active`]).
    #[inline]
    pub fn alloc_should_fail(&self, tid: usize, alloc_seq: u64) -> bool {
        if self.alloc_fail_ppm == 0 {
            return false;
        }
        if self.alloc_fail_ppm >= PPM {
            return true;
        }
        let h = mix(
            self.seed
                ^ self.region.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (tid as u64).wrapping_mul(0xff51_afd7_ed55_8ccd)
                ^ alloc_seq.wrapping_mul(0xc4ce_b9fe_1a85_ec53),
        );
        (h % PPM as u64) < self.alloc_fail_ppm as u64
    }

    /// The retry attempt this view was resolved for.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Combined latency multiplier of a route (product over its links).
    #[inline]
    pub fn path_latency_mult(&self, path: &[u16]) -> f64 {
        let mut m = 1.0;
        for &l in path {
            m *= self.link_latency[l as usize];
        }
        m
    }

    /// Whether `node` is offline by this region.
    #[inline]
    #[must_use]
    pub fn node_offline(&self, node: usize) -> bool {
        self.offline.get(node).copied().unwrap_or(false)
    }

    /// Whether any node is offline by this region.
    #[must_use]
    pub fn any_node_offline(&self) -> bool {
        self.offline.iter().any(|&x| x)
    }

    /// True when nothing is degraded this region (fast-path guard).
    pub fn is_quiet(&self) -> bool {
        self.alloc_fail_ppm == 0
            && !self.block_migrations
            && self.preempt_period.is_none()
            && !self.any_node_offline()
            && self.link_latency.iter().all(|&x| x == 1.0)
            && self.link_bw_div.iter().all(|&x| x == 1.0)
    }
}

/// 64-bit finalizer (splitmix-style) for fault decisions.
#[inline]
fn mix(x: u64) -> u64 {
    // Two chained rounds (the murmur3 finalizer): fault decisions need a
    // stronger mix than set indexing because consecutive seeds differ in
    // only a few low bits.
    let x = crate::mix::xor_mul_shift(x, 33, 0xff51_afd7_ed55_8ccd, 33);
    let x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_quiet_everywhere() {
        let p = FaultPlan::new(7);
        assert!(p.is_empty());
        let a = p.active(3, 0, 4, 2);
        assert!(a.is_quiet());
        assert!(!a.alloc_should_fail(0, 0));
    }

    #[test]
    fn alloc_fail_clears_after_configured_attempts() {
        let p = FaultPlan::new(1).with_alloc_fail(2, 2, 1);
        assert!(p.active(2, 0, 0, 2).alloc_should_fail(0, 0));
        assert!(!p.active(2, 1, 0, 2).alloc_should_fail(0, 0), "attempt 1 must run clean");
        assert!(!p.active(1, 0, 0, 2).alloc_should_fail(0, 0), "outside the window");
        assert!(!p.active(3, 0, 0, 2).alloc_should_fail(0, 0));
    }

    #[test]
    fn partial_rates_are_deterministic_and_partial() {
        let p = FaultPlan::new(42).with_event(
            0,
            100,
            FaultKind::AllocFail { rate_ppm: PPM / 2, fail_attempts: 1 },
        );
        let a = p.active(5, 0, 0, 2);
        let fails: Vec<bool> = (0..64).map(|i| a.alloc_should_fail(1, i)).collect();
        let again: Vec<bool> = (0..64).map(|i| a.alloc_should_fail(1, i)).collect();
        assert_eq!(fails, again, "decisions must be reproducible");
        let n = fails.iter().filter(|&&f| f).count();
        assert!(n > 8 && n < 56, "~50% rate wildly off: {n}/64");
    }

    #[test]
    fn link_degradation_scales_path_latency_and_bandwidth() {
        let p = FaultPlan::new(0).with_event(
            1,
            4,
            FaultKind::LinkDegrade { link: 2, latency_x: 3.0, bandwidth_div: 4.0 },
        );
        let a = p.active(2, 0, 4, 2);
        assert_eq!(a.link_latency[2], 3.0);
        assert_eq!(a.link_bw_div[2], 4.0);
        assert_eq!(a.link_latency[0], 1.0);
        assert_eq!(a.path_latency_mult(&[0, 2]), 3.0);
        assert_eq!(a.path_latency_mult(&[0, 1]), 1.0);
        assert!(p.active(0, 0, 4, 2).is_quiet());
    }

    #[test]
    fn storm_and_migfail_windows() {
        let p = FaultPlan::new(0)
            .with_event(0, 1, FaultKind::MigrationFail)
            .with_event(1, 2, FaultKind::PreemptionStorm { period_cycles: 500 });
        assert!(p.active(0, 0, 0, 2).block_migrations);
        let a1 = p.active(1, 0, 0, 2);
        assert!(a1.block_migrations);
        assert_eq!(a1.preempt_period, Some(500));
        let a2 = p.active(2, 0, 0, 2);
        assert!(!a2.block_migrations);
        assert_eq!(a2.preempt_period, Some(500));
    }

    #[test]
    fn node_offline_is_sticky_and_parses() {
        let parsed = FaultPlan::parse("offline@3:node=1", 0).unwrap();
        assert_eq!(parsed.events[0].kind, FaultKind::NodeOffline { node: 1 });
        assert_eq!(parsed.events[0].from_region, 3);
        let p = FaultPlan::new(0).with_event(3, 3, FaultKind::NodeOffline { node: 1 });
        assert!(!p.active(2, 0, 0, 4).node_offline(1));
        assert!(p.active(2, 0, 0, 4).is_quiet());
        assert!(p.active(3, 0, 0, 4).node_offline(1));
        assert!(!p.active(3, 0, 0, 4).is_quiet());
        assert!(p.active(9, 0, 0, 4).node_offline(1), "outages must not heal");
        assert!(p.active(9, 0, 0, 4).any_node_offline());
        assert!(!p.active(9, 0, 0, 4).node_offline(0));
    }

    #[test]
    fn spec_round_trips_through_parse() {
        let p = FaultPlan::parse(
            "alloc@2:attempts=2,rate=1.0;link@0..9:link=1,lat=2.5,bw=4;migfail@3;preempt@4..5:period=9000",
            99,
        )
        .unwrap();
        assert_eq!(p.seed, 99);
        assert_eq!(p.events.len(), 4);
        assert_eq!(
            p.events[0],
            FaultEvent {
                from_region: 2,
                to_region: 2,
                kind: FaultKind::AllocFail { rate_ppm: PPM, fail_attempts: 2 }
            }
        );
        assert_eq!(
            p.events[1].kind,
            FaultKind::LinkDegrade { link: 1, latency_x: 2.5, bandwidth_div: 4.0 }
        );
        assert_eq!(p.events[2].kind, FaultKind::MigrationFail);
        assert_eq!(p.events[3].kind, FaultKind::PreemptionStorm { period_cycles: 9000 });
    }

    #[test]
    fn malformed_specs_error_without_panicking() {
        for bad in ["alloc", "alloc@x", "wat@1", "link@1:lat", "alloc@1..z"] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "{bad} should not parse");
        }
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
    }

    #[test]
    fn malformed_specs_name_the_offending_token() {
        // (spec, the token the typed error must carry verbatim)
        for (spec, token) in [
            ("alloc", "alloc"),                 // missing @window entirely
            ("alloc@x", "x"),                   // garbage window
            ("alloc@1..z", "z"),                // truncated range end
            ("wat@1", "wat"),                   // unknown kind
            ("link@1:lat", "lat"),              // key with no value
            ("link@1:lat=fast", "fast"),        // non-float value
            ("offline@1:node=one", "one"),      // non-integer value
        ] {
            match FaultPlan::parse(spec, 0) {
                Err(SimError::BadSpec { flag, token: t, .. }) => {
                    assert_eq!(flag, "--faults", "{spec}");
                    assert_eq!(t, token, "{spec}");
                }
                other => panic!("{spec}: expected BadSpec, got {other:?}"),
            }
            // The rendered message names the flag and the token, and the
            // tag is stable for tables.
            let e = FaultPlan::parse(spec, 0).unwrap_err();
            assert_eq!(e.tag(), "bad-spec");
            let msg = e.to_string();
            assert!(msg.contains("--faults") && msg.contains(token), "{msg}");
        }
    }
}
