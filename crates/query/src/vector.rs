//! The vectorized batch-at-a-time operator path (`EngineKind::Vectorized`).
//!
//! Same queries, same answers, different engine: where the tuple-at-a-time
//! path drives a striped-lock chained hash table one record at a time, this
//! path scans [`ColumnTable`] relations in batches of column runs, filters
//! through a selection vector, and aggregates/joins through *perfect-hash
//! slot arrays* — dense arrays indexed directly by key, which is exact for
//! this workspace because every generator draws keys from a dense domain
//! (`key < cardinality` for W1/W2; the W3/W4 build side is a permutation
//! of `0..r_size`).
//!
//! ## Identity contract
//!
//! The tuple path stays in the tree as the differential oracle (the PR-5
//! pattern): both engines must produce **byte-identical query results** —
//! checksums, group counts, match counts — on every input, pinned by
//! proptest differentials in `tests/vector.rs`. Simulated *cycles and
//! traffic counters* legitimately differ between the engines (that delta
//! is the experiment; see EXPERIMENTS.md §vectorized-vs-tuple), but the
//! vectorized path is itself byte-identical across `--jobs`, `--shards`,
//! tracing, fault plans, kill-and-resume, and any `--batch-size`: all
//! simulated transfers move in fixed [`COLUMN_RUN_WORDS`]-word runs and
//! the host batch size is rounded up to that granularity, so the touch
//! stream never depends on it.

use crate::aggregate::{AggConfig, AggKind, AggOutcome};
use crate::hash_join::JoinOutcome;
use crate::inl_join::InlOutcome;
use crate::runner::WorkloadEnv;
use nqp_datagen::{JoinDataset, Record};
use nqp_indexes::{build_index, IndexKind};
use nqp_sim::{NumaSim, SimError, SimResult};
use nqp_storage::{Chain, ColumnArray, ColumnTable, SimHeap, COLUMN_RUN_WORDS};

/// Cost charged per comparison while sorting a group's values (median);
/// must match the tuple path so medians cost the same arithmetic.
const SORT_CMP_CYCLES: u64 = 3;

/// A batch of gathered column runs plus the selection vector that
/// operators downstream of a filter consume. `sel` holds the lane
/// indices (into `keys`/`vals`) that survive the operator chain so far;
/// compacting it is how a batched filter "drops" rows without moving
/// any data.
#[derive(Debug, Default)]
pub struct Batch {
    /// Gathered key-column values for the current run of rows.
    pub keys: Vec<u64>,
    /// Gathered value/payload-column values; left empty while an
    /// operator projects the column away.
    pub vals: Vec<u64>,
    /// Selection vector: surviving lane indices, ascending.
    pub sel: Vec<u32>,
}

impl Batch {
    /// A batch with room for `cap` lanes.
    pub fn with_capacity(cap: usize) -> Self {
        Batch {
            keys: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
            sel: Vec::with_capacity(cap),
        }
    }

    /// Select every one of the first `n` lanes (the state after an
    /// unfiltered scan).
    pub fn select_all(&mut self, n: usize) {
        self.sel.clear();
        self.sel.extend(0..n as u32);
    }

    /// Number of selected lanes.
    pub fn selected(&self) -> usize {
        self.sel.len()
    }
}

/// Round the host-side batch size up to the bulk-run granularity, so
/// every simulated transfer inside a partition is a maximal
/// [`COLUMN_RUN_WORDS`]-word run regardless of what `--batch-size` the
/// user picked — the mechanism behind batch-size cycle invariance.
pub fn aligned_batch(batch: usize) -> usize {
    batch.max(1).div_ceil(COLUMN_RUN_WORDS) * COLUMN_RUN_WORDS
}

/// Load records into a [`ColumnTable`] with the same partition-parallel,
/// shardable first-touch pass as the tuple loader — each thread bulk-
/// writes its own contiguous slice of both columns.
pub fn try_load_columns(
    sim: &mut NumaSim,
    records: &[Record],
    threads: usize,
) -> SimResult<ColumnTable> {
    let mut table: Option<ColumnTable> = None;
    sim.try_serial(&mut table, |w, table| {
        *table = Some(ColumnTable::new(w, records.len().max(1)));
    })?;
    let table =
        table.ok_or(SimError::Harness { what: "column table was not mapped".to_string() })?;
    sim.try_parallel_sharded(threads, &(), |w, ()| {
        let range = table.partition(w.tid(), threads);
        if range.is_empty() {
            return;
        }
        let keys: Vec<u64> = records[range.clone()].iter().map(|r| r.key).collect();
        let vals: Vec<u64> = records[range.clone()].iter().map(|r| r.val).collect();
        table.keys.write_run(w, range.start, &keys);
        table.vals.write_run(w, range.start, &vals);
    })?;
    Ok(table)
}

/// Load one side of a join dataset (`(key, payload)` rows) column-wise.
fn try_load_join_columns(
    sim: &mut NumaSim,
    rows: &[nqp_datagen::Tuple],
    threads: usize,
) -> SimResult<ColumnTable> {
    let mut table: Option<ColumnTable> = None;
    sim.try_serial(&mut table, |w, table| {
        *table = Some(ColumnTable::new(w, rows.len().max(1)));
    })?;
    let table =
        table.ok_or(SimError::Harness { what: "column table was not mapped".to_string() })?;
    sim.try_parallel_sharded(threads, &(), |w, ()| {
        let range = table.partition(w.tid(), threads);
        if range.is_empty() {
            return;
        }
        let keys: Vec<u64> = rows[range.clone()].iter().map(|t| t.key).collect();
        let vals: Vec<u64> = rows[range.clone()].iter().map(|t| t.payload).collect();
        table.keys.write_run(w, range.start, &keys);
        table.vals.write_run(w, range.start, &vals);
    })?;
    Ok(table)
}

/// Vectorized W1/W2: batched column scan feeding perfect-hash
/// aggregation into a fixed slot array indexed directly by group key.
///
/// W2 (COUNT) projects the value column away entirely — the query phases
/// never touch its pages. W1 (MEDIAN) anchors the same per-group value
/// [`Chain`]s as the tuple path at `slot[key]`, so it keeps the
/// one-allocation-per-record property the paper's Figure 6 leans on.
pub fn try_run_aggregation_vec(
    env: &WorkloadEnv,
    cfg: &AggConfig,
    records: &[Record],
) -> SimResult<AggOutcome> {
    let mut sim = NumaSim::new(env.sim.clone());
    let mut heap = SimHeap::new(env.allocator, &mut sim);
    let threads = env.threads;
    let bs = aligned_batch(env.batch);
    let nslots = cfg.cardinality.max(1) as usize;

    sim.phase_begin("load");
    let input = try_load_columns(&mut sim, records, threads)?;
    sim.phase_end();
    let load_cycles = sim.now_cycles();
    let counters_before = sim.counters();

    // Coordinator maps and zeroes the slot array (first-touch lands it
    // on the coordinator's node — the same §IV-C placement pathology the
    // tuple path's directory has, so the NUMA knobs act on both engines).
    let mut regions = Vec::new();
    let interleaved = cfg.interleaved_table;
    let mut slots_opt: Option<ColumnArray> = None;
    sim.phase_begin("agg:init");
    regions.push(sim.try_serial(&mut slots_opt, |w, slots| {
        let arr = if interleaved {
            ColumnArray::new_interleaved(w, nslots)
        } else {
            ColumnArray::new(w, nslots)
        };
        arr.write_run(w, 0, &vec![0u64; nslots]);
        *slots = Some(arr);
    })?);
    sim.phase_end();
    let slots =
        slots_opt.ok_or(SimError::Harness { what: "slot array was not mapped".to_string() })?;

    // Parallel build: each thread scans its morsel in batches of column
    // runs and aggregates straight into the shared slots. Writes hit
    // shared addresses (two threads may hold the same key), so this
    // phase uses the plain parallel region, exactly like the tuple
    // path's table build.
    let kind = cfg.kind;
    sim.phase_begin("agg:build");
    regions.push(sim.try_parallel(threads, &mut heap, |w, heap| {
        let range = input.partition(w.tid(), threads);
        let mut b = Batch::with_capacity(bs);
        // The simulated stream always moves one run-width vector at a
        // time — one bulk key read, then that vector's slot ops — so the
        // touch order (and with it every cache/TLB/cycle outcome) never
        // depends on the host-side batch size.
        let mut i = range.start;
        while i < range.end {
            let n = (range.end - i).min(COLUMN_RUN_WORDS);
            b.keys.resize(n, 0);
            input.keys.read_run(w, i, &mut b.keys[..n]);
            match kind {
                AggKind::DistributiveCount => {
                    // Value column projected away: one RMW per row.
                    for lane in 0..n {
                        let key = b.keys[lane] as usize;
                        w.rmw_u64(slots.addr_of(key), |c| c + 1);
                    }
                }
                AggKind::HolisticMedian => {
                    b.vals.resize(n, 0);
                    input.vals.read_run(w, i, &mut b.vals[..n]);
                    for lane in 0..n {
                        let key = b.keys[lane] as usize;
                        // slot[key] holds the chain head; push allocates
                        // between the head read and the write-back, so
                        // this stays a genuine read-then-write.
                        let head = w.read_u64(slots.addr_of(key));
                        let mut chain = Chain::from_head(head);
                        chain.push(w, heap, b.vals[lane]);
                        w.write_u64(slots.addr_of(key), chain.head());
                    }
                }
            }
            i += n;
        }
    })?);
    sim.phase_end();

    // Parallel finalize: scan the slot array in bulk runs — read-only
    // against frozen state, so it shards across host threads; the
    // per-worker result vectors come back in ascending-tid order.
    sim.phase_begin("agg:finalize");
    let (stats, locals) = sim.try_parallel_sharded(threads, &(), |w, ()| {
        let srange = slots.partition(w.tid(), threads);
        let mut buf = [0u64; COLUMN_RUN_WORDS];
        let mut local: Vec<(u64, u64, u64)> = Vec::new();
        let tid = w.tid() as u64;
        let mut i = srange.start;
        while i < srange.end {
            let n = (srange.end - i).min(COLUMN_RUN_WORDS);
            slots.read_run(w, i, &mut buf[..n]);
            for (j, &slot) in buf[..n].iter().enumerate() {
                if slot == 0 {
                    continue;
                }
                let key = (i + j) as u64;
                let agg = match kind {
                    AggKind::DistributiveCount => slot,
                    AggKind::HolisticMedian => {
                        let chain = Chain::from_head(slot);
                        let mut values = chain.collect(w);
                        let n = values.len().max(1) as u64;
                        w.compute(SORT_CMP_CYCLES * n * (64 - n.leading_zeros()) as u64);
                        values.sort_unstable();
                        values[values.len() / 2]
                    }
                };
                local.push((tid, key, agg));
            }
            i += n;
        }
        local
    })?;
    regions.push(stats);
    sim.phase_end();
    let results: Vec<(u64, u64, u64)> = locals.into_iter().flatten().collect();

    let exec_cycles = sim.now_cycles() - load_cycles;
    let mut checksum = 0u64;
    for &(_, key, agg) in &results {
        checksum ^= key.wrapping_mul(0x100_0001b3).wrapping_add(agg);
    }
    Ok(AggOutcome {
        exec_cycles,
        load_cycles,
        groups: results.len() as u64,
        checksum,
        counters: sim.counters() - counters_before,
        regions,
        trace: sim.take_trace(),
    })
}

/// Vectorized W3: perfect-hash join. The build side's keys are dense
/// (`JoinDataset` builds a permutation of `0..r_size`), so the "hash
/// table" degenerates into two slot arrays indexed by key — an occupancy
/// tag and the payload — and the probe becomes gather + selection-vector
/// filter + late payload gather (the probe-side payload column is only
/// read for batches that have at least one match).
pub fn try_run_hash_join_vec(env: &WorkloadEnv, data: &JoinDataset) -> SimResult<JoinOutcome> {
    let mut sim = NumaSim::new(env.sim.clone());
    let threads = env.threads;
    let bs = aligned_batch(env.batch);
    // Perfect-hash domain: dense build keys make max+1 slots exact.
    let nslots = data.r.iter().map(|t| t.key).max().map_or(1, |m| m as usize + 1);

    sim.phase_begin("load");
    let r_cols = try_load_join_columns(&mut sim, &data.r, threads)?;
    let s_cols = try_load_join_columns(&mut sim, &data.s, threads)?;
    sim.phase_end();
    let load_cycles = sim.now_cycles();
    let counters_before = sim.counters();

    // Build: coordinator maps + zeroes the tag array (payload slots are
    // only ever read through a set tag, so they need no zeroing pass),
    // then workers scatter their morsels into the slots. Scatter
    // addresses are disjoint (build keys are unique) but interleave
    // across threads, so the fill uses the plain parallel region.
    let mut built: Option<(ColumnArray, ColumnArray)> = None;
    sim.phase_begin("join:build");
    sim.try_serial(&mut built, |w, built| {
        let tags = ColumnArray::new(w, nslots);
        let payloads = ColumnArray::new(w, nslots);
        tags.write_run(w, 0, &vec![0u64; nslots]);
        *built = Some((tags, payloads));
    })?;
    let (tags, payloads) =
        built.ok_or(SimError::Harness { what: "join slots were not mapped".to_string() })?;
    sim.try_parallel(threads, &mut (), |w, ()| {
        let range = r_cols.partition(w.tid(), threads);
        let mut b = Batch::with_capacity(bs);
        let mut i = range.start;
        while i < range.end {
            let n = (range.end - i).min(COLUMN_RUN_WORDS);
            b.keys.resize(n, 0);
            b.vals.resize(n, 0);
            r_cols.keys.read_run(w, i, &mut b.keys[..n]);
            r_cols.vals.read_run(w, i, &mut b.vals[..n]);
            for lane in 0..n {
                let key = b.keys[lane] as usize;
                w.write_u64(tags.addr_of(key), b.keys[lane] + 1);
                w.write_u64(payloads.addr_of(key), b.vals[lane]);
            }
            i += n;
        }
    })?;
    sim.phase_end();
    let build_cycles = sim.now_cycles() - load_cycles;

    // Probe: batched scan of the S key column, tag gather as the filter
    // compacting the selection vector, then the S payload run and the
    // build payload gather only for surviving lanes. Read-only against
    // frozen state, so the phase shards across host threads.
    sim.phase_begin("join:probe");
    let (_, locals) = sim.try_parallel_sharded(threads, &(), |w, ()| {
        let mut local_matches = 0u64;
        let mut local_sum = 0u64;
        let range = s_cols.partition(w.tid(), threads);
        let mut b = Batch::with_capacity(bs);
        let mut i = range.start;
        while i < range.end {
            let n = (range.end - i).min(COLUMN_RUN_WORDS);
            b.keys.resize(n, 0);
            s_cols.keys.read_run(w, i, &mut b.keys[..n]);
            b.sel.clear();
            for lane in 0..n {
                let key = b.keys[lane] as usize;
                if key < nslots && w.read_u64(tags.addr_of(key)) != 0 {
                    b.sel.push(lane as u32);
                }
            }
            if !b.sel.is_empty() {
                b.vals.resize(n, 0);
                s_cols.vals.read_run(w, i, &mut b.vals[..n]);
                for &lane in &b.sel {
                    let key = b.keys[lane as usize] as usize;
                    let r_payload = w.read_u64(payloads.addr_of(key));
                    local_matches += 1;
                    local_sum ^=
                        r_payload.wrapping_mul(31).wrapping_add(b.vals[lane as usize]);
                }
            }
            i += n;
        }
        (local_matches, local_sum)
    })?;
    sim.phase_end();
    let probe_cycles = sim.now_cycles() - load_cycles - build_cycles;
    let matches = locals.iter().map(|&(m, _)| m).sum();
    let checksum = locals.iter().fold(0u64, |acc, &(_, c)| acc ^ c);

    Ok(JoinOutcome {
        build_cycles,
        probe_cycles,
        load_cycles,
        matches,
        checksum,
        counters: sim.counters() - counters_before,
        trace: sim.take_trace(),
    })
}

/// Vectorized W4: batched column scan of the probe relation driving
/// point lookups through the same pre-built index as the tuple path
/// (the index *is* the workload axis, so both engines share it); the
/// lookup outcome is the filter, and the probe-side payload column is
/// gathered late, only for batches with at least one hit.
pub fn try_run_inl_join_vec(
    env: &WorkloadEnv,
    kind: IndexKind,
    data: &JoinDataset,
) -> SimResult<InlOutcome> {
    let mut sim = NumaSim::new(env.sim.clone());
    let heap = SimHeap::new(env.allocator, &mut sim);
    let threads = env.threads;
    let bs = aligned_batch(env.batch);

    sim.phase_begin("load");
    let s_cols = try_load_join_columns(&mut sim, &data.s, threads)?;
    sim.phase_end();
    let counters_start = sim.counters();
    let start = sim.now_cycles();

    // Build the index single-threaded, exactly as the tuple path does —
    // same structure, same insert order, same build cost.
    let index = build_index(kind);
    let mut state = (index, heap);
    sim.phase_begin("inl:build");
    sim.try_serial(&mut state, |w, (index, heap)| {
        for t in &data.r {
            index.insert(w, heap, t.key, t.payload);
        }
    })?;
    sim.phase_end();
    let build_cycles = sim.now_cycles() - start;

    let (index, _heap) = state;
    sim.phase_begin("inl:join");
    let (_, locals) = sim.try_parallel_sharded(threads, &index, |w, index| {
        let mut local_matches = 0u64;
        let mut local_sum = 0u64;
        let range = s_cols.partition(w.tid(), threads);
        let mut b = Batch::with_capacity(bs);
        let mut hits: Vec<u64> = Vec::with_capacity(bs);
        let mut i = range.start;
        while i < range.end {
            let n = (range.end - i).min(COLUMN_RUN_WORDS);
            b.keys.resize(n, 0);
            s_cols.keys.read_run(w, i, &mut b.keys[..n]);
            b.sel.clear();
            hits.clear();
            for lane in 0..n {
                if let Some(r_payload) = index.get(w, b.keys[lane]) {
                    b.sel.push(lane as u32);
                    hits.push(r_payload);
                }
            }
            if !b.sel.is_empty() {
                b.vals.resize(n, 0);
                s_cols.vals.read_run(w, i, &mut b.vals[..n]);
                for (j, &lane) in b.sel.iter().enumerate() {
                    local_matches += 1;
                    local_sum ^=
                        hits[j].wrapping_mul(31).wrapping_add(b.vals[lane as usize]);
                }
            }
            i += n;
        }
        (local_matches, local_sum)
    })?;
    sim.phase_end();
    let join_cycles = sim.now_cycles() - start - build_cycles;
    let matches = locals.iter().map(|&(m, _)| m).sum();
    let checksum = locals.iter().fold(0u64, |acc, &(_, c)| acc ^ c);

    Ok(InlOutcome {
        build_cycles,
        join_cycles,
        matches,
        checksum,
        counters: sim.counters() - counters_start,
        trace: sim.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::reference_checksum;
    use crate::hash_join::reference_join;
    use crate::runner::EngineKind;
    use nqp_datagen::{generate, Dataset};
    use nqp_topology::machines;

    fn env() -> WorkloadEnv {
        WorkloadEnv::tuned(machines::machine_b())
            .with_threads(4)
            .with_engine(EngineKind::Vectorized)
    }

    #[test]
    fn vec_w2_counts_match_reference() {
        let cfg = AggConfig::w2(5_000, 100, 3);
        let records = generate(cfg.dataset, cfg.n, cfg.cardinality, cfg.seed);
        let (expect, expect_groups) = reference_checksum(&records, cfg.kind);
        let out = crate::run_aggregation(&env(), &cfg);
        assert_eq!(out.groups, expect_groups);
        assert_eq!(out.checksum, expect);
        assert!(out.exec_cycles > 0);
    }

    #[test]
    fn vec_w1_medians_match_reference() {
        let cfg = AggConfig::w1(3_000, 50, 4);
        let records = generate(cfg.dataset, cfg.n, cfg.cardinality, cfg.seed);
        let (expect, expect_groups) = reference_checksum(&records, cfg.kind);
        let out = crate::run_aggregation(&env(), &cfg);
        assert_eq!(out.groups, expect_groups);
        assert_eq!(out.checksum, expect);
    }

    #[test]
    fn vec_w3_matches_reference() {
        let data = JoinDataset::generate(500, 7);
        let (expect_matches, expect_checksum) = reference_join(&data);
        let out = crate::run_hash_join_on(&env(), &data);
        assert_eq!(out.matches, expect_matches);
        assert_eq!(out.checksum, expect_checksum);
    }

    #[test]
    fn vec_w4_matches_reference() {
        let data = JoinDataset::generate(300, 11);
        let (expect_matches, expect_checksum) = reference_join(&data);
        for kind in IndexKind::ALL {
            let out = crate::run_inl_join_on(&env(), kind, &data);
            assert_eq!(out.matches, expect_matches, "{kind:?}");
            assert_eq!(out.checksum, expect_checksum, "{kind:?}");
        }
    }

    #[test]
    fn batch_size_never_changes_cycles() {
        // The load-bearing invariance: any host batch size produces the
        // same simulated clock, counters, and results.
        let cfg = AggConfig::w2(3_000, 64, 5);
        let records = generate(cfg.dataset, cfg.n, cfg.cardinality, cfg.seed);
        let baseline = try_run_aggregation_vec(&env(), &cfg, &records).unwrap();
        for batch in [1, 31, 32, 100, 256, 4096] {
            let out =
                try_run_aggregation_vec(&env().with_batch(batch), &cfg, &records).unwrap();
            assert_eq!(out.exec_cycles, baseline.exec_cycles, "batch={batch}");
            assert_eq!(out.load_cycles, baseline.load_cycles, "batch={batch}");
            assert_eq!(out.checksum, baseline.checksum, "batch={batch}");
            assert_eq!(out.counters, baseline.counters, "batch={batch}");
        }
    }

    #[test]
    fn w2_projects_the_value_column_away() {
        // The query phases of a vectorized COUNT never touch the value
        // column: total query-phase traffic must not grow when the
        // value column's contents change. (Cheap proxy: byte-identical
        // counters for different val contents.)
        let cfg = AggConfig::w2(2_000, 32, 9);
        let mut records = generate(cfg.dataset, cfg.n, cfg.cardinality, cfg.seed);
        let a = try_run_aggregation_vec(&env(), &cfg, &records).unwrap();
        for r in &mut records {
            r.val = r.val.wrapping_mul(7).wrapping_add(13);
        }
        let b = try_run_aggregation_vec(&env(), &cfg, &records).unwrap();
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn selection_vector_filters_lanes() {
        let mut b = Batch::with_capacity(8);
        b.keys = vec![5, 6, 7, 8];
        b.select_all(4);
        assert_eq!(b.selected(), 4);
        let keys = b.keys.clone();
        b.sel.retain(|&lane| keys[lane as usize] % 2 == 0);
        assert_eq!(b.sel, vec![1, 3]);
    }
}
