//! Shared environment plumbing for the W1–W4 workload runners.

use nqp_alloc::AllocatorKind;
use nqp_datagen::Record;
use nqp_sim::{NumaSim, SimConfig, SimError, SimResult};
use nqp_storage::TupleArray;

/// Everything Table IV varies besides the workload itself: the machine
/// and OS knobs (inside [`SimConfig`]), the allocator, and the thread
/// count.
#[derive(Debug, Clone)]
pub struct WorkloadEnv {
    /// Machine + thread placement + memory policy + AutoNUMA + THP.
    pub sim: SimConfig,
    /// The overriding allocator (`LD_PRELOAD` in the paper's setup).
    pub allocator: AllocatorKind,
    /// Worker threads; the paper uses every hardware thread.
    pub threads: usize,
}

impl WorkloadEnv {
    /// The paper's default environment on a machine: OS defaults and
    /// ptmalloc, all hardware threads.
    pub fn os_default(machine: nqp_topology::MachineSpec) -> Self {
        let threads = machine.total_hw_threads();
        WorkloadEnv {
            sim: SimConfig::os_default(machine),
            allocator: AllocatorKind::Ptmalloc,
            threads,
        }
    }

    /// The paper's tuned environment: Sparse + Interleave + AutoNUMA/THP
    /// off + tbbmalloc.
    pub fn tuned(machine: nqp_topology::MachineSpec) -> Self {
        let threads = machine.total_hw_threads();
        WorkloadEnv {
            sim: SimConfig::tuned(machine),
            allocator: AllocatorKind::Tbbmalloc,
            threads,
        }
    }

    /// Builder-style allocator override.
    pub fn with_allocator(mut self, allocator: AllocatorKind) -> Self {
        self.allocator = allocator;
        self
    }

    /// Builder-style thread-count override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Load generated records into a [`TupleArray`] with a parallel
/// partition-per-thread pass, the way a parallel loader would — each
/// thread first-touches its own partition.
///
/// Returns the array; the load happens in its own region so callers can
/// separate load time from query time.
pub fn load_tuples(sim: &mut NumaSim, records: &[Record], threads: usize) -> TupleArray {
    try_load_tuples(sim, records, threads)
        .unwrap_or_else(|e| panic!("tuple load hit a simulation fault: {e}"))
}

/// Fallible form of [`load_tuples`]: surfaces capacity exhaustion,
/// injected faults, and budget timeouts instead of panicking, so the
/// experiment harness can retry or record the trial as failed.
pub fn try_load_tuples(
    sim: &mut NumaSim,
    records: &[Record],
    threads: usize,
) -> SimResult<TupleArray> {
    let mut arr: Option<TupleArray> = None;
    sim.try_serial(&mut arr, |w, arr| {
        *arr = Some(TupleArray::new(w, records.len().max(1)));
    })?;
    let arr = arr.ok_or(SimError::Harness { what: "tuple array was not mapped".to_string() })?;
    // The fill writes disjoint per-thread partitions, so it shards
    // across host threads (`SimConfig::shards`) with deterministic
    // epoch merges — byte-identical results at any shard count.
    sim.try_parallel_sharded(threads, &(), |w, ()| {
        for i in arr.partition(w.tid(), threads) {
            arr.write(w, i, records[i].key, records[i].val);
        }
    })?;
    Ok(arr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_datagen::Dataset;
    use nqp_topology::machines;

    #[test]
    fn env_presets_differ_in_the_right_knobs() {
        let d = WorkloadEnv::os_default(machines::machine_a());
        let t = WorkloadEnv::tuned(machines::machine_a());
        assert_eq!(d.allocator, AllocatorKind::Ptmalloc);
        assert_eq!(t.allocator, AllocatorKind::Tbbmalloc);
        assert!(d.sim.autonuma && !t.sim.autonuma);
        assert_eq!(d.threads, 16);
    }

    #[test]
    fn loaded_tuples_read_back() {
        let env = WorkloadEnv::tuned(machines::machine_b()).with_threads(4);
        let mut sim = NumaSim::new(env.sim.clone());
        let records = nqp_datagen::generate(Dataset::Uniform, 1_000, 64, 3);
        let arr = load_tuples(&mut sim, &records, env.threads);
        let mut state = (arr, records);
        sim.serial(&mut state, |w, (arr, records)| {
            for (i, r) in records.iter().enumerate() {
                assert_eq!(arr.read(w, i), (r.key, r.val));
            }
        });
    }
}
