//! Shared environment plumbing for the W1–W4 workload runners.

use nqp_alloc::AllocatorKind;
use nqp_datagen::Record;
use nqp_sim::{NumaSim, SimConfig, SimError, SimResult};
use nqp_storage::TupleArray;

/// Which operator architecture executes the query: the classic
/// tuple-at-a-time path (the differential oracle) or the batch-at-a-time
/// vectorized path of [`crate::vector`]. Both produce byte-identical
/// query results on every input; their simulated cycles and traffic
/// differ (that delta is the EXPERIMENTS.md §vectorized-vs-tuple study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Tuple-at-a-time over the chained hash table — the paper's engine
    /// and the differential oracle for the vectorized path.
    #[default]
    Tuple,
    /// Batch-at-a-time column runs + selection vectors + perfect-hash
    /// slot arrays.
    Vectorized,
}

/// Default host-side batch size (lanes per [`crate::vector::Batch`]).
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Largest accepted `--batch-size`; anything bigger is an overflow spec
/// error rather than a silent multi-megabyte host allocation per worker.
pub const MAX_BATCH_SIZE: usize = 1 << 20;

impl EngineKind {
    /// Parse a CLI token (`tuple`, `vec`, `vectorized`); unknown tokens
    /// become a typed [`SimError::BadSpec`] naming the offender.
    pub fn parse(token: &str) -> SimResult<EngineKind> {
        match token {
            "tuple" => Ok(EngineKind::Tuple),
            "vec" | "vectorized" => Ok(EngineKind::Vectorized),
            _ => Err(SimError::BadSpec {
                flag: "--engine".into(),
                token: token.into(),
                why: "unknown engine (expected `tuple` or `vec`)".into(),
            }),
        }
    }

    /// The canonical CLI token.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Tuple => "tuple",
            EngineKind::Vectorized => "vec",
        }
    }
}

/// Parse a `--batch-size` token: rejects non-numbers, zero, and values
/// past [`MAX_BATCH_SIZE`] as typed [`SimError::BadSpec`]s.
pub fn parse_batch_size(token: &str) -> SimResult<usize> {
    let bad = |why: &str| SimError::BadSpec {
        flag: "--batch-size".into(),
        token: token.into(),
        why: why.into(),
    };
    let v: u64 = token.parse().map_err(|_| bad("not an unsigned integer"))?;
    if v == 0 {
        return Err(bad("batch size must be nonzero"));
    }
    if v > MAX_BATCH_SIZE as u64 {
        return Err(bad("batch size overflows the supported range (max 1048576)"));
    }
    Ok(v as usize)
}

/// Everything Table IV varies besides the workload itself: the machine
/// and OS knobs (inside [`SimConfig`]), the allocator, and the thread
/// count — plus the operator architecture (tuple vs vectorized), the one
/// axis the paper never crossed.
#[derive(Debug, Clone)]
pub struct WorkloadEnv {
    /// Machine + thread placement + memory policy + AutoNUMA + THP.
    pub sim: SimConfig,
    /// The overriding allocator (`LD_PRELOAD` in the paper's setup).
    pub allocator: AllocatorKind,
    /// Worker threads; the paper uses every hardware thread.
    pub threads: usize,
    /// Tuple-at-a-time (default) or vectorized operator path.
    pub engine: EngineKind,
    /// Host-side batch size for the vectorized path. Rounded up to the
    /// bulk-run granularity at use, so it never changes simulated
    /// cycles — only host-memory staging.
    pub batch: usize,
}

impl WorkloadEnv {
    /// The paper's default environment on a machine: OS defaults and
    /// ptmalloc, all hardware threads.
    pub fn os_default(machine: nqp_topology::MachineSpec) -> Self {
        let threads = machine.total_hw_threads();
        WorkloadEnv {
            sim: SimConfig::os_default(machine),
            allocator: AllocatorKind::Ptmalloc,
            threads,
            engine: EngineKind::Tuple,
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    /// The paper's tuned environment: Sparse + Interleave + AutoNUMA/THP
    /// off + tbbmalloc.
    pub fn tuned(machine: nqp_topology::MachineSpec) -> Self {
        let threads = machine.total_hw_threads();
        WorkloadEnv {
            sim: SimConfig::tuned(machine),
            allocator: AllocatorKind::Tbbmalloc,
            threads,
            engine: EngineKind::Tuple,
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    /// Builder-style allocator override.
    pub fn with_allocator(mut self, allocator: AllocatorKind) -> Self {
        self.allocator = allocator;
        self
    }

    /// Builder-style thread-count override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style engine override.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Builder-style batch-size override (vectorized path only).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }
}

/// Load generated records into a [`TupleArray`] with a parallel
/// partition-per-thread pass, the way a parallel loader would — each
/// thread first-touches its own partition.
///
/// Returns the array; the load happens in its own region so callers can
/// separate load time from query time.
pub fn load_tuples(sim: &mut NumaSim, records: &[Record], threads: usize) -> TupleArray {
    try_load_tuples(sim, records, threads)
        .unwrap_or_else(|e| panic!("tuple load hit a simulation fault: {e}"))
}

/// Fallible form of [`load_tuples`]: surfaces capacity exhaustion,
/// injected faults, and budget timeouts instead of panicking, so the
/// experiment harness can retry or record the trial as failed.
pub fn try_load_tuples(
    sim: &mut NumaSim,
    records: &[Record],
    threads: usize,
) -> SimResult<TupleArray> {
    let mut arr: Option<TupleArray> = None;
    sim.try_serial(&mut arr, |w, arr| {
        *arr = Some(TupleArray::new(w, records.len().max(1)));
    })?;
    let arr = arr.ok_or(SimError::Harness { what: "tuple array was not mapped".to_string() })?;
    // The fill writes disjoint per-thread partitions, so it shards
    // across host threads (`SimConfig::shards`) with deterministic
    // epoch merges — byte-identical results at any shard count.
    sim.try_parallel_sharded(threads, &(), |w, ()| {
        for i in arr.partition(w.tid(), threads) {
            arr.write(w, i, records[i].key, records[i].val);
        }
    })?;
    Ok(arr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_datagen::Dataset;
    use nqp_topology::machines;

    #[test]
    fn env_presets_differ_in_the_right_knobs() {
        let d = WorkloadEnv::os_default(machines::machine_a());
        let t = WorkloadEnv::tuned(machines::machine_a());
        assert_eq!(d.allocator, AllocatorKind::Ptmalloc);
        assert_eq!(t.allocator, AllocatorKind::Tbbmalloc);
        assert!(d.sim.autonuma && !t.sim.autonuma);
        assert_eq!(d.threads, 16);
    }

    #[test]
    fn loaded_tuples_read_back() {
        let env = WorkloadEnv::tuned(machines::machine_b()).with_threads(4);
        let mut sim = NumaSim::new(env.sim.clone());
        let records = nqp_datagen::generate(Dataset::Uniform, 1_000, 64, 3);
        let arr = load_tuples(&mut sim, &records, env.threads);
        let mut state = (arr, records);
        sim.serial(&mut state, |w, (arr, records)| {
            for (i, r) in records.iter().enumerate() {
                assert_eq!(arr.read(w, i), (r.key, r.val));
            }
        });
    }
}
