//! W1 (holistic) and W2 (distributive) hash-based aggregation.
//!
//! Both run the paper's shared-global-hash-table design [14]: a
//! coordinator initialises the table (first-touching its directory),
//! worker threads insert their input partitions concurrently, and a
//! parallel finalize pass walks the buckets to produce per-group
//! aggregates. W1 keeps *every* value per group in heap-allocated
//! chains and computes the median — the allocation-heavy case; W2 keeps
//! one counter per group in the entry itself — the placement-bound case.

use crate::hash_table::HashTable;
use crate::runner::{try_load_tuples, WorkloadEnv};
use nqp_datagen::{generate, Dataset, Record};
use nqp_sim::{Counters, NumaSim, SimResult};
use nqp_storage::{Chain, SimHeap};

/// Which aggregate function W-runs compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// W1: `MEDIAN(val)` — holistic; requires all values per group.
    HolisticMedian,
    /// W2: `COUNT(val)` — distributive; one counter per group.
    DistributiveCount,
}

/// Parameters of one aggregation run.
#[derive(Debug, Clone)]
pub struct AggConfig {
    /// W1 or W2.
    pub kind: AggKind,
    /// Input records.
    pub n: usize,
    /// Group-by cardinality.
    pub cardinality: u64,
    /// Key distribution.
    pub dataset: Dataset,
    /// Data seed.
    pub seed: u64,
    /// Application-level NUMA-awareness: interleave the shared hash
    /// table's directory across nodes instead of letting the coordinator
    /// first-touch it (the algorithmic tweak of the paper's related work
    /// \[9\]\[31\]\[32\], kept off by default because the paper studies
    /// application-*agnostic* tuning).
    pub interleaved_table: bool,
}

impl AggConfig {
    /// W1 with its Table IV default dataset (moving cluster).
    pub fn w1(n: usize, cardinality: u64, seed: u64) -> Self {
        AggConfig {
            kind: AggKind::HolisticMedian,
            n,
            cardinality,
            dataset: Dataset::MovingCluster,
            seed,
            interleaved_table: false,
        }
    }

    /// W2 with its Table IV default dataset (zipfian).
    pub fn w2(n: usize, cardinality: u64, seed: u64) -> Self {
        AggConfig {
            kind: AggKind::DistributiveCount,
            n,
            cardinality,
            dataset: Dataset::Zipfian,
            seed,
            interleaved_table: false,
        }
    }
}

/// Result of one aggregation run.
#[derive(Debug, Clone)]
pub struct AggOutcome {
    /// Simulated cycles of the query itself (build + finalize; loading
    /// excluded, as in the paper's timers).
    pub exec_cycles: u64,
    /// Cycles spent loading the input (reported separately).
    pub load_cycles: u64,
    /// Number of groups produced.
    pub groups: u64,
    /// XOR/sum mix over `(key, aggregate)` pairs — order-independent, so
    /// tests can verify against a host-side reference.
    pub checksum: u64,
    /// Counters accumulated during the query phases only.
    pub counters: Counters,
    /// Per-region stats of the query phases (init, build, finalize).
    pub regions: Vec<nqp_sim::RegionStats>,
    /// The finalised trace log when `env.sim.trace` was set, else None.
    pub trace: Option<nqp_sim::TraceLog>,
}

/// Cost charged per comparison while sorting a group's values (median).
const SORT_CMP_CYCLES: u64 = 3;

/// Run W1/W2 under `env`.
pub fn run_aggregation(env: &WorkloadEnv, cfg: &AggConfig) -> AggOutcome {
    let records = generate(cfg.dataset, cfg.n, cfg.cardinality, cfg.seed);
    run_aggregation_on(env, cfg, &records)
}

/// Like [`run_aggregation`] but over caller-supplied records (used by
/// benches that pre-generate inputs once).
pub fn run_aggregation_on(
    env: &WorkloadEnv,
    cfg: &AggConfig,
    records: &[Record],
) -> AggOutcome {
    try_run_aggregation_on(env, cfg, records)
        .unwrap_or_else(|e| panic!("aggregation hit a simulation fault: {e}"))
}

/// Fallible W1/W2: returns the fault (OOM under a strict `Bind`, an
/// injected allocation failure, a budget timeout) instead of panicking.
pub fn try_run_aggregation(env: &WorkloadEnv, cfg: &AggConfig) -> SimResult<AggOutcome> {
    let records = generate(cfg.dataset, cfg.n, cfg.cardinality, cfg.seed);
    try_run_aggregation_on(env, cfg, &records)
}

/// Fallible form of [`run_aggregation_on`].
pub fn try_run_aggregation_on(
    env: &WorkloadEnv,
    cfg: &AggConfig,
    records: &[Record],
) -> SimResult<AggOutcome> {
    if env.engine == crate::runner::EngineKind::Vectorized {
        return crate::vector::try_run_aggregation_vec(env, cfg, records);
    }
    let mut sim = NumaSim::new(env.sim.clone());
    let heap = SimHeap::new(env.allocator, &mut sim);
    let table = HashTable::new(&mut sim, cfg.cardinality * 2);

    sim.phase_begin("load");
    let input = try_load_tuples(&mut sim, records, env.threads)?;
    sim.phase_end();
    let load_cycles = sim.now_cycles();
    let counters_before = sim.counters();

    // Coordinator initialises the shared table (first-touch lands its
    // directory on the coordinator's node).
    let mut regions = Vec::new();
    let mut state = (table, heap);
    let interleaved = cfg.interleaved_table;
    sim.phase_begin("agg:init");
    regions.push(sim.try_serial(&mut state, |w, (table, _)| {
        if interleaved {
            table.init_interleaved(w);
        } else {
            table.init(w);
        }
    })?);
    sim.phase_end();

    // Parallel build.
    let kind = cfg.kind;
    let threads = env.threads;
    sim.phase_begin("agg:build");
    regions.push(sim.try_parallel(threads, &mut state, |w, (table, heap)| {
        // Tuple-at-once input scan: each batch is one bulk ranged read
        // instead of a per-tuple (let alone per-field) access charge.
        let range = input.partition(w.tid(), threads);
        let mut batch = [(0u64, 0u64); 32];
        let mut i = range.start;
        while i < range.end {
            let n = (range.end - i).min(batch.len());
            input.read_run(w, i, &mut batch[..n]);
            for &(key, val) in &batch[..n] {
                match kind {
                    AggKind::DistributiveCount => {
                        table.upsert(w, heap, key, 1, |w, entry| {
                            // One write-intent RMW, not a read + a write.
                            w.rmw_u64(entry + 8, |c| c + 1);
                        });
                    }
                    AggKind::HolisticMedian => {
                        // Payload holds the chain head; push allocates
                        // chunks between the head read and write-back,
                        // so this stays a genuine read-then-write.
                        let entry = table.upsert(w, heap, key, 0, |_, _| {});
                        let head = w.read_u64(entry + 8);
                        let mut chain = Chain::from_head(head);
                        chain.push(w, heap, val);
                        w.write_u64(entry + 8, chain.head());
                    }
                }
            }
            i += n;
        }
    })?);
    sim.phase_end();

    // Parallel finalize: walk buckets, produce (key, aggregate). The
    // walk is read-only against the shared table, so it shards across
    // host threads (`SimConfig::shards`); the per-worker result vectors
    // come back in ascending-tid order, matching the serial append.
    let (table, _heap) = state;
    sim.phase_begin("agg:finalize");
    let (stats, locals) = sim.try_parallel_sharded(threads, &table, |w, table| {
        let range = table.bucket_partition(w.tid(), threads);
        let mut local: Vec<(u64, u64, u64)> = Vec::new();
        let tid = w.tid() as u64;
        table.for_each_in_buckets(w, range, |w, key, entry| {
            let payload = w.read_u64(entry + 8);
            let agg = match kind {
                AggKind::DistributiveCount => payload,
                AggKind::HolisticMedian => {
                    let chain = Chain::from_head(payload);
                    let mut values = chain.collect(w);
                    let n = values.len().max(1) as u64;
                    w.compute(SORT_CMP_CYCLES * n * (64 - n.leading_zeros()) as u64);
                    values.sort_unstable();
                    values[values.len() / 2]
                }
            };
            local.push((tid, key, agg));
        });
        local
    })?;
    regions.push(stats);
    sim.phase_end();
    let results: Vec<(u64, u64, u64)> = locals.into_iter().flatten().collect();

    let exec_cycles = sim.now_cycles() - load_cycles;
    let mut checksum = 0u64;
    for &(_, key, agg) in &results {
        checksum ^= key.wrapping_mul(0x100_0001b3).wrapping_add(agg);
    }
    Ok(AggOutcome {
        exec_cycles,
        load_cycles,
        groups: results.len() as u64,
        checksum,
        // Counters describe the query phases only, not the load.
        counters: sim.counters() - counters_before,
        regions,
        trace: sim.take_trace(),
    })
}

/// Host-side reference aggregation for verification.
pub fn reference_checksum(records: &[Record], kind: AggKind) -> (u64, u64) {
    use std::collections::HashMap;
    let mut groups: HashMap<u64, Vec<u64>> = HashMap::new();
    for r in records {
        groups.entry(r.key).or_default().push(r.val);
    }
    let mut checksum = 0u64;
    for (key, mut values) in groups.clone() {
        let agg = match kind {
            AggKind::DistributiveCount => values.len() as u64,
            AggKind::HolisticMedian => {
                values.sort_unstable();
                values[values.len() / 2]
            }
        };
        checksum ^= key.wrapping_mul(0x100_0001b3).wrapping_add(agg);
    }
    (checksum, groups.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_topology::machines;

    fn env() -> WorkloadEnv {
        WorkloadEnv::tuned(machines::machine_b()).with_threads(4)
    }

    #[test]
    fn w2_counts_match_reference() {
        let cfg = AggConfig::w2(5_000, 100, 3);
        let records = generate(cfg.dataset, cfg.n, cfg.cardinality, cfg.seed);
        let (expect, expect_groups) = reference_checksum(&records, cfg.kind);
        let out = run_aggregation(&env(), &cfg);
        assert_eq!(out.groups, expect_groups);
        assert_eq!(out.checksum, expect);
        assert!(out.exec_cycles > 0);
    }

    #[test]
    fn w1_medians_match_reference() {
        let cfg = AggConfig::w1(3_000, 50, 4);
        let records = generate(cfg.dataset, cfg.n, cfg.cardinality, cfg.seed);
        let (expect, expect_groups) = reference_checksum(&records, cfg.kind);
        let out = run_aggregation(&env(), &cfg);
        assert_eq!(out.groups, expect_groups);
        assert_eq!(out.checksum, expect);
    }

    #[test]
    fn w1_allocates_more_than_w2() {
        // The defining difference the paper leans on: W1 is
        // allocation-heavy (chains), W2 is not.
        let records = generate(Dataset::Uniform, 4_000, 64, 5);
        let w1 = run_aggregation_on(
            &env(),
            &AggConfig { kind: AggKind::HolisticMedian, ..AggConfig::w1(4_000, 64, 5) },
            &records,
        );
        let w2 = run_aggregation_on(
            &env(),
            &AggConfig { kind: AggKind::DistributiveCount, ..AggConfig::w2(4_000, 64, 5) },
            &records,
        );
        assert!(w1.exec_cycles > w2.exec_cycles);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = AggConfig::w2(2_000, 32, 9);
        let a = run_aggregation(&env(), &cfg);
        let b = run_aggregation(&env(), &cfg);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.checksum, b.checksum);
    }
}
