//! W3: the non-partitioning hash join of Blanas et al. [15].
//!
//! Build an ad hoc shared hash table over the 1× relation `R`, then
//! probe it with every tuple of the 16× relation `S`. The build phase is
//! allocation-heavy (one entry per build tuple); the probe phase is pure
//! memory traffic — together they make W3 the workload with the largest
//! allocator gains in Figure 6g–6i.

use crate::hash_table::HashTable;
use crate::runner::WorkloadEnv;
use nqp_datagen::JoinDataset;
use nqp_sim::{Counters, NumaSim, SimError, SimResult};
use nqp_storage::{SimHeap, TupleArray};

/// Parameters of one hash-join run.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Build-relation size; probe side is `ratio` times larger.
    pub r_size: usize,
    /// `|S| / |R|`; the paper uses 16.
    pub ratio: usize,
    /// Data seed.
    pub seed: u64,
}

impl JoinConfig {
    /// The paper's shape at a chosen scale.
    pub fn scaled(r_size: usize, seed: u64) -> Self {
        JoinConfig { r_size, ratio: JoinDataset::RATIO, seed }
    }
}

/// Result of one hash-join run.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// Cycles of the build phase (table construction over R).
    pub build_cycles: u64,
    /// Cycles of the probe phase (S against the table).
    pub probe_cycles: u64,
    /// Cycles spent loading both relations (excluded from the above).
    pub load_cycles: u64,
    /// Matched probe tuples (every S tuple matches by construction).
    pub matches: u64,
    /// XOR mix over joined `(r.payload, s.payload)` pairs.
    pub checksum: u64,
    /// Counters over build + probe only.
    pub counters: Counters,
    /// The finalised trace log when `env.sim.trace` was set, else None.
    pub trace: Option<nqp_sim::TraceLog>,
}

/// Run W3 under `env`.
pub fn run_hash_join(env: &WorkloadEnv, cfg: &JoinConfig) -> JoinOutcome {
    let data = JoinDataset::generate_with_ratio(cfg.r_size, cfg.ratio, cfg.seed);
    run_hash_join_on(env, &data)
}

/// Like [`run_hash_join`] but over a pre-generated dataset.
pub fn run_hash_join_on(env: &WorkloadEnv, data: &JoinDataset) -> JoinOutcome {
    try_run_hash_join_on(env, data)
        .unwrap_or_else(|e| panic!("hash join hit a simulation fault: {e}"))
}

/// Fallible W3: returns the fault (OOM under a strict `Bind`, an
/// injected allocation failure, a budget timeout) instead of panicking.
pub fn try_run_hash_join(env: &WorkloadEnv, cfg: &JoinConfig) -> SimResult<JoinOutcome> {
    let data = JoinDataset::generate_with_ratio(cfg.r_size, cfg.ratio, cfg.seed);
    try_run_hash_join_on(env, &data)
}

/// Fallible form of [`run_hash_join_on`].
pub fn try_run_hash_join_on(env: &WorkloadEnv, data: &JoinDataset) -> SimResult<JoinOutcome> {
    if env.engine == crate::runner::EngineKind::Vectorized {
        return crate::vector::try_run_hash_join_vec(env, data);
    }
    let mut sim = NumaSim::new(env.sim.clone());
    let heap = SimHeap::new(env.allocator, &mut sim);
    let table = HashTable::new(&mut sim, (data.r.len() as u64) * 2);
    let threads = env.threads;

    // Load both relations partition-parallel.
    sim.phase_begin("load");
    let mut arrays: Option<(TupleArray, TupleArray)> = None;
    sim.try_serial(&mut arrays, |w, arrays| {
        *arrays = Some((
            TupleArray::new(w, data.r.len()),
            TupleArray::new(w, data.s.len()),
        ));
    })?;
    let (r_arr, s_arr) =
        arrays.ok_or(SimError::Harness { what: "join relations were not mapped".to_string() })?;
    // Disjoint per-thread partitions: shards across host threads with
    // deterministic epoch merges.
    sim.try_parallel_sharded(threads, &(), |w, ()| {
        for i in r_arr.partition(w.tid(), threads) {
            r_arr.write(w, i, data.r[i].key, data.r[i].payload);
        }
        for i in s_arr.partition(w.tid(), threads) {
            s_arr.write(w, i, data.s[i].key, data.s[i].payload);
        }
    })?;
    sim.phase_end();
    let load_cycles = sim.now_cycles();
    let counters_before = sim.counters();

    // Build: coordinator initialises the directory, workers fill it.
    let mut state = (table, heap);
    sim.phase_begin("join:build");
    sim.try_serial(&mut state, |w, (table, _)| table.init(w))?;
    sim.try_parallel(threads, &mut state, |w, (table, heap)| {
        // Tuple-at-once build scan (one bulk ranged read per batch).
        let range = r_arr.partition(w.tid(), threads);
        let mut batch = [(0u64, 0u64); 32];
        let mut i = range.start;
        while i < range.end {
            let n = (range.end - i).min(batch.len());
            r_arr.read_run(w, i, &mut batch[..n]);
            for &(key, payload) in &batch[..n] {
                table.upsert(w, heap, key, payload, |_, _| {});
            }
            i += n;
        }
    })?;
    sim.phase_end();
    let build_cycles = sim.now_cycles() - load_cycles;

    // Probe: lock-free lookups against the now-frozen table, so the
    // phase shards across host threads; per-worker (matches, checksum)
    // pairs fold in tid order (sum and XOR are order-independent
    // anyway, but the fold order is pinned for byte-identity).
    let (table, _heap) = state;
    sim.phase_begin("join:probe");
    let (_, locals) = sim.try_parallel_sharded(threads, &table, |w, table| {
        let mut local_matches = 0u64;
        let mut local_sum = 0u64;
        // Tuple-at-once probe scan: the probe side streams through bulk
        // ranged reads; each hit costs one entry-at-once chain read.
        let range = s_arr.partition(w.tid(), threads);
        let mut batch = [(0u64, 0u64); 32];
        let mut i = range.start;
        while i < range.end {
            let n = (range.end - i).min(batch.len());
            s_arr.read_run(w, i, &mut batch[..n]);
            for &(key, s_payload) in &batch[..n] {
                if let Some(r_payload) = table.get(w, key) {
                    local_matches += 1;
                    local_sum ^= r_payload.wrapping_mul(31).wrapping_add(s_payload);
                }
            }
            i += n;
        }
        (local_matches, local_sum)
    })?;
    sim.phase_end();
    let probe_cycles = sim.now_cycles() - load_cycles - build_cycles;
    let matches = locals.iter().map(|&(m, _)| m).sum();
    let checksum = locals.iter().fold(0u64, |acc, &(_, c)| acc ^ c);

    Ok(JoinOutcome {
        build_cycles,
        probe_cycles,
        load_cycles,
        matches,
        checksum,
        counters: sim.counters() - counters_before,
        trace: sim.take_trace(),
    })
}

/// Host-side reference join for verification.
pub fn reference_join(data: &JoinDataset) -> (u64, u64) {
    use std::collections::HashMap;
    let table: HashMap<u64, u64> = data.r.iter().map(|t| (t.key, t.payload)).collect();
    let mut matches = 0u64;
    let mut checksum = 0u64;
    for s in &data.s {
        if let Some(&r_payload) = table.get(&s.key) {
            matches += 1;
            checksum ^= r_payload.wrapping_mul(31).wrapping_add(s.payload);
        }
    }
    (matches, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_topology::machines;

    fn env() -> WorkloadEnv {
        WorkloadEnv::tuned(machines::machine_b()).with_threads(4)
    }

    #[test]
    fn join_matches_reference() {
        let data = JoinDataset::generate(500, 7);
        let (expect_matches, expect_checksum) = reference_join(&data);
        let out = run_hash_join_on(&env(), &data);
        assert_eq!(out.matches, expect_matches);
        assert_eq!(out.matches, 500 * 16);
        assert_eq!(out.checksum, expect_checksum);
    }

    #[test]
    fn probe_dominates_build_at_ratio_16() {
        let out = run_hash_join(&env(), &JoinConfig::scaled(400, 1));
        assert!(
            out.probe_cycles > out.build_cycles,
            "probe={} build={}",
            out.probe_cycles,
            out.build_cycles
        );
    }

    #[test]
    fn deterministic() {
        let cfg = JoinConfig::scaled(200, 3);
        let a = run_hash_join(&env(), &cfg);
        let b = run_hash_join(&env(), &cfg);
        assert_eq!(a.build_cycles, b.build_cycles);
        assert_eq!(a.probe_cycles, b.probe_cycles);
        assert_eq!(a.checksum, b.checksum);
    }
}
