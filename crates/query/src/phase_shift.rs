//! The phase-shifting workload the online advisor is judged on.
//!
//! No single static placement wins this one, by construction:
//!
//! * A **shared** probe table is created and fully written by the
//!   coordinator, so under `FirstTouch` every one of its pages lands on
//!   the coordinator's node (the classic accidental-hot-node shape).
//! * A **private** table is loaded partition-per-thread, so under
//!   `FirstTouch` each thread's slice is local to its own node.
//! * **Build rounds** (the first phase) scan the private partitions
//!   with only light shared traffic — `FirstTouch` is near-optimal,
//!   `Interleave` pays remote accesses on 3 of 4 private lines.
//! * **Probe rounds** (the second phase) hammer the shared table with
//!   per-thread pseudo-random point reads — under `FirstTouch` every
//!   thread off the coordinator's node pays remote latency *and* the
//!   hot node's bandwidth roofline, while `Interleave` spreads the
//!   pressure.
//!
//! AutoNUMA cannot rescue `FirstTouch` here: the shared pages have
//! many sharers, and the balancer refuses to chase ping-ponging pages.
//! An *online* advisor can — start from `FirstTouch`, ride the cheap
//! build phase, watch the local-access ratio collapse when probing
//! starts, and re-home the shared pages to `Interleave` mid-run.
//!
//! Every round runs as its own parallel region, which is what gives an
//! epoch-driven controller its decision points.

use crate::runner::{try_load_tuples, WorkloadEnv};
use nqp_datagen::Record;
use nqp_sim::{Counters, NumaSim, RegionStats, SimResult, TraceLog};
use nqp_storage::TupleArray;

/// Parameters of one phase-shift run.
#[derive(Debug, Clone)]
pub struct PhaseShiftConfig {
    /// Tuples in the coordinator-touched shared table.
    pub shared_n: usize,
    /// Tuples in the thread-partitioned private table.
    pub private_n: usize,
    /// Private-scan rounds before the shift.
    pub build_rounds: usize,
    /// Shared-probe rounds after the shift.
    pub probe_rounds: usize,
    /// Point reads into the shared table per thread per probe round.
    pub probes_per_round: usize,
    /// Seed for data values and probe index streams.
    pub seed: u64,
}

impl PhaseShiftConfig {
    /// A size tuned for the `numa_small` testbed machine: the shared
    /// table is 4× one LLC (random probes miss), and each thread's
    /// private partition is 2× one LLC (sequential rescans miss) — so
    /// placement decides real DRAM traffic while the run stays
    /// test-fast.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        PhaseShiftConfig {
            shared_n: 16_384,
            private_n: 32_768,
            build_rounds: 10,
            probe_rounds: 8,
            probes_per_round: 3_000,
            seed,
        }
    }
}

/// Result of one phase-shift run.
#[derive(Debug, Clone)]
pub struct PhaseShiftOutcome {
    /// Simulated cycles of the rounds (loading excluded).
    pub exec_cycles: u64,
    /// Cycles spent materialising both tables.
    pub load_cycles: u64,
    /// Order-independent mix over every value read — equal across
    /// placements, thread counts, and advisor modes, so determinism and
    /// correctness tests can pin it.
    pub checksum: u64,
    /// Counters accumulated during the rounds only.
    pub counters: Counters,
    /// Per-round region stats (build rounds first, then probe rounds).
    pub regions: Vec<RegionStats>,
    /// The finalised trace log when `env.sim.trace` was set.
    pub trace: Option<TraceLog>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn mix(acc: u64, key: u64, val: u64) -> u64 {
    acc ^ key.wrapping_mul(0x100_0001b3).wrapping_add(val)
}

/// Run the phase-shift workload under `env`, panicking on faults.
pub fn run_phase_shift(env: &WorkloadEnv, cfg: &PhaseShiftConfig) -> PhaseShiftOutcome {
    try_run_phase_shift(env, cfg)
        .unwrap_or_else(|e| panic!("phase-shift hit a simulation fault: {e}"))
}

/// Fallible phase-shift run: surfaces OOM, injected faults, and budget
/// timeouts so the experiment harness can retry or record the failure.
pub fn try_run_phase_shift(
    env: &WorkloadEnv,
    cfg: &PhaseShiftConfig,
) -> SimResult<PhaseShiftOutcome> {
    let mut sim = NumaSim::new(env.sim.clone());
    let threads = env.threads.max(1);

    // The shared table: created *and written* by the coordinator in a
    // serial region, so first-touch concentrates it on one node.
    sim.phase_begin("shift:load");
    let mut shared: Option<TupleArray> = None;
    let shared_n = cfg.shared_n.max(1);
    let seed = cfg.seed;
    sim.try_serial(&mut shared, |w, shared| {
        let arr = TupleArray::new(w, shared_n);
        for i in 0..shared_n {
            arr.write(w, i, i as u64, splitmix64(seed ^ i as u64));
        }
        *shared = Some(arr);
    })?;
    let shared = match shared {
        Some(arr) => arr,
        None => {
            return Err(nqp_sim::SimError::Harness {
                what: "shared table was not mapped".to_string(),
            })
        }
    };

    // The private table: partition-per-thread parallel load, each
    // thread first-touching its own slice.
    let private_records: Vec<Record> = (0..cfg.private_n.max(1))
        .map(|i| Record { key: i as u64, val: splitmix64(seed.wrapping_add(1) ^ i as u64) })
        .collect();
    let private = try_load_tuples(&mut sim, &private_records, threads)?;
    sim.phase_end();
    let load_cycles = sim.now_cycles();
    let counters_before = sim.counters();

    let mut regions = Vec::new();
    let mut checksum = 0u64;

    // Phase 1 — build rounds: scan the private partition, touch the
    // shared table only lightly.
    // Rounds are sharded regions: workers only read the two tables and
    // return a per-thread accumulator, so `--shards N` can fan each
    // round across host threads with byte-identical results.
    let tables = (&shared, &private);
    let light_probes = (cfg.probes_per_round / 16).max(1);
    sim.phase_begin("shift:build");
    for round in 0..cfg.build_rounds {
        let (stats, sums) = sim.try_parallel_sharded(threads, &tables, |w, tables| {
            let (shared, private) = *tables;
            let tid = w.tid();
            let mut acc = 0u64;
            let range = private.partition(tid, threads);
            let mut batch = [(0u64, 0u64); 32];
            let mut i = range.start;
            while i < range.end {
                let n = (range.end - i).min(batch.len());
                private.read_run(w, i, &mut batch[..n]);
                for &(key, val) in &batch[..n] {
                    acc = mix(acc, key, val);
                }
                i += n;
            }
            let stream = seed ^ (round as u64) << 32 ^ (tid as u64) << 16;
            for p in 0..light_probes {
                let idx = (splitmix64(stream ^ p as u64) as usize) % shared_n;
                let (key, val) = shared.read(w, idx);
                acc = mix(acc, key, val);
            }
            acc
        })?;
        regions.push(stats);
        for s in sums {
            checksum ^= s;
        }
    }
    sim.phase_end();

    // Phase 2 — probe rounds: pseudo-random point reads into the
    // shared table, with only a light private sweep.
    sim.phase_begin("shift:probe");
    for round in 0..cfg.probe_rounds {
        let (stats, sums) = sim.try_parallel_sharded(threads, &tables, |w, tables| {
            let (shared, private) = *tables;
            let tid = w.tid();
            let mut acc = 0u64;
            let stream =
                seed ^ 0xbeef ^ (round as u64) << 32 ^ (tid as u64) << 16;
            for p in 0..cfg.probes_per_round {
                let idx = (splitmix64(stream ^ p as u64) as usize) % shared_n;
                let (key, val) = shared.read(w, idx);
                acc = mix(acc, key, val);
            }
            let range = private.partition(tid, threads);
            let mut batch = [(0u64, 0u64); 32];
            let step = (range.len() / 8).max(batch.len());
            let mut i = range.start;
            while i < range.end {
                let n = (range.end - i).min(batch.len());
                private.read_run(w, i, &mut batch[..n]);
                for &(key, val) in &batch[..n] {
                    acc = mix(acc, key, val);
                }
                i += step;
            }
            acc
        })?;
        regions.push(stats);
        for s in sums {
            checksum ^= s;
        }
    }
    sim.phase_end();

    let exec_cycles = sim.now_cycles() - load_cycles;
    Ok(PhaseShiftOutcome {
        exec_cycles,
        load_cycles,
        checksum,
        counters: sim.counters() - counters_before,
        regions,
        trace: sim.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_sim::MemPolicy;
    use nqp_topology::machines;

    fn env(policy: MemPolicy) -> WorkloadEnv {
        let mut e = WorkloadEnv::tuned(machines::numa_small()).with_threads(4);
        e.sim = e.sim.with_policy(policy);
        e
    }

    #[test]
    fn checksum_is_placement_independent_and_deterministic() {
        let cfg = PhaseShiftConfig { probe_rounds: 2, build_rounds: 2, ..PhaseShiftConfig::small(7) };
        let a = run_phase_shift(&env(MemPolicy::FirstTouch), &cfg);
        let b = run_phase_shift(&env(MemPolicy::Interleave), &cfg);
        assert_eq!(a.checksum, b.checksum, "answers must not depend on placement");
        let c = run_phase_shift(&env(MemPolicy::FirstTouch), &cfg);
        assert_eq!(a.exec_cycles, c.exec_cycles, "cycle counts are deterministic");
        assert_eq!(a.regions.len(), cfg.build_rounds + cfg.probe_rounds);
    }

    #[test]
    fn rounds_are_byte_identical_across_shard_counts() {
        // The rounds now run through `try_parallel_sharded`: any host
        // shard count must reproduce the serial run exactly.
        let cfg = PhaseShiftConfig {
            build_rounds: 2,
            probe_rounds: 2,
            ..PhaseShiftConfig::small(11)
        };
        let run = |shards: usize| {
            let mut e = env(MemPolicy::FirstTouch);
            e.sim = e.sim.with_shards(shards);
            run_phase_shift(&e, &cfg)
        };
        let serial = run(1);
        for shards in [2, 4] {
            let sharded = run(shards);
            assert_eq!(serial.exec_cycles, sharded.exec_cycles, "shards={shards}");
            assert_eq!(serial.checksum, sharded.checksum, "shards={shards}");
            assert_eq!(serial.counters, sharded.counters, "shards={shards}");
        }
    }

    #[test]
    fn phases_favour_opposite_placements() {
        // The defining property: build rounds like FirstTouch, probe
        // rounds like Interleave — so no static choice wins both.
        let cfg = PhaseShiftConfig { build_rounds: 3, probe_rounds: 3, ..PhaseShiftConfig::small(3) };
        let ft = run_phase_shift(&env(MemPolicy::FirstTouch), &cfg);
        let il = run_phase_shift(&env(MemPolicy::Interleave), &cfg);
        let build = |o: &PhaseShiftOutcome| -> u64 {
            o.regions[..cfg.build_rounds].iter().map(|r| r.elapsed_cycles).sum()
        };
        let probe = |o: &PhaseShiftOutcome| -> u64 {
            o.regions[cfg.build_rounds..].iter().map(|r| r.elapsed_cycles).sum()
        };
        assert!(
            build(&ft) < build(&il),
            "build: FirstTouch {} should beat Interleave {}",
            build(&ft),
            build(&il)
        );
        assert!(
            probe(&il) < probe(&ft),
            "probe: Interleave {} should beat FirstTouch {}",
            probe(&il),
            probe(&ft)
        );
    }
}
