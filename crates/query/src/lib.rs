//! The standalone query workloads of Table I, W1–W4, over the NUMA
//! simulator:
//!
//! * **W1** holistic aggregation (`MEDIAN ... GROUP BY`) — hash table +
//!   per-group value chains; the allocation-heaviest workload.
//! * **W2** distributive aggregation (`COUNT ... GROUP BY`) — hash table
//!   with in-place counters; placement-bound, not allocation-bound.
//! * **W3** non-partitioning hash join — build on the 1× table, probe
//!   with the 16× table.
//! * **W4** index nested-loop join — the same data probed through a
//!   pre-built in-memory index (ART / Masstree / B+tree / Skip List).
//!
//! Plus one workload the paper does not have: the **phase-shift** run
//! ([`run_phase_shift`]), a build-heavy→probe-heavy sequence designed
//! so that no single static placement wins — the benchmark for the
//! online advisor in `nqp-advisor`.
//!
//! Each workload is a function of a [`WorkloadEnv`] (machine + OS knobs +
//! allocator + thread count) and returns cycle counts plus a checksum
//! that tests verify against a host-side reference.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod aggregate;
mod hash_join;
mod hash_table;
mod inl_join;
mod phase_shift;
mod runner;
mod vector;

pub use aggregate::{
    reference_checksum, run_aggregation, run_aggregation_on, try_run_aggregation,
    try_run_aggregation_on, AggConfig, AggKind, AggOutcome,
};
pub use hash_join::{
    reference_join, run_hash_join, run_hash_join_on, try_run_hash_join, try_run_hash_join_on,
    JoinConfig, JoinOutcome,
};
pub use hash_table::HashTable;
pub use phase_shift::{
    run_phase_shift, try_run_phase_shift, PhaseShiftConfig, PhaseShiftOutcome,
};
pub use inl_join::{run_inl_join, run_inl_join_on, try_run_inl_join, try_run_inl_join_on, InlConfig, InlOutcome};
pub use runner::{
    load_tuples, parse_batch_size, try_load_tuples, EngineKind, WorkloadEnv,
    DEFAULT_BATCH_SIZE, MAX_BATCH_SIZE,
};
pub use vector::{
    aligned_batch, try_load_columns, try_run_aggregation_vec, try_run_hash_join_vec,
    try_run_inl_join_vec, Batch,
};
