//! W4: index nested-loop join over a pre-built in-memory index.
//!
//! Same data as W3, but the build relation is indexed once (ART,
//! Masstree, B+tree, or Skip List) and the probe relation drives point
//! lookups. Because the index is pre-built, the join phase performs few
//! allocations; lookup path length and node locality dominate — which is
//! why W4's allocator gains are smaller than W3's (§IV-F) and why the
//! *index structure* is the interesting axis (Figure 7).

use crate::runner::WorkloadEnv;
use nqp_datagen::JoinDataset;
use nqp_indexes::{build_index, IndexKind};
use nqp_sim::{Counters, NumaSim, SimError, SimResult};
use nqp_storage::{SimHeap, TupleArray};

/// Parameters of one index-nested-loop-join run.
#[derive(Debug, Clone)]
pub struct InlConfig {
    /// Which index accelerates the lookups.
    pub index: IndexKind,
    /// Build-relation size; probe side is `ratio` times larger.
    pub r_size: usize,
    /// `|S| / |R|`; the paper uses 16.
    pub ratio: usize,
    /// Data seed.
    pub seed: u64,
}

/// Result of one W4 run.
#[derive(Debug, Clone)]
pub struct InlOutcome {
    /// Cycles to build the index over R (Figure 7e's build time).
    pub build_cycles: u64,
    /// Cycles of the join itself (Figure 7a–7e's join time).
    pub join_cycles: u64,
    /// Matched probe tuples.
    pub matches: u64,
    /// XOR mix over joined pairs, comparable with W3's reference.
    pub checksum: u64,
    /// Counters over build + join.
    pub counters: Counters,
    /// The finalised trace log when `env.sim.trace` was set, else None.
    pub trace: Option<nqp_sim::TraceLog>,
}

/// Run W4 under `env`.
pub fn run_inl_join(env: &WorkloadEnv, cfg: &InlConfig) -> InlOutcome {
    let data = JoinDataset::generate_with_ratio(cfg.r_size, cfg.ratio, cfg.seed);
    run_inl_join_on(env, cfg.index, &data)
}

/// Like [`run_inl_join`] but over a pre-generated dataset.
pub fn run_inl_join_on(env: &WorkloadEnv, kind: IndexKind, data: &JoinDataset) -> InlOutcome {
    try_run_inl_join_on(env, kind, data)
        .unwrap_or_else(|e| panic!("index join hit a simulation fault: {e}"))
}

/// Fallible W4: returns the fault (OOM under a strict `Bind`, an
/// injected allocation failure, a budget timeout) instead of panicking.
pub fn try_run_inl_join(env: &WorkloadEnv, cfg: &InlConfig) -> SimResult<InlOutcome> {
    let data = JoinDataset::generate_with_ratio(cfg.r_size, cfg.ratio, cfg.seed);
    try_run_inl_join_on(env, cfg.index, &data)
}

/// Fallible form of [`run_inl_join_on`].
pub fn try_run_inl_join_on(
    env: &WorkloadEnv,
    kind: IndexKind,
    data: &JoinDataset,
) -> SimResult<InlOutcome> {
    if env.engine == crate::runner::EngineKind::Vectorized {
        return crate::vector::try_run_inl_join_vec(env, kind, data);
    }
    let mut sim = NumaSim::new(env.sim.clone());
    let heap = SimHeap::new(env.allocator, &mut sim);
    let threads = env.threads;

    // Load the probe relation partition-parallel (build side feeds the
    // index directly from host memory during the build phase).
    sim.phase_begin("load");
    let mut s_arr: Option<TupleArray> = None;
    sim.try_serial(&mut s_arr, |w, s_arr| {
        *s_arr = Some(TupleArray::new(w, data.s.len()));
    })?;
    let s_arr = s_arr.ok_or(SimError::Harness { what: "probe relation was not mapped".to_string() })?;
    // Disjoint per-thread partitions: shards across host threads with
    // deterministic epoch merges.
    sim.try_parallel_sharded(threads, &(), |w, ()| {
        for i in s_arr.partition(w.tid(), threads) {
            s_arr.write(w, i, data.s[i].key, data.s[i].payload);
        }
    })?;
    sim.phase_end();
    let counters_start = sim.counters();
    let start = sim.now_cycles();

    // Build the index single-threaded, as a pre-built index would be —
    // the paper measures build time separately (Figure 7e).
    let index = build_index(kind);
    let mut state = (index, heap);
    sim.phase_begin("inl:build");
    sim.try_serial(&mut state, |w, (index, heap)| {
        for t in &data.r {
            index.insert(w, heap, t.key, t.payload);
        }
    })?;
    sim.phase_end();
    let build_cycles = sim.now_cycles() - start;

    // Parallel join: read-only probes against the now-frozen index, so
    // the phase shards across host threads; per-worker (matches,
    // checksum) pairs fold in tid order.
    let (index, _heap) = state;
    sim.phase_begin("inl:join");
    let (_, locals) = sim.try_parallel_sharded(threads, &index, |w, index| {
        let mut local_matches = 0u64;
        let mut local_sum = 0u64;
        // Tuple-at-once probe scan over the S relation.
        let range = s_arr.partition(w.tid(), threads);
        let mut batch = [(0u64, 0u64); 32];
        let mut i = range.start;
        while i < range.end {
            let n = (range.end - i).min(batch.len());
            s_arr.read_run(w, i, &mut batch[..n]);
            for &(key, s_payload) in &batch[..n] {
                if let Some(r_payload) = index.get(w, key) {
                    local_matches += 1;
                    local_sum ^= r_payload.wrapping_mul(31).wrapping_add(s_payload);
                }
            }
            i += n;
        }
        (local_matches, local_sum)
    })?;
    sim.phase_end();
    let join_cycles = sim.now_cycles() - start - build_cycles;
    let matches = locals.iter().map(|&(m, _)| m).sum();
    let checksum = locals.iter().fold(0u64, |acc, &(_, c)| acc ^ c);

    Ok(InlOutcome {
        build_cycles,
        join_cycles,
        matches,
        checksum,
        counters: sim.counters() - counters_start,
        trace: sim.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_join::reference_join;
    use nqp_topology::machines;

    fn env() -> WorkloadEnv {
        WorkloadEnv::tuned(machines::machine_b()).with_threads(4)
    }

    #[test]
    fn all_indexes_agree_with_the_hash_join_reference() {
        let data = JoinDataset::generate(300, 11);
        let (expect_matches, expect_checksum) = reference_join(&data);
        for kind in IndexKind::ALL {
            let out = run_inl_join_on(&env(), kind, &data);
            assert_eq!(out.matches, expect_matches, "{kind:?}");
            assert_eq!(out.checksum, expect_checksum, "{kind:?}");
            assert!(out.build_cycles > 0 && out.join_cycles > 0, "{kind:?}");
        }
    }

    #[test]
    fn art_and_btree_probe_faster_than_skiplist() {
        // Figure 7e: ART and B+tree are the two fastest indexes; the
        // skip list's long pointer chains make it the slowest prober.
        let data = JoinDataset::generate(2_000, 13);
        let run = |k| run_inl_join_on(&env(), k, &data).join_cycles;
        let (art, btree, skip) = (
            run(IndexKind::Art),
            run(IndexKind::BPlusTree),
            run(IndexKind::SkipList),
        );
        assert!(art < skip, "art={art} skip={skip}");
        assert!(btree < skip, "btree={btree} skip={skip}");
    }

    #[test]
    fn deterministic() {
        let cfg = InlConfig { index: IndexKind::BPlusTree, r_size: 150, ratio: 8, seed: 5 };
        let a = run_inl_join(&env(), &cfg);
        let b = run_inl_join(&env(), &cfg);
        assert_eq!(a.join_cycles, b.join_cycles);
        assert_eq!(a.checksum, b.checksum);
    }
}
