//! A shared, striped-locking chained hash table in simulated memory —
//! the "shared global hash table" design of the paper's aggregation
//! workloads [14], modelled after efficient concurrent tables: reads are
//! lock-free, writers lock one of many stripes.
//!
//! The bucket directory is mapped and zeroed by whoever calls
//! [`HashTable::init`]; under First Touch that concentrates the
//! directory's pages on the initialising thread's node, which is exactly
//! the placement pathology (and Interleave's cure) that Figure 5
//! measures.

use nqp_sim::{LockId, NumaSim, VAddr, Worker};
use nqp_storage::SimHeap;

/// Entry layout: `[key: u64][payload: u64][next: u64]`.
const ENTRY_BYTES: u64 = 24;
/// Cycles to hash a key.
const HASH_CYCLES: u64 = 6;
/// Critical-section length of a stripe-locked insert.
const STRIPE_HOLD_CYCLES: u64 = 30;

/// See module docs.
#[derive(Debug)]
pub struct HashTable {
    dir: VAddr,
    nbuckets: u64,
    locks: Vec<LockId>,
}

#[inline]
fn hash(key: u64) -> u64 {
    // Fibonacci hashing: cheap and well-spread for our generators.
    key.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl HashTable {
    /// Register a table with `nbuckets` (rounded up to a power of two)
    /// and one lock stripe per 64 buckets (at most 1024 stripes). The
    /// directory itself is mapped later by [`HashTable::init`].
    pub fn new(sim: &mut NumaSim, nbuckets: u64) -> Self {
        let nbuckets = nbuckets.max(16).next_power_of_two();
        let stripes = (nbuckets / 64).clamp(16, 1024);
        let locks = (0..stripes).map(|_| sim.new_lock()).collect();
        HashTable { dir: 0, nbuckets, locks }
    }

    /// Map and zero the bucket directory. The caller's thread first-
    /// touches every directory page — under First Touch the whole
    /// directory lands on the coordinator's node, the placement pathology
    /// of §IV-C.
    pub fn init(&mut self, w: &mut Worker<'_>) {
        self.dir = w.map_pages(self.nbuckets * 8);
        for b in 0..self.nbuckets {
            w.write_u64(self.dir + b * 8, 0);
        }
    }

    /// Map and zero the bucket directory with its pages spread across
    /// the nodes — the application-level interleaving of the shared hash
    /// table that prior NUMA-aware joins use (\[9\], \[31\], \[32\] in the
    /// paper). Recovers most of the Interleave policy's benefit without
    /// touching `numactl`.
    pub fn init_interleaved(&mut self, w: &mut Worker<'_>) {
        self.dir = w.map_pages_shared(self.nbuckets * 8);
        for b in 0..self.nbuckets {
            w.write_u64(self.dir + b * 8, 0);
        }
    }

    /// Number of buckets.
    pub fn nbuckets(&self) -> u64 {
        self.nbuckets
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> u64 {
        hash(key) >> (64 - self.nbuckets.trailing_zeros())
    }

    #[inline]
    fn stripe_of(&self, bucket: u64) -> LockId {
        self.locks[(bucket % self.locks.len() as u64) as usize]
    }

    /// Find the entry address for `key`, lock-free (probe path). Each
    /// chain entry is read whole (one 24-byte access, not one per field).
    pub fn find(&self, w: &mut Worker<'_>, key: u64) -> Option<VAddr> {
        w.compute(HASH_CYCLES);
        debug_assert_ne!(self.dir, 0, "init() must run before use");
        let bucket = self.bucket_of(key);
        let mut entry = w.read_u64(self.dir + bucket * 8);
        while entry != 0 {
            let (k, _payload, next) = w.read_u64_triple(entry);
            if k == key {
                return Some(entry);
            }
            entry = next;
        }
        None
    }

    /// Read the payload of `key`, if present. The payload arrives with
    /// the entry-at-once chain read — no second access per match.
    pub fn get(&self, w: &mut Worker<'_>, key: u64) -> Option<u64> {
        w.compute(HASH_CYCLES);
        debug_assert_ne!(self.dir, 0, "init() must run before use");
        let bucket = self.bucket_of(key);
        let mut entry = w.read_u64(self.dir + bucket * 8);
        while entry != 0 {
            let (k, payload, next) = w.read_u64_triple(entry);
            if k == key {
                return Some(payload);
            }
            entry = next;
        }
        None
    }

    /// Insert-or-update under the stripe lock: if `key` exists, its
    /// payload is passed to `update`; otherwise a fresh entry is chained
    /// in with `initial`. Returns the entry address.
    pub fn upsert(
        &self,
        w: &mut Worker<'_>,
        heap: &mut SimHeap,
        key: u64,
        initial: u64,
        update: impl FnOnce(&mut Worker<'_>, VAddr),
    ) -> VAddr {
        w.compute(HASH_CYCLES);
        debug_assert_ne!(self.dir, 0, "init() must run before use");
        let bucket = self.bucket_of(key);
        w.lock(self.stripe_of(bucket), STRIPE_HOLD_CYCLES);
        let head_addr = self.dir + bucket * 8;
        let head = w.read_u64(head_addr);
        let mut entry = head;
        while entry != 0 {
            let (k, _payload, next) = w.read_u64_triple(entry);
            if k == key {
                update(w, entry);
                return entry;
            }
            entry = next;
        }
        let fresh = heap.alloc(w, ENTRY_BYTES);
        w.write_u64_run(fresh, &[key, initial, head]);
        w.write_u64(head_addr, fresh);
        fresh
    }

    /// Walk every entry in buckets `range`, invoking `f(key, entry)` —
    /// the scan used by parallel finalize phases (buckets partition
    /// cleanly across threads).
    pub fn for_each_in_buckets(
        &self,
        w: &mut Worker<'_>,
        range: std::ops::Range<u64>,
        mut f: impl FnMut(&mut Worker<'_>, u64, VAddr),
    ) {
        for b in range {
            let mut entry = w.read_u64(self.dir + b * 8);
            while entry != 0 {
                let (key, _payload, next) = w.read_u64_triple(entry);
                f(w, key, entry);
                entry = next;
            }
        }
    }

    /// The bucket sub-range thread `tid` of `nthreads` should finalize.
    pub fn bucket_partition(&self, tid: usize, nthreads: usize) -> std::ops::Range<u64> {
        let per = self.nbuckets.div_ceil(nthreads as u64);
        let start = (tid as u64 * per).min(self.nbuckets);
        let end = ((tid as u64 + 1) * per).min(self.nbuckets);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_alloc::AllocatorKind;
    use nqp_sim::{SimConfig, ThreadPlacement};
    use nqp_topology::machines;

    fn setup() -> (NumaSim, SimHeap) {
        let mut sim = NumaSim::new(
            SimConfig::os_default(machines::machine_b())
                .with_threads(ThreadPlacement::Sparse)
                .with_autonuma(false)
                .with_thp(false),
        );
        let heap = SimHeap::new(AllocatorKind::Tbbmalloc, &mut sim);
        (sim, heap)
    }

    #[test]
    fn upsert_then_get() {
        let (mut sim, heap) = setup();
        let table = HashTable::new(&mut sim, 64);
        let mut state = (table, heap);
        sim.serial(&mut state, |w, (table, heap)| {
            table.init(w);
            for k in 0..200u64 {
                table.upsert(w, heap, k, k * 10, |_, _| panic!("fresh key"));
            }
            for k in 0..200u64 {
                assert_eq!(table.get(w, k), Some(k * 10));
            }
            assert_eq!(table.get(w, 999), None);
        });
    }

    #[test]
    fn upsert_updates_existing() {
        let (mut sim, heap) = setup();
        let table = HashTable::new(&mut sim, 64);
        let mut state = (table, heap);
        sim.serial(&mut state, |w, (table, heap)| {
            table.init(w);
            table.upsert(w, heap, 5, 1, |_, _| unreachable!());
            table.upsert(w, heap, 5, 0, |w, e| {
                let v = w.read_u64(e + 8);
                w.write_u64(e + 8, v + 1);
            });
            assert_eq!(table.get(w, 5), Some(2));
        });
    }

    #[test]
    fn chains_handle_bucket_collisions() {
        let (mut sim, heap) = setup();
        // 16 buckets, 500 keys: heavy chaining.
        let table = HashTable::new(&mut sim, 16);
        let mut state = (table, heap);
        sim.serial(&mut state, |w, (table, heap)| {
            table.init(w);
            for k in 0..500u64 {
                table.upsert(w, heap, k, !k, |_, _| unreachable!());
            }
            for k in 0..500u64 {
                assert_eq!(table.get(w, k), Some(!k), "key {k}");
            }
        });
    }

    #[test]
    fn bucket_scan_visits_every_entry_once() {
        let (mut sim, heap) = setup();
        let table = HashTable::new(&mut sim, 64);
        let mut state = (table, heap, Vec::new());
        sim.serial(&mut state, |w, (table, heap, seen)| {
            table.init(w);
            for k in 0..300u64 {
                table.upsert(w, heap, k, 0, |_, _| unreachable!());
            }
            table.for_each_in_buckets(w, 0..table.nbuckets(), |_, key, _| seen.push(key));
        });
        let mut seen = state.2;
        seen.sort_unstable();
        assert_eq!(seen, (0..300u64).collect::<Vec<_>>());
    }

    #[test]
    fn bucket_partitions_tile_the_directory() {
        let (mut sim, _) = setup();
        let table = HashTable::new(&mut sim, 1000); // rounds to 1024
        let mut total = 0;
        let mut last_end = 0;
        for tid in 0..7 {
            let r = table.bucket_partition(tid, 7);
            assert_eq!(r.start, last_end);
            last_end = r.end;
            total += r.end - r.start;
        }
        assert_eq!(total, table.nbuckets());
        assert_eq!(last_end, table.nbuckets());
    }

    #[test]
    fn concurrent_inserts_from_all_threads_land() {
        let (mut sim, heap) = setup();
        let table = HashTable::new(&mut sim, 256);
        let mut state = (table, heap);
        sim.serial(&mut state, |w, (table, _)| table.init(w));
        sim.parallel(8, &mut state, |w, (table, heap)| {
            let tid = w.tid() as u64;
            for i in 0..50u64 {
                table.upsert(w, heap, tid * 1000 + i, tid, |_, _| unreachable!());
            }
        });
        sim.serial(&mut state, |w, (table, _)| {
            for tid in 0..8u64 {
                for i in 0..50u64 {
                    assert_eq!(table.get(w, tid * 1000 + i), Some(tid));
                }
            }
        });
    }
}
