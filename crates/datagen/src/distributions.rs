//! The aggregation-workload datasets of §IV-B: moving cluster,
//! sequential, and zipfian (plus heavy hitter and uniform controls).

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One input record of the aggregation workloads: a group key and a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// The `groupkey` column.
    pub key: u64,
    /// The `val` column.
    pub val: u64,
}

/// The dataset distributions of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Keys drawn from a window that slides across the domain — the
    /// locality pattern of streaming/spatial workloads. Default for W1.
    MovingCluster,
    /// Keys increase in segments, mimicking transactional data with
    /// incrementing keys. Default for W3/W4's build side.
    Sequential,
    /// Keys approximate Zipf's law (exponent 0.5). Default for W2.
    Zipfian,
    /// A handful of keys dominate the input — the worst case for
    /// contended aggregation.
    HeavyHitter,
    /// Uniform keys: the no-structure control.
    Uniform,
}

impl Dataset {
    /// The three distributions Figures 4 and 6j sweep over.
    pub const PAPER: [Dataset; 3] =
        [Dataset::MovingCluster, Dataset::Sequential, Dataset::Zipfian];

    /// Label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Dataset::MovingCluster => "moving-cluster",
            Dataset::Sequential => "sequential",
            Dataset::Zipfian => "zipf",
            Dataset::HeavyHitter => "heavy-hitter",
            Dataset::Uniform => "uniform",
        }
    }
}

/// Generate `n` records with group-by `cardinality` under `dataset`.
///
/// Deterministic in `(dataset, n, cardinality, seed)`. Values are drawn
/// uniformly; only the key distribution varies.
pub fn generate(dataset: Dataset, n: usize, cardinality: u64, seed: u64) -> Vec<Record> {
    assert!(cardinality > 0, "cardinality must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xda7a_5e2d);
    let mut out = Vec::with_capacity(n);
    match dataset {
        Dataset::MovingCluster => {
            // Window of W keys sliding once across the domain.
            let window = (cardinality / 8).max(1);
            for i in 0..n {
                let start = (i as u64 * cardinality) / n.max(1) as u64;
                let key = (start + rng.random_range(0..window)) % cardinality;
                out.push(Record { key, val: rng.random() });
            }
        }
        Dataset::Sequential => {
            // `cardinality` segments of n/cardinality consecutive records.
            let per_segment = (n as u64 / cardinality).max(1);
            for i in 0..n {
                let key = (i as u64 / per_segment).min(cardinality - 1);
                out.push(Record { key, val: rng.random() });
            }
        }
        Dataset::Zipfian => {
            let zipf = Zipf::new(cardinality, 0.5);
            for _ in 0..n {
                out.push(Record { key: zipf.sample(&mut rng), val: rng.random() });
            }
        }
        Dataset::HeavyHitter => {
            for _ in 0..n {
                let key = if rng.random::<f64>() < 0.5 {
                    0
                } else {
                    rng.random_range(0..cardinality)
                };
                out.push(Record { key, val: rng.random() });
            }
        }
        Dataset::Uniform => {
            for _ in 0..n {
                out.push(Record { key: rng.random_range(0..cardinality), val: rng.random() });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generates_exactly_n_records_within_domain() {
        for d in [
            Dataset::MovingCluster,
            Dataset::Sequential,
            Dataset::Zipfian,
            Dataset::HeavyHitter,
            Dataset::Uniform,
        ] {
            let recs = generate(d, 5_000, 100, 9);
            assert_eq!(recs.len(), 5_000, "{d:?}");
            assert!(recs.iter().all(|r| r.key < 100), "{d:?} key out of domain");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(Dataset::Zipfian, 1_000, 50, 7);
        let b = generate(Dataset::Zipfian, 1_000, 50, 7);
        let c = generate(Dataset::Zipfian, 1_000, 50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sequential_keys_are_nondecreasing_and_cover_domain() {
        let recs = generate(Dataset::Sequential, 10_000, 100, 1);
        assert!(recs.windows(2).all(|w| w[0].key <= w[1].key));
        let distinct: HashSet<u64> = recs.iter().map(|r| r.key).collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn moving_cluster_stays_in_a_window() {
        let card = 1_000u64;
        let recs = generate(Dataset::MovingCluster, 10_000, card, 2);
        let window = card / 8;
        for (i, r) in recs.iter().enumerate() {
            let start = (i as u64 * card) / recs.len() as u64;
            let dist = (r.key + card - start) % card;
            assert!(dist < window, "record {i} key {} outside window", r.key);
        }
    }

    #[test]
    fn heavy_hitter_concentrates_on_key_zero() {
        let recs = generate(Dataset::HeavyHitter, 10_000, 1_000, 3);
        let zeros = recs.iter().filter(|r| r.key == 0).count();
        assert!(zeros > 4_500 && zeros < 5_600, "zeros={zeros}");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: HashSet<&str> = [
            Dataset::MovingCluster,
            Dataset::Sequential,
            Dataset::Zipfian,
            Dataset::HeavyHitter,
            Dataset::Uniform,
        ]
        .iter()
        .map(|d| d.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
