//! Seeded dataset generators for every workload in the paper (Table IV).
//!
//! * [`distributions`] — the aggregation datasets of W1/W2: moving
//!   cluster, sequential, zipfian (plus heavy hitter and uniform).
//! * [`join`] — the two-table join dataset of W3/W4, with the 1:16 size
//!   ratio of Blanas et al. that mimics decision-support schemas.
//! * [`tpch`] — a TPC-H-shaped generator (all eight tables) at arbitrary
//!   scale, with the value distributions the 22 queries' predicates rely
//!   on.
//!
//! All generators are deterministic functions of `(parameters, seed)`.

pub mod distributions;
pub mod join;
pub mod tpch;
mod zipf;

pub use distributions::{generate, Dataset, Record};
pub use join::{JoinDataset, Tuple};
pub use zipf::Zipf;
