//! The two-table join dataset of W3/W4, after Blanas et al. (SIGMOD'11).
//!
//! Two relations with a 1:16 size ratio — the shape of a decision-support
//! schema where a dimension table joins a fact table. The build side `r`
//! holds unique primary keys; the probe side `s` holds foreign keys
//! drawn from `r`'s key domain, so every probe finds exactly one match.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A 16-byte `(key, payload)` tuple, the layout of the original study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuple {
    /// Join key: primary key in `r`, foreign key in `s`.
    pub key: u64,
    /// Record id / payload.
    pub payload: u64,
}

/// The generated pair of relations.
#[derive(Debug, Clone)]
pub struct JoinDataset {
    /// The smaller build relation (unique keys, shuffled).
    pub r: Vec<Tuple>,
    /// The larger probe relation (foreign keys into `r`).
    pub s: Vec<Tuple>,
}

impl JoinDataset {
    /// The paper's size ratio between `s` and `r`.
    pub const RATIO: usize = 16;

    /// Generate with `r_size` build tuples and `r_size * 16` probe tuples.
    pub fn generate(r_size: usize, seed: u64) -> Self {
        Self::generate_with_ratio(r_size, Self::RATIO, seed)
    }

    /// Generate with an explicit `|s| / |r|` ratio.
    pub fn generate_with_ratio(r_size: usize, ratio: usize, seed: u64) -> Self {
        assert!(r_size > 0 && ratio > 0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6a01_4ea5);
        // Build side: a shuffled permutation of 0..r_size, so the hash
        // table sees keys in random order (as dbgen-style data would).
        let mut r: Vec<Tuple> = (0..r_size as u64)
            .map(|key| Tuple { key, payload: key ^ 0x5555_5555 })
            .collect();
        for i in (1..r.len()).rev() {
            let j = rng.random_range(0..=i);
            r.swap(i, j);
        }
        let s_size = r_size * ratio;
        let s: Vec<Tuple> = (0..s_size as u64)
            .map(|i| Tuple { key: rng.random_range(0..r_size as u64), payload: i })
            .collect();
        JoinDataset { r, s }
    }

    /// Number of probe tuples per build tuple.
    pub fn ratio(&self) -> usize {
        self.s.len() / self.r.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sizes_respect_the_paper_ratio() {
        let d = JoinDataset::generate(1_000, 1);
        assert_eq!(d.r.len(), 1_000);
        assert_eq!(d.s.len(), 16_000);
        assert_eq!(d.ratio(), 16);
    }

    #[test]
    fn build_keys_are_a_permutation() {
        let d = JoinDataset::generate(500, 2);
        let keys: HashSet<u64> = d.r.iter().map(|t| t.key).collect();
        assert_eq!(keys.len(), 500);
        assert!(keys.iter().all(|&k| k < 500));
        // ...and genuinely shuffled (not identity order).
        assert!(d.r.iter().enumerate().any(|(i, t)| t.key != i as u64));
    }

    #[test]
    fn every_probe_key_has_a_build_match() {
        let d = JoinDataset::generate(200, 3);
        assert!(d.s.iter().all(|t| t.key < 200));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(JoinDataset::generate(100, 5).r, JoinDataset::generate(100, 5).r);
        assert_ne!(JoinDataset::generate(100, 5).r, JoinDataset::generate(100, 6).r);
    }
}
