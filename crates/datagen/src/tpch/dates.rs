//! Compact date handling for the TPC-H tables: days since 1992-01-01.

/// A date, stored as days since 1992-01-01 (the start of the TPC-H
/// order-date range).
pub type Date = i32;

/// Days in each month of a non-leap year.
const MONTH_DAYS: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Build a [`Date`] from a calendar date.
///
/// # Panics
/// Panics on out-of-range months/days.
pub fn from_ymd(year: i32, month: u32, day: u32) -> Date {
    assert!((1..=12).contains(&month), "month {month} out of range");
    let month = month as usize;
    let max_day = if month == 2 && is_leap(year) {
        29
    } else {
        MONTH_DAYS[month - 1]
    };
    assert!((1..=max_day as u32).contains(&day), "day {day} out of range");
    let mut days: i32 = 0;
    if year >= 1992 {
        for y in 1992..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
    } else {
        for y in year..1992 {
            days -= if is_leap(y) { 366 } else { 365 };
        }
    }
    for m in 1..month {
        days += MONTH_DAYS[m - 1];
        if m == 2 && is_leap(year) {
            days += 1;
        }
    }
    days + day as i32 - 1
}

/// Parse a `YYYY-MM-DD` literal (the format TPC-H queries use).
///
/// # Panics
/// Panics on malformed input; query plans use literal constants.
pub fn parse(s: &str) -> Date {
    let mut parts = s.splitn(3, '-');
    let y: i32 = parts.next().and_then(|p| p.parse().ok()).expect("year");
    let m: u32 = parts.next().and_then(|p| p.parse().ok()).expect("month");
    let d: u32 = parts.next().and_then(|p| p.parse().ok()).expect("day");
    from_ymd(y, m, d)
}

/// Render a [`Date`] back to `YYYY-MM-DD`.
pub fn format(date: Date) -> String {
    let mut remaining = date;
    let mut year = 1992;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if remaining >= len {
            remaining -= len;
            year += 1;
        } else if remaining < 0 {
            year -= 1;
            remaining += if is_leap(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let mut month = 1;
    loop {
        let mut len = MONTH_DAYS[month - 1];
        if month == 2 && is_leap(year) {
            len += 1;
        }
        if remaining >= len {
            remaining -= len;
            month += 1;
        } else {
            break;
        }
    }
    format!("{year:04}-{:02}-{:02}", month, remaining + 1)
}

/// Calendar year of a date (the `EXTRACT(year FROM ...)` of Q7–Q9).
pub fn year(date: Date) -> i32 {
    format(date)[0..4].parse().expect("year digits")
}

/// Calendar month of a date, 1–12.
pub fn month(date: Date) -> u32 {
    format(date)[5..7].parse().expect("month digits")
}

/// Shift a date by whole months (used by `date '1995-01-01' + interval
/// 'n' month` predicates). Day-of-month clamps to the target month.
pub fn add_months(date: Date, months: i32) -> Date {
    let text = format(date);
    let y: i32 = text[0..4].parse().expect("year digits");
    let m: i32 = text[5..7].parse().expect("month digits");
    let d: u32 = text[8..10].parse().expect("day digits");
    let total = (y * 12 + (m - 1)) + months;
    let (ny, nm) = (total.div_euclid(12), total.rem_euclid(12) + 1);
    let mut max_day = MONTH_DAYS[(nm - 1) as usize] as u32;
    if nm == 2 && is_leap(ny) {
        max_day += 1;
    }
    from_ymd(ny, nm as u32, d.min(max_day))
}

/// Shift a date by whole years.
pub fn add_years(date: Date, years: i32) -> Date {
    add_months(date, years * 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(from_ymd(1992, 1, 1), 0);
    }

    #[test]
    fn leap_years_count() {
        assert_eq!(from_ymd(1992, 3, 1), 31 + 29); // 1992 is a leap year
        assert_eq!(from_ymd(1993, 1, 1), 366);
        assert_eq!(from_ymd(1994, 1, 1), 366 + 365);
    }

    #[test]
    fn parse_and_format_round_trip() {
        for s in ["1992-01-01", "1995-06-17", "1998-08-02", "1996-02-29", "1998-12-31"] {
            assert_eq!(format(parse(s)), s);
        }
    }

    #[test]
    fn ordering_matches_calendar() {
        assert!(parse("1994-01-01") < parse("1995-01-01"));
        assert!(parse("1995-03-15") < parse("1995-03-16"));
    }

    #[test]
    fn month_arithmetic() {
        assert_eq!(format(add_months(parse("1995-01-31"), 1)), "1995-02-28");
        assert_eq!(format(add_months(parse("1995-12-01"), 3)), "1996-03-01");
        assert_eq!(format(add_years(parse("1994-06-01"), 1)), "1995-06-01");
        assert_eq!(format(add_months(parse("1995-03-01"), -2)), "1995-01-01");
    }

    #[test]
    fn negative_dates_format() {
        let d = from_ymd(1991, 12, 31);
        assert_eq!(d, -1);
        assert_eq!(format(d), "1991-12-31");
    }

    #[test]
    #[should_panic(expected = "month")]
    fn bad_month_panics() {
        from_ymd(1995, 13, 1);
    }
}
