//! Compact date handling for the TPC-H tables: days since 1992-01-01.

use std::fmt;

/// A date, stored as days since 1992-01-01 (the start of the TPC-H
/// order-date range).
pub type Date = i32;

/// Why a calendar date or literal failed to construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DateError {
    /// Month outside 1–12.
    MonthOutOfRange {
        /// The offending month.
        month: u32,
    },
    /// Day outside the month's length.
    DayOutOfRange {
        /// Year (decides February's length).
        year: i32,
        /// Month the day was checked against.
        month: u32,
        /// The offending day.
        day: u32,
    },
    /// A literal that is not `YYYY-MM-DD`.
    Malformed {
        /// The text that failed to parse.
        text: String,
    },
}

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DateError::MonthOutOfRange { month } => {
                write!(f, "month {month} out of range 1-12")
            }
            DateError::DayOutOfRange { year, month, day } => {
                write!(f, "day {day} out of range for {year:04}-{month:02}")
            }
            DateError::Malformed { text } => {
                write!(f, "malformed date literal {text:?} (want YYYY-MM-DD)")
            }
        }
    }
}

impl std::error::Error for DateError {}

/// Days in each month of a non-leap year.
const MONTH_DAYS: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn month_len(year: i32, month: u32) -> i32 {
    if month == 2 && is_leap(year) {
        29
    } else {
        MONTH_DAYS[(month - 1) as usize]
    }
}

/// Build a [`Date`] from a calendar date, rejecting out-of-range
/// months and days.
pub fn try_from_ymd(year: i32, month: u32, day: u32) -> Result<Date, DateError> {
    if !(1..=12).contains(&month) {
        return Err(DateError::MonthOutOfRange { month });
    }
    if !(1..=month_len(year, month) as u32).contains(&day) {
        return Err(DateError::DayOutOfRange { year, month, day });
    }
    let mut days: i32 = 0;
    if year >= 1992 {
        for y in 1992..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
    } else {
        for y in year..1992 {
            days -= if is_leap(y) { 366 } else { 365 };
        }
    }
    for m in 1..month {
        days += month_len(year, m);
    }
    Ok(days + day as i32 - 1)
}

/// Build a [`Date`] from a calendar date.
///
/// # Panics
/// Panics on out-of-range months/days; use [`try_from_ymd`] to handle
/// untrusted input.
pub fn from_ymd(year: i32, month: u32, day: u32) -> Date {
    match try_from_ymd(year, month, day) {
        Ok(d) => d,
        Err(e) => panic!("from_ymd({year}, {month}, {day}): {e}"),
    }
}

/// Parse a `YYYY-MM-DD` literal (the format TPC-H queries use),
/// rejecting malformed text with a typed error.
pub fn parse(s: &str) -> Result<Date, DateError> {
    let malformed = || DateError::Malformed { text: s.to_string() };
    let mut parts = s.splitn(3, '-');
    let y: i32 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(malformed)?;
    let m: u32 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(malformed)?;
    let d: u32 = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(malformed)?;
    try_from_ymd(y, m, d)
}

/// Calendar `(year, month, day)` of a date, by walking whole years then
/// months — no string round-trip.
fn to_ymd(date: Date) -> (i32, u32, u32) {
    let mut remaining = date;
    let mut year = 1992;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if remaining >= len {
            remaining -= len;
            year += 1;
        } else if remaining < 0 {
            year -= 1;
            remaining += if is_leap(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let mut month = 1u32;
    loop {
        let len = month_len(year, month);
        if remaining >= len {
            remaining -= len;
            month += 1;
        } else {
            break;
        }
    }
    (year, month, remaining as u32 + 1)
}

/// Render a [`Date`] back to `YYYY-MM-DD`.
pub fn format(date: Date) -> String {
    let (y, m, d) = to_ymd(date);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Calendar year of a date (the `EXTRACT(year FROM ...)` of Q7–Q9).
pub fn year(date: Date) -> i32 {
    to_ymd(date).0
}

/// Calendar month of a date, 1–12.
pub fn month(date: Date) -> u32 {
    to_ymd(date).1
}

/// Shift a date by whole months (used by `date '1995-01-01' + interval
/// 'n' month` predicates). Day-of-month clamps to the target month, so
/// the shift is total — no error case.
pub fn add_months(date: Date, months: i32) -> Date {
    let (y, m, d) = to_ymd(date);
    let total = (y * 12 + (m as i32 - 1)) + months;
    let (ny, nm) = (total.div_euclid(12), (total.rem_euclid(12) + 1) as u32);
    let day = d.min(month_len(ny, nm) as u32);
    // In range by construction: nm is 1-12 and day is clamped.
    match try_from_ymd(ny, nm, day) {
        Ok(date) => date,
        Err(e) => unreachable!("clamped month arithmetic produced {e}"),
    }
}

/// Shift a date by whole years.
pub fn add_years(date: Date, years: i32) -> Date {
    add_months(date, years * 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(from_ymd(1992, 1, 1), 0);
    }

    #[test]
    fn leap_years_count() {
        assert_eq!(from_ymd(1992, 3, 1), 31 + 29); // 1992 is a leap year
        assert_eq!(from_ymd(1993, 1, 1), 366);
        assert_eq!(from_ymd(1994, 1, 1), 366 + 365);
    }

    #[test]
    fn parse_and_format_round_trip() {
        for s in ["1992-01-01", "1995-06-17", "1998-08-02", "1996-02-29", "1998-12-31"] {
            assert_eq!(format(parse(s).expect("valid literal")), s);
        }
    }

    #[test]
    fn ordering_matches_calendar() {
        let d = |s: &str| parse(s).expect("valid literal");
        assert!(d("1994-01-01") < d("1995-01-01"));
        assert!(d("1995-03-15") < d("1995-03-16"));
    }

    #[test]
    fn month_arithmetic() {
        let d = |s: &str| parse(s).expect("valid literal");
        assert_eq!(format(add_months(d("1995-01-31"), 1)), "1995-02-28");
        assert_eq!(format(add_months(d("1995-12-01"), 3)), "1996-03-01");
        assert_eq!(format(add_years(d("1994-06-01"), 1)), "1995-06-01");
        assert_eq!(format(add_months(d("1995-03-01"), -2)), "1995-01-01");
    }

    #[test]
    fn negative_dates_format() {
        let d = from_ymd(1991, 12, 31);
        assert_eq!(d, -1);
        assert_eq!(format(d), "1991-12-31");
    }

    #[test]
    fn bad_inputs_are_typed_errors_not_panics() {
        assert_eq!(
            try_from_ymd(1995, 13, 1),
            Err(DateError::MonthOutOfRange { month: 13 })
        );
        assert_eq!(
            try_from_ymd(1995, 2, 29),
            Err(DateError::DayOutOfRange { year: 1995, month: 2, day: 29 })
        );
        // 1996 is a leap year: the same day is fine.
        assert!(try_from_ymd(1996, 2, 29).is_ok());
        for bad in ["", "1995", "1995-06", "06-17-1995x", "not-a-date", "1995-6b-17"] {
            assert!(
                matches!(parse(bad), Err(DateError::Malformed { .. })),
                "{bad:?} should be malformed"
            );
        }
        assert_eq!(parse("1995-00-17"), Err(DateError::MonthOutOfRange { month: 0 }));
    }

    #[test]
    #[should_panic(expected = "month")]
    fn bad_month_panics_in_infallible_constructor() {
        from_ymd(1995, 13, 1);
    }
}
