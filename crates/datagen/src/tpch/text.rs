//! Word pools and composite-string builders for the TPC-H tables.
//!
//! The lists are the subsets of the official `dbgen` vocabularies that
//! the 22 queries' predicates actually exercise (e.g. `p_name` must be
//! able to contain `green` for Q9 and start with `forest` for Q20).

use rand::rngs::StdRng;
use rand::RngExt;

/// The five regions, in key order.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 nations as `(name, region key)`, in nation-key order — the
/// official dbgen mapping.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// Colour words for `p_name` (Q9 matches `%green%`, Q20 `forest%`).
pub const COLORS: [&str; 24] = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue",
    "blush", "brown", "burlywood", "chartreuse", "chocolate", "coral", "cornflower", "cream",
    "cyan", "forest", "frosted", "green", "honeydew", "hot", "indian",
];

/// `p_type` syllables: `TYPE_1 TYPE_2 TYPE_3` (Q8 wants
/// `ECONOMY ANODIZED STEEL`, Q14 `PROMO%`, Q16 `MEDIUM POLISHED%`).
pub const TYPE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// `p_container`: `SIZE KIND` (Q19 uses the SM/MED/LG groups).
pub const CONTAINER_1: [&str; 4] = ["SM", "MED", "LG", "JUMBO"];
pub const CONTAINER_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// `c_mktsegment` values (Q3 filters on BUILDING).
pub const SEGMENTS: [&str; 5] =
    ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];

/// `o_orderpriority` values (Q4 groups by these).
pub const PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// `l_shipmode` values (Q12 filters on MAIL/SHIP, Q19 on AIR/AIR REG).
pub const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// `l_shipinstruct` values (Q19 wants DELIVER IN PERSON).
pub const INSTRUCTIONS: [&str; 4] =
    ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];

/// Filler lexicon for comment columns.
const LEXICON: [&str; 28] = [
    "furiously", "carefully", "express", "final", "ironic", "pending", "regular", "bold",
    "quick", "silent", "even", "unusual", "slyly", "blithely", "deposits", "packages",
    "accounts", "theodolites", "instructions", "foxes", "pinto", "beans", "dependencies",
    "platelets", "ideas", "excuses", "asymptotes", "dolphins",
];

/// Pick one entry of a word list.
pub fn pick<'a>(rng: &mut StdRng, words: &[&'a str]) -> &'a str {
    words[rng.random_range(0..words.len())]
}

/// A `p_name`: three distinct colour words.
pub fn part_name(rng: &mut StdRng) -> String {
    let mut idx = [0usize; 3];
    idx[0] = rng.random_range(0..COLORS.len());
    loop {
        idx[1] = rng.random_range(0..COLORS.len());
        if idx[1] != idx[0] {
            break;
        }
    }
    loop {
        idx[2] = rng.random_range(0..COLORS.len());
        if idx[2] != idx[0] && idx[2] != idx[1] {
            break;
        }
    }
    format!("{} {} {}", COLORS[idx[0]], COLORS[idx[1]], COLORS[idx[2]])
}

/// A `p_type`: one syllable from each tier.
pub fn part_type(rng: &mut StdRng) -> String {
    format!("{} {} {}", pick(rng, &TYPE_1), pick(rng, &TYPE_2), pick(rng, &TYPE_3))
}

/// A `p_brand` consistent with dbgen's `Brand#MN` format.
pub fn brand(rng: &mut StdRng) -> String {
    format!("Brand#{}{}", rng.random_range(1..=5), rng.random_range(1..=5))
}

/// A `p_container`: `SIZE KIND`.
pub fn container(rng: &mut StdRng) -> String {
    format!("{} {}", pick(rng, &CONTAINER_1), pick(rng, &CONTAINER_2))
}

/// A phone number whose first two characters are the country code
/// `10 + nationkey` — the property Q22 slices on.
pub fn phone(rng: &mut StdRng, nation_key: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nation_key,
        rng.random_range(100..1000),
        rng.random_range(100..1000),
        rng.random_range(1000..10000)
    )
}

/// A comment of `words` lexicon words. With probability `special_ppm`
/// parts-per-million, the phrase `special ... requests` is embedded (the
/// pattern Q13 excludes); with the same probability independently,
/// `Customer ... Complaints` is embedded (the pattern Q16 excludes).
pub fn comment(rng: &mut StdRng, words: usize, special_ppm: u32) -> String {
    let mut parts: Vec<&str> = (0..words).map(|_| pick(rng, &LEXICON)).collect();
    if rng.random_range(0..1_000_000u32) < special_ppm {
        let at = rng.random_range(0..parts.len().max(1));
        parts.insert(at, "special");
        parts.insert(at + 1, "requests");
    }
    if rng.random_range(0..1_000_000u32) < special_ppm {
        let at = rng.random_range(0..parts.len().max(1));
        parts.insert(at, "Customer");
        parts.insert(at + 1, "Complaints");
    }
    parts.join(" ")
}

/// A street-address-looking filler string.
pub fn address(rng: &mut StdRng) -> String {
    format!("{} {} {}", rng.random_range(1..9999), pick(rng, &LEXICON), pick(rng, &LEXICON))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn nations_reference_valid_regions() {
        assert_eq!(NATIONS.len(), 25);
        assert!(NATIONS.iter().all(|&(_, r)| (r as usize) < REGIONS.len()));
    }

    #[test]
    fn part_names_use_three_distinct_colors() {
        let mut r = rng();
        for _ in 0..100 {
            let name = part_name(&mut r);
            let words: Vec<&str> = name.split(' ').collect();
            assert_eq!(words.len(), 3);
            assert!(words[0] != words[1] && words[1] != words[2] && words[0] != words[2]);
            assert!(words.iter().all(|w| COLORS.contains(w)));
        }
    }

    #[test]
    fn phones_carry_the_country_code() {
        let mut r = rng();
        let p = phone(&mut r, 7);
        assert!(p.starts_with("17-"), "{p}");
        assert_eq!(p.len(), "17-123-456-7890".len());
    }

    #[test]
    fn brands_match_dbgen_format() {
        let mut r = rng();
        for _ in 0..20 {
            let b = brand(&mut r);
            assert!(b.starts_with("Brand#") && b.len() == 8, "{b}");
        }
    }

    #[test]
    fn special_comments_appear_at_the_requested_rate() {
        let mut r = rng();
        let hits = (0..2_000)
            .filter(|_| comment(&mut r, 6, 100_000).contains("special"))
            .count();
        // 10% +- noise.
        assert!(hits > 120 && hits < 300, "hits={hits}");
    }

    #[test]
    fn zero_rate_comments_never_contain_patterns() {
        let mut r = rng();
        for _ in 0..200 {
            let c = comment(&mut r, 8, 0);
            assert!(!c.contains("special requests"));
            assert!(!c.contains("Customer Complaints"));
        }
    }
}
