//! A TPC-H-shaped data generator: all eight tables at arbitrary scale.
//!
//! Columns use compact encodings throughout:
//! * money as `i64` **cents** (`$1.50` ⇒ `150`),
//! * rates (`l_discount`, `l_tax`) as `i64` **hundredths** (`0.06` ⇒ `6`),
//! * dates as `i32` days since 1992-01-01 (see [`dates`]).
//!
//! Row counts scale with `sf` exactly like dbgen (150 k customers, 1.5 M
//! orders, ~6 M lineitems, 200 k parts, 10 k suppliers, 800 k partsupps
//! at `sf = 1`). Value distributions mirror the properties the paper's
//! Q1–Q22 plans filter and group on; they are not a byte-exact dbgen
//! clone.

pub mod dates;
pub mod text;

use dates::Date;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The REGION table.
#[derive(Debug, Clone, Default)]
pub struct Region {
    pub r_regionkey: Vec<i64>,
    pub r_name: Vec<String>,
    pub r_comment: Vec<String>,
}

/// The NATION table.
#[derive(Debug, Clone, Default)]
pub struct Nation {
    pub n_nationkey: Vec<i64>,
    pub n_name: Vec<String>,
    pub n_regionkey: Vec<i64>,
    pub n_comment: Vec<String>,
}

/// The SUPPLIER table.
#[derive(Debug, Clone, Default)]
pub struct Supplier {
    pub s_suppkey: Vec<i64>,
    pub s_name: Vec<String>,
    pub s_address: Vec<String>,
    pub s_nationkey: Vec<i64>,
    pub s_phone: Vec<String>,
    pub s_acctbal: Vec<i64>,
    pub s_comment: Vec<String>,
}

/// The CUSTOMER table.
#[derive(Debug, Clone, Default)]
pub struct Customer {
    pub c_custkey: Vec<i64>,
    pub c_name: Vec<String>,
    pub c_address: Vec<String>,
    pub c_nationkey: Vec<i64>,
    pub c_phone: Vec<String>,
    pub c_acctbal: Vec<i64>,
    pub c_mktsegment: Vec<String>,
    pub c_comment: Vec<String>,
}

/// The PART table.
#[derive(Debug, Clone, Default)]
pub struct Part {
    pub p_partkey: Vec<i64>,
    pub p_name: Vec<String>,
    pub p_mfgr: Vec<String>,
    pub p_brand: Vec<String>,
    pub p_type: Vec<String>,
    pub p_size: Vec<i64>,
    pub p_container: Vec<String>,
    pub p_retailprice: Vec<i64>,
    pub p_comment: Vec<String>,
}

/// The PARTSUPP table.
#[derive(Debug, Clone, Default)]
pub struct PartSupp {
    pub ps_partkey: Vec<i64>,
    pub ps_suppkey: Vec<i64>,
    pub ps_availqty: Vec<i64>,
    pub ps_supplycost: Vec<i64>,
    pub ps_comment: Vec<String>,
}

/// The ORDERS table.
#[derive(Debug, Clone, Default)]
pub struct Orders {
    pub o_orderkey: Vec<i64>,
    pub o_custkey: Vec<i64>,
    pub o_orderstatus: Vec<String>,
    pub o_totalprice: Vec<i64>,
    pub o_orderdate: Vec<Date>,
    pub o_orderpriority: Vec<String>,
    pub o_clerk: Vec<String>,
    pub o_shippriority: Vec<i64>,
    pub o_comment: Vec<String>,
}

/// The LINEITEM table.
#[derive(Debug, Clone, Default)]
pub struct Lineitem {
    pub l_orderkey: Vec<i64>,
    pub l_partkey: Vec<i64>,
    pub l_suppkey: Vec<i64>,
    pub l_linenumber: Vec<i64>,
    pub l_quantity: Vec<i64>,
    pub l_extendedprice: Vec<i64>,
    pub l_discount: Vec<i64>,
    pub l_tax: Vec<i64>,
    pub l_returnflag: Vec<String>,
    pub l_linestatus: Vec<String>,
    pub l_shipdate: Vec<Date>,
    pub l_commitdate: Vec<Date>,
    pub l_receiptdate: Vec<Date>,
    pub l_shipinstruct: Vec<String>,
    pub l_shipmode: Vec<String>,
    pub l_comment: Vec<String>,
}

/// One generated TPC-H database.
#[derive(Debug, Clone, Default)]
pub struct TpchData {
    pub region: Region,
    pub nation: Nation,
    pub supplier: Supplier,
    pub customer: Customer,
    pub part: Part,
    pub partsupp: PartSupp,
    pub orders: Orders,
    pub lineitem: Lineitem,
}

/// Rate (parts per million) at which the Q13/Q16 exclusion phrases are
/// embedded in comments — a few percent, like dbgen.
const SPECIAL_PPM: u32 = 30_000;

/// dbgen's "current date" used for return flags and line status.
fn cutoff() -> Date {
    dates::parse("1995-06-17").expect("static TPC-H date literal")
}

impl TpchData {
    /// Generate a database at scale factor `sf` (1.0 = the full TPC-H
    /// population; the paper runs SF 20, this workspace defaults to small
    /// fractions). Deterministic in `(sf, seed)`.
    pub fn generate(sf: f64, seed: u64) -> TpchData {
        assert!(sf > 0.0, "scale factor must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7bc4_1dbe);
        let scaled = |base: f64| -> usize { ((base * sf).round() as usize).max(1) };
        let n_supplier = scaled(10_000.0);
        let n_customer = scaled(150_000.0);
        let n_part = scaled(200_000.0);
        let n_orders = n_customer * 10;
        let n_clerks = scaled(1_000.0).max(1);
        let mut db = TpchData::default();

        // REGION and NATION are fixed-size.
        for (k, name) in text::REGIONS.iter().enumerate() {
            db.region.r_regionkey.push(k as i64);
            db.region.r_name.push((*name).to_string());
            db.region.r_comment.push(text::comment(&mut rng, 6, 0));
        }
        for (k, &(name, region)) in text::NATIONS.iter().enumerate() {
            db.nation.n_nationkey.push(k as i64);
            db.nation.n_name.push(name.to_string());
            db.nation.n_regionkey.push(region);
            db.nation.n_comment.push(text::comment(&mut rng, 6, 0));
        }

        for k in 1..=n_supplier as i64 {
            let nation = rng.random_range(0..25);
            db.supplier.s_suppkey.push(k);
            db.supplier.s_name.push(format!("Supplier#{k:09}"));
            db.supplier.s_address.push(text::address(&mut rng));
            db.supplier.s_nationkey.push(nation);
            db.supplier.s_phone.push(text::phone(&mut rng, nation));
            db.supplier.s_acctbal.push(rng.random_range(-99_999..1_000_000));
            db.supplier.s_comment.push(text::comment(&mut rng, 8, SPECIAL_PPM));
        }

        for k in 1..=n_customer as i64 {
            let nation = rng.random_range(0..25);
            db.customer.c_custkey.push(k);
            db.customer.c_name.push(format!("Customer#{k:09}"));
            db.customer.c_address.push(text::address(&mut rng));
            db.customer.c_nationkey.push(nation);
            db.customer.c_phone.push(text::phone(&mut rng, nation));
            db.customer.c_acctbal.push(rng.random_range(-99_999..1_000_000));
            db.customer
                .c_mktsegment
                .push(text::pick(&mut rng, &text::SEGMENTS).to_string());
            db.customer.c_comment.push(text::comment(&mut rng, 8, 0));
        }

        for k in 1..=n_part as i64 {
            db.part.p_partkey.push(k);
            db.part.p_name.push(text::part_name(&mut rng));
            db.part.p_mfgr.push(format!("Manufacturer#{}", rng.random_range(1..=5)));
            db.part.p_brand.push(text::brand(&mut rng));
            db.part.p_type.push(text::part_type(&mut rng));
            db.part.p_size.push(rng.random_range(1..=50));
            db.part.p_container.push(text::container(&mut rng));
            // dbgen's retail price formula keeps prices in [900, 2100).
            db.part
                .p_retailprice
                .push(90_000 + (k % 1_000) * 100 + rng.random_range(0..2_000i64));
            db.part.p_comment.push(text::comment(&mut rng, 5, 0));
        }

        // Four suppliers per part, spread deterministically like dbgen.
        let s = n_supplier as i64;
        for part in 1..=n_part as i64 {
            for i in 0..4i64 {
                let supp = (part + i * (s / 4 + 1)) % s + 1;
                db.partsupp.ps_partkey.push(part);
                db.partsupp.ps_suppkey.push(supp);
                db.partsupp.ps_availqty.push(rng.random_range(1..10_000));
                db.partsupp.ps_supplycost.push(rng.random_range(100..100_000));
                db.partsupp.ps_comment.push(text::comment(&mut rng, 8, 0));
            }
        }

        let order_span = dates::parse("1998-08-02").expect("static TPC-H date literal") - 121;
        let mut line_number_base: i64 = 0;
        for k in 1..=n_orders as i64 {
            let custkey = rng.random_range(1..=n_customer as i64);
            let orderdate = rng.random_range(0..=order_span);
            let lines = rng.random_range(1..=7u32);
            let mut total: i64 = 0;
            let mut all_f = true;
            let mut all_o = true;
            for ln in 1..=lines as i64 {
                let partkey = rng.random_range(1..=n_part as i64);
                // One of the part's four suppliers.
                let i = rng.random_range(0..4i64);
                let suppkey = (partkey + i * (s / 4 + 1)) % s + 1;
                let quantity = rng.random_range(1..=50i64);
                let price = db.part.p_retailprice[(partkey - 1) as usize];
                let extended = quantity * price;
                let discount = rng.random_range(0..=10i64);
                let tax = rng.random_range(0..=8i64);
                let shipdate = orderdate + rng.random_range(1..=121);
                let commitdate = orderdate + rng.random_range(30..=90);
                let receiptdate = shipdate + rng.random_range(1..=30);
                let (returnflag, linestatus) = if receiptdate <= cutoff() {
                    (if rng.random::<bool>() { "R" } else { "A" }, "F")
                } else if shipdate > cutoff() {
                    ("N", "O")
                } else {
                    ("N", "F")
                };
                all_f &= linestatus == "F";
                all_o &= linestatus == "O";
                total += extended * (100 - discount) * (100 + tax) / 10_000;
                let l = &mut db.lineitem;
                l.l_orderkey.push(k);
                l.l_partkey.push(partkey);
                l.l_suppkey.push(suppkey);
                l.l_linenumber.push(ln);
                l.l_quantity.push(quantity);
                l.l_extendedprice.push(extended);
                l.l_discount.push(discount);
                l.l_tax.push(tax);
                l.l_returnflag.push(returnflag.to_string());
                l.l_linestatus.push(linestatus.to_string());
                l.l_shipdate.push(shipdate);
                l.l_commitdate.push(commitdate);
                l.l_receiptdate.push(receiptdate);
                l.l_shipinstruct
                    .push(text::pick(&mut rng, &text::INSTRUCTIONS).to_string());
                l.l_shipmode.push(text::pick(&mut rng, &text::SHIPMODES).to_string());
                l.l_comment.push(text::comment(&mut rng, 4, 0));
                line_number_base += 1;
            }
            let status = if all_f {
                "F"
            } else if all_o {
                "O"
            } else {
                "P"
            };
            let o = &mut db.orders;
            o.o_orderkey.push(k);
            o.o_custkey.push(custkey);
            o.o_orderstatus.push(status.to_string());
            o.o_totalprice.push(total);
            o.o_orderdate.push(orderdate);
            o.o_orderpriority
                .push(text::pick(&mut rng, &text::PRIORITIES).to_string());
            o.o_clerk
                .push(format!("Clerk#{:09}", rng.random_range(1..=n_clerks as i64)));
            o.o_shippriority.push(0);
            o.o_comment.push(text::comment(&mut rng, 8, SPECIAL_PPM));
        }
        let _ = line_number_base;
        db
    }

    /// Total rows across all eight tables.
    pub fn total_rows(&self) -> usize {
        self.region.r_regionkey.len()
            + self.nation.n_nationkey.len()
            + self.supplier.s_suppkey.len()
            + self.customer.c_custkey.len()
            + self.part.p_partkey.len()
            + self.partsupp.ps_partkey.len()
            + self.orders.o_orderkey.len()
            + self.lineitem.l_orderkey.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TpchData {
        TpchData::generate(0.002, 4)
    }

    #[test]
    fn row_counts_scale_like_dbgen() {
        let db = tiny();
        assert_eq!(db.region.r_regionkey.len(), 5);
        assert_eq!(db.nation.n_nationkey.len(), 25);
        assert_eq!(db.supplier.s_suppkey.len(), 20);
        assert_eq!(db.customer.c_custkey.len(), 300);
        assert_eq!(db.part.p_partkey.len(), 400);
        assert_eq!(db.partsupp.ps_partkey.len(), 1_600);
        assert_eq!(db.orders.o_orderkey.len(), 3_000);
        let lines = db.lineitem.l_orderkey.len();
        assert!((3_000..=21_000).contains(&lines), "lines={lines}");
    }

    #[test]
    fn foreign_keys_are_valid() {
        let db = tiny();
        let nc = db.customer.c_custkey.len() as i64;
        let np = db.part.p_partkey.len() as i64;
        let ns = db.supplier.s_suppkey.len() as i64;
        assert!(db.orders.o_custkey.iter().all(|&c| c >= 1 && c <= nc));
        assert!(db.lineitem.l_partkey.iter().all(|&p| p >= 1 && p <= np));
        assert!(db.lineitem.l_suppkey.iter().all(|&s| s >= 1 && s <= ns));
        assert!(db.supplier.s_nationkey.iter().all(|&n| (0..25).contains(&n)));
        assert!(db
            .partsupp
            .ps_suppkey
            .iter()
            .all(|&sk| sk >= 1 && sk <= ns));
    }

    #[test]
    fn lineitem_dates_are_ordered() {
        let db = tiny();
        let l = &db.lineitem;
        for i in 0..l.l_orderkey.len() {
            assert!(l.l_shipdate[i] < l.l_receiptdate[i], "ship < receipt at {i}");
        }
        // Ship dates stay inside the valid TPC-H window.
        let max = dates::parse("1998-12-01").expect("static TPC-H date literal");
        assert!(l.l_shipdate.iter().all(|&d| d >= 0 && d < max));
    }

    #[test]
    fn return_flags_follow_the_cutoff_rule() {
        let db = tiny();
        let l = &db.lineitem;
        let cut = cutoff();
        for i in 0..l.l_orderkey.len() {
            match l.l_returnflag[i].as_str() {
                "R" | "A" => assert!(l.l_receiptdate[i] <= cut),
                "N" => assert!(l.l_receiptdate[i] > cut),
                other => panic!("bad return flag {other}"),
            }
        }
    }

    #[test]
    fn order_status_summarises_line_statuses() {
        let db = tiny();
        for (oi, &okey) in db.orders.o_orderkey.iter().enumerate() {
            let statuses: Vec<&str> = db
                .lineitem
                .l_orderkey
                .iter()
                .zip(&db.lineitem.l_linestatus)
                .filter(|&(&lo, _)| lo == okey)
                .map(|(_, s)| s.as_str())
                .collect();
            let expect = if statuses.iter().all(|&s| s == "F") {
                "F"
            } else if statuses.iter().all(|&s| s == "O") {
                "O"
            } else {
                "P"
            };
            assert_eq!(db.orders.o_orderstatus[oi], expect, "order {okey}");
        }
    }

    #[test]
    fn partsupp_keys_are_unique_pairs() {
        let db = tiny();
        let mut pairs: Vec<(i64, i64)> = db
            .partsupp
            .ps_partkey
            .iter()
            .zip(&db.partsupp.ps_suppkey)
            .map(|(&p, &s)| (p, s))
            .collect();
        let before = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), before, "duplicate (part, supp) pairs");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TpchData::generate(0.001, 9);
        let b = TpchData::generate(0.001, 9);
        assert_eq!(a.orders.o_totalprice, b.orders.o_totalprice);
        assert_eq!(a.lineitem.l_shipdate, b.lineitem.l_shipdate);
    }

    #[test]
    fn query_predicate_values_exist() {
        let db = TpchData::generate(0.01, 5);
        // Q3: BUILDING segment; Q12: MAIL/SHIP; Q14: PROMO types;
        // Q19: AIR modes + SM CASE containers; Q9: green parts.
        assert!(db.customer.c_mktsegment.iter().any(|s| s == "BUILDING"));
        assert!(db.lineitem.l_shipmode.iter().any(|m| m == "MAIL"));
        assert!(db.part.p_type.iter().any(|t| t.starts_with("PROMO")));
        assert!(db.part.p_container.iter().any(|c| c.starts_with("SM")));
        assert!(db.part.p_name.iter().any(|n| n.contains("green")));
        assert!(db.part.p_name.iter().any(|n| n.starts_with("forest")));
    }
}
