//! A Zipf-distributed sampler over a finite key domain.

use rand::rngs::StdRng;
use rand::RngExt;

/// Samples keys in `0..cardinality` with `P(k) ∝ 1/(k+1)^exponent`.
///
/// Implemented by inverting a precomputed cumulative table with binary
/// search: exact, deterministic, and O(log n) per sample. The paper's
/// W2 dataset uses exponent 0.5.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for the given domain size and exponent.
    ///
    /// # Panics
    /// Panics when `cardinality` is zero or `exponent` is negative/NaN.
    pub fn new(cardinality: u64, exponent: f64) -> Self {
        assert!(cardinality > 0, "zipf domain must be non-empty");
        assert!(exponent >= 0.0, "zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(cardinality as usize);
        let mut acc = 0.0f64;
        for k in 0..cardinality {
            acc += 1.0 / ((k + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Draw one key.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random();
        self.cumulative.partition_point(|&c| c < u) as u64
    }

    /// Domain size.
    pub fn cardinality(&self) -> u64 {
        self.cumulative.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(100, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn low_keys_dominate() {
        let z = Zipf::new(1_000, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        // Key 0 should take roughly 1/H(1000) ~ 13% of mass.
        assert!(counts[0] > 1_500, "key 0 drawn {} times", counts[0]);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "uniform draw too skewed: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        Zipf::new(0, 0.5);
    }
}
