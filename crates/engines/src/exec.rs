//! The execution toolkit: parallel scan driver and operator cost
//! shadows (hash tables, sorts, materialisation).

use crate::profiles::EngineProfile;
use crate::storage::TpchDb;
use nqp_query::EngineKind;
use nqp_sim::{Access, NumaSim, VAddr, Worker};
use nqp_storage::{SimHeap, COLUMN_RUN_WORDS};

/// Cycles to hash a join/group key.
const HASH_CYCLES: u64 = 6;
/// Cycles per comparison in a sort.
const SORT_CMP_CYCLES: u64 = 4;
/// Bytes per shadow hash entry allocation.
const ENTRY_BYTES: u64 = 32;
/// Cycles charged per `LIKE`/substring predicate evaluation.
pub const LIKE_CYCLES: u64 = 24;

/// Lightweight context handed to query plans (profile + thread count +
/// operator architecture).
#[derive(Debug, Clone)]
pub struct QueryCtx {
    /// The engine architecture running the query.
    pub profile: EngineProfile,
    /// Worker threads for this query.
    pub threads: usize,
    /// Tuple-at-a-time (per-row interpretation overhead) or vectorized
    /// (overhead amortised over each batch of rows). Results are
    /// identical either way — only the charged cycles move.
    pub engine: EngineKind,
}

/// Cost shadow of a hash table (join build side or aggregation state):
/// a mapped slot region that probes and inserts touch, plus heap
/// allocations for entries.
#[derive(Debug, Clone, Copy)]
pub struct ShadowHash {
    region: VAddr,
    mask: u64,
}

impl ShadowHash {
    /// Map a shadow for roughly `capacity` keys.
    pub fn new(w: &mut Worker<'_>, capacity: usize) -> Self {
        let slots = (capacity.max(8) * 2).next_power_of_two() as u64;
        ShadowHash { region: w.map_pages_shared(slots * 16), mask: slots - 1 }
    }

    #[inline]
    fn slot(&self, key: u64) -> VAddr {
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.region + (h & self.mask) * 16
    }

    /// Charge one probe of `key`.
    #[inline]
    pub fn probe(&self, w: &mut Worker<'_>, key: u64) {
        w.compute(HASH_CYCLES);
        w.touch(self.slot(key), 16, Access::Read);
    }

    /// Charge one insert of `key` (entry allocation + link).
    ///
    /// The slot region is deliberately *not* touched here: builds insert
    /// from whichever worker runs them, but the table is accessed by all
    /// probers, and leaving the first touch to the probe side models the
    /// page spreading a genuinely parallel build produces. The linking
    /// work is charged as compute instead.
    #[inline]
    pub fn insert(&self, w: &mut Worker<'_>, heap: &mut SimHeap, key: u64) {
        w.compute(HASH_CYCLES + 10);
        let entry = heap.alloc(w, ENTRY_BYTES);
        w.write_u64(entry, key);
    }

    /// Charge an in-place aggregate update for `key` (probe + write to
    /// the entry's accumulator region).
    #[inline]
    pub fn update(&self, w: &mut Worker<'_>, key: u64) {
        w.compute(HASH_CYCLES);
        w.touch(self.slot(key), 16, Access::Write);
    }
}

/// Charge a sort of `n` rows (comparison work only; the rows themselves
/// were charged as they were produced).
pub fn charge_sort(w: &mut Worker<'_>, n: usize) {
    if n > 1 {
        let n = n as u64;
        w.compute(SORT_CMP_CYCLES * n * (64 - n.leading_zeros() as u64));
    }
}

/// Charge the materialisation of an intermediate result of `rows` rows
/// of `width` bytes, when the profile is an operator-at-a-time engine:
/// allocate the buffer from the heap and write every line.
pub fn maybe_materialize(
    w: &mut Worker<'_>,
    heap: &mut SimHeap,
    profile: &EngineProfile,
    rows: usize,
    width: u64,
) {
    if !profile.materialises || rows == 0 {
        return;
    }
    let bytes = rows as u64 * width;
    let buf = heap.alloc(w, bytes);
    w.touch(buf, bytes, Access::Write);
    heap.free(w, buf, bytes);
}

/// Run a query phase: `build` executes once on worker 0 (hash-table
/// construction, sub-plans), then every worker scans its partition of
/// `table`, and `merge` combines the per-thread locals. The simulator
/// executes workers in order, so worker 0's build is visible to all.
pub fn scan_phase<B, L, FB, FR, FM, R>(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
    table: &'static str,
    build: FB,
    per_row: FR,
    merge: FM,
) -> R
where
    L: Default,
    FB: FnOnce(&mut Worker<'_>, &mut SimHeap, &TpchDb) -> B,
    FR: Fn(&mut Worker<'_>, &mut SimHeap, &TpchDb, &B, usize, &mut L),
    FM: FnOnce(&mut Worker<'_>, &mut SimHeap, B, Vec<L>) -> R,
{
    struct Shared<'h, B, L> {
        heap: &'h mut SimHeap,
        build: Option<B>,
        locals: Vec<L>,
    }
    let mut shared = Shared { heap, build: None, locals: Vec::new() };
    let mut build = Some(build);
    let overhead = ctx.profile.row_overhead_cycles;
    let startup = ctx.profile.phase_startup_cycles;
    let engine = ctx.engine;
    sim.phase_begin(&format!("scan:{table}"));
    let stats = sim.parallel(ctx.threads, &mut shared, |w, sh| {
        if w.tid() == 0 {
            // Per-phase coordination cost (process pools pay dearly here).
            w.compute(startup);
            let f = build.take().expect("build runs exactly once");
            sh.build = Some(f(w, sh.heap, db));
        }
        let b = sh.build.as_ref().expect("worker 0 built");
        let mut local = L::default();
        let shadow = db.table(table);
        let range = shadow.partition(w.tid(), ctx.threads);
        for (i, row) in range.enumerate() {
            match engine {
                // Per-row interpretation overhead: the classic Volcano
                // next() tax every profile pays in the paper.
                EngineKind::Tuple => w.compute(overhead),
                // Batch-at-a-time: the same interpretation overhead is
                // paid once per vector of rows, amortising the tax —
                // the engine-profile face of the vectorized path.
                EngineKind::Vectorized => {
                    if i % COLUMN_RUN_WORDS == 0 {
                        w.compute(overhead);
                    }
                }
            }
            per_row(w, sh.heap, db, b, row, &mut local);
        }
        sh.locals.push(local);
    });
    if std::env::var("NQP_DEBUG_REGIONS").is_ok() {
        eprintln!(
            "[scan {table}] elapsed={} max_thread={} bneck={:?} ctrl={:.2} waits={}",
            stats.elapsed_cycles,
            stats.max_thread_cycles,
            stats.bottleneck,
            stats.peak_controller_utilisation(),
            stats.counters.lock_wait_cycles
        );
    }
    // Merge on a single worker (the coordinator).
    let mut out: Option<R> = None;
    let mut merge = Some(merge);
    let mut m_shared = (shared.heap, shared.build, shared.locals, &mut out);
    sim.serial(&mut m_shared, |w, (heap, b, locals, out)| {
        let f = merge.take().expect("merge runs exactly once");
        **out = Some(f(
            w,
            heap,
            b.take().expect("build present"),
            std::mem::take(locals),
        ));
    });
    sim.phase_end();
    out.expect("merge produced a result")
}

/// FNV-1a hasher with a fixed seed: map iteration order — and therefore
/// the charged access sequences of the query plans — is identical across
/// runs, keeping query latencies deterministic.
#[derive(Default)]
pub struct DetHasher(u64);

impl std::hash::Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }
}

/// Deterministic hash map used by every query plan.
pub type Map<K, V> =
    std::collections::HashMap<K, V, std::hash::BuildHasherDefault<DetHasher>>;

/// Deterministic hash set used by every query plan.
pub type Set<K> = std::collections::HashSet<K, std::hash::BuildHasherDefault<DetHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{Layout, SystemKind};
    use nqp_alloc::AllocatorKind;
    use nqp_datagen::tpch::TpchData;
    use nqp_sim::SimConfig;
    use nqp_topology::machines;

    fn setup() -> (NumaSim, SimHeap, TpchDb) {
        let mut sim = NumaSim::new(SimConfig::tuned(machines::machine_b()));
        let mut heap = SimHeap::new(AllocatorKind::Tbbmalloc, &mut sim);
        let data = TpchData::generate(0.001, 5);
        let db = TpchDb::load(&mut sim, &mut heap, &data, Layout::Column, 2);
        (sim, heap, db)
    }

    #[test]
    fn scan_phase_visits_every_row_once() {
        let (mut sim, mut heap, db) = setup();
        let ctx = QueryCtx {
            profile: SystemKind::QuickstepLike.profile(),
            threads: 3,
            engine: EngineKind::Tuple,
        };
        let total = scan_phase(
            &mut sim,
            &mut heap,
            &db,
            &ctx,
            "orders",
            |_, _, _| (),
            |_, _, _, _, _row, local: &mut usize| *local += 1,
            |_, _, _, locals| locals.iter().sum::<usize>(),
        );
        assert_eq!(total, db.table("orders").nrows());
    }

    #[test]
    fn build_runs_once_and_is_visible_to_all_workers() {
        let (mut sim, mut heap, db) = setup();
        let ctx = QueryCtx {
            profile: SystemKind::MonetDbLike.profile(),
            threads: 4,
            engine: EngineKind::Tuple,
        };
        let seen = scan_phase(
            &mut sim,
            &mut heap,
            &db,
            &ctx,
            "nation",
            |_, _, _| 42u64,
            |_, _, _, b, _, local: &mut Vec<u64>| local.push(*b),
            |_, _, b, locals| {
                assert_eq!(b, 42);
                locals.into_iter().flatten().collect::<Vec<_>>()
            },
        );
        assert!(seen.iter().all(|&v| v == 42));
        assert_eq!(seen.len(), 25);
    }

    #[test]
    fn shadow_hash_charges_cycles() {
        let (mut sim, mut heap, _db) = setup();
        let before = sim.now_cycles();
        sim.serial(&mut heap, |w, heap| {
            let h = ShadowHash::new(w, 100);
            for k in 0..100 {
                h.insert(w, heap, k);
            }
            for k in 0..100 {
                h.probe(w, k);
                h.update(w, k);
            }
        });
        assert!(sim.now_cycles() > before);
        assert!(heap.live_requested() >= 100 * ENTRY_BYTES);
    }

    #[test]
    fn materialisation_only_for_materialising_profiles() {
        let (mut sim, mut heap, _db) = setup();
        let monet = SystemKind::MonetDbLike.profile();
        let quick = SystemKind::QuickstepLike.profile();
        let mut costs = Vec::new();
        for p in [quick, monet] {
            let before = sim.now_cycles();
            sim.serial(&mut heap, |w, heap| {
                maybe_materialize(w, heap, &p, 1_000, 32);
            });
            costs.push(sim.now_cycles() - before);
        }
        assert!(costs[1] > costs[0] * 5, "monet={} quick={}", costs[1], costs[0]);
    }

    #[test]
    fn sort_cost_is_n_log_n() {
        let (mut sim, _, _) = setup();
        let mut cost = |n: usize| {
            let before = sim.counters().compute_cycles;
            sim.serial(&mut (), |w, _| charge_sort(w, n));
            sim.counters().compute_cycles - before
        };
        let c1k = cost(1_000);
        let c4k = cost(4_000);
        assert!(c4k > 4 * c1k && c4k < 8 * c1k, "c1k={c1k} c4k={c4k}");
        assert_eq!(cost(1), 0);
    }
}
