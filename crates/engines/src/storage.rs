//! Simulated base-table storage: the cost shadow of each TPC-H table.
//!
//! Values live host-side (in the generated [`TpchData`]); every scan
//! charges touches against mapped simulated memory with the layout's
//! true stride. A row store reads a cell from inside a wide tuple — the
//! whole cache line around it moves — while a column store reads from a
//! dense array of just that column. That difference is the layout term
//! of the engine profiles.

use crate::profiles::Layout;
use nqp_datagen::tpch::TpchData;
use nqp_sim::{Access, NumaSim, VAddr, Worker};
use nqp_storage::SimHeap;
use std::collections::HashMap;

/// `(column name, width in bytes)` per table, in schema order. Strings
/// are shadowed at 16 bytes (pointer + length/prefix), dates at 4,
/// integers and decimals at 8.
const SCHEMAS: &[(&str, &[(&str, u64)])] = &[
    ("region", &[("r_regionkey", 8), ("r_name", 16), ("r_comment", 16)]),
    (
        "nation",
        &[("n_nationkey", 8), ("n_name", 16), ("n_regionkey", 8), ("n_comment", 16)],
    ),
    (
        "supplier",
        &[
            ("s_suppkey", 8),
            ("s_name", 16),
            ("s_address", 16),
            ("s_nationkey", 8),
            ("s_phone", 16),
            ("s_acctbal", 8),
            ("s_comment", 16),
        ],
    ),
    (
        "customer",
        &[
            ("c_custkey", 8),
            ("c_name", 16),
            ("c_address", 16),
            ("c_nationkey", 8),
            ("c_phone", 16),
            ("c_acctbal", 8),
            ("c_mktsegment", 16),
            ("c_comment", 16),
        ],
    ),
    (
        "part",
        &[
            ("p_partkey", 8),
            ("p_name", 16),
            ("p_mfgr", 16),
            ("p_brand", 16),
            ("p_type", 16),
            ("p_size", 8),
            ("p_container", 16),
            ("p_retailprice", 8),
            ("p_comment", 16),
        ],
    ),
    (
        "partsupp",
        &[
            ("ps_partkey", 8),
            ("ps_suppkey", 8),
            ("ps_availqty", 8),
            ("ps_supplycost", 8),
            ("ps_comment", 16),
        ],
    ),
    (
        "orders",
        &[
            ("o_orderkey", 8),
            ("o_custkey", 8),
            ("o_orderstatus", 16),
            ("o_totalprice", 8),
            ("o_orderdate", 4),
            ("o_orderpriority", 16),
            ("o_clerk", 16),
            ("o_shippriority", 8),
            ("o_comment", 16),
        ],
    ),
    (
        "lineitem",
        &[
            ("l_orderkey", 8),
            ("l_partkey", 8),
            ("l_suppkey", 8),
            ("l_linenumber", 8),
            ("l_quantity", 8),
            ("l_extendedprice", 8),
            ("l_discount", 8),
            ("l_tax", 8),
            ("l_returnflag", 16),
            ("l_linestatus", 16),
            ("l_shipdate", 4),
            ("l_commitdate", 4),
            ("l_receiptdate", 4),
            ("l_shipinstruct", 16),
            ("l_shipmode", 16),
            ("l_comment", 16),
        ],
    ),
];

/// The storage shadow of one table.
#[derive(Debug)]
pub struct TableShadow {
    layout: Layout,
    nrows: usize,
    /// Row layout: tuple width. Column layout: unused.
    row_bytes: u64,
    /// Row layout: tuple base. Column layout: unused.
    row_base: VAddr,
    /// Per column: `(offset within row | column base, width)`.
    cols: HashMap<&'static str, (VAddr, u64)>,
}

impl TableShadow {
    /// Charge the cost of reading `col` of `row`.
    #[inline]
    pub fn charge(&self, w: &mut Worker<'_>, col: &str, row: usize) {
        let &(pos, width) = self
            .cols
            .get(col)
            .unwrap_or_else(|| panic!("unknown column {col}"));
        let addr = match self.layout {
            Layout::Column => pos + row as u64 * width,
            Layout::Row => self.row_base + row as u64 * self.row_bytes + pos,
        };
        w.touch(addr, width, Access::Read);
    }

    /// Rows in the table.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// The contiguous row range thread `tid` of `threads` scans.
    pub fn partition(&self, tid: usize, threads: usize) -> std::ops::Range<usize> {
        let per = self.nrows.div_ceil(threads.max(1));
        let start = (tid * per).min(self.nrows);
        let end = ((tid + 1) * per).min(self.nrows);
        start..end
    }
}

/// The loaded database: host values + per-table cost shadows.
pub struct TpchDb {
    /// The generated data (exact values for query evaluation).
    pub data: TpchData,
    tables: HashMap<&'static str, TableShadow>,
}

impl TpchDb {
    /// Map the storage shadows and fault them in with a partitioned
    /// parallel load (first touch spreads each table across the loading
    /// workers, as a parallel COPY would).
    pub fn load(
        sim: &mut NumaSim,
        _heap: &mut SimHeap,
        data: &TpchData,
        layout: Layout,
        threads: usize,
    ) -> Self {
        let row_count = |name: &str| -> usize {
            match name {
                "region" => data.region.r_regionkey.len(),
                "nation" => data.nation.n_nationkey.len(),
                "supplier" => data.supplier.s_suppkey.len(),
                "customer" => data.customer.c_custkey.len(),
                "part" => data.part.p_partkey.len(),
                "partsupp" => data.partsupp.ps_partkey.len(),
                "orders" => data.orders.o_orderkey.len(),
                "lineitem" => data.lineitem.l_orderkey.len(),
                other => panic!("unknown table {other}"),
            }
        };
        let mut tables = HashMap::new();
        for &(name, schema) in SCHEMAS {
            let nrows = row_count(name);
            let shadow = match layout {
                Layout::Row => {
                    // Row stores read tuples through a shared buffer
                    // pool whose pages are faulted by whichever backend
                    // needs them first — placement is spread, not
                    // loader-local (unlike a column store's mmapped
                    // column files).
                    let row_bytes: u64 = schema.iter().map(|&(_, wd)| wd).sum();
                    let mut base = 0;
                    sim.serial(&mut base, |w, base| {
                        *base = w.map_pages_shared((nrows as u64 * row_bytes).max(1));
                    });
                    let mut off = 0;
                    let cols = schema
                        .iter()
                        .map(|&(cname, wd)| {
                            let entry = (cname, (off, wd));
                            off += wd;
                            entry
                        })
                        .collect();
                    TableShadow { layout, nrows, row_bytes, row_base: base, cols }
                }
                Layout::Column => {
                    let mut cols = HashMap::new();
                    for &(cname, wd) in schema {
                        let mut base = 0;
                        sim.serial(&mut base, |w, base| {
                            *base = w.map_pages((nrows as u64 * wd).max(1));
                        });
                        cols.insert(cname, (base, wd));
                    }
                    TableShadow { layout, nrows, row_bytes: 0, row_base: 0, cols }
                }
            };
            tables.insert(name, shadow);
        }
        let db = TpchDb { data: data.clone(), tables };
        // Fault everything in, partitioned across the workers. Each
        // worker writes only its own contiguous row range, so the load
        // shards across host threads (`SimConfig::shards`) with
        // deterministic epoch merges — byte-identical at any shard
        // count, same as the W1–W4 relation loaders.
        for &(name, schema) in SCHEMAS {
            let shadow = &db.tables[name];
            sim.parallel_sharded(threads, shadow, |w, shadow| {
                for row in shadow.partition(w.tid(), threads) {
                    match layout {
                        Layout::Row => {
                            let addr = shadow.row_base + row as u64 * shadow.row_bytes;
                            w.touch(addr, shadow.row_bytes, Access::Write);
                        }
                        Layout::Column => {
                            for &(cname, _) in schema {
                                let &(base, wd) = &shadow.cols[cname];
                                w.touch(base + row as u64 * wd, wd, Access::Write);
                            }
                        }
                    }
                }
            });
        }
        db
    }

    /// The shadow of `name`.
    pub fn table(&self, name: &str) -> &TableShadow {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("unknown table {name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_alloc::AllocatorKind;
    use nqp_sim::SimConfig;
    use nqp_topology::machines;

    fn setup(layout: Layout) -> (NumaSim, TpchDb) {
        let mut sim = NumaSim::new(
            SimConfig::tuned(machines::machine_b()),
        );
        let mut heap = SimHeap::new(AllocatorKind::Tbbmalloc, &mut sim);
        let data = TpchData::generate(0.001, 3);
        let db = TpchDb::load(&mut sim, &mut heap, &data, layout, 4);
        (sim, db)
    }

    #[test]
    fn all_eight_tables_load() {
        let (_, db) = setup(Layout::Column);
        for &(name, _) in SCHEMAS {
            assert!(db.table(name).nrows() > 0, "{name} empty");
        }
        assert_eq!(db.table("region").nrows(), 5);
        assert_eq!(db.table("nation").nrows(), 25);
    }

    #[test]
    fn row_scans_cost_more_than_column_scans() {
        let cost = |layout| {
            let (mut sim, db) = setup(layout);
            let before = sim.now_cycles();
            sim.serial(&mut (), |w, _| {
                let li = db.table("lineitem");
                for row in 0..li.nrows() {
                    li.charge(w, "l_shipdate", row);
                }
            });
            sim.now_cycles() - before
        };
        let row = cost(Layout::Row);
        let col = cost(Layout::Column);
        assert!(
            row > 2 * col,
            "row-store scan ({row}) should dwarf column scan ({col})"
        );
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn unknown_column_panics() {
        let (mut sim, db) = setup(Layout::Column);
        sim.serial(&mut (), |w, _| db.table("orders").charge(w, "nope", 0));
    }

    #[test]
    fn partitions_tile_rows() {
        let (_, db) = setup(Layout::Column);
        let li = db.table("lineitem");
        let mut total = 0;
        for tid in 0..5 {
            total += li.partition(tid, 5).len();
        }
        assert_eq!(total, li.nrows());
    }
}
