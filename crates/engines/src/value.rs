//! Result values and rows.

use std::fmt;

/// A scalar in a query result. Money and rates are fixed-point `i64`
/// (cents / hundredths), dates are days since 1992-01-01, and ratios are
/// scaled integers — keeping results exactly comparable across engine
/// profiles (no float drift).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Integer / count / fixed-point money.
    I(i64),
    /// String column value.
    S(String),
    /// Date (days since 1992-01-01).
    D(i32),
}

impl Value {
    /// The integer inside, panicking on non-integers (plan-internal use).
    pub fn as_i(&self) -> i64 {
        match self {
            Value::I(v) => *v,
            other => panic!("expected integer value, got {other:?}"),
        }
    }

    /// The string inside, panicking on non-strings.
    pub fn as_s(&self) -> &str {
        match self {
            Value::S(v) => v,
            other => panic!("expected string value, got {other:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I(v) => write!(f, "{v}"),
            Value::S(v) => write!(f, "{v}"),
            Value::D(v) => write!(f, "{}", nqp_datagen::tpch::dates::format(*v)),
        }
    }
}

/// One result row.
pub type Row = Vec<Value>;

/// Shorthand constructors used by the query plans.
pub fn i(v: i64) -> Value {
    Value::I(v)
}

/// String value shorthand.
pub fn s(v: impl Into<String>) -> Value {
    Value::S(v.into())
}

/// Date value shorthand.
pub fn d(v: i32) -> Value {
    Value::D(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        assert_eq!(i(5).as_i(), 5);
        assert_eq!(s("x").as_s(), "x");
        assert_eq!(format!("{}", d(0)), "1992-01-01");
        assert_eq!(format!("{}", i(-3)), "-3");
    }

    #[test]
    fn ordering_is_total_within_variants() {
        assert!(i(1) < i(2));
        assert!(s("a") < s("b"));
    }

    #[test]
    #[should_panic(expected = "expected integer")]
    fn as_i_panics_on_string() {
        s("no").as_i();
    }
}
