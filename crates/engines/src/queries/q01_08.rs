//! TPC-H Q1–Q8.

use crate::exec::{charge_sort, maybe_materialize, scan_phase, Map, QueryCtx, Set, ShadowHash, LIKE_CYCLES};
use crate::error::EngineError;
use crate::storage::TpchDb;
use crate::value::{d, i, s, Row};
use nqp_datagen::tpch::dates;
use nqp_sim::NumaSim;
use nqp_storage::SimHeap;


/// Revenue of one lineitem in cents: `ext * (1 - discount)`.
fn rev(ext: i64, disc: i64) -> i64 {
    ext * (100 - disc) / 100
}

/// Q1: pricing summary report — full lineitem scan, group by
/// `(returnflag, linestatus)` with six aggregates.
pub(super) fn q01(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let cutoff = dates::parse("1998-12-01")? - 90;
    type Acc = Map<(u8, u8), [i64; 6]>;
    let locals: Vec<Acc> = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, _, _| ShadowHash::new(w, 8),
        |w, _, db, h, row, local: &mut Acc| {
            let t = db.table("lineitem");
            t.charge(w, "l_shipdate", row);
            let li = &db.data.lineitem;
            if li.l_shipdate[row] > cutoff {
                return;
            }
            for col in [
                "l_returnflag",
                "l_linestatus",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_tax",
            ] {
                t.charge(w, col, row);
            }
            let key = (
                li.l_returnflag[row].as_bytes()[0],
                li.l_linestatus[row].as_bytes()[0],
            );
            h.update(w, (key.0 as u64) << 8 | key.1 as u64);
            let a = local.entry(key).or_default();
            let (qty, ext, disc, tax) = (
                li.l_quantity[row],
                li.l_extendedprice[row],
                li.l_discount[row],
                li.l_tax[row],
            );
            a[0] += qty;
            a[1] += ext;
            a[2] += ext * (100 - disc); // 1e-4 dollars
            a[3] += ext * (100 - disc) * (100 + tax); // 1e-6 dollars
            a[4] += disc;
            a[5] += 1;
        },
        |_, _, _, locals| locals,
    );
    let mut merged: Map<(u8, u8), [i64; 6]> = Map::default();
    for l in locals {
        for (k, v) in l {
            let a = merged.entry(k).or_default();
            for x in 0..6 {
                a[x] += v[x];
            }
        }
    }
    let mut keys: Vec<(u8, u8)> = merged.keys().copied().collect();
    keys.sort_unstable();
    finish(sim, heap, ctx, keys.len(), |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, merged.len(), 80);
        charge_sort(w, merged.len());
    });
    Ok(keys.into_iter()
        .map(|k| {
            let a = merged[&k];
            vec![
                s((k.0 as char).to_string()),
                s((k.1 as char).to_string()),
                i(a[0]),
                i(a[1]),
                i(a[2]),
                i(a[3]),
                i(a[0] * 100 / a[5]), // avg qty x100
                i(a[1] / a[5]),       // avg price, cents
                i(a[4] * 100 / a[5]), // avg discount x1e-4
                i(a[5]),
            ]
        })
        .collect())
}

/// Run a final coordinator step (sorting, result materialisation).
fn finish(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    _ctx: &QueryCtx,
    _rows: usize,
    f: impl FnOnce(&mut nqp_sim::Worker<'_>, &mut SimHeap),
) {
    let mut f = Some(f);
    sim.serial(heap, |w, heap| {
        if let Some(f) = f.take() {
            f(w, heap);
        }
    });
}

/// Q2: minimum-cost supplier in EUROPE for size-15 `%BRASS` parts.
pub(super) fn q02(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    struct Built {
        parts: Map<i64, usize>,      // partkey -> part row
        suppliers: Map<i64, usize>,  // suppkey (in EUROPE) -> supplier row
        shadow: ShadowHash,
    }
    type Cand = Vec<(i64, i64, i64)>; // (partkey, suppkey, cost)
    let (built, cands) = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "partsupp",
        |w, _, db| {
            // region EUROPE -> nation set
            let rt = db.table("region");
            let europe: i64 = (0..rt.nrows())
                .find(|&r| {
                    rt.charge(w, "r_name", r);
                    db.data.region.r_name[r] == "EUROPE"
                })
                .map(|r| db.data.region.r_regionkey[r])
                .expect("EUROPE exists");
            let nt = db.table("nation");
            let nations: Set<i64> = (0..nt.nrows())
                .filter(|&r| {
                    nt.charge(w, "n_regionkey", r);
                    db.data.nation.n_regionkey[r] == europe
                })
                .map(|r| db.data.nation.n_nationkey[r])
                .collect();
            let st = db.table("supplier");
            let suppliers: Map<i64, usize> = (0..st.nrows())
                .filter(|&r| {
                    st.charge(w, "s_nationkey", r);
                    nations.contains(&db.data.supplier.s_nationkey[r])
                })
                .map(|r| (db.data.supplier.s_suppkey[r], r))
                .collect();
            let pt = db.table("part");
            let parts: Map<i64, usize> = (0..pt.nrows())
                .filter(|&r| {
                    pt.charge(w, "p_size", r);
                    pt.charge(w, "p_type", r);
                    w.compute(LIKE_CYCLES);
                    db.data.part.p_size[r] == 15
                        && db.data.part.p_type[r].ends_with("BRASS")
                })
                .map(|r| (db.data.part.p_partkey[r], r))
                .collect();
            let shadow = ShadowHash::new(w, parts.len() + suppliers.len());
            Built { parts, suppliers, shadow }
        },
        |w, _, db, b, row, local: &mut Cand| {
            let t = db.table("partsupp");
            t.charge(w, "ps_partkey", row);
            let ps = &db.data.partsupp;
            let pk = ps.ps_partkey[row];
            b.shadow.probe(w, pk as u64);
            if !b.parts.contains_key(&pk) {
                return;
            }
            t.charge(w, "ps_suppkey", row);
            let sk = ps.ps_suppkey[row];
            b.shadow.probe(w, sk as u64);
            if !b.suppliers.contains_key(&sk) {
                return;
            }
            t.charge(w, "ps_supplycost", row);
            local.push((pk, sk, ps.ps_supplycost[row]));
        },
        |_, _, b, locals| (b, locals.into_iter().flatten().collect::<Vec<_>>()),
    );
    // Min cost per part, then emit the suppliers achieving it.
    let mut min_cost: Map<i64, i64> = Map::default();
    for &(pk, _, cost) in &cands {
        let e = min_cost.entry(pk).or_insert(i64::MAX);
        *e = (*e).min(cost);
    }
    let mut rows: Vec<Row> = Vec::new();
    for &(pk, sk, cost) in &cands {
        if cost != min_cost[&pk] {
            continue;
        }
        let sr = built.suppliers[&sk];
        let pr = built.parts[&pk];
        let sup = &db.data.supplier;
        let nation = &db.data.nation.n_name[sup.s_nationkey[sr] as usize];
        rows.push(vec![
            i(sup.s_acctbal[sr]),
            s(sup.s_name[sr].clone()),
            s(nation.clone()),
            i(pk),
            s(db.data.part.p_mfgr[pr].clone()),
            s(sup.s_address[sr].clone()),
            s(sup.s_phone[sr].clone()),
        ]);
    }
    rows.sort_by(|a, b| {
        b[0].as_i()
            .cmp(&a[0].as_i())
            .then_with(|| a[2].as_s().cmp(b[2].as_s()))
            .then_with(|| a[1].as_s().cmp(b[1].as_s()))
            .then_with(|| a[3].as_i().cmp(&b[3].as_i()))
    });
    rows.truncate(100);
    let n = rows.len();
    finish(sim, heap, ctx, n, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, cands.len(), 24);
        charge_sort(w, n.max(cands.len()));
    });
    Ok(rows)
}

/// Q3: shipping-priority — BUILDING customers' unshipped orders, top 10
/// by revenue.
pub(super) fn q03(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let date = dates::parse("1995-03-15")?;
    // Phase 1: qualifying orders (BUILDING customer, early orderdate).
    type OMap = Map<i64, (i32, i64)>; // orderkey -> (orderdate, shippriority)
    let omap: OMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |w, _, db| {
            let ct = db.table("customer");
            let custs: Set<i64> = (0..ct.nrows())
                .filter(|&r| {
                    ct.charge(w, "c_mktsegment", r);
                    db.data.customer.c_mktsegment[r] == "BUILDING"
                })
                .map(|r| db.data.customer.c_custkey[r])
                .collect();
            let shadow = ShadowHash::new(w, custs.len());
            (custs, shadow)
        },
        |w, _, db, (custs, shadow), row, local: &mut OMap| {
            let t = db.table("orders");
            t.charge(w, "o_orderdate", row);
            let o = &db.data.orders;
            if o.o_orderdate[row] >= date {
                return;
            }
            t.charge(w, "o_custkey", row);
            shadow.probe(w, o.o_custkey[row] as u64);
            if custs.contains(&o.o_custkey[row]) {
                t.charge(w, "o_orderkey", row);
                t.charge(w, "o_shippriority", row);
                local.insert(o.o_orderkey[row], (o.o_orderdate[row], o.o_shippriority[row]));
            }
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    // Phase 2: revenue per order from late-shipped lineitems.
    type RMap = Map<i64, i64>;
    let revenue: RMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, heap, _| {
            // The qualifying orders become this phase's build side.
            let shadow = ShadowHash::new(w, omap.len());
            for &k in omap.keys() {
                shadow.insert(w, heap, k as u64);
            }
            shadow
        },
        |w, heap, db, shadow, row, local: &mut RMap| {
            let t = db.table("lineitem");
            t.charge(w, "l_orderkey", row);
            let li = &db.data.lineitem;
            let ok = li.l_orderkey[row];
            shadow.probe(w, ok as u64);
            let Some(&(odate, _)) = omap.get(&ok) else { return };
            t.charge(w, "l_shipdate", row);
            if li.l_shipdate[row] <= date {
                return;
            }
            let _ = odate;
            t.charge(w, "l_extendedprice", row);
            t.charge(w, "l_discount", row);
            if !local.contains_key(&ok) {
                heap.alloc(w, 32); // fresh per-order aggregate state
            }
            *local.entry(ok).or_default() += rev(li.l_extendedprice[row], li.l_discount[row]);
        },
        |_, _, _, locals| {
            let mut m = RMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    let mut rows: Vec<Row> = revenue
        .into_iter()
        .map(|(ok, r)| {
            let (odate, prio) = omap[&ok];
            vec![i(ok), i(r), d(odate), i(prio)]
        })
        .collect();
    rows.sort_by(|a, b| b[1].as_i().cmp(&a[1].as_i()).then_with(|| a[2].cmp(&b[2])));
    let n = rows.len();
    rows.truncate(10);
    finish(sim, heap, ctx, n, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 32);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q4: order-priority checking — orders in 1993-Q3 with at least one
/// late lineitem, counted by priority.
pub(super) fn q04(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let lo = dates::parse("1993-07-01")?;
    let hi = dates::add_months(lo, 3);
    // Phase 1: orderkeys with a commit < receipt lineitem (semi-join side).
    let late: Set<i64> = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, _, _| ShadowHash::new(w, 1024),
        |w, heap, db, shadow, row, local: &mut Set<i64>| {
            let t = db.table("lineitem");
            t.charge(w, "l_commitdate", row);
            t.charge(w, "l_receiptdate", row);
            let li = &db.data.lineitem;
            if li.l_commitdate[row] < li.l_receiptdate[row] {
                t.charge(w, "l_orderkey", row);
                if local.insert(li.l_orderkey[row]) {
                    shadow.insert(w, heap, li.l_orderkey[row] as u64);
                }
            }
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    // Phase 2: orders in range, existing in the semi-join set.
    type Counts = Map<String, i64>;
    let counts: Counts = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |w, _, _| ShadowHash::new(w, late.len()),
        |w, _, db, shadow, row, local: &mut Counts| {
            let t = db.table("orders");
            t.charge(w, "o_orderdate", row);
            let o = &db.data.orders;
            if o.o_orderdate[row] < lo || o.o_orderdate[row] >= hi {
                return;
            }
            t.charge(w, "o_orderkey", row);
            shadow.probe(w, o.o_orderkey[row] as u64);
            if late.contains(&o.o_orderkey[row]) {
                t.charge(w, "o_orderpriority", row);
                *local.entry(o.o_orderpriority[row].clone()).or_default() += 1;
            }
        },
        |_, _, _, locals| {
            let mut m = Counts::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    let mut rows: Vec<Row> = counts.into_iter().map(|(p, c)| vec![s(p), i(c)]).collect();
    rows.sort();
    let n = rows.len();
    finish(sim, heap, ctx, n, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 24);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q5: local-supplier volume — revenue in ASIA where supplier and
/// customer share a nation, orders of 1994.
pub(super) fn q05(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let lo = dates::parse("1994-01-01")?;
    let hi = dates::add_years(lo, 1);
    // Phase 1: 1994 orders -> customer nation (ASIA only).
    type OMap = Map<i64, i64>; // orderkey -> customer nationkey
    struct B1 {
        cust_nation: Map<i64, i64>,
        asia: Set<i64>,
        shadow: ShadowHash,
    }
    let omap: OMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |w, _, db| {
            let rt = db.table("region");
            let asia_key: i64 = (0..rt.nrows())
                .find(|&r| {
                    rt.charge(w, "r_name", r);
                    db.data.region.r_name[r] == "ASIA"
                })
                .map(|r| db.data.region.r_regionkey[r])
                .expect("ASIA exists");
            let nt = db.table("nation");
            let asia: Set<i64> = (0..nt.nrows())
                .filter(|&r| {
                    nt.charge(w, "n_regionkey", r);
                    db.data.nation.n_regionkey[r] == asia_key
                })
                .map(|r| db.data.nation.n_nationkey[r])
                .collect();
            let ct = db.table("customer");
            let cust_nation: Map<i64, i64> = (0..ct.nrows())
                .map(|r| {
                    ct.charge(w, "c_nationkey", r);
                    (db.data.customer.c_custkey[r], db.data.customer.c_nationkey[r])
                })
                .collect();
            let shadow = ShadowHash::new(w, cust_nation.len());
            B1 { cust_nation, asia, shadow }
        },
        |w, _, db, b, row, local: &mut OMap| {
            let t = db.table("orders");
            t.charge(w, "o_orderdate", row);
            let o = &db.data.orders;
            if o.o_orderdate[row] < lo || o.o_orderdate[row] >= hi {
                return;
            }
            t.charge(w, "o_custkey", row);
            b.shadow.probe(w, o.o_custkey[row] as u64);
            let nk = b.cust_nation[&o.o_custkey[row]];
            if b.asia.contains(&nk) {
                t.charge(w, "o_orderkey", row);
                local.insert(o.o_orderkey[row], nk);
            }
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    // Phase 2: lineitems whose supplier nation matches the customer's.
    type RMap = Map<i64, i64>; // nationkey -> revenue
    let by_nation: RMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, heap, db| {
            let st = db.table("supplier");
            let supp_nation: Map<i64, i64> = (0..st.nrows())
                .map(|r| {
                    st.charge(w, "s_nationkey", r);
                    (db.data.supplier.s_suppkey[r], db.data.supplier.s_nationkey[r])
                })
                .collect();
            let shadow = ShadowHash::new(w, omap.len() + supp_nation.len());
            for &k in omap.keys() {
                shadow.insert(w, heap, k as u64);
            }
            (supp_nation, shadow)
        },
        |w, _, db, (supp_nation, shadow), row, local: &mut RMap| {
            let t = db.table("lineitem");
            t.charge(w, "l_orderkey", row);
            let li = &db.data.lineitem;
            shadow.probe(w, li.l_orderkey[row] as u64);
            let Some(&cnk) = omap.get(&li.l_orderkey[row]) else { return };
            t.charge(w, "l_suppkey", row);
            shadow.probe(w, li.l_suppkey[row] as u64);
            if supp_nation[&li.l_suppkey[row]] != cnk {
                return;
            }
            t.charge(w, "l_extendedprice", row);
            t.charge(w, "l_discount", row);
            *local.entry(cnk).or_default() += rev(li.l_extendedprice[row], li.l_discount[row]);
        },
        |_, _, _, locals| {
            let mut m = RMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    let mut rows: Vec<Row> = by_nation
        .into_iter()
        .map(|(nk, r)| vec![s(db.data.nation.n_name[nk as usize].clone()), i(r)])
        .collect();
    rows.sort_by(|a, b| b[1].as_i().cmp(&a[1].as_i()));
    let n = rows.len();
    finish(sim, heap, ctx, n, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 24);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q6: forecasting revenue change — a pure lineitem filter-and-sum.
pub(super) fn q06(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let lo = dates::parse("1994-01-01")?;
    let hi = dates::add_years(lo, 1);
    let total: i64 = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |_, _, _| (),
        |w, _, db, _, row, local: &mut i64| {
            let t = db.table("lineitem");
            t.charge(w, "l_shipdate", row);
            let li = &db.data.lineitem;
            if li.l_shipdate[row] < lo || li.l_shipdate[row] >= hi {
                return;
            }
            t.charge(w, "l_discount", row);
            t.charge(w, "l_quantity", row);
            let disc = li.l_discount[row];
            if !(5..=7).contains(&disc) || li.l_quantity[row] >= 24 {
                return;
            }
            t.charge(w, "l_extendedprice", row);
            *local += li.l_extendedprice[row] * disc; // 1e-4 dollars
        },
        |_, _, _, locals| locals.into_iter().sum(),
    );
    finish(sim, heap, ctx, 1, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, 1, 8);
    });
    Ok(vec![vec![i(total)]])
}

/// Q7: volume shipping between FRANCE and GERMANY, by year.
pub(super) fn q07(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let lo = dates::parse("1995-01-01")?;
    let hi = dates::parse("1996-12-31")?;
    let nation_key = |name: &str| -> i64 {
        db.data
            .nation
            .n_name
            .iter()
            .position(|n| n == name)
            .map(|r| db.data.nation.n_nationkey[r])
            .expect("nation exists")
    };
    let (fr, de) = (nation_key("FRANCE"), nation_key("GERMANY"));
    // Phase 1: every order's customer nation (only FR/DE kept).
    type OMap = Map<i64, i64>;
    let omap: OMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |w, _, db| {
            let ct = db.table("customer");
            let cust_nation: Map<i64, i64> = (0..ct.nrows())
                .map(|r| {
                    ct.charge(w, "c_nationkey", r);
                    (db.data.customer.c_custkey[r], db.data.customer.c_nationkey[r])
                })
                .collect();
            (cust_nation, ShadowHash::new(w, ct.nrows()))
        },
        |w, _, db, (cust_nation, shadow), row, local: &mut OMap| {
            let t = db.table("orders");
            t.charge(w, "o_custkey", row);
            let o = &db.data.orders;
            shadow.probe(w, o.o_custkey[row] as u64);
            let nk = cust_nation[&o.o_custkey[row]];
            if nk == fr || nk == de {
                t.charge(w, "o_orderkey", row);
                local.insert(o.o_orderkey[row], nk);
            }
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    // Phase 2: cross-nation lineitems shipped 1995-1996.
    type VMap = Map<(i64, i64, i32), i64>; // (supp_nation, cust_nation, year) -> volume
    let volumes: VMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, heap, db| {
            let st = db.table("supplier");
            let supp_nation: Map<i64, i64> = (0..st.nrows())
                .map(|r| {
                    st.charge(w, "s_nationkey", r);
                    (db.data.supplier.s_suppkey[r], db.data.supplier.s_nationkey[r])
                })
                .collect();
            let shadow = ShadowHash::new(w, omap.len());
            for &k in omap.keys() {
                shadow.insert(w, heap, k as u64);
            }
            (supp_nation, shadow)
        },
        |w, _, db, (supp_nation, shadow), row, local: &mut VMap| {
            let t = db.table("lineitem");
            t.charge(w, "l_shipdate", row);
            let li = &db.data.lineitem;
            if li.l_shipdate[row] < lo || li.l_shipdate[row] > hi {
                return;
            }
            t.charge(w, "l_orderkey", row);
            shadow.probe(w, li.l_orderkey[row] as u64);
            let Some(&cnk) = omap.get(&li.l_orderkey[row]) else { return };
            t.charge(w, "l_suppkey", row);
            let snk = supp_nation[&li.l_suppkey[row]];
            let pair_ok = (snk == fr && cnk == de) || (snk == de && cnk == fr);
            if !pair_ok {
                return;
            }
            t.charge(w, "l_extendedprice", row);
            t.charge(w, "l_discount", row);
            let year = dates::year(li.l_shipdate[row]);
            *local.entry((snk, cnk, year)).or_default() +=
                rev(li.l_extendedprice[row], li.l_discount[row]);
        },
        |_, _, _, locals| {
            let mut m = VMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    let mut rows: Vec<Row> = volumes
        .into_iter()
        .map(|((snk, cnk, year), vol)| {
            vec![
                s(db.data.nation.n_name[snk as usize].clone()),
                s(db.data.nation.n_name[cnk as usize].clone()),
                i(year as i64),
                i(vol),
            ]
        })
        .collect();
    rows.sort();
    let n = rows.len();
    finish(sim, heap, ctx, n, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 40);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q8: national market share — BRAZIL's share of AMERICA's ECONOMY
/// ANODIZED STEEL volume, by order year.
pub(super) fn q08(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let lo = dates::parse("1995-01-01")?;
    let hi = dates::parse("1996-12-31")?;
    let brazil: i64 = db
        .data
        .nation
        .n_name
        .iter()
        .position(|n| n == "BRAZIL")
        .map(|r| db.data.nation.n_nationkey[r])
        .expect("BRAZIL exists");
    // Phase 1: 1995-96 orders of AMERICA customers -> (orderkey -> year).
    type OMap = Map<i64, i32>;
    let omap: OMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |w, _, db| {
            let rt = db.table("region");
            let america: i64 = (0..rt.nrows())
                .find(|&r| {
                    rt.charge(w, "r_name", r);
                    db.data.region.r_name[r] == "AMERICA"
                })
                .map(|r| db.data.region.r_regionkey[r])
                .expect("AMERICA exists");
            let nt = db.table("nation");
            let nations: Set<i64> = (0..nt.nrows())
                .filter(|&r| {
                    nt.charge(w, "n_regionkey", r);
                    db.data.nation.n_regionkey[r] == america
                })
                .map(|r| db.data.nation.n_nationkey[r])
                .collect();
            let ct = db.table("customer");
            let custs: Set<i64> = (0..ct.nrows())
                .filter(|&r| {
                    ct.charge(w, "c_nationkey", r);
                    nations.contains(&db.data.customer.c_nationkey[r])
                })
                .map(|r| db.data.customer.c_custkey[r])
                .collect();
            (custs, ShadowHash::new(w, ct.nrows()))
        },
        |w, _, db, (custs, shadow), row, local: &mut OMap| {
            let t = db.table("orders");
            t.charge(w, "o_orderdate", row);
            let o = &db.data.orders;
            if o.o_orderdate[row] < lo || o.o_orderdate[row] > hi {
                return;
            }
            t.charge(w, "o_custkey", row);
            shadow.probe(w, o.o_custkey[row] as u64);
            if custs.contains(&o.o_custkey[row]) {
                t.charge(w, "o_orderkey", row);
                local.insert(o.o_orderkey[row], dates::year(o.o_orderdate[row]));
            }
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    // Phase 2: target-part lineitems, split by supplier nation.
    type VMap = Map<i32, (i64, i64)>; // year -> (brazil volume, total volume)
    let volumes: VMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, heap, db| {
            let pt = db.table("part");
            let parts: Set<i64> = (0..pt.nrows())
                .filter(|&r| {
                    pt.charge(w, "p_type", r);
                    db.data.part.p_type[r] == "ECONOMY ANODIZED STEEL"
                })
                .map(|r| db.data.part.p_partkey[r])
                .collect();
            let st = db.table("supplier");
            let supp_nation: Map<i64, i64> = (0..st.nrows())
                .map(|r| {
                    st.charge(w, "s_nationkey", r);
                    (db.data.supplier.s_suppkey[r], db.data.supplier.s_nationkey[r])
                })
                .collect();
            let shadow = ShadowHash::new(w, omap.len() + parts.len());
            for &k in omap.keys() {
                shadow.insert(w, heap, k as u64);
            }
            (parts, supp_nation, shadow)
        },
        |w, _, db, (parts, supp_nation, shadow), row, local: &mut VMap| {
            let t = db.table("lineitem");
            t.charge(w, "l_partkey", row);
            let li = &db.data.lineitem;
            shadow.probe(w, li.l_partkey[row] as u64);
            if !parts.contains(&li.l_partkey[row]) {
                return;
            }
            t.charge(w, "l_orderkey", row);
            shadow.probe(w, li.l_orderkey[row] as u64);
            let Some(&year) = omap.get(&li.l_orderkey[row]) else { return };
            t.charge(w, "l_suppkey", row);
            t.charge(w, "l_extendedprice", row);
            t.charge(w, "l_discount", row);
            let vol = rev(li.l_extendedprice[row], li.l_discount[row]);
            let e = local.entry(year).or_default();
            if supp_nation[&li.l_suppkey[row]] == brazil {
                e.0 += vol;
            }
            e.1 += vol;
        },
        |_, _, _, locals| {
            let mut m = VMap::default();
            for l in locals {
                for (k, (a, b)) in l {
                    let e = m.entry(k).or_default();
                    e.0 += a;
                    e.1 += b;
                }
            }
            m
        },
    );
    let mut rows: Vec<Row> = volumes
        .into_iter()
        .map(|(year, (bz, total))| {
            let share = if total == 0 { 0 } else { bz * 10_000 / total };
            vec![i(year as i64), i(share)]
        })
        .collect();
    rows.sort();
    let n = rows.len();
    finish(sim, heap, ctx, n, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 16);
        charge_sort(w, n);
    });
    Ok(rows)
}
