//! TPC-H Q9–Q16.

use crate::exec::{charge_sort, maybe_materialize, scan_phase, Map, QueryCtx, Set, ShadowHash, LIKE_CYCLES};
use crate::error::EngineError;
use crate::storage::TpchDb;
use crate::value::{i, s, Row};
use nqp_datagen::tpch::dates;
use nqp_sim::NumaSim;
use nqp_storage::SimHeap;


fn rev(ext: i64, disc: i64) -> i64 {
    ext * (100 - disc) / 100
}

fn finish(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    f: impl FnOnce(&mut nqp_sim::Worker<'_>, &mut SimHeap),
) {
    let mut f = Some(f);
    sim.serial(heap, |w, heap| {
        if let Some(f) = f.take() {
            f(w, heap);
        }
    });
}

/// Q9: product-type profit — profit on `%green%` parts by nation and
/// order year.
pub(super) fn q09(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    // Phase 1: every order's year.
    type OMap = Map<i64, i32>;
    let omap: OMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |_, _, _| (),
        |w, _, db, _, row, local: &mut OMap| {
            let t = db.table("orders");
            t.charge(w, "o_orderkey", row);
            t.charge(w, "o_orderdate", row);
            let o = &db.data.orders;
            local.insert(o.o_orderkey[row], dates::year(o.o_orderdate[row]));
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    // Phase 2: green-part lineitems -> profit by (nation, year).
    type PMap = Map<(i64, i32), i64>;
    let profits: PMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, heap, db| {
            let pt = db.table("part");
            let parts: Set<i64> = (0..pt.nrows())
                .filter(|&r| {
                    pt.charge(w, "p_name", r);
                    w.compute(LIKE_CYCLES);
                    db.data.part.p_name[r].contains("green")
                })
                .map(|r| db.data.part.p_partkey[r])
                .collect();
            let st = db.table("supplier");
            let supp_nation: Map<i64, i64> = (0..st.nrows())
                .map(|r| {
                    st.charge(w, "s_nationkey", r);
                    (db.data.supplier.s_suppkey[r], db.data.supplier.s_nationkey[r])
                })
                .collect();
            let pst = db.table("partsupp");
            let mut cost: Map<(i64, i64), i64> = Map::default();
            for r in 0..pst.nrows() {
                pst.charge(w, "ps_partkey", r);
                let ps = &db.data.partsupp;
                if parts.contains(&ps.ps_partkey[r]) {
                    pst.charge(w, "ps_suppkey", r);
                    pst.charge(w, "ps_supplycost", r);
                    cost.insert((ps.ps_partkey[r], ps.ps_suppkey[r]), ps.ps_supplycost[r]);
                }
            }
            let shadow = ShadowHash::new(w, omap.len() + cost.len());
            for &k in omap.keys() {
                shadow.insert(w, heap, k as u64);
            }
            (parts, supp_nation, cost, shadow)
        },
        |w, _, db, (parts, supp_nation, cost, shadow), row, local: &mut PMap| {
            let t = db.table("lineitem");
            t.charge(w, "l_partkey", row);
            let li = &db.data.lineitem;
            let pk = li.l_partkey[row];
            shadow.probe(w, pk as u64);
            if !parts.contains(&pk) {
                return;
            }
            for col in ["l_suppkey", "l_orderkey", "l_extendedprice", "l_discount", "l_quantity"]
            {
                t.charge(w, col, row);
            }
            let sk = li.l_suppkey[row];
            shadow.probe(w, li.l_orderkey[row] as u64);
            let year = omap[&li.l_orderkey[row]];
            let amount = rev(li.l_extendedprice[row], li.l_discount[row])
                - cost[&(pk, sk)] * li.l_quantity[row];
            *local.entry((supp_nation[&sk], year)).or_default() += amount;
        },
        |_, _, _, locals| {
            let mut m = PMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    let mut rows: Vec<Row> = profits
        .into_iter()
        .map(|((nk, year), p)| {
            vec![s(db.data.nation.n_name[nk as usize].clone()), i(year as i64), i(p)]
        })
        .collect();
    rows.sort_by(|a, b| {
        a[0].as_s()
            .cmp(b[0].as_s())
            .then_with(|| b[1].as_i().cmp(&a[1].as_i()))
    });
    let n = rows.len();
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 32);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q10: returned-item reporting — top 20 customers by Q4-1993 returned
/// revenue.
pub(super) fn q10(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let lo = dates::parse("1993-10-01")?;
    let hi = dates::add_months(lo, 3);
    // Phase 1: Q4-93 orders -> custkey.
    type OMap = Map<i64, i64>;
    let omap: OMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |_, _, _| (),
        |w, _, db, _, row, local: &mut OMap| {
            let t = db.table("orders");
            t.charge(w, "o_orderdate", row);
            let o = &db.data.orders;
            if o.o_orderdate[row] >= lo && o.o_orderdate[row] < hi {
                t.charge(w, "o_orderkey", row);
                t.charge(w, "o_custkey", row);
                local.insert(o.o_orderkey[row], o.o_custkey[row]);
            }
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    // Phase 2: returned lineitems of those orders -> revenue by customer.
    type RMap = Map<i64, i64>;
    let by_cust: RMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, heap, _| {
            let shadow = ShadowHash::new(w, omap.len());
            for &k in omap.keys() {
                shadow.insert(w, heap, k as u64);
            }
            shadow
        },
        |w, heap, db, shadow, row, local: &mut RMap| {
            let t = db.table("lineitem");
            t.charge(w, "l_returnflag", row);
            let li = &db.data.lineitem;
            if li.l_returnflag[row] != "R" {
                return;
            }
            t.charge(w, "l_orderkey", row);
            shadow.probe(w, li.l_orderkey[row] as u64);
            let Some(&ck) = omap.get(&li.l_orderkey[row]) else { return };
            t.charge(w, "l_extendedprice", row);
            t.charge(w, "l_discount", row);
            if !local.contains_key(&ck) {
                heap.alloc(w, 32); // fresh per-customer aggregate state
            }
            *local.entry(ck).or_default() += rev(li.l_extendedprice[row], li.l_discount[row]);
        },
        |_, _, _, locals| {
            let mut m = RMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    let mut entries: Vec<(i64, i64)> = by_cust.into_iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    entries.truncate(20);
    // Output columns join customer and nation (charged per output row).
    let mut rows = Vec::new();
    let mut entries_out = Vec::new();
    let ckey_to_row: Map<i64, usize> = db
        .data
        .customer
        .c_custkey
        .iter()
        .enumerate()
        .map(|(r, &k)| (k, r))
        .collect();
    for (ck, revenue) in entries {
        let r = ckey_to_row[&ck];
        let c = &db.data.customer;
        entries_out.push(r);
        rows.push(vec![
            i(ck),
            s(c.c_name[r].clone()),
            i(revenue),
            i(c.c_acctbal[r]),
            s(db.data.nation.n_name[c.c_nationkey[r] as usize].clone()),
            s(c.c_address[r].clone()),
            s(c.c_phone[r].clone()),
        ]);
    }
    let n = rows.len();
    finish(sim, heap, |w, heap| {
        let ct = db.table("customer");
        for &r in &entries_out {
            for col in ["c_name", "c_acctbal", "c_nationkey", "c_address", "c_phone"] {
                ct.charge(w, col, r);
            }
        }
        maybe_materialize(w, heap, &ctx.profile, n, 96);
        charge_sort(w, n.max(20));
    });
    Ok(rows)
}

/// Q11: important stock — GERMANY's part-supp value concentration.
pub(super) fn q11(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    type VMap = Map<i64, i64>; // partkey -> value (cents)
    let (values, total) = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "partsupp",
        |w, _, db| {
            let nk: i64 = db
                .data
                .nation
                .n_name
                .iter()
                .position(|n| n == "GERMANY")
                .map(|r| db.data.nation.n_nationkey[r])
                .expect("GERMANY exists");
            let st = db.table("supplier");
            let german: Set<i64> = (0..st.nrows())
                .filter(|&r| {
                    st.charge(w, "s_nationkey", r);
                    db.data.supplier.s_nationkey[r] == nk
                })
                .map(|r| db.data.supplier.s_suppkey[r])
                .collect();
            (german, ShadowHash::new(w, 1024))
        },
        |w, _, db, (german, shadow), row, local: &mut VMap| {
            let t = db.table("partsupp");
            t.charge(w, "ps_suppkey", row);
            let ps = &db.data.partsupp;
            shadow.probe(w, ps.ps_suppkey[row] as u64);
            if !german.contains(&ps.ps_suppkey[row]) {
                return;
            }
            t.charge(w, "ps_partkey", row);
            t.charge(w, "ps_supplycost", row);
            t.charge(w, "ps_availqty", row);
            *local.entry(ps.ps_partkey[row]).or_default() +=
                ps.ps_supplycost[row] * ps.ps_availqty[row];
        },
        |_, _, _, locals| {
            let mut m = VMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            let total: i64 = m.values().sum();
            (m, total)
        },
    );
    let mut rows: Vec<Row> = values
        .into_iter()
        .filter(|&(_, v)| v as i128 * 10_000 > total as i128)
        .map(|(pk, v)| vec![i(pk), i(v)])
        .collect();
    rows.sort_by(|a, b| b[1].as_i().cmp(&a[1].as_i()).then_with(|| a[0].as_i().cmp(&b[0].as_i())));
    let n = rows.len();
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 16);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q12: shipping modes and order priority — MAIL/SHIP lineitems received
/// in 1994 that met/missed their dates, split by priority class.
pub(super) fn q12(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let lo = dates::parse("1994-01-01")?;
    let hi = dates::add_years(lo, 1);
    // Phase 1: order priority classes.
    type OMap = Map<i64, bool>; // orderkey -> high priority?
    let omap: OMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |_, _, _| (),
        |w, _, db, _, row, local: &mut OMap| {
            let t = db.table("orders");
            t.charge(w, "o_orderkey", row);
            t.charge(w, "o_orderpriority", row);
            let o = &db.data.orders;
            let high = o.o_orderpriority[row].starts_with("1-")
                || o.o_orderpriority[row].starts_with("2-");
            local.insert(o.o_orderkey[row], high);
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    // Phase 2: qualifying lineitems.
    type CMap = Map<String, (i64, i64)>; // shipmode -> (high, low)
    let counts: CMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, heap, _| {
            let shadow = ShadowHash::new(w, omap.len());
            for &k in omap.keys() {
                shadow.insert(w, heap, k as u64);
            }
            shadow
        },
        |w, _, db, shadow, row, local: &mut CMap| {
            let t = db.table("lineitem");
            t.charge(w, "l_shipmode", row);
            let li = &db.data.lineitem;
            let mode = &li.l_shipmode[row];
            if mode != "MAIL" && mode != "SHIP" {
                return;
            }
            for col in ["l_receiptdate", "l_commitdate", "l_shipdate", "l_orderkey"] {
                t.charge(w, col, row);
            }
            let ok = li.l_receiptdate[row] >= lo
                && li.l_receiptdate[row] < hi
                && li.l_commitdate[row] < li.l_receiptdate[row]
                && li.l_shipdate[row] < li.l_commitdate[row];
            if !ok {
                return;
            }
            shadow.probe(w, li.l_orderkey[row] as u64);
            let high = omap[&li.l_orderkey[row]];
            let e = local.entry(mode.clone()).or_default();
            if high {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        },
        |_, _, _, locals| {
            let mut m = CMap::default();
            for l in locals {
                for (k, (a, b)) in l {
                    let e = m.entry(k).or_default();
                    e.0 += a;
                    e.1 += b;
                }
            }
            m
        },
    );
    let mut rows: Vec<Row> = counts
        .into_iter()
        .map(|(mode, (h, l))| vec![s(mode), i(h), i(l)])
        .collect();
    rows.sort();
    let n = rows.len();
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 32);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q13: customer distribution by order count, excluding
/// `%special%requests%` comments.
pub(super) fn q13(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    // Phase 1: orders per customer (filtered).
    type CMap = Map<i64, i64>;
    let per_cust: CMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |_, _, _| (),
        |w, heap, db, _, row, local: &mut CMap| {
            let t = db.table("orders");
            t.charge(w, "o_comment", row);
            w.compute(LIKE_CYCLES);
            let o = &db.data.orders;
            let c = &o.o_comment[row];
            if let Some(pos) = c.find("special") {
                if c[pos..].contains("requests") {
                    return;
                }
            }
            t.charge(w, "o_custkey", row);
            if !local.contains_key(&o.o_custkey[row]) {
                heap.alloc(w, 32); // fresh per-customer counter
            }
            *local.entry(o.o_custkey[row]).or_default() += 1;
        },
        |_, _, _, locals| {
            let mut m = CMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    // Phase 2: left join customers against the counts, then histogram.
    type HMap = Map<i64, i64>; // c_count -> customer count
    let hist: HMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "customer",
        |w, heap, _| {
            let shadow = ShadowHash::new(w, per_cust.len());
            for &k in per_cust.keys() {
                shadow.insert(w, heap, k as u64);
            }
            shadow
        },
        |w, _, db, shadow, row, local: &mut HMap| {
            let t = db.table("customer");
            t.charge(w, "c_custkey", row);
            let ck = db.data.customer.c_custkey[row];
            shadow.probe(w, ck as u64);
            let count = per_cust.get(&ck).copied().unwrap_or(0);
            *local.entry(count).or_default() += 1;
        },
        |_, _, _, locals| {
            let mut m = HMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    let mut rows: Vec<Row> = hist.into_iter().map(|(c, n)| vec![i(c), i(n)]).collect();
    rows.sort_by(|a, b| b[1].as_i().cmp(&a[1].as_i()).then_with(|| b[0].as_i().cmp(&a[0].as_i())));
    let n = rows.len();
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 16);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q14: promotion effect — PROMO revenue share in 1995-09, scaled 1e4.
pub(super) fn q14(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let lo = dates::parse("1995-09-01")?;
    let hi = dates::add_months(lo, 1);
    let (promo, total) = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, _, db| {
            let pt = db.table("part");
            let promo_parts: Set<i64> = (0..pt.nrows())
                .filter(|&r| {
                    pt.charge(w, "p_type", r);
                    w.compute(LIKE_CYCLES);
                    db.data.part.p_type[r].starts_with("PROMO")
                })
                .map(|r| db.data.part.p_partkey[r])
                .collect();
            (promo_parts, ShadowHash::new(w, 4096))
        },
        |w, _, db, (promo_parts, shadow), row, local: &mut (i64, i64)| {
            let t = db.table("lineitem");
            t.charge(w, "l_shipdate", row);
            let li = &db.data.lineitem;
            if li.l_shipdate[row] < lo || li.l_shipdate[row] >= hi {
                return;
            }
            t.charge(w, "l_partkey", row);
            t.charge(w, "l_extendedprice", row);
            t.charge(w, "l_discount", row);
            shadow.probe(w, li.l_partkey[row] as u64);
            let r = rev(li.l_extendedprice[row], li.l_discount[row]);
            if promo_parts.contains(&li.l_partkey[row]) {
                local.0 += r;
            }
            local.1 += r;
        },
        |_, _, _, locals| {
            locals
                .into_iter()
                .fold((0, 0), |acc, l| (acc.0 + l.0, acc.1 + l.1))
        },
    );
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, 1, 8);
    });
    let share = if total == 0 { 0 } else { (promo as i128 * 10_000 / total as i128) as i64 };
    Ok(vec![vec![i(share)]])
}

/// Q15: top supplier by 1996-Q1 revenue.
pub(super) fn q15(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let lo = dates::parse("1996-01-01")?;
    let hi = dates::add_months(lo, 3);
    type RMap = Map<i64, i64>;
    let by_supp: RMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, _, _| ShadowHash::new(w, 1024),
        |w, heap, db, shadow, row, local: &mut RMap| {
            let t = db.table("lineitem");
            t.charge(w, "l_shipdate", row);
            let li = &db.data.lineitem;
            if li.l_shipdate[row] < lo || li.l_shipdate[row] >= hi {
                return;
            }
            t.charge(w, "l_suppkey", row);
            t.charge(w, "l_extendedprice", row);
            t.charge(w, "l_discount", row);
            let key = li.l_suppkey[row];
            if local.contains_key(&key) {
                shadow.update(w, key as u64);
            } else {
                shadow.insert(w, heap, key as u64);
            }
            *local.entry(key).or_default() +=
                rev(li.l_extendedprice[row], li.l_discount[row]);
        },
        |_, _, _, locals| {
            let mut m = RMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    let max_rev = by_supp.values().copied().max().unwrap_or(0);
    let mut rows: Vec<Row> = Vec::new();
    let skey_to_row: Map<i64, usize> = db
        .data
        .supplier
        .s_suppkey
        .iter()
        .enumerate()
        .map(|(r, &k)| (k, r))
        .collect();
    let mut out_rows = Vec::new();
    for (&sk, &r) in by_supp.iter().filter(|&(_, &r)| r == max_rev).map(|(k, v)| (k, v)).collect::<Vec<_>>() {
        let sr = skey_to_row[&sk];
        let sup = &db.data.supplier;
        out_rows.push(sr);
        rows.push(vec![
            i(sk),
            s(sup.s_name[sr].clone()),
            s(sup.s_address[sr].clone()),
            s(sup.s_phone[sr].clone()),
            i(r),
        ]);
    }
    rows.sort();
    finish(sim, heap, |w, heap| {
        let st = db.table("supplier");
        for &sr in &out_rows {
            for col in ["s_name", "s_address", "s_phone"] {
                st.charge(w, col, sr);
            }
        }
        maybe_materialize(w, heap, &ctx.profile, by_supp.len(), 16);
        charge_sort(w, by_supp.len());
    });
    Ok(rows)
}

/// Q16: parts/supplier relationship — supplier counts per
/// (brand, type, size), with exclusions.
pub(super) fn q16(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    const SIZES: [i64; 8] = [49, 14, 23, 45, 19, 3, 36, 9];
    type GMap = Map<(String, String, i64), Set<i64>>;
    let groups: GMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "partsupp",
        |w, _, db| {
            let pt = db.table("part");
            let parts: Map<i64, usize> = (0..pt.nrows())
                .filter(|&r| {
                    pt.charge(w, "p_brand", r);
                    pt.charge(w, "p_type", r);
                    pt.charge(w, "p_size", r);
                    w.compute(LIKE_CYCLES);
                    let p = &db.data.part;
                    p.p_brand[r] != "Brand#45"
                        && !p.p_type[r].starts_with("MEDIUM POLISHED")
                        && SIZES.contains(&p.p_size[r])
                })
                .map(|r| (db.data.part.p_partkey[r], r))
                .collect();
            let st = db.table("supplier");
            let complainers: Set<i64> = (0..st.nrows())
                .filter(|&r| {
                    st.charge(w, "s_comment", r);
                    w.compute(LIKE_CYCLES);
                    let c = &db.data.supplier.s_comment[r];
                    c.find("Customer")
                        .is_some_and(|pos| c[pos..].contains("Complaints"))
                })
                .map(|r| db.data.supplier.s_suppkey[r])
                .collect();
            (parts, complainers, ShadowHash::new(w, 4096))
        },
        |w, _, db, (parts, complainers, shadow), row, local: &mut GMap| {
            let t = db.table("partsupp");
            t.charge(w, "ps_partkey", row);
            let ps = &db.data.partsupp;
            shadow.probe(w, ps.ps_partkey[row] as u64);
            let Some(&pr) = parts.get(&ps.ps_partkey[row]) else { return };
            t.charge(w, "ps_suppkey", row);
            if complainers.contains(&ps.ps_suppkey[row]) {
                return;
            }
            let p = &db.data.part;
            local
                .entry((p.p_brand[pr].clone(), p.p_type[pr].clone(), p.p_size[pr]))
                .or_default()
                .insert(ps.ps_suppkey[row]);
        },
        |_, _, _, locals| {
            let mut m = GMap::default();
            for l in locals {
                for (k, v) in l {
                    m.entry(k).or_default().extend(v);
                }
            }
            m
        },
    );
    let mut rows: Vec<Row> = groups
        .into_iter()
        .map(|((brand, ptype, size), supps)| {
            vec![s(brand), s(ptype), i(size), i(supps.len() as i64)]
        })
        .collect();
    rows.sort_by(|a, b| {
        b[3].as_i()
            .cmp(&a[3].as_i())
            .then_with(|| a[0].as_s().cmp(b[0].as_s()))
            .then_with(|| a[1].as_s().cmp(b[1].as_s()))
            .then_with(|| a[2].as_i().cmp(&b[2].as_i()))
    });
    let n = rows.len();
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 48);
        charge_sort(w, n);
    });
    Ok(rows)
}
