//! TPC-H Q17–Q22.

use crate::exec::{charge_sort, maybe_materialize, scan_phase, Map, QueryCtx, Set, ShadowHash, LIKE_CYCLES};
use crate::error::EngineError;
use crate::storage::TpchDb;
use crate::value::{d, i, s, Row};
use nqp_datagen::tpch::dates;
use nqp_sim::NumaSim;
use nqp_storage::SimHeap;


fn finish(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    f: impl FnOnce(&mut nqp_sim::Worker<'_>, &mut SimHeap),
) {
    let mut f = Some(f);
    sim.serial(heap, |w, heap| {
        if let Some(f) = f.take() {
            f(w, heap);
        }
    });
}

/// Q17: small-quantity-order revenue — Brand#23 MED BOX lineitems below
/// 20% of the part's average quantity; average yearly loss.
pub(super) fn q17(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    type Stats = Map<i64, (i64, i64, Vec<(i64, i64)>)>; // pk -> (sum qty, count, [(qty, price)])
    let stats: Stats = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, _, db| {
            let pt = db.table("part");
            let parts: Set<i64> = (0..pt.nrows())
                .filter(|&r| {
                    pt.charge(w, "p_brand", r);
                    pt.charge(w, "p_container", r);
                    let p = &db.data.part;
                    p.p_brand[r] == "Brand#23" && p.p_container[r] == "MED BOX"
                })
                .map(|r| db.data.part.p_partkey[r])
                .collect();
            (parts, ShadowHash::new(w, 1024))
        },
        |w, _, db, (parts, shadow), row, local: &mut Stats| {
            let t = db.table("lineitem");
            t.charge(w, "l_partkey", row);
            let li = &db.data.lineitem;
            shadow.probe(w, li.l_partkey[row] as u64);
            if !parts.contains(&li.l_partkey[row]) {
                return;
            }
            t.charge(w, "l_quantity", row);
            t.charge(w, "l_extendedprice", row);
            let e = local.entry(li.l_partkey[row]).or_default();
            e.0 += li.l_quantity[row];
            e.1 += 1;
            e.2.push((li.l_quantity[row], li.l_extendedprice[row]));
        },
        |_, _, _, locals| {
            let mut m = Stats::default();
            for l in locals {
                for (k, (sq, c, v)) in l {
                    let e = m.entry(k).or_default();
                    e.0 += sq;
                    e.1 += c;
                    e.2.extend(v);
                }
            }
            m
        },
    );
    // Items with quantity < 0.2 * avg(quantity) for their part.
    let mut total: i64 = 0;
    for (_, (sum_qty, count, items)) in &stats {
        for &(qty, price) in items {
            // qty < 0.2 * sum/count  <=>  qty * count * 5 < sum
            if qty * count * 5 < *sum_qty {
                total += price;
            }
        }
    }
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, stats.len(), 24);
    });
    // avg_yearly = total / 7.0, in cents.
    Ok(vec![vec![i(total / 7)]])
}

/// Q18: large-volume customers — orders with total quantity over 300.
pub(super) fn q18(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    // Phase 1: total quantity per order.
    type QMap = Map<i64, i64>;
    let qty: QMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, _, _| ShadowHash::new(w, 4096),
        |w, heap, db, shadow, row, local: &mut QMap| {
            let t = db.table("lineitem");
            t.charge(w, "l_orderkey", row);
            t.charge(w, "l_quantity", row);
            let li = &db.data.lineitem;
            let key = li.l_orderkey[row];
            if local.contains_key(&key) {
                shadow.update(w, key as u64);
            } else {
                shadow.insert(w, heap, key as u64);
            }
            *local.entry(key).or_default() += li.l_quantity[row];
        },
        |_, _, _, locals| {
            let mut m = QMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    let big: Map<i64, i64> =
        qty.into_iter().filter(|&(_, q)| q > 300).collect();
    // Phase 2: the qualifying orders, joined with customers.
    type Out = Vec<Row>;
    let rows: Out = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |w, heap, db| {
            let shadow = ShadowHash::new(w, big.len());
            for &k in big.keys() {
                shadow.insert(w, heap, k as u64);
            }
            let ckey_to_row: Map<i64, usize> = db
                .data
                .customer
                .c_custkey
                .iter()
                .enumerate()
                .map(|(r, &k)| (k, r))
                .collect();
            (shadow, ckey_to_row)
        },
        |w, _, db, (shadow, ckey_to_row), row, local: &mut Out| {
            let t = db.table("orders");
            t.charge(w, "o_orderkey", row);
            let o = &db.data.orders;
            shadow.probe(w, o.o_orderkey[row] as u64);
            let Some(&q) = big.get(&o.o_orderkey[row]) else { return };
            for col in ["o_custkey", "o_orderdate", "o_totalprice"] {
                t.charge(w, col, row);
            }
            let cr = ckey_to_row[&o.o_custkey[row]];
            db.table("customer").charge(w, "c_name", cr);
            local.push(vec![
                s(db.data.customer.c_name[cr].clone()),
                i(o.o_custkey[row]),
                i(o.o_orderkey[row]),
                d(o.o_orderdate[row]),
                i(o.o_totalprice[row]),
                i(q),
            ]);
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    let mut rows = rows;
    rows.sort_by(|a, b| {
        b[4].as_i()
            .cmp(&a[4].as_i())
            .then_with(|| a[3].cmp(&b[3]))
            .then_with(|| a[2].as_i().cmp(&b[2].as_i()))
    });
    rows.truncate(100);
    let n = rows.len();
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 64);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q19: discounted revenue — three disjunctive brand/container/quantity
/// clauses over air-shipped, in-person-delivered lineitems.
pub(super) fn q19(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    struct PartInfo {
        brand: String,
        container: String,
        size: i64,
    }
    let total: i64 = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, _, db| {
            let pt = db.table("part");
            let parts: Map<i64, PartInfo> = (0..pt.nrows())
                .map(|r| {
                    pt.charge(w, "p_brand", r);
                    pt.charge(w, "p_container", r);
                    pt.charge(w, "p_size", r);
                    let p = &db.data.part;
                    (
                        p.p_partkey[r],
                        PartInfo {
                            brand: p.p_brand[r].clone(),
                            container: p.p_container[r].clone(),
                            size: p.p_size[r],
                        },
                    )
                })
                .collect();
            (parts, ShadowHash::new(w, db.table("part").nrows()))
        },
        |w, _, db, (parts, shadow), row, local: &mut i64| {
            let t = db.table("lineitem");
            t.charge(w, "l_shipmode", row);
            t.charge(w, "l_shipinstruct", row);
            let li = &db.data.lineitem;
            let mode = &li.l_shipmode[row];
            if (mode != "AIR" && mode != "REG AIR")
                || li.l_shipinstruct[row] != "DELIVER IN PERSON"
            {
                return;
            }
            t.charge(w, "l_partkey", row);
            t.charge(w, "l_quantity", row);
            shadow.probe(w, li.l_partkey[row] as u64);
            let p = &parts[&li.l_partkey[row]];
            let q = li.l_quantity[row];
            let sm = ["SM CASE", "SM BOX", "SM PACK", "SM PKG"];
            let med = ["MED BAG", "MED BOX", "MED PKG", "MED PACK"];
            let lg = ["LG CASE", "LG BOX", "LG PACK", "LG PKG"];
            let hit = (p.brand == "Brand#12"
                && sm.contains(&p.container.as_str())
                && (1..=11).contains(&q)
                && (1..=5).contains(&p.size))
                || (p.brand == "Brand#23"
                    && med.contains(&p.container.as_str())
                    && (10..=20).contains(&q)
                    && (1..=10).contains(&p.size))
                || (p.brand == "Brand#34"
                    && lg.contains(&p.container.as_str())
                    && (20..=30).contains(&q)
                    && (1..=15).contains(&p.size));
            if hit {
                t.charge(w, "l_extendedprice", row);
                t.charge(w, "l_discount", row);
                *local += li.l_extendedprice[row] * (100 - li.l_discount[row]) / 100;
            }
        },
        |_, _, _, locals| locals.into_iter().sum(),
    );
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, 1, 8);
    });
    Ok(vec![vec![i(total)]])
}

/// Q20: potential part promotion — CANADA suppliers holding excess stock
/// of `forest%` parts shipped in 1994.
pub(super) fn q20(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    let lo = dates::parse("1994-01-01")?;
    let hi = dates::add_years(lo, 1);
    // Phase 1: 1994 shipped quantity per (part, supplier) for forest parts.
    type SMap = Map<(i64, i64), i64>;
    let shipped: SMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, _, db| {
            let pt = db.table("part");
            let forest: Set<i64> = (0..pt.nrows())
                .filter(|&r| {
                    pt.charge(w, "p_name", r);
                    w.compute(LIKE_CYCLES);
                    db.data.part.p_name[r].starts_with("forest")
                })
                .map(|r| db.data.part.p_partkey[r])
                .collect();
            (forest, ShadowHash::new(w, 1024))
        },
        |w, _, db, (forest, shadow), row, local: &mut SMap| {
            let t = db.table("lineitem");
            t.charge(w, "l_shipdate", row);
            let li = &db.data.lineitem;
            if li.l_shipdate[row] < lo || li.l_shipdate[row] >= hi {
                return;
            }
            t.charge(w, "l_partkey", row);
            shadow.probe(w, li.l_partkey[row] as u64);
            if !forest.contains(&li.l_partkey[row]) {
                return;
            }
            t.charge(w, "l_suppkey", row);
            t.charge(w, "l_quantity", row);
            *local
                .entry((li.l_partkey[row], li.l_suppkey[row]))
                .or_default() += li.l_quantity[row];
        },
        |_, _, _, locals| {
            let mut m = SMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    // Phase 2: partsupp rows with availqty > half the shipped quantity.
    type Supps = Set<i64>;
    let qualifying: Supps = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "partsupp",
        |w, heap, db| {
            let nk: i64 = db
                .data
                .nation
                .n_name
                .iter()
                .position(|n| n == "CANADA")
                .map(|r| db.data.nation.n_nationkey[r])
                .expect("CANADA exists");
            let st = db.table("supplier");
            let canada: Set<i64> = (0..st.nrows())
                .filter(|&r| {
                    st.charge(w, "s_nationkey", r);
                    db.data.supplier.s_nationkey[r] == nk
                })
                .map(|r| db.data.supplier.s_suppkey[r])
                .collect();
            let shadow = ShadowHash::new(w, shipped.len());
            for &(pk, sk) in shipped.keys() {
                shadow.insert(w, heap, (pk as u64) << 32 | sk as u64);
            }
            (canada, shadow)
        },
        |w, _, db, (canada, shadow), row, local: &mut Supps| {
            let t = db.table("partsupp");
            t.charge(w, "ps_suppkey", row);
            let ps = &db.data.partsupp;
            if !canada.contains(&ps.ps_suppkey[row]) {
                return;
            }
            t.charge(w, "ps_partkey", row);
            t.charge(w, "ps_availqty", row);
            let key = (ps.ps_partkey[row], ps.ps_suppkey[row]);
            shadow.probe(w, (key.0 as u64) << 32 | key.1 as u64);
            let Some(&q) = shipped.get(&key) else { return };
            // availqty > 0.5 * sum(l_quantity)
            if ps.ps_availqty[row] * 2 > q {
                local.insert(ps.ps_suppkey[row]);
            }
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    let skey_to_row: Map<i64, usize> = db
        .data
        .supplier
        .s_suppkey
        .iter()
        .enumerate()
        .map(|(r, &k)| (k, r))
        .collect();
    let mut rows: Vec<Row> = qualifying
        .into_iter()
        .map(|sk| {
            let r = skey_to_row[&sk];
            vec![
                s(db.data.supplier.s_name[r].clone()),
                s(db.data.supplier.s_address[r].clone()),
            ]
        })
        .collect();
    rows.sort();
    let n = rows.len();
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 32);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q21: suppliers who kept orders waiting — SAUDI ARABIA suppliers solely
/// responsible for late multi-supplier 'F' orders.
pub(super) fn q21(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    // Phase 1: per order, the distinct suppliers and the late suppliers.
    #[derive(Default, Clone)]
    struct OrderInfo {
        supps: Vec<i64>,
        late: Vec<i64>,
    }
    type OMap = Map<i64, OrderInfo>;
    let per_order: OMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "lineitem",
        |w, _, _| ShadowHash::new(w, 4096),
        |w, heap, db, shadow, row, local: &mut OMap| {
            let t = db.table("lineitem");
            for col in ["l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"] {
                t.charge(w, col, row);
            }
            let li = &db.data.lineitem;
            let key = li.l_orderkey[row];
            if local.contains_key(&key) {
                shadow.update(w, key as u64);
            } else {
                shadow.insert(w, heap, key as u64);
            }
            let e = local.entry(key).or_default();
            let sk = li.l_suppkey[row];
            if !e.supps.contains(&sk) {
                e.supps.push(sk);
            }
            if li.l_receiptdate[row] > li.l_commitdate[row] && !e.late.contains(&sk) {
                e.late.push(sk);
            }
        },
        |_, _, _, locals| {
            let mut m = OMap::default();
            for l in locals {
                for (k, v) in l {
                    let e = m.entry(k).or_default();
                    for s in v.supps {
                        if !e.supps.contains(&s) {
                            e.supps.push(s);
                        }
                    }
                    for s in v.late {
                        if !e.late.contains(&s) {
                            e.late.push(s);
                        }
                    }
                }
            }
            m
        },
    );
    // Phase 2: 'F' orders where exactly one supplier is late, that
    // supplier is Saudi, and the order has other suppliers.
    type WMap = Map<i64, i64>; // suppkey -> numwait
    let numwait: WMap = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |w, heap, db| {
            let nk: i64 = db
                .data
                .nation
                .n_name
                .iter()
                .position(|n| n == "SAUDI ARABIA")
                .map(|r| db.data.nation.n_nationkey[r])
                .expect("SAUDI ARABIA exists");
            let st = db.table("supplier");
            let saudi: Set<i64> = (0..st.nrows())
                .filter(|&r| {
                    st.charge(w, "s_nationkey", r);
                    db.data.supplier.s_nationkey[r] == nk
                })
                .map(|r| db.data.supplier.s_suppkey[r])
                .collect();
            let shadow = ShadowHash::new(w, per_order.len());
            for &k in per_order.keys() {
                shadow.insert(w, heap, k as u64);
            }
            (saudi, shadow)
        },
        |w, _, db, (saudi, shadow), row, local: &mut WMap| {
            let t = db.table("orders");
            t.charge(w, "o_orderstatus", row);
            let o = &db.data.orders;
            if o.o_orderstatus[row] != "F" {
                return;
            }
            t.charge(w, "o_orderkey", row);
            shadow.probe(w, o.o_orderkey[row] as u64);
            let Some(info) = per_order.get(&o.o_orderkey[row]) else { return };
            if info.late.len() != 1 || info.supps.len() < 2 {
                return;
            }
            let culprit = info.late[0];
            if saudi.contains(&culprit) {
                *local.entry(culprit).or_default() += 1;
            }
        },
        |_, _, _, locals| {
            let mut m = WMap::default();
            for l in locals {
                for (k, v) in l {
                    *m.entry(k).or_default() += v;
                }
            }
            m
        },
    );
    let skey_to_row: Map<i64, usize> = db
        .data
        .supplier
        .s_suppkey
        .iter()
        .enumerate()
        .map(|(r, &k)| (k, r))
        .collect();
    let mut rows: Vec<Row> = numwait
        .into_iter()
        .map(|(sk, n)| vec![s(db.data.supplier.s_name[skey_to_row[&sk]].clone()), i(n)])
        .collect();
    rows.sort_by(|a, b| b[1].as_i().cmp(&a[1].as_i()).then_with(|| a[0].as_s().cmp(b[0].as_s())));
    rows.truncate(100);
    let n = rows.len();
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 24);
        charge_sort(w, n);
    });
    Ok(rows)
}

/// Q22: global sales opportunity — well-funded customers from seven
/// country codes who never ordered.
pub(super) fn q22(
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    ctx: &QueryCtx,
) -> Result<Vec<Row>, EngineError> {
    const CODES: [&str; 7] = ["13", "31", "23", "29", "30", "18", "17"];
    // Phase 1: custkeys that have orders (anti-join side).
    let has_orders: Set<i64> = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "orders",
        |w, _, _| ShadowHash::new(w, 4096),
        |w, heap, db, shadow, row, local: &mut Set<i64>| {
            let t = db.table("orders");
            t.charge(w, "o_custkey", row);
            let ck = db.data.orders.o_custkey[row];
            if local.insert(ck) {
                shadow.insert(w, heap, ck as u64);
            }
        },
        |_, _, _, locals| locals.into_iter().flatten().collect(),
    );
    // Phase 2: candidate customers and the average positive balance.
    type Cands = Vec<(String, i64, i64)>; // (code, custkey, acctbal)
    type Loc = (Cands, i64, i64); // candidates, sum(+bal), count(+bal)
    let (cands, sum_bal, cnt_bal): (Cands, i64, i64) = scan_phase(
        sim,
        heap,
        db,
        ctx,
        "customer",
        |w, _, _| ShadowHash::new(w, has_orders.len()),
        |w, _, db, shadow, row, local: &mut Loc| {
            let t = db.table("customer");
            t.charge(w, "c_phone", row);
            w.compute(LIKE_CYCLES);
            let c = &db.data.customer;
            let code = &c.c_phone[row][0..2];
            if !CODES.contains(&code) {
                return;
            }
            t.charge(w, "c_acctbal", row);
            let bal = c.c_acctbal[row];
            if bal > 0 {
                local.1 += bal;
                local.2 += 1;
            }
            t.charge(w, "c_custkey", row);
            shadow.probe(w, c.c_custkey[row] as u64);
            if !has_orders.contains(&c.c_custkey[row]) {
                local.0.push((code.to_string(), c.c_custkey[row], bal));
            }
        },
        |_, _, _, locals| {
            let mut cands = Cands::new();
            let (mut s, mut c) = (0, 0);
            for (lc, ls, lcnt) in locals {
                cands.extend(lc);
                s += ls;
                c += lcnt;
            }
            (cands, s, c)
        },
    );
    let avg = if cnt_bal == 0 { 0 } else { sum_bal / cnt_bal };
    type GMap = Map<String, (i64, i64)>;
    let mut groups: GMap = GMap::default();
    for (code, _, bal) in cands {
        if bal > avg {
            let e = groups.entry(code).or_default();
            e.0 += 1;
            e.1 += bal;
        }
    }
    let mut rows: Vec<Row> = groups
        .into_iter()
        .map(|(code, (n, total))| vec![s(code), i(n), i(total)])
        .collect();
    rows.sort();
    let n = rows.len();
    finish(sim, heap, |w, heap| {
        maybe_materialize(w, heap, &ctx.profile, n, 24);
        charge_sort(w, n);
    });
    Ok(rows)
}
