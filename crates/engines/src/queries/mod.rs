//! Hand-planned physical plans for TPC-H Q1–Q22.
//!
//! Each query is a composition of [`scan_phase`](crate::exec::scan_phase)
//! passes: pipeline-breaking builds run on worker 0, the big scans are
//! partitioned across workers, and every cell read, hash probe, entry
//! allocation, sort, and (for materialising engines) intermediate buffer
//! is charged to the simulator. Results are exact and profile-invariant.

mod q01_08;
mod q09_16;
mod q17_22;

use crate::error::EngineError;
use crate::exec::QueryCtx;
use crate::profiles::EngineProfile;
use crate::storage::TpchDb;
use crate::value::Row;
use nqp_sim::NumaSim;
use nqp_storage::SimHeap;

/// Number of TPC-H queries.
pub const QUERY_COUNT: usize = 22;

/// Official name of query `qnum` (1-based).
pub fn query_name(qnum: usize) -> &'static str {
    assert!(
        (1..=QUERY_COUNT).contains(&qnum),
        "TPC-H has 22 queries; got Q{qnum}"
    );
    const NAMES: [&str; QUERY_COUNT] = [
        "Pricing Summary Report",
        "Minimum Cost Supplier",
        "Shipping Priority",
        "Order Priority Checking",
        "Local Supplier Volume",
        "Forecasting Revenue Change",
        "Volume Shipping",
        "National Market Share",
        "Product Type Profit Measure",
        "Returned Item Reporting",
        "Important Stock Identification",
        "Shipping Modes and Order Priority",
        "Customer Distribution",
        "Promotion Effect",
        "Top Supplier",
        "Parts/Supplier Relationship",
        "Small-Quantity-Order Revenue",
        "Large Volume Customer",
        "Discounted Revenue",
        "Potential Part Promotion",
        "Suppliers Who Kept Orders Waiting",
        "Global Sales Opportunity",
    ];
    NAMES[qnum - 1]
}

/// Execute query `qnum` (1–22) and return its rows.
///
/// # Panics
/// Panics on an unknown query number or any [`EngineError`]; use
/// [`try_run_query`] to handle failures.
pub fn run_query(
    qnum: usize,
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    profile: &EngineProfile,
    threads: usize,
    engine: nqp_query::EngineKind,
) -> Vec<Row> {
    try_run_query(qnum, sim, heap, db, profile, threads, engine)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Execute query `qnum` (1–22), surfacing plan and simulation failures
/// as a typed [`EngineError`] instead of panicking.
pub fn try_run_query(
    qnum: usize,
    sim: &mut NumaSim,
    heap: &mut SimHeap,
    db: &TpchDb,
    profile: &EngineProfile,
    threads: usize,
    engine: nqp_query::EngineKind,
) -> Result<Vec<Row>, EngineError> {
    let ctx = QueryCtx { profile: profile.clone(), threads, engine };
    match qnum {
        1 => q01_08::q01(sim, heap, db, &ctx),
        2 => q01_08::q02(sim, heap, db, &ctx),
        3 => q01_08::q03(sim, heap, db, &ctx),
        4 => q01_08::q04(sim, heap, db, &ctx),
        5 => q01_08::q05(sim, heap, db, &ctx),
        6 => q01_08::q06(sim, heap, db, &ctx),
        7 => q01_08::q07(sim, heap, db, &ctx),
        8 => q01_08::q08(sim, heap, db, &ctx),
        9 => q09_16::q09(sim, heap, db, &ctx),
        10 => q09_16::q10(sim, heap, db, &ctx),
        11 => q09_16::q11(sim, heap, db, &ctx),
        12 => q09_16::q12(sim, heap, db, &ctx),
        13 => q09_16::q13(sim, heap, db, &ctx),
        14 => q09_16::q14(sim, heap, db, &ctx),
        15 => q09_16::q15(sim, heap, db, &ctx),
        16 => q09_16::q16(sim, heap, db, &ctx),
        17 => q17_22::q17(sim, heap, db, &ctx),
        18 => q17_22::q18(sim, heap, db, &ctx),
        19 => q17_22::q19(sim, heap, db, &ctx),
        20 => q17_22::q20(sim, heap, db, &ctx),
        21 => q17_22::q21(sim, heap, db, &ctx),
        22 => q17_22::q22(sim, heap, db, &ctx),
        other => Err(EngineError::UnknownQuery { qnum: other }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DbSystem, SystemKind};
    use nqp_datagen::tpch::TpchData;
    use nqp_query::WorkloadEnv;
    use nqp_topology::machines;
    use std::collections::HashSet;

    fn boot() -> (DbSystem, TpchData) {
        let data = TpchData::generate(0.003, 33);
        let env = WorkloadEnv::tuned(machines::machine_b()).with_threads(4);
        (DbSystem::boot(SystemKind::QuickstepLike, &env, &data), data)
    }

    #[test]
    fn q2_outputs_only_min_cost_suppliers() {
        let (mut db, data) = boot();
        let rows = db.run(2).rows;
        // Each output part's cost must be the minimum over its EUROPE
        // suppliers; re-derive the minima independently.
        for row in &rows {
            let pk = row[3].as_i();
            let pr = (pk - 1) as usize;
            assert_eq!(data.part.p_size[pr], 15, "wrong part size in Q2 output");
        }
        // Sorted by balance descending.
        for w in rows.windows(2) {
            assert!(w[0][0].as_i() >= w[1][0].as_i(), "Q2 not sorted by acctbal");
        }
    }

    #[test]
    fn q4_counts_are_bounded_by_quarter_orders() {
        let (mut db, data) = boot();
        let rows = db.run(4).rows;
        let lo = nqp_datagen::tpch::dates::parse("1993-07-01").expect("static literal");
        let hi = nqp_datagen::tpch::dates::add_months(lo, 3);
        let in_window = data
            .orders
            .o_orderdate
            .iter()
            .filter(|&&d| d >= lo && d < hi)
            .count() as i64;
        let total: i64 = rows.iter().map(|r| r[1].as_i()).sum();
        assert!(total <= in_window, "Q4 counted orders outside its window");
        assert!(total > 0, "Q4 found no late orders at all");
    }

    #[test]
    fn q11_respects_its_value_threshold() {
        let (mut db, _) = boot();
        let rows = db.run(11).rows;
        if rows.len() >= 2 {
            for w in rows.windows(2) {
                assert!(w[0][1].as_i() >= w[1][1].as_i(), "Q11 not sorted by value");
            }
        }
    }

    #[test]
    fn q13_histogram_covers_every_customer() {
        let (mut db, data) = boot();
        let rows = db.run(13).rows;
        let total: i64 = rows.iter().map(|r| r[1].as_i()).sum();
        assert_eq!(total, data.customer.c_custkey.len() as i64);
    }

    #[test]
    fn q16_counts_distinct_suppliers() {
        let (mut db, data) = boot();
        let rows = db.run(16).rows;
        let nsupp = data.supplier.s_suppkey.len() as i64;
        for row in &rows {
            let count = row[3].as_i();
            assert!(count >= 1 && count <= nsupp);
            assert_ne!(row[0].as_s(), "Brand#45", "excluded brand leaked into Q16");
        }
    }

    #[test]
    fn q18_only_returns_orders_over_the_quantity_threshold() {
        let (mut db, _) = boot();
        for row in db.run(18).rows {
            assert!(row[5].as_i() > 300, "Q18 returned a small order");
        }
    }

    #[test]
    fn q22_customers_have_no_orders() {
        let (mut db, data) = boot();
        let rows = db.run(22).rows;
        let customers_with_orders: HashSet<i64> =
            data.orders.o_custkey.iter().copied().collect();
        // Output is grouped by country code; re-derive the candidate set
        // and confirm the counts never exceed the order-less population.
        let orderless = data
            .customer
            .c_custkey
            .iter()
            .filter(|ck| !customers_with_orders.contains(ck))
            .count() as i64;
        let counted: i64 = rows.iter().map(|r| r[1].as_i()).sum();
        assert!(counted <= orderless, "Q22 counted a customer that has orders");
    }

    #[test]
    fn q21_culprits_are_saudi_suppliers() {
        let (mut db, data) = boot();
        let rows = db.run(21).rows;
        let saudi: HashSet<&String> = data
            .supplier
            .s_nationkey
            .iter()
            .zip(&data.supplier.s_name)
            .filter(|&(&nk, _)| {
                data.nation.n_name[nk as usize] == "SAUDI ARABIA"
            })
            .map(|(_, name)| name)
            .collect();
        for row in &rows {
            assert!(
                saudi.iter().any(|s| s.as_str() == row[0].as_s()),
                "Q21 blamed a non-Saudi supplier"
            );
        }
    }

    #[test]
    fn names_cover_all_queries() {
        for q in 1..=QUERY_COUNT {
            assert!(!query_name(q).is_empty());
        }
        assert_eq!(query_name(1), "Pricing Summary Report");
        assert_eq!(query_name(22), "Global Sales Opportunity");
    }

    #[test]
    #[should_panic(expected = "22 queries")]
    fn query_23_panics() {
        query_name(23);
        // (run_query would panic identically; name lookup panics first
        // via the array index.)
    }

    #[test]
    fn try_run_reports_unknown_queries_as_typed_errors() {
        let (mut db, _) = boot();
        assert_eq!(
            db.try_run(23).expect_err("Q23 does not exist"),
            crate::EngineError::UnknownQuery { qnum: 23 }
        );
        assert_eq!(
            db.try_run(0).expect_err("Q0 does not exist"),
            crate::EngineError::UnknownQuery { qnum: 0 }
        );
        // The system is still usable afterwards.
        assert!(!db.try_run(1).expect("Q1 runs").rows.is_empty());
    }
}
