//! The five database-system architecture profiles of W5.
//!
//! The paper picks these systems for their "significantly divergent
//! architectures"; the profile captures the divergences that matter to
//! NUMA tuning: storage layout, intra-query parallelism, intermediate
//! materialisation (allocation pressure), and interpretation overhead.

/// Base-table storage layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// One contiguous array per column (MonetDB, Quickstep, DBMSx scans).
    Column,
    /// Contiguous heap tuples (PostgreSQL, MySQL).
    Row,
}

/// The five systems of §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Open-source columnar store with full operator-at-a-time
    /// materialisation and worker threads.
    MonetDbLike,
    /// Row store with process-based intra-query parallelism that
    /// sometimes plans only one worker.
    PostgresLike,
    /// Row store executing each query on a single thread, with the
    /// highest per-row interpretation overhead.
    MySqlLike,
    /// Commercial hybrid row/column store with a parallel in-memory
    /// executor.
    DbmsX,
    /// Research hybrid store focused on in-memory analytics: columnar
    /// scans, low overhead, pipelined (non-materialising) execution.
    QuickstepLike,
}

impl SystemKind {
    /// All five, in the paper's order.
    pub const ALL: [SystemKind; 5] = [
        SystemKind::MonetDbLike,
        SystemKind::PostgresLike,
        SystemKind::MySqlLike,
        SystemKind::DbmsX,
        SystemKind::QuickstepLike,
    ];

    /// Display label (Figure 8 legend).
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::MonetDbLike => "MonetDB",
            SystemKind::PostgresLike => "PostgreSQL",
            SystemKind::MySqlLike => "MySQL",
            SystemKind::DbmsX => "DBMSx",
            SystemKind::QuickstepLike => "Quickstep",
        }
    }

    /// The architecture profile for this system.
    pub fn profile(self) -> EngineProfile {
        match self {
            SystemKind::MonetDbLike => EngineProfile {
                system: self,
                layout: Layout::Column,
                materialises: true,
                row_overhead_cycles: 4,
                parallelism: Parallelism::All,
                phase_startup_cycles: 60_000,
                single_worker_queries: &[],
            },
            SystemKind::PostgresLike => EngineProfile {
                system: self,
                layout: Layout::Row,
                materialises: false,
                row_overhead_cycles: 12,
                parallelism: Parallelism::Capped(8),
                // Worker processes fork per query phase.
                phase_startup_cycles: 1_500_000,
                // Nested plans the planner runs on one worker.
                single_worker_queries: &[2, 11, 13, 15, 17, 20, 21, 22],
            },
            SystemKind::MySqlLike => EngineProfile {
                system: self,
                layout: Layout::Row,
                materialises: false,
                row_overhead_cycles: 20,
                parallelism: Parallelism::Single,
                phase_startup_cycles: 80_000,
                single_worker_queries: &[],
            },
            SystemKind::DbmsX => EngineProfile {
                system: self,
                layout: Layout::Column,
                materialises: false,
                row_overhead_cycles: 6,
                parallelism: Parallelism::All,
                phase_startup_cycles: 60_000,
                single_worker_queries: &[],
            },
            SystemKind::QuickstepLike => EngineProfile {
                system: self,
                layout: Layout::Column,
                materialises: false,
                row_overhead_cycles: 3,
                parallelism: Parallelism::All,
                phase_startup_cycles: 40_000,
                single_worker_queries: &[],
            },
        }
    }
}

/// How many workers a system throws at one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Every hardware thread the environment grants.
    All,
    /// Process-pool systems cap their per-query workers.
    Capped(usize),
    /// Single-threaded query execution.
    Single,
}

/// Architecture parameters of one system (see [`SystemKind::profile`]).
#[derive(Debug, Clone)]
pub struct EngineProfile {
    /// Which system this profiles.
    pub system: SystemKind,
    /// Base-table layout.
    pub layout: Layout,
    /// Operator-at-a-time full materialisation of intermediates
    /// (MonetDB): every operator writes its result through the allocator.
    pub materialises: bool,
    /// Interpretation overhead per row visited.
    pub row_overhead_cycles: u64,
    /// Worker policy.
    pub parallelism: Parallelism,
    /// Fixed per-phase coordination cost (worker processes must be
    /// launched and handed the plan — expensive for process pools).
    pub phase_startup_cycles: u64,
    /// Queries this system's planner refuses to parallelise (the
    /// PostgreSQL quirk §IV-E blames for its inconsistent gains).
    pub single_worker_queries: &'static [usize],
}

impl EngineProfile {
    /// Worker threads used on a machine granting `available` threads.
    pub fn worker_threads(&self, available: usize) -> usize {
        match self.parallelism {
            Parallelism::All => available.max(1),
            Parallelism::Capped(cap) => available.min(cap).max(1),
            Parallelism::Single => 1,
        }
    }

    /// Worker threads for a *specific* query — applies the planner's
    /// single-worker quirks.
    pub fn worker_threads_for(&self, qnum: usize, available: usize) -> usize {
        if self.single_worker_queries.contains(&qnum) {
            1
        } else {
            self.worker_threads(available)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_distinct_profiles() {
        assert_eq!(SystemKind::ALL.len(), 5);
        let labels: std::collections::HashSet<&str> =
            SystemKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn worker_policies() {
        assert_eq!(SystemKind::MonetDbLike.profile().worker_threads(16), 16);
        assert_eq!(SystemKind::PostgresLike.profile().worker_threads(16), 8);
        assert_eq!(SystemKind::MySqlLike.profile().worker_threads(16), 1);
        assert_eq!(SystemKind::QuickstepLike.profile().worker_threads(2), 2);
    }

    #[test]
    fn only_monetdb_materialises() {
        for s in SystemKind::ALL {
            assert_eq!(s.profile().materialises, s == SystemKind::MonetDbLike);
        }
    }

    #[test]
    fn row_stores_are_pg_and_mysql() {
        for s in SystemKind::ALL {
            let row = matches!(s.profile().layout, Layout::Row);
            assert_eq!(
                row,
                matches!(s, SystemKind::PostgresLike | SystemKind::MySqlLike)
            );
        }
    }
}
