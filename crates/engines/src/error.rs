//! Typed errors for the W5 engine: what used to be scattered
//! `expect`/panic sites in query plans.

use nqp_datagen::tpch::dates::DateError;
use nqp_sim::SimError;
use std::fmt;

/// Why a query failed to plan or execute.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A date literal in the plan failed to parse or construct.
    Date(DateError),
    /// The simulator faulted (capacity, injected failure, timeout).
    Sim(SimError),
    /// Query number outside 1–22.
    UnknownQuery {
        /// The number that was requested.
        qnum: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Date(e) => write!(f, "bad date literal in plan: {e}"),
            EngineError::Sim(e) => write!(f, "simulation fault during query: {e}"),
            EngineError::UnknownQuery { qnum } => {
                write!(f, "TPC-H has 22 queries; got Q{qnum}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Date(e) => Some(e),
            EngineError::Sim(e) => Some(e),
            EngineError::UnknownQuery { .. } => None,
        }
    }
}

impl From<DateError> for EngineError {
    fn from(e: DateError) -> Self {
        EngineError::Date(e)
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError =
            nqp_datagen::tpch::dates::parse("nope").expect_err("malformed").into();
        assert!(matches!(e, EngineError::Date(_)));
        assert!(e.to_string().contains("date literal"));
        let e: EngineError = SimError::OutOfMemory { node: 0, requested_pages: 1 }.into();
        assert!(e.to_string().contains("simulation fault"));
        assert!(EngineError::UnknownQuery { qnum: 23 }.to_string().contains("22 queries"));
    }
}
