//! Workload W5: a mini relational engine running all 22 TPC-H queries
//! under five *system architecture profiles* that mirror the databases
//! the paper evaluates (MonetDB, PostgreSQL, MySQL, DBMSx, Quickstep).
//!
//! # Execution & cost model
//!
//! Query *results* are computed exactly, on host-side data, so every
//! profile must return identical rows (a strong cross-check used by the
//! tests). Query *costs* are charged to the NUMA simulator through a
//! shadow of each physical actor:
//!
//! * base table columns/rows live in mapped simulated memory; scans
//!   touch them with the layout's real stride (row stores drag whole
//!   tuples through the cache, column stores only the used columns);
//! * hash joins and aggregations touch a shadow table region and
//!   allocate entries from the profile's [`SimHeap`] allocator;
//! * materialising engines (MonetDB-style) write out intermediate
//!   results, which is what makes them allocator-sensitive (Figure 9);
//! * parallelism follows the profile: partitioned scans across worker
//!   threads, pipeline-breaking builds on thread 0.
//!
//! This layering (exact values, shadowed costs) is documented in
//! DESIGN.md; workloads W1–W4 are fully simulator-resident instead.

mod error;
mod exec;
mod profiles;
mod queries;
mod storage;
mod value;

pub use error::EngineError;
pub use exec::{QueryCtx, ShadowHash};
pub use profiles::{EngineProfile, Layout, SystemKind};
pub use queries::{query_name, run_query, try_run_query, QUERY_COUNT};
pub use storage::TpchDb;
pub use value::{Row, Value};

use nqp_query::WorkloadEnv;
use nqp_sim::NumaSim;
use nqp_storage::SimHeap;

/// Outcome of one query execution.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Simulated cycles of the (warm) query execution.
    pub latency_cycles: u64,
    /// The result rows (identical across profiles by construction).
    pub rows: Vec<Row>,
}

/// A database system instance: one engine profile bound to one simulated
/// machine environment, with TPC-H data loaded.
pub struct DbSystem {
    sim: NumaSim,
    heap: SimHeap,
    db: TpchDb,
    profile: EngineProfile,
    threads: usize,
    engine: nqp_query::EngineKind,
}

impl DbSystem {
    /// Boot `system` under `env` and load the given TPC-H data into
    /// simulated storage (charged, but not part of query latencies —
    /// the paper measures warm runs).
    pub fn boot(system: SystemKind, env: &WorkloadEnv, data: &nqp_datagen::tpch::TpchData) -> Self {
        let profile = system.profile();
        // A database server is long-running: its scheduler placement has
        // settled by the time queries are measured.
        let mut sim = NumaSim::new(env.sim.clone().with_settled_scheduler(true));
        let mut heap = SimHeap::new(env.allocator, &mut sim);
        let threads = profile.worker_threads(env.threads);
        let db = TpchDb::load(&mut sim, &mut heap, data, profile.layout, threads);
        DbSystem { sim, heap, db, profile, threads, engine: env.engine }
    }

    /// Run TPC-H query `qnum` (1–22): one untimed cold run has already
    /// happened implicitly via the load; this measures a warm run.
    ///
    /// # Panics
    /// Panics on any [`EngineError`]; use [`DbSystem::try_run`] to
    /// handle unknown query numbers or simulation faults.
    pub fn run(&mut self, qnum: usize) -> QueryOutcome {
        self.try_run(qnum).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`DbSystem::run`].
    pub fn try_run(&mut self, qnum: usize) -> Result<QueryOutcome, EngineError> {
        let before = self.sim.now_cycles();
        let workers = self.profile.worker_threads_for(qnum, self.threads);
        let rows = try_run_query(
            qnum,
            &mut self.sim,
            &mut self.heap,
            &self.db,
            &self.profile,
            workers,
            self.engine,
        )?;
        Ok(QueryOutcome { latency_cycles: self.sim.now_cycles() - before, rows })
    }

    /// Cumulative simulator counters (for diagnostics).
    pub fn counters(&self) -> nqp_sim::Counters {
        self.sim.counters()
    }

    /// The profile this system runs.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Worker threads the profile chose for this machine.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_datagen::tpch::TpchData;
    use nqp_topology::machines;

    #[test]
    fn all_profiles_agree_on_every_query() {
        let data = TpchData::generate(0.002, 11);
        let env = WorkloadEnv::tuned(machines::machine_b()).with_threads(4);
        let mut reference: Vec<Vec<Row>> = Vec::new();
        for (si, system) in SystemKind::ALL.into_iter().enumerate() {
            let mut db = DbSystem::boot(system, &env, &data);
            for q in 1..=QUERY_COUNT {
                let out = db.run(q);
                if si == 0 {
                    reference.push(out.rows);
                } else {
                    assert_eq!(
                        out.rows,
                        reference[q - 1],
                        "{system:?} diverged from {:?} on Q{q}",
                        SystemKind::ALL[0]
                    );
                }
                assert!(out.latency_cycles > 0, "{system:?} Q{q} zero latency");
            }
        }
    }

    #[test]
    fn queries_are_deterministic() {
        let data = TpchData::generate(0.002, 12);
        let env = WorkloadEnv::tuned(machines::machine_b()).with_threads(2);
        let run = || {
            let mut db = DbSystem::boot(SystemKind::MonetDbLike, &env, &data);
            (1..=QUERY_COUNT).map(|q| db.run(q).latency_cycles).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn vectorized_engine_returns_identical_rows() {
        // The tuple path is the differential oracle: the vectorized
        // profile runner must produce the same rows on every query, and
        // must be strictly cheaper (the amortised per-row overhead).
        let data = TpchData::generate(0.002, 13);
        let tuple_env = WorkloadEnv::tuned(machines::machine_b()).with_threads(4);
        let vec_env = tuple_env.clone().with_engine(nqp_query::EngineKind::Vectorized);
        let mut t = DbSystem::boot(SystemKind::MonetDbLike, &tuple_env, &data);
        let mut v = DbSystem::boot(SystemKind::MonetDbLike, &vec_env, &data);
        let mut tuple_total = 0u64;
        let mut vec_total = 0u64;
        for q in 1..=QUERY_COUNT {
            let a = t.run(q);
            let b = v.run(q);
            assert_eq!(a.rows, b.rows, "engines diverged on Q{q}");
            tuple_total += a.latency_cycles;
            vec_total += b.latency_cycles;
        }
        assert!(
            vec_total < tuple_total,
            "vectorized ({vec_total}) should beat tuple ({tuple_total})"
        );
    }

    #[test]
    fn profile_runs_are_byte_identical_at_every_shard_count() {
        // The TPC-H loads shard across host threads; latencies and rows
        // must not move with the shard count (the PR-8 invariant,
        // extended into the engine-profile runners).
        let data = TpchData::generate(0.002, 14);
        let run = |shards: usize, engine: nqp_query::EngineKind| {
            let mut env = WorkloadEnv::tuned(machines::machine_b())
                .with_threads(4)
                .with_engine(engine);
            env.sim = env.sim.with_shards(shards);
            let mut db = DbSystem::boot(SystemKind::QuickstepLike, &env, &data);
            (1..=QUERY_COUNT)
                .map(|q| {
                    let out = db.run(q);
                    (out.latency_cycles, out.rows)
                })
                .collect::<Vec<_>>()
        };
        for engine in [nqp_query::EngineKind::Tuple, nqp_query::EngineKind::Vectorized] {
            let one = run(1, engine);
            assert_eq!(one, run(2, engine), "{engine:?} diverged at 2 shards");
            assert_eq!(one, run(4, engine), "{engine:?} diverged at 4 shards");
        }
    }
}
