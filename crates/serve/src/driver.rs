//! The open-loop serve driver: a deterministic discrete-event
//! simulation of multi-tenant sessions against calibrated engine
//! profiles.
//!
//! Everything runs on the model clock. Events (arrivals, phase
//! completions, epoch ticks, outage edges) live in a binary heap keyed
//! by `(cycle, sequence)`, where the sequence number is assigned at
//! push time — pushes are themselves deterministic, so ties break the
//! same way on every run, every platform, and across kill-and-resume.
//!
//! Admission pipeline, in order, for each arrival:
//!
//! 1. **circuit breaker** — a tenant whose breaker is open is shed
//!    outright; the open window reuses
//!    [`RetryPolicy::backoff_cycles`]'s doubling schedule, escalating
//!    per re-open, and the breaker re-arms half-open on expiry (one
//!    more shed re-trips it),
//! 2. **token bucket** — integer milli-tokens, lazily refilled from
//!    the model clock; an empty bucket sheds the arrival as over-quota,
//! 3. **shedding ladder** — level 1 (queues half full in aggregate)
//!    rejects the newest arrival to any half-full tenant queue; level 2
//!    (three-quarters full) also rejects tenants over their fair share;
//!    level 3 (near-full or node outage) admits but degrades service to
//!    sampled answers. The ladder is boosted one level for an epoch
//!    after any epoch that saw deadline timeouts,
//! 4. **bounded queue** — a full tenant queue sheds the newest arrival.
//!
//! Deadlines are cooperative, mirroring the engine hook
//! (`SimConfig::deadline_cycles`): a query past its deadline abandons
//! at the next phase boundary and the cycles it burned stay charged to
//! `wasted_cycles`; a query whose deadline expired while still queued
//! is timed out at dispatch without burning anything.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::collections::VecDeque;

use nqp_advisor::CircuitBreaker;
use nqp_core::runner::RetryPolicy;
use nqp_sim::SimResult;

use crate::arrival::{ArrivalGen, SplitMix};
use crate::histogram::LatencyHistogram;
use crate::report::{CellStats, EpochRow, ServeReport, Session, TenantStats};
use crate::spec::{CellInput, ClassProfile, ServeAdvisor, ServeOutcome, ServeSpec, MCYCLE};

/// Discrete events, ordered by the heap key `(cycle, seq)` — the
/// variant order here is never used for tie-breaking.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Arrival { idx: usize },
    PhaseDone { lane: usize },
    EpochTick,
    OutageStart,
    OutageEnd,
}

/// A query occupying a service lane.
#[derive(Debug, Clone)]
struct Running {
    tenant: usize,
    class: usize,
    /// Phase costs cached at start (healthy/degraded, possibly
    /// sampled) — an outage mid-query does not reshape a running plan.
    phases: Vec<u64>,
    phase_idx: usize,
    arrival_cycle: u64,
    start_cycle: u64,
    sampled: bool,
}

#[derive(Debug, Default)]
struct TenantState {
    queue: VecDeque<usize>,
    tokens_milli: u64,
    last_refill: u64,
    consec_rejects: u64,
    breaker_open_until: u64,
    breaker_opens: u32,
    stats: TenantStats,
}

#[derive(Debug, Default, Clone, Copy)]
struct EpochAcc {
    arrivals: u64,
    admitted: u64,
    completed: u64,
    shed: u64,
    timeouts: u64,
    slo_ok: u64,
}

impl EpochAcc {
    fn is_empty(&self) -> bool {
        self.arrivals == 0
            && self.admitted == 0
            && self.completed == 0
            && self.shed == 0
            && self.timeouts == 0
    }
}

struct Serve<'a> {
    spec: &'a ServeSpec,
    profiles: &'a [ClassProfile],
    breaker: RetryPolicy,
    now: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    arrivals: Vec<(u64, usize, usize)>,
    tenants: Vec<TenantState>,
    lanes: Vec<Option<Running>>,
    rr_cursor: usize,
    depth: u64,
    max_depth: u64,
    outage_active: bool,
    /// The outage's placement residue: evacuated pages still sit on the
    /// surviving nodes, so queries pay degraded per-phase costs. The
    /// node coming back does not clear this — only a re-tune does.
    impaired: bool,
    /// Post-outage re-arm breaker (`--advisor online`); `None` = static.
    advisor: Option<CircuitBreaker>,
    /// When the advisor re-homed the residue (0 = never).
    retune_cycles: u64,
    boost: bool,
    epoch: EpochAcc,
    hist: LatencyHistogram,
    wasted_cycles: u64,
    evacuated_pages: u64,
    epochs: Vec<EpochRow>,
    sessions: Option<Vec<Session>>,
}

impl Serve<'_> {
    fn push(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, ev)));
    }

    /// Current shedding-ladder level (0–3).
    fn ladder_level(&self) -> u8 {
        let cap = (self.spec.tenants * self.spec.queue_cap) as u64;
        let mut level = if self.outage_active || self.depth >= cap * 15 / 16 {
            3
        } else if self.depth * 4 >= cap * 3 {
            2
        } else if self.depth * 2 >= cap {
            1
        } else {
            0
        };
        if self.boost {
            level = (level + 1).min(3);
        }
        level
    }

    fn refill_tokens(&mut self, tenant: usize) {
        let t = &mut self.tenants[tenant];
        let dt = self.now.saturating_sub(t.last_refill);
        let gained =
            (dt as u128 * self.spec.refill_milli_per_mcycle as u128 / MCYCLE as u128) as u64;
        t.tokens_milli = t.tokens_milli.saturating_add(gained).min(self.spec.bucket_cap * 1000);
        t.last_refill = self.now;
    }

    fn record_session(&mut self, s: Session) {
        if let Some(v) = self.sessions.as_mut() {
            v.push(s);
        }
    }

    fn shed(&mut self, idx: usize, outcome: ServeOutcome) {
        let (at, tenant, class) = self.arrivals[idx];
        {
            let t = &mut self.tenants[tenant];
            match outcome {
                ServeOutcome::ShedQueue => t.stats.shed_queue += 1,
                ServeOutcome::ShedQuota => t.stats.shed_quota += 1,
                ServeOutcome::ShedBreaker => t.stats.shed_breaker += 1,
                _ => {}
            }
            t.consec_rejects += 1;
            if t.consec_rejects >= self.spec.breaker_threshold
                && self.now >= t.breaker_open_until
            {
                t.breaker_opens += 1;
                let hold = self.breaker.backoff_cycles(t.breaker_opens.saturating_sub(1));
                t.breaker_open_until = self.now.saturating_add(hold);
                // Half-open on expiry: one more shed re-trips.
                t.consec_rejects = self.spec.breaker_threshold.saturating_sub(1);
            }
        }
        self.epoch.shed += 1;
        self.record_session(Session {
            tenant,
            class,
            lane: usize::MAX,
            arrival: at,
            start: at,
            end: self.now,
            outcome,
            burned: 0,
        });
    }

    fn on_arrival(&mut self, idx: usize) {
        let (_, tenant, _) = self.arrivals[idx];
        self.tenants[tenant].stats.arrivals += 1;
        self.epoch.arrivals += 1;

        // 1. circuit breaker
        if self.now < self.tenants[tenant].breaker_open_until {
            self.shed(idx, ServeOutcome::ShedBreaker);
            return;
        }
        // 2. token bucket
        self.refill_tokens(tenant);
        if self.tenants[tenant].tokens_milli < 1000 {
            self.shed(idx, ServeOutcome::ShedQuota);
            return;
        }
        // 3. shedding ladder
        let level = self.ladder_level();
        let qlen = self.tenants[tenant].queue.len();
        if level >= 1 && qlen * 2 >= self.spec.queue_cap {
            self.shed(idx, ServeOutcome::ShedQueue);
            return;
        }
        if level >= 2
            && self.depth > 0
            && (qlen as u64) * (self.spec.tenants as u64) > self.depth
        {
            self.shed(idx, ServeOutcome::ShedQuota);
            return;
        }
        // 4. bounded queue
        if qlen >= self.spec.queue_cap {
            self.shed(idx, ServeOutcome::ShedQueue);
            return;
        }

        let t = &mut self.tenants[tenant];
        t.tokens_milli -= 1000;
        t.consec_rejects = 0;
        t.stats.admitted += 1;
        t.queue.push_back(idx);
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        self.epoch.admitted += 1;
        self.dispatch();
    }

    /// Fill free lanes round-robin across tenants with queued work.
    fn dispatch(&mut self) {
        let deadline = self.spec.deadline_mcycles * MCYCLE;
        'lanes: for lane in 0..self.lanes.len() {
            if self.lanes[lane].is_some() {
                continue;
            }
            loop {
                // Next nonempty tenant queue after the cursor.
                let mut pick = None;
                for off in 0..self.spec.tenants {
                    let tn = (self.rr_cursor + off) % self.spec.tenants;
                    if !self.tenants[tn].queue.is_empty() {
                        pick = Some(tn);
                        break;
                    }
                }
                let Some(tn) = pick else { break 'lanes };
                self.rr_cursor = (tn + 1) % self.spec.tenants;
                let Some(idx) = self.tenants[tn].queue.pop_front() else {
                    break 'lanes;
                };
                self.depth -= 1;
                let (at, tenant, class) = self.arrivals[idx];
                if self.now >= at.saturating_add(deadline) {
                    // Expired while queued: timed out without burning
                    // a single engine cycle.
                    self.tenants[tenant].stats.timeouts += 1;
                    self.epoch.timeouts += 1;
                    self.record_session(Session {
                        tenant,
                        class,
                        lane: usize::MAX,
                        arrival: at,
                        start: self.now,
                        end: self.now,
                        outcome: ServeOutcome::Timeout,
                        burned: 0,
                    });
                    continue;
                }
                let sampled = self.ladder_level() >= 3;
                let profile = &self.profiles[class];
                let src = if self.impaired { &profile.degraded } else { &profile.healthy };
                let phases: Vec<u64> = src
                    .iter()
                    .map(|(_, c)| if sampled { (c / 8).max(1) } else { *c })
                    .collect();
                let first = phases.first().copied().unwrap_or(1);
                self.lanes[lane] = Some(Running {
                    tenant,
                    class,
                    phases,
                    phase_idx: 0,
                    arrival_cycle: at,
                    start_cycle: self.now,
                    sampled,
                });
                self.push(self.now.saturating_add(first), Ev::PhaseDone { lane });
                continue 'lanes;
            }
        }
    }

    fn on_phase_done(&mut self, lane: usize) {
        let Some(mut r) = self.lanes[lane].take() else { return };
        r.phase_idx += 1;
        let deadline = self.spec.deadline_mcycles * MCYCLE;
        let burned = self.now - r.start_cycle;
        if r.phase_idx < r.phases.len() {
            if self.now >= r.arrival_cycle.saturating_add(deadline) {
                // Cooperative abandon at the phase boundary; cycles
                // burned stay charged.
                self.wasted_cycles += burned;
                self.tenants[r.tenant].stats.timeouts += 1;
                self.epoch.timeouts += 1;
                self.record_session(Session {
                    tenant: r.tenant,
                    class: r.class,
                    lane,
                    arrival: r.arrival_cycle,
                    start: r.start_cycle,
                    end: self.now,
                    outcome: ServeOutcome::Timeout,
                    burned,
                });
                self.dispatch();
                return;
            }
            let next = r.phases[r.phase_idx];
            self.lanes[lane] = Some(r);
            self.push(self.now.saturating_add(next), Ev::PhaseDone { lane });
            return;
        }
        // Final phase: the query completes even if late.
        let latency = self.now - r.arrival_cycle;
        self.hist.record(latency);
        let stats = &mut self.tenants[r.tenant].stats;
        stats.completed += 1;
        self.epoch.completed += 1;
        let outcome = if r.sampled {
            stats.degraded += 1;
            ServeOutcome::Degraded
        } else if latency <= deadline {
            stats.slo_ok += 1;
            self.epoch.slo_ok += 1;
            ServeOutcome::Completed
        } else {
            ServeOutcome::Late
        };
        self.record_session(Session {
            tenant: r.tenant,
            class: r.class,
            lane,
            arrival: r.arrival_cycle,
            start: r.start_cycle,
            end: self.now,
            outcome,
            burned,
        });
        self.dispatch();
    }

    fn work_pending(&self, next_arrival_exists: bool) -> bool {
        next_arrival_exists
            || self.depth > 0
            || self.lanes.iter().any(Option::is_some)
    }

    fn flush_epoch(&mut self) {
        let acc = self.epoch;
        self.epoch = EpochAcc::default();
        self.boost = acc.timeouts > 0;
        self.epochs.push(EpochRow {
            t_cycles: self.now,
            arrivals: acc.arrivals,
            admitted: acc.admitted,
            completed: acc.completed,
            shed: acc.shed,
            timeouts: acc.timeouts,
            slo_ok: acc.slo_ok,
            depth: self.depth,
            level: u64::from(self.ladder_level()),
        });
    }
}

/// SLO attainment (permille of arrivals) over the epoch rows `keep`
/// selects; 0 when the window saw no arrivals, clamped at 1000 (a
/// completion's credit lands in its completion epoch, which at window
/// edges can differ from its arrival epoch).
fn slo_window_permille(epochs: &[EpochRow], keep: impl Fn(&EpochRow) -> bool) -> u64 {
    let (mut ok, mut arrivals) = (0u64, 0u64);
    for e in epochs.iter().filter(|e| keep(e)) {
        ok += e.slo_ok;
        arrivals += e.arrivals;
    }
    (ok * 1000).checked_div(arrivals).map_or(0, |p| p.min(1000))
}

/// Run one serve cell to completion (arrivals stop at the spec
/// duration; queued and running work drains after). Pure function of
/// `(spec, profiles)`. Errors only on an invalid arrival spec — the
/// generator re-validates, so specs that bypassed `parse` cannot reach
/// the arithmetic that used to panic on them.
pub fn run_serve(
    config: &str,
    spec: &ServeSpec,
    profiles: &[ClassProfile],
    record_sessions: bool,
) -> SimResult<(CellStats, Vec<Session>)> {
    let duration = spec.duration_mcycles * MCYCLE;
    let nclasses = profiles.len().max(1);

    // All arrival times, tenants, and classes are fixed upfront from
    // the seed — the admission pipeline cannot perturb them.
    let mut gen = ArrivalGen::new(spec.arrivals.clone(), spec.seed, 0)?;
    let mut trng = SplitMix::new(spec.seed, 1);
    let mut crng = SplitMix::new(spec.seed, 2);
    let mut arrivals = Vec::new();
    while let Some(at) = gen.next_arrival() {
        if at >= duration || arrivals.len() >= 4_000_000 {
            break;
        }
        let tenant = (trng.next_u64() % spec.tenants as u64) as usize;
        let class = (crng.next_u64() % nclasses as u64) as usize;
        arrivals.push((at, tenant, class));
    }

    let mut s = Serve {
        spec,
        profiles,
        breaker: RetryPolicy {
            max_retries: 0,
            backoff_base_cycles: spec.epoch_mcycles * MCYCLE,
        },
        now: 0,
        seq: 0,
        heap: BinaryHeap::new(),
        arrivals,
        tenants: (0..spec.tenants).map(|_| TenantState::default()).collect(),
        lanes: vec![None; spec.lanes],
        rr_cursor: 0,
        depth: 0,
        max_depth: 0,
        outage_active: false,
        impaired: false,
        advisor: match spec.advisor {
            ServeAdvisor::Static => None,
            ServeAdvisor::Online { rearm_after } => Some(CircuitBreaker::new(rearm_after)),
        },
        retune_cycles: 0,
        boost: false,
        epoch: EpochAcc::default(),
        hist: LatencyHistogram::new(),
        wasted_cycles: 0,
        evacuated_pages: 0,
        epochs: Vec::new(),
        sessions: record_sessions.then(Vec::new),
    };
    // Tenants start with full buckets.
    for t in &mut s.tenants {
        t.tokens_milli = spec.bucket_cap * 1000;
    }

    if !s.arrivals.is_empty() {
        s.push(s.arrivals[0].0, Ev::Arrival { idx: 0 });
    }
    s.push(spec.epoch_mcycles * MCYCLE, Ev::EpochTick);
    if let Some(o) = spec.outage {
        s.push(o.start_mcycles * MCYCLE, Ev::OutageStart);
        s.push(o.end_mcycles * MCYCLE, Ev::OutageEnd);
    }

    let mut next_arrival = if s.arrivals.is_empty() { None } else { Some(0usize) };
    while let Some(Reverse((at, _, ev))) = s.heap.pop() {
        s.now = at;
        match ev {
            Ev::Arrival { idx } => {
                let next = idx + 1;
                if next < s.arrivals.len() {
                    s.push(s.arrivals[next].0, Ev::Arrival { idx: next });
                    next_arrival = Some(next);
                } else {
                    next_arrival = None;
                }
                s.on_arrival(idx);
            }
            Ev::PhaseDone { lane } => s.on_phase_done(lane),
            Ev::EpochTick => {
                s.flush_epoch();
                // A frozen advisor watches each tick for quiet; enough
                // consecutive quiet epochs re-arm it, and the re-arm is
                // the re-tune that re-homes the evacuated pages.
                if let Some(b) = s.advisor.as_mut() {
                    if b.is_frozen() && b.observe(!s.outage_active) {
                        s.impaired = false;
                        s.retune_cycles = s.now;
                    }
                }
                // Keep ticking only while there is work left; otherwise
                // the tick itself would keep the run alive forever.
                if s.work_pending(next_arrival.is_some()) {
                    let next = s.now.saturating_add(spec.epoch_mcycles * MCYCLE);
                    s.push(next, Ev::EpochTick);
                }
            }
            Ev::OutageStart => {
                s.outage_active = true;
                s.impaired = true;
                if let Some(b) = s.advisor.as_mut() {
                    b.freeze();
                }
                // The engine evacuates the dark node's pages once; the
                // worst class bounds the evacuation bill.
                s.evacuated_pages = s.evacuated_pages.saturating_add(
                    s.profiles.iter().map(|p| p.evacuated_pages).max().unwrap_or(0),
                );
                s.dispatch();
            }
            Ev::OutageEnd => {
                // The node is back, but the evacuated pages still sit
                // where they landed: `impaired` stays set until an
                // online advisor re-tunes. A static advisor keeps the
                // residue for the rest of the run.
                s.outage_active = false;
                s.dispatch();
            }
        }
    }
    if !s.epoch.is_empty() {
        s.flush_epoch();
    }

    // Pre/post recovery windows: pre ends where the outage starts; post
    // begins at the advisor's re-tune, or at the outage end for static
    // runs (which then measure the residue, not a recovery). Without an
    // outage both windows cover the whole run.
    let (pre_end, post_start) = match spec.outage {
        Some(o) => {
            let recovered_at =
                if s.retune_cycles > 0 { s.retune_cycles } else { o.end_mcycles * MCYCLE };
            (o.start_mcycles * MCYCLE, recovered_at)
        }
        None => (u64::MAX, 0),
    };
    let slo_pre_permille = slo_window_permille(&s.epochs, |e| e.t_cycles <= pre_end);
    let slo_post_permille = slo_window_permille(&s.epochs, |e| e.t_cycles > post_start);

    let stats = CellStats {
        config: config.to_string(),
        end_cycles: s.now,
        evacuated_pages: s.evacuated_pages,
        retune_cycles: s.retune_cycles,
        slo_pre_permille,
        slo_post_permille,
        wasted_cycles: s.wasted_cycles,
        max_depth: s.max_depth,
        hist: s.hist,
        tenants: s.tenants.into_iter().map(|t| t.stats).collect(),
        epochs: s.epochs,
    };
    Ok((stats, s.sessions.unwrap_or_default()))
}

/// Per-cell result consumer: `(stats, profiles, sessions)` for each
/// newly computed cell, in grid order (see [`run_cells`]).
pub type CellSink<'a> =
    dyn FnMut(&CellStats, &[ClassProfile], &[Session]) -> SimResult<()> + 'a;

/// Run a grid of serve cells, honouring adopted (resumed) results and
/// an optional cell budget, optionally across `jobs` worker threads.
///
/// `calibrate(i)` produces the class profiles for cell `i` (one real
/// engine run per class/health — the expensive part, so it runs inside
/// the worker). `sink` is called for each *newly computed* cell in grid
/// order — journal writes and session dumps go through it, which is
/// what makes serial and parallel runs byte-identical on disk.
pub fn run_cells(
    cells: &[CellInput],
    adopted: &HashMap<String, CellStats>,
    jobs: usize,
    max_cells: Option<usize>,
    record_sessions: bool,
    calibrate: &(dyn Fn(usize) -> SimResult<Vec<ClassProfile>> + Sync),
    sink: &mut CellSink<'_>,
) -> SimResult<ServeReport> {
    let pending: Vec<usize> = (0..cells.len())
        .filter(|i| !adopted.contains_key(&cells[*i].config))
        .collect();
    let budget = max_cells.unwrap_or(pending.len());
    let to_run = &pending[..budget.min(pending.len())];
    let interrupted = to_run.len() < pending.len();

    type CellOut = (Vec<ClassProfile>, CellStats, Vec<Session>);
    let mut results: Vec<Option<SimResult<CellOut>>> = (0..cells.len()).map(|_| None).collect();

    if jobs <= 1 || to_run.len() <= 1 {
        for &i in to_run {
            let out = calibrate(i).and_then(|profiles| {
                let (stats, sessions) =
                    run_serve(&cells[i].config, &cells[i].spec, &profiles, record_sessions)?;
                Ok((profiles, stats, sessions))
            });
            results[i] = Some(out);
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<SimResult<CellOut>>>> =
            to_run.iter().map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(to_run.len()) {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if k >= to_run.len() {
                        break;
                    }
                    let i = to_run[k];
                    let out = calibrate(i).and_then(|profiles| {
                        let (stats, sessions) = run_serve(
                            &cells[i].config,
                            &cells[i].spec,
                            &profiles,
                            record_sessions,
                        )?;
                        Ok((profiles, stats, sessions))
                    });
                    if let Ok(mut slot) = slots[k].lock() {
                        *slot = Some(out);
                    }
                });
            }
        });
        for (k, slot) in slots.into_iter().enumerate() {
            if let Ok(mut guard) = slot.lock() {
                results[to_run[k]] = guard.take();
            }
        }
    }

    // Assemble in grid order; sink new cells in grid order too.
    let mut out = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        if let Some(stats) = adopted.get(&cell.config) {
            out.push(stats.clone());
            continue;
        }
        match results[i].take() {
            Some(Ok((profiles, stats, sessions))) => {
                sink(&stats, &profiles, &sessions)?;
                out.push(stats);
            }
            Some(Err(e)) => return Err(e),
            None => {} // beyond the cell budget
        }
    }
    Ok(ServeReport { cells: out, interrupted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalSpec;
    use crate::spec::OutageSpec;
    use crate::spec::ServeAdvisor;

    fn profiles() -> Vec<ClassProfile> {
        vec![
            ClassProfile {
                name: "w1".into(),
                healthy: vec![("build".into(), 40_000), ("probe".into(), 60_000)],
                degraded: vec![("build".into(), 60_000), ("probe".into(), 90_000)],
                evacuated_pages: 128,
            },
            ClassProfile {
                name: "w2".into(),
                healthy: vec![("scan".into(), 30_000)],
                degraded: vec![("scan".into(), 45_000)],
                evacuated_pages: 64,
            },
        ]
    }

    fn spec(rate_milli: u64) -> ServeSpec {
        ServeSpec {
            tenants: 4,
            duration_mcycles: 20,
            arrivals: ArrivalSpec::Poisson { rate_milli },
            lanes: 2,
            queue_cap: 8,
            bucket_cap: 16,
            refill_milli_per_mcycle: 8000,
            deadline_mcycles: 2,
            breaker_threshold: 8,
            epoch_mcycles: 4,
            outage: None,
            advisor: ServeAdvisor::default(),
            seed: 42,
        }
    }

    fn totals(stats: &CellStats) -> TenantStats {
        let mut t = TenantStats::default();
        for s in &stats.tenants {
            t.arrivals += s.arrivals;
            t.admitted += s.admitted;
            t.completed += s.completed;
            t.shed_queue += s.shed_queue;
            t.shed_quota += s.shed_quota;
            t.shed_breaker += s.shed_breaker;
            t.timeouts += s.timeouts;
            t.degraded += s.degraded;
            t.slo_ok += s.slo_ok;
        }
        t
    }

    #[test]
    fn light_load_completes_everything_in_slo() {
        let (stats, _) = run_serve("cfg", &spec(5_000), &profiles(), false).unwrap();
        let t = totals(&stats);
        assert!(t.arrivals > 50, "expected ~100 arrivals, got {}", t.arrivals);
        assert_eq!(t.arrivals, t.admitted, "light load sheds nothing");
        assert_eq!(t.completed, t.admitted);
        assert_eq!(t.timeouts, 0);
        assert_eq!(t.slo_ok, t.completed, "everything inside a 2 Mcycle SLO");
        assert!(stats.hist.p99() >= stats.hist.p50());
        assert!(stats.hist.p50() >= 30_000, "p50 below min service time");
    }

    #[test]
    fn overload_sheds_but_stays_bounded_and_live() {
        // Two lanes at ~50 Kcycle mean service sustain ~40/Mcycle;
        // offer 4x that.
        let (stats, _) = run_serve("cfg", &spec(160_000), &profiles(), false).unwrap();
        let t = totals(&stats);
        let shed = t.shed_queue + t.shed_quota + t.shed_breaker;
        assert!(shed > 0, "4x overload must shed");
        assert_eq!(t.arrivals, t.admitted + shed, "every arrival is accounted for");
        assert_eq!(t.admitted, t.completed + t.timeouts, "every admit resolves");
        assert!(
            stats.max_depth <= (4 * 8) as u64,
            "queue depth bounded by tenants*cap, got {}",
            stats.max_depth
        );
        assert!(stats.hist.total() == t.completed);
        assert!(stats.hist.p99() > 0);
    }

    #[test]
    fn runs_replay_bit_identically() {
        let a = run_serve("cfg", &spec(40_000), &profiles(), true).unwrap();
        let b = run_serve("cfg", &spec(40_000), &profiles(), true).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = run_serve("cfg", &spec(40_000), &profiles(), false).unwrap();
        assert_eq!(a.0, c.0, "session recording must not perturb the run");
    }

    #[test]
    fn epoch_deltas_telescope_to_totals() {
        let (stats, _) = run_serve("cfg", &spec(80_000), &profiles(), false).unwrap();
        let t = totals(&stats);
        let ep_arrivals: u64 = stats.epochs.iter().map(|e| e.arrivals).sum();
        let ep_admitted: u64 = stats.epochs.iter().map(|e| e.admitted).sum();
        let ep_completed: u64 = stats.epochs.iter().map(|e| e.completed).sum();
        let ep_shed: u64 = stats.epochs.iter().map(|e| e.shed).sum();
        let ep_timeouts: u64 = stats.epochs.iter().map(|e| e.timeouts).sum();
        assert_eq!(ep_arrivals, t.arrivals);
        assert_eq!(ep_admitted, t.admitted);
        assert_eq!(ep_completed, t.completed);
        assert_eq!(ep_shed, t.shed_queue + t.shed_quota + t.shed_breaker);
        assert_eq!(ep_timeouts, t.timeouts);
        let ep_slo: u64 = stats.epochs.iter().map(|e| e.slo_ok).sum();
        assert_eq!(ep_slo, t.slo_ok);
        assert!(stats.epochs.windows(2).all(|w| w[0].t_cycles < w[1].t_cycles));
    }

    #[test]
    fn outage_degrades_and_recovers() {
        let mut sp = spec(40_000);
        sp.outage = Some(OutageSpec { start_mcycles: 5, end_mcycles: 10, node: 1 });
        let (stats, sessions) = run_serve("cfg", &sp, &profiles(), true).unwrap();
        assert_eq!(stats.evacuated_pages, 128, "worst-class evacuation charged once");
        let t = totals(&stats);
        assert!(t.completed > 0, "the engine keeps serving through the outage");
        // Level 3 is forced during the outage, so some queries degrade.
        assert!(t.degraded > 0, "outage window must degrade admitted queries");
        // After recovery new queries run healthy again: the last
        // completions should not all be degraded.
        let last_completed = sessions
            .iter()
            .rev()
            .find(|s| matches!(s.outcome, ServeOutcome::Completed | ServeOutcome::Late));
        assert!(last_completed.is_some(), "healthy completions resume after recovery");
    }

    /// Single-phase class whose degraded cost (1.1 Mcycles) breaks a
    /// 1 Mcycle deadline even with an idle lane, while the healthy cost
    /// (0.6 Mcycles) leaves comfortable slack — so SLO attainment reads
    /// the placement residue directly.
    fn recovery_profiles() -> Vec<ClassProfile> {
        vec![ClassProfile {
            name: "w1".into(),
            healthy: vec![("probe".into(), 600_000)],
            degraded: vec![("probe".into(), 1_100_000)],
            evacuated_pages: 96,
        }]
    }

    fn recovery_spec(advisor: ServeAdvisor) -> ServeSpec {
        let mut sp = spec(1_500);
        sp.duration_mcycles = 60;
        sp.deadline_mcycles = 1;
        sp.outage = Some(OutageSpec { start_mcycles: 20, end_mcycles: 28, node: 1 });
        sp.advisor = advisor;
        sp
    }

    #[test]
    fn static_advisor_keeps_the_placement_residue_after_the_outage() {
        let (stats, _) =
            run_serve("static", &recovery_spec(ServeAdvisor::Static), &recovery_profiles(), false)
                .unwrap();
        assert_eq!(stats.retune_cycles, 0, "static never re-tunes");
        assert!(
            stats.slo_pre_permille >= 900,
            "healthy service meets the SLO before the outage: {}",
            stats.slo_pre_permille
        );
        assert!(
            stats.slo_post_permille <= 200,
            "the residue keeps degraded costs after the node returns: {}",
            stats.slo_post_permille
        );
    }

    #[test]
    fn online_advisor_rearms_and_recovers_the_slo() {
        let online = ServeAdvisor::Online { rearm_after: 2 };
        let (stats, _) =
            run_serve("online", &recovery_spec(online), &recovery_profiles(), false).unwrap();
        // OutageEnd at 28 Mcycles was pushed at setup, so it pops before
        // the 28 Mcycle tick (same cycle, lower sequence); that tick is
        // the first quiet one, and the second — at 32 Mcycles — re-arms.
        assert_eq!(stats.retune_cycles, 32 * MCYCLE);
        assert!(stats.slo_pre_permille >= 900, "pre: {}", stats.slo_pre_permille);
        // The ISSUE acceptance bound: within 5 points (50 permille) of
        // the pre-outage baseline once the breaker re-arms.
        assert!(
            stats.recovery_gap_permille() <= 50,
            "post ({}) must recover to within 50 permille of pre ({})",
            stats.slo_post_permille,
            stats.slo_pre_permille
        );
        let (residue, _) =
            run_serve("static", &recovery_spec(ServeAdvisor::Static), &recovery_profiles(), false)
                .unwrap();
        assert!(
            stats.slo_post_permille >= residue.slo_post_permille + 300,
            "online ({}) must beat the static residue ({}) decisively",
            stats.slo_post_permille,
            residue.slo_post_permille
        );
    }

    #[test]
    fn breaker_trips_under_hammering() {
        let mut sp = spec(300_000);
        sp.queue_cap = 2;
        sp.bucket_cap = 2;
        sp.refill_milli_per_mcycle = 500;
        sp.breaker_threshold = 4;
        let (stats, _) = run_serve("cfg", &sp, &profiles(), false).unwrap();
        let t = totals(&stats);
        assert!(t.shed_breaker > 0, "sustained overload must trip breakers");
    }

    #[test]
    fn run_cells_adopts_and_budgets() {
        let cells: Vec<CellInput> = ["a", "b", "c"]
            .iter()
            .map(|n| CellInput { config: (*n).to_string(), spec: spec(20_000) })
            .collect();
        let calibrate = |_i: usize| Ok(profiles());
        // Full run, serial.
        let mut sunk = Vec::new();
        let report = run_cells(&cells, &HashMap::new(), 1, None, false, &calibrate, &mut |s, _, _| {
            sunk.push(s.config.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(report.cells.len(), 3);
        assert!(!report.interrupted);
        assert_eq!(sunk, vec!["a", "b", "c"], "sink runs in grid order");

        // Adopt "a", budget 1 → run only "b", interrupted.
        let mut adopted = HashMap::new();
        adopted.insert("a".to_string(), report.cells[0].clone());
        let mut sunk2 = Vec::new();
        let partial =
            run_cells(&cells, &adopted, 1, Some(1), false, &calibrate, &mut |s, _, _| {
                sunk2.push(s.config.clone());
                Ok(())
            })
            .unwrap();
        assert!(partial.interrupted);
        assert_eq!(sunk2, vec!["b"]);
        assert_eq!(partial.cells.len(), 2, "adopted a + fresh b");
        assert_eq!(partial.cells[0], report.cells[0]);
        assert_eq!(partial.cells[1], report.cells[1]);

        // Parallel equals serial.
        let par = run_cells(&cells, &HashMap::new(), 4, None, false, &calibrate, &mut |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(par.cells, report.cells);
    }
}
