//! Serve-run reporting: per-tenant counters, telescoping epoch rows,
//! tail-latency quantiles, and the journal round-trip.
//!
//! The discipline matches the sweep report: `table`, `to_csv`, and
//! `to_json` are pure functions of the collected stats, so a resumed
//! run whose adopted cells decode from the journal renders
//! byte-identically to an uninterrupted one. Everything the renderers
//! read is therefore journaled — histogram buckets included.

use crate::histogram::LatencyHistogram;
use crate::spec::ServeOutcome;
use nqp_core::journal::{esc, get, get_num, get_str, JVal};

/// Monotone counters for one tenant over the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Sessions that arrived for this tenant.
    pub arrivals: u64,
    /// Sessions past the admission pipeline.
    pub admitted: u64,
    /// Admitted sessions that ran to completion (late and degraded
    /// included).
    pub completed: u64,
    /// Shed: tenant queue full, or ladder level 1 reject-newest.
    pub shed_queue: u64,
    /// Shed: token bucket empty, or ladder level 2 over fair share.
    pub shed_quota: u64,
    /// Shed: tenant circuit breaker open.
    pub shed_breaker: u64,
    /// Admitted sessions abandoned past their deadline.
    pub timeouts: u64,
    /// Completions served as sampled answers (ladder level 3).
    pub degraded: u64,
    /// Full-fidelity completions within the deadline SLO.
    pub slo_ok: u64,
}

impl TenantStats {
    /// All shed counters combined.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_queue + self.shed_quota + self.shed_breaker
    }
}

/// One telescoping epoch: deltas since the previous tick plus sampled
/// gauges. Summing any delta column over all rows reproduces the run
/// total exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochRow {
    /// Tick time on the model clock.
    pub t_cycles: u64,
    /// Arrivals this epoch.
    pub arrivals: u64,
    /// Admissions this epoch.
    pub admitted: u64,
    /// Completions this epoch.
    pub completed: u64,
    /// Sheds this epoch (all causes).
    pub shed: u64,
    /// Deadline timeouts this epoch.
    pub timeouts: u64,
    /// Full-fidelity in-deadline completions this epoch — the SLO
    /// numerator, windowed so recovery can be measured per epoch.
    pub slo_ok: u64,
    /// Total queued sessions at the tick (gauge).
    pub depth: u64,
    /// Shedding-ladder level at the tick (gauge).
    pub level: u64,
}

/// One resolved session, kept only when session recording is on —
/// feeds the per-session trace export, never the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Owning tenant.
    pub tenant: usize,
    /// Query-class index into the cell's profiles.
    pub class: usize,
    /// Service lane, or `usize::MAX` if never dispatched.
    pub lane: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Dispatch cycle (equals `arrival` for sheds).
    pub start: u64,
    /// Resolution cycle.
    pub end: u64,
    /// What happened.
    pub outcome: ServeOutcome,
    /// Engine cycles burned (nonzero only for ran-then-timed-out).
    pub burned: u64,
}

/// Everything measured for one serve cell (one engine configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStats {
    /// Engine-configuration name.
    pub config: String,
    /// Model-clock cycle at which the run fully drained.
    pub end_cycles: u64,
    /// Pages evacuated by the mid-serve outage (0 without one).
    pub evacuated_pages: u64,
    /// Model-clock cycle at which the online advisor re-homed the
    /// evacuated pages after the outage (0 = never re-tuned; a static
    /// advisor keeps the placement residue for the rest of the run).
    pub retune_cycles: u64,
    /// SLO attainment (permille of arrivals) over epochs ending at or
    /// before the outage started.
    pub slo_pre_permille: u64,
    /// SLO attainment over epochs after recovery — after the advisor's
    /// re-tune if one happened, else after the outage window closed.
    pub slo_post_permille: u64,
    /// Cycles burned by queries that later abandoned their deadline.
    pub wasted_cycles: u64,
    /// High-water mark of total queued sessions.
    pub max_depth: u64,
    /// Completion-latency histogram (cycles, arrival to completion).
    pub hist: LatencyHistogram,
    /// Per-tenant counters, indexed by tenant id.
    pub tenants: Vec<TenantStats>,
    /// Telescoping epoch rows, in time order.
    pub epochs: Vec<EpochRow>,
}

impl CellStats {
    /// Counters summed over all tenants.
    #[must_use]
    pub fn totals(&self) -> TenantStats {
        let mut t = TenantStats::default();
        for s in &self.tenants {
            t.arrivals += s.arrivals;
            t.admitted += s.admitted;
            t.completed += s.completed;
            t.shed_queue += s.shed_queue;
            t.shed_quota += s.shed_quota;
            t.shed_breaker += s.shed_breaker;
            t.timeouts += s.timeouts;
            t.degraded += s.degraded;
            t.slo_ok += s.slo_ok;
        }
        t
    }

    /// SLO attainment in permille of *arrivals* (sheds count against
    /// the SLO — a rejected query is not a served query).
    #[must_use]
    pub fn slo_permille(&self) -> u64 {
        let t = self.totals();
        if t.arrivals == 0 {
            return 0;
        }
        t.slo_ok * 1000 / t.arrivals
    }

    /// How far post-recovery SLO attainment sits below the pre-outage
    /// baseline, in permille (0 = fully recovered).
    #[must_use]
    pub fn recovery_gap_permille(&self) -> u64 {
        self.slo_pre_permille.saturating_sub(self.slo_post_permille)
    }

    /// The journal / JSON field body for this cell (no braces).
    #[must_use]
    pub fn fields_json(&self) -> String {
        let hist: Vec<String> = self
            .hist
            .nonzero_buckets()
            .iter()
            .map(|(i, c)| format!("[{i},{c}]"))
            .collect();
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                format!(
                    "[{},{},{},{},{},{},{},{},{}]",
                    t.arrivals,
                    t.admitted,
                    t.completed,
                    t.shed_queue,
                    t.shed_quota,
                    t.shed_breaker,
                    t.timeouts,
                    t.degraded,
                    t.slo_ok
                )
            })
            .collect();
        let epochs: Vec<String> = self
            .epochs
            .iter()
            .map(|e| {
                format!(
                    "[{},{},{},{},{},{},{},{},{}]",
                    e.t_cycles,
                    e.arrivals,
                    e.admitted,
                    e.completed,
                    e.shed,
                    e.timeouts,
                    e.slo_ok,
                    e.depth,
                    e.level
                )
            })
            .collect();
        format!(
            "\"config\":\"{}\",\"end_cycles\":{},\"evacuated_pages\":{},\
             \"retune_cycles\":{},\"slo_pre_permille\":{},\
             \"slo_post_permille\":{},\
             \"wasted_cycles\":{},\"max_depth\":{},\"hist_max\":{},\
             \"hist\":[{}],\"tenants\":[{}],\"epochs\":[{}]",
            esc(&self.config),
            self.end_cycles,
            self.evacuated_pages,
            self.retune_cycles,
            self.slo_pre_permille,
            self.slo_post_permille,
            self.wasted_cycles,
            self.max_depth,
            self.hist.max(),
            hist.join(","),
            tenants.join(","),
            epochs.join(",")
        )
    }

    /// Decode a cell from a parsed journal object (the inverse of
    /// [`CellStats::fields_json`] under the journal envelope).
    #[must_use]
    pub fn from_obj(obj: &[(String, JVal)]) -> Option<CellStats> {
        fn nums(v: &JVal) -> Option<Vec<u64>> {
            match v {
                JVal::Arr(items) => items
                    .iter()
                    .map(|x| match x {
                        JVal::Num(n) => Some(*n),
                        _ => None,
                    })
                    .collect(),
                _ => None,
            }
        }
        let arr = |key: &str| match get(obj, key)? {
            JVal::Arr(items) => Some(items.clone()),
            _ => None,
        };
        let hist_max = get_num(obj, "hist_max")?;
        let mut buckets = Vec::new();
        for item in arr("hist")? {
            let pair = nums(&item)?;
            if pair.len() != 2 {
                return None;
            }
            buckets.push((pair[0] as usize, pair[1]));
        }
        let mut tenants = Vec::new();
        for item in arr("tenants")? {
            let n = nums(&item)?;
            if n.len() != 9 {
                return None;
            }
            tenants.push(TenantStats {
                arrivals: n[0],
                admitted: n[1],
                completed: n[2],
                shed_queue: n[3],
                shed_quota: n[4],
                shed_breaker: n[5],
                timeouts: n[6],
                degraded: n[7],
                slo_ok: n[8],
            });
        }
        let mut epochs = Vec::new();
        for item in arr("epochs")? {
            let n = nums(&item)?;
            if n.len() != 9 {
                return None;
            }
            epochs.push(EpochRow {
                t_cycles: n[0],
                arrivals: n[1],
                admitted: n[2],
                completed: n[3],
                shed: n[4],
                timeouts: n[5],
                slo_ok: n[6],
                depth: n[7],
                level: n[8],
            });
        }
        Some(CellStats {
            config: get_str(obj, "config")?.to_string(),
            end_cycles: get_num(obj, "end_cycles")?,
            evacuated_pages: get_num(obj, "evacuated_pages")?,
            retune_cycles: get_num(obj, "retune_cycles")?,
            slo_pre_permille: get_num(obj, "slo_pre_permille")?,
            slo_post_permille: get_num(obj, "slo_post_permille")?,
            wasted_cycles: get_num(obj, "wasted_cycles")?,
            max_depth: get_num(obj, "max_depth")?,
            hist: LatencyHistogram::from_buckets(&buckets, hist_max),
            tenants,
            epochs,
        })
    }
}

/// The full serve report across all cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Per-cell stats in grid order.
    pub cells: Vec<CellStats>,
    /// The cell budget (`--max-cells`) stopped the run early.
    pub interrupted: bool,
}

fn permille_pct(p: u64) -> String {
    format!("{}.{}%", p / 10, p % 10)
}

impl ServeReport {
    /// Human-readable per-config table: tail quantiles, SLO attainment,
    /// and robustness counters.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::from(
            "config                      p50        p95        p99        p99.9      \
             slo    shed  t/o   degr  maxq\n",
        );
        for c in &self.cells {
            let t = c.totals();
            out.push_str(&format!(
                "{:<27} {:<10} {:<10} {:<10} {:<10} {:<6} {:<5} {:<5} {:<5} {}\n",
                c.config,
                c.hist.p50(),
                c.hist.p95(),
                c.hist.p99(),
                c.hist.p999(),
                permille_pct(c.slo_permille()),
                t.shed(),
                t.timeouts,
                t.degraded,
                c.max_depth
            ));
        }
        if self.interrupted {
            out.push_str("(interrupted: cell budget exhausted; resume to finish)\n");
        }
        out
    }

    /// Per-tenant counter rows.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "config,tenant,arrivals,admitted,completed,shed_queue,shed_quota,\
             shed_breaker,timeouts,degraded,slo_ok\n",
        );
        for c in &self.cells {
            for (i, t) in c.tenants.iter().enumerate() {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{}\n",
                    c.config,
                    i,
                    t.arrivals,
                    t.admitted,
                    t.completed,
                    t.shed_queue,
                    t.shed_quota,
                    t.shed_breaker,
                    t.timeouts,
                    t.degraded,
                    t.slo_ok
                ));
            }
        }
        out
    }

    /// Full structured report: every journaled field per cell.
    #[must_use]
    pub fn to_json(&self) -> String {
        let cells: Vec<String> =
            self.cells.iter().map(|c| format!("{{{}}}", c.fields_json())).collect();
        format!(
            "{{\"cells\":[{}],\"interrupted\":{}}}\n",
            cells.join(","),
            self.interrupted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_core::journal::parse_json_obj;

    fn cell() -> CellStats {
        let mut hist = LatencyHistogram::new();
        for v in [120u64, 4_000, 90_000, 90_000, 3_000_000] {
            hist.record(v);
        }
        CellStats {
            config: "tuned (+flags)".to_string(),
            end_cycles: 51_234_567,
            evacuated_pages: 128,
            retune_cycles: 36_000_000,
            slo_pre_permille: 940,
            slo_post_permille: 910,
            wasted_cycles: 420_000,
            max_depth: 17,
            hist,
            tenants: vec![
                TenantStats {
                    arrivals: 100,
                    admitted: 90,
                    completed: 85,
                    shed_queue: 6,
                    shed_quota: 3,
                    shed_breaker: 1,
                    timeouts: 5,
                    degraded: 7,
                    slo_ok: 70,
                },
                TenantStats::default(),
            ],
            epochs: vec![
                EpochRow {
                    t_cycles: 4_000_000,
                    arrivals: 50,
                    admitted: 45,
                    completed: 40,
                    shed: 5,
                    timeouts: 2,
                    slo_ok: 38,
                    depth: 3,
                    level: 1,
                },
                EpochRow { t_cycles: 8_000_000, ..EpochRow::default() },
            ],
        }
    }

    #[test]
    fn journal_fields_round_trip_exactly() {
        let c = cell();
        let line = format!("{{{}}}", c.fields_json());
        let obj = parse_json_obj(&line).expect("self-emitted JSON parses");
        let back = CellStats::from_obj(&obj).expect("decodes");
        assert_eq!(back, c);
        // Re-encoding is byte-identical — the resume guarantee.
        assert_eq!(back.fields_json(), c.fields_json());
    }

    #[test]
    fn renderers_are_pure_and_complete() {
        let report = ServeReport { cells: vec![cell()], interrupted: false };
        let table = report.table();
        assert!(table.contains("tuned (+flags)"));
        assert!(table.contains("70.0%"), "slo permille renders: {table}");
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3, "header + 2 tenants");
        assert!(csv.contains("tuned (+flags),0,100,90,85,6,3,1,5,7,70"));
        let json = report.to_json();
        assert!(json.contains("\"hist\":[["));
        assert!(json.contains("\"interrupted\":false"));
        let mut interrupted = report.clone();
        interrupted.interrupted = true;
        assert!(interrupted.table().contains("interrupted"));
    }

    #[test]
    fn totals_and_slo_accounting() {
        let c = cell();
        let t = c.totals();
        assert_eq!(t.arrivals, 100);
        assert_eq!(t.shed(), 10);
        assert_eq!(c.slo_permille(), 700);
        assert_eq!(c.recovery_gap_permille(), 30);
    }
}
