//! Seeded, deterministic arrival processes on the model clock.
//!
//! Three families, all parsed from the `--arrivals` spec grammar:
//!
//! ```text
//! poisson:rate=R                     constant-rate Poisson stream
//! burst:rate=R,x=M,on=A,off=B        two-state MMPP: baseline R for B
//!                                    Mcycles, then R*M for A Mcycles
//! diurnal:rate=R,x=M,period=P        piecewise-linear ramp R..R*M..R
//!                                    over a period of P Mcycles
//! ```
//!
//! `R` is the aggregate arrival rate in queries per Mcycle (up to three
//! decimals, e.g. `rate=2.5`); `M` is an integer multiplier; `A`, `B`,
//! `P` are durations in Mcycles.
//!
//! Inter-arrival gaps are exponential, sampled with von Neumann's
//! comparison method — runs of decreasing uniforms — which needs only
//! integer comparisons on raw 64-bit draws: no `ln`, no floats, and
//! therefore bit-identical on every platform. Rate changes exploit the
//! memoryless property: when a sampled gap crosses a segment boundary,
//! the generator advances to the boundary and resamples at the new
//! rate, which is distributionally exact and deterministic.

use nqp_sim::{SimError, SimResult};

/// One cycle-rate scale: rates are stored as milli-queries per Mcycle
/// (`rate=2.5` → 2500).
pub const MILLI: u64 = 1000;

const MCYCLE: u64 = 1_000_000;

/// Largest duration (in Mcycles) a spec parameter may carry: anything
/// bigger overflows u64 once scaled to cycles. `u64::MAX / MCYCLE`
/// ≈ 1.8e13 Mcycles — far beyond any simulated run, so the bound only
/// rejects nonsense input, never real workloads.
pub const MAX_MCYCLES: u64 = u64::MAX / MCYCLE;

/// A parsed `--arrivals` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalSpec {
    /// Constant rate (milli-queries per Mcycle).
    Poisson { rate_milli: u64 },
    /// Two-state MMPP: `rate_milli` for `off_mcycles`, then
    /// `rate_milli * mult` for `on_mcycles`, repeating.
    Burst { rate_milli: u64, mult: u64, on_mcycles: u64, off_mcycles: u64 },
    /// Piecewise-linear ramp between `rate_milli` and
    /// `rate_milli * mult` over `period_mcycles` (8 equal slots).
    Diurnal { rate_milli: u64, mult: u64, period_mcycles: u64 },
}

/// Parse a decimal with up to three fractional digits into milli-units
/// (`"2.5"` → 2500). Shared by the rate grammar and the CLI's
/// `--refill` flag.
#[must_use]
pub fn parse_milli(s: &str) -> Option<u64> {
    let (int, frac) = match s.split_once('.') {
        Some((i, f)) => (i, f),
        None => (s, ""),
    };
    if frac.len() > 3 || (int.is_empty() && frac.is_empty()) {
        return None;
    }
    let int: u64 = if int.is_empty() { 0 } else { int.parse().ok()? };
    let frac: u64 = if frac.is_empty() {
        0
    } else {
        let padded = format!("{frac:0<3}");
        padded.parse().ok()?
    };
    int.checked_mul(MILLI)?.checked_add(frac)
}

impl ArrivalSpec {
    /// Parse the `--arrivals` grammar. Errors are typed
    /// [`SimError::BadSpec`] carrying the offending token verbatim, so
    /// the CLI error names exactly what to fix — truncated and garbage
    /// input never panics.
    pub fn parse(spec: &str) -> SimResult<ArrivalSpec> {
        fn bad(token: &str, why: &str) -> SimError {
            SimError::BadSpec {
                flag: "--arrivals".to_string(),
                token: token.to_string(),
                why: why.to_string(),
            }
        }
        let (kind, params) = match spec.split_once(':') {
            Some((k, p)) => (k.trim(), p),
            None => (spec.trim(), ""),
        };
        let mut kv = std::collections::HashMap::new();
        for pair in params.split(',').filter(|p| !p.trim().is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| bad(pair, "expected a key=value pair"))?;
            kv.insert(k.trim(), v.trim());
        }
        let rate_milli = match kv.get("rate") {
            Some(v) => {
                parse_milli(v).ok_or_else(|| bad(v, "bad rate (up to three decimals)"))?
            }
            None => return Err(bad(spec, "missing rate=R")),
        };
        let getu = |k: &str, default: u64| -> SimResult<u64> {
            match kv.get(k) {
                Some(v) => v.parse().map_err(|_| bad(v, "bad integer parameter")),
                None => Ok(default),
            }
        };
        let parsed = match kind {
            "poisson" => Ok(ArrivalSpec::Poisson { rate_milli }),
            "burst" => Ok(ArrivalSpec::Burst {
                rate_milli,
                mult: getu("x", 4)?.max(1),
                on_mcycles: getu("on", 4)?.max(1),
                off_mcycles: getu("off", 12)?.max(1),
            }),
            "diurnal" => Ok(ArrivalSpec::Diurnal {
                rate_milli,
                mult: getu("x", 2)?.max(1),
                period_mcycles: getu("period", 32)?.max(8),
            }),
            other => {
                Err(bad(other, "unknown arrival kind (poisson, burst, diurnal)"))
            }
        }?;
        parsed.validate()?;
        Ok(parsed)
    }

    /// Check the duration invariants `rate_segment` relies on: burst
    /// and diurnal windows must be nonzero and small enough to scale to
    /// cycles without overflowing u64 (`on=18446744073709551615` used
    /// to panic in debug builds and wrap to a garbage period in
    /// release). Called by [`ArrivalSpec::parse`] and by
    /// [`ArrivalGen::new`], so directly constructed specs are covered
    /// too. Errors are typed [`SimError::BadSpec`] naming the offending
    /// `key=value` token.
    pub fn validate(&self) -> SimResult<()> {
        fn bad(token: String, why: String) -> SimError {
            SimError::BadSpec { flag: "--arrivals".to_string(), token, why }
        }
        match self {
            ArrivalSpec::Poisson { .. } => Ok(()),
            ArrivalSpec::Burst { on_mcycles, off_mcycles, .. } => {
                if *on_mcycles == 0 {
                    return Err(bad(
                        format!("on={on_mcycles}"),
                        "burst on-window must be at least 1 Mcycle".to_string(),
                    ));
                }
                if *off_mcycles == 0 {
                    return Err(bad(
                        format!("off={off_mcycles}"),
                        "burst off-window must be at least 1 Mcycle".to_string(),
                    ));
                }
                match on_mcycles.checked_add(*off_mcycles) {
                    Some(p) if p <= MAX_MCYCLES => Ok(()),
                    _ => {
                        // Name the larger window: that is the token the
                        // user has to fix.
                        let token = if on_mcycles >= off_mcycles {
                            format!("on={on_mcycles}")
                        } else {
                            format!("off={off_mcycles}")
                        };
                        Err(bad(
                            token,
                            format!("burst period on+off exceeds the model clock (max {MAX_MCYCLES} Mcycles)"),
                        ))
                    }
                }
            }
            ArrivalSpec::Diurnal { period_mcycles, .. } => {
                if *period_mcycles < 8 {
                    return Err(bad(
                        format!("period={period_mcycles}"),
                        "diurnal period must be at least 8 Mcycles (one per ramp slot)".to_string(),
                    ));
                }
                if *period_mcycles > MAX_MCYCLES {
                    return Err(bad(
                        format!("period={period_mcycles}"),
                        format!("diurnal period exceeds the model clock (max {MAX_MCYCLES} Mcycles)"),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Canonical spec string (round-trips through [`ArrivalSpec::parse`]
    /// up to parameter defaults).
    #[must_use]
    pub fn canonical(&self) -> String {
        let rate = |m: u64| {
            if m.is_multiple_of(MILLI) {
                format!("{}", m / MILLI)
            } else {
                format!("{}.{:03}", m / MILLI, m % MILLI)
            }
        };
        match self {
            ArrivalSpec::Poisson { rate_milli } => {
                format!("poisson:rate={}", rate(*rate_milli))
            }
            ArrivalSpec::Burst { rate_milli, mult, on_mcycles, off_mcycles } => format!(
                "burst:rate={},x={mult},on={on_mcycles},off={off_mcycles}",
                rate(*rate_milli)
            ),
            ArrivalSpec::Diurnal { rate_milli, mult, period_mcycles } => format!(
                "diurnal:rate={},x={mult},period={period_mcycles}",
                rate(*rate_milli)
            ),
        }
    }

    /// Baseline rate in milli-queries per Mcycle.
    #[must_use]
    pub fn base_rate_milli(&self) -> u64 {
        match self {
            ArrivalSpec::Poisson { rate_milli }
            | ArrivalSpec::Burst { rate_milli, .. }
            | ArrivalSpec::Diurnal { rate_milli, .. } => *rate_milli,
        }
    }

    /// Peak rate in milli-queries per Mcycle (baseline × multiplier).
    #[must_use]
    pub fn peak_rate_milli(&self) -> u64 {
        match self {
            ArrivalSpec::Poisson { rate_milli } => *rate_milli,
            ArrivalSpec::Burst { rate_milli, mult, .. }
            | ArrivalSpec::Diurnal { rate_milli, mult, .. } => {
                rate_milli.saturating_mul(*mult)
            }
        }
    }

    /// The rate in force at cycle `t` and the cycle at which it next
    /// changes (`u64::MAX` for a constant rate).
    fn rate_segment(&self, t: u64) -> (u64, u64) {
        match self {
            ArrivalSpec::Poisson { rate_milli } => (*rate_milli, u64::MAX),
            ArrivalSpec::Burst { rate_milli, mult, on_mcycles, off_mcycles } => {
                // `validate()` bounds on+off at MAX_MCYCLES, so these
                // scalings cannot overflow; the seg_end additions still
                // saturate so a clock near u64::MAX degrades to "no
                // further change" instead of wrapping.
                let off = off_mcycles * MCYCLE;
                let period = (on_mcycles + off_mcycles) * MCYCLE;
                let phase = t % period;
                let start = t - phase;
                if phase < off {
                    (*rate_milli, start.saturating_add(off))
                } else {
                    (rate_milli.saturating_mul(*mult), start.saturating_add(period))
                }
            }
            ArrivalSpec::Diurnal { rate_milli, mult, period_mcycles } => {
                // 8 equal slots per period, triangle weights 0..1000..0:
                // slot 4 is the peak (rate × mult), slots 0 and 7 the
                // trough (baseline). `validate()` guarantees
                // 8 <= period <= MAX_MCYCLES: slot_len is nonzero and
                // the scaling cannot overflow.
                const W: [u64; 8] = [0, 250, 500, 750, 1000, 750, 500, 250];
                let period = period_mcycles * MCYCLE;
                let slot_len = period / 8;
                let phase = t % period;
                let slot = (phase / slot_len).min(7) as usize;
                let extra = rate_milli.saturating_mul(mult.saturating_sub(1));
                let rate = rate_milli + extra.saturating_mul(W[slot]) / MILLI;
                let seg_end = (t - phase).saturating_add(slot_len * (slot as u64 + 1));
                (rate, seg_end)
            }
        }
    }
}

/// splitmix64: the workspace's standard seeded generator.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// A stream keyed by `(seed, stream)` — tenant streams and the
    /// class-assignment stream are decorrelated by the stream id.
    #[must_use]
    pub fn new(seed: u64, stream: u64) -> Self {
        SplitMix { state: seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Sample Exp(1) as `(integer_part, fraction)` with the fraction a Q64
/// fixed-point value, using von Neumann's comparison method: only u64
/// comparisons, no floats, exact distribution.
fn exp1(rng: &mut SplitMix) -> (u64, u64) {
    let mut k = 0u64;
    loop {
        let u0 = rng.next_u64();
        let mut prev = u0;
        let mut n = 1u32;
        loop {
            let u = rng.next_u64();
            if u < prev {
                prev = u;
                n += 1;
            } else {
                break;
            }
        }
        if n % 2 == 1 {
            return (k, u0);
        }
        k += 1;
    }
}

/// Deterministic arrival-time generator for one spec + seed.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    spec: ArrivalSpec,
    rng: SplitMix,
    now: u64,
}

impl ArrivalGen {
    /// A generator whose first arrival follows cycle 0. Rejects specs
    /// that violate the `rate_segment` invariants (zero windows,
    /// diurnal period below 8 Mcycles, durations that overflow once
    /// scaled to cycles) with a typed [`SimError::BadSpec`] — directly
    /// constructed specs that bypassed [`ArrivalSpec::parse`] used to
    /// divide by zero here.
    pub fn new(spec: ArrivalSpec, seed: u64, stream: u64) -> SimResult<Self> {
        spec.validate()?;
        Ok(ArrivalGen { spec, rng: SplitMix::new(seed, stream), now: 0 })
    }

    /// The next arrival's absolute cycle, or `None` if the rate is zero
    /// forever (a spec-validation failure upstream should prevent this).
    pub fn next_arrival(&mut self) -> Option<u64> {
        loop {
            let (rate, seg_end) = self.spec.rate_segment(self.now);
            if rate == 0 {
                if seg_end == u64::MAX {
                    return None;
                }
                self.now = seg_end;
                continue;
            }
            // Mean inter-arrival gap in cycles: 1 Mcycle / (rate/1000).
            let mean = (MCYCLE * MILLI / rate).max(1);
            let (k, frac) = exp1(&mut self.rng);
            let dt = k
                .saturating_mul(mean)
                .saturating_add(((frac as u128 * mean as u128) >> 64) as u64);
            if self.now.saturating_add(dt) >= seg_end {
                // Memoryless: restart the clock at the rate change.
                self.now = seg_end;
                continue;
            }
            self.now += dt;
            return Some(self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_round_trip() {
        let p = ArrivalSpec::parse("poisson:rate=2.5").unwrap();
        assert_eq!(p, ArrivalSpec::Poisson { rate_milli: 2500 });
        assert_eq!(p.canonical(), "poisson:rate=2.500");
        let b = ArrivalSpec::parse("burst:rate=20,x=4,on=4,off=12").unwrap();
        assert_eq!(
            b,
            ArrivalSpec::Burst { rate_milli: 20_000, mult: 4, on_mcycles: 4, off_mcycles: 12 }
        );
        assert_eq!(ArrivalSpec::parse(&b.canonical()).unwrap(), b);
        let d = ArrivalSpec::parse("diurnal:rate=8,x=3,period=64").unwrap();
        assert_eq!(d.peak_rate_milli(), 24_000);
        assert_eq!(ArrivalSpec::parse(&d.canonical()).unwrap(), d);
    }

    #[test]
    fn malformed_specs_error_without_panicking() {
        for bad in ["", "poisson", "poisson:x=2", "poisson:rate=abc", "wat:rate=1",
                    "poisson:rate=1.2345", "burst:rate"] {
            assert!(ArrivalSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn malformed_specs_name_the_offending_token() {
        let token = |spec: &str| match ArrivalSpec::parse(spec) {
            Err(SimError::BadSpec { flag, token, .. }) => {
                assert_eq!(flag, "--arrivals", "{spec:?}");
                token
            }
            other => panic!("{spec:?} should be a BadSpec error, got {other:?}"),
        };
        assert_eq!(token("poisson:rate=abc"), "abc");
        assert_eq!(token("poisson:rate=1.2345"), "1.2345");
        assert_eq!(token("burst:rate"), "rate");
        assert_eq!(token("burst:rate=2,x=huge"), "huge");
        assert_eq!(token("wat:rate=1"), "wat");
        assert_eq!(token("poisson"), "poisson");
        assert_eq!(token(""), "");
    }

    #[test]
    fn arrivals_are_deterministic_and_rate_scaled() {
        let gen = |rate: &str| {
            let spec = ArrivalSpec::parse(rate).unwrap();
            let mut g = ArrivalGen::new(spec, 42, 0).unwrap();
            let mut v = Vec::new();
            while let Some(t) = g.next_arrival() {
                if t > 50_000_000 || v.len() >= 100_000 {
                    break;
                }
                v.push(t);
            }
            v
        };
        let a = gen("poisson:rate=10");
        let b = gen("poisson:rate=10");
        assert_eq!(a, b, "same seed must replay bit-identically");
        assert!(!a.is_empty());
        // 10/Mcycle over 50 Mcycles ≈ 500 arrivals; allow wide slack.
        assert!(a.len() > 300 && a.len() < 800, "got {}", a.len());
        let c = gen("poisson:rate=40");
        assert!(
            c.len() > 3 * a.len() && c.len() < 6 * a.len(),
            "4x rate should mean ~4x arrivals ({} vs {})",
            c.len(),
            a.len()
        );
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrival times are monotone");
    }

    #[test]
    fn burst_concentrates_arrivals_in_on_windows() {
        let spec = ArrivalSpec::parse("burst:rate=10,x=8,on=4,off=12").unwrap();
        let mut g = ArrivalGen::new(spec, 7, 1).unwrap();
        let (mut on, mut off) = (0u64, 0u64);
        while let Some(t) = g.next_arrival() {
            if t > 160_000_000 {
                break;
            }
            if t % 16_000_000 >= 12_000_000 {
                on += 1;
            } else {
                off += 1;
            }
        }
        // The on-window is 1/4 of the period at 8x the rate: roughly
        // 2/3 of all arrivals land in it.
        assert!(on > off, "burst windows must dominate: on={on} off={off}");
    }

    #[test]
    fn zero_rate_poisson_yields_nothing() {
        let mut g = ArrivalGen::new(ArrivalSpec::Poisson { rate_milli: 0 }, 1, 0).unwrap();
        assert_eq!(g.next_arrival(), None);
    }

    #[test]
    fn oversized_durations_are_rejected_at_parse_time() {
        // Regression: `on=18446744073709551615` used to reach
        // `rate_segment` and overflow `off_mcycles * MCYCLE` — a
        // debug-build panic, a garbage period in release.
        let huge = u64::MAX;
        for (spec, tok) in [
            (format!("burst:rate=1,on={huge},off=1"), format!("on={huge}")),
            (format!("burst:rate=1,on=1,off={huge}"), format!("off={huge}")),
            (format!("diurnal:rate=1,period={huge}"), format!("period={huge}")),
        ] {
            match ArrivalSpec::parse(&spec) {
                Err(SimError::BadSpec { flag, token, .. }) => {
                    assert_eq!(flag, "--arrivals", "{spec:?}");
                    assert_eq!(token, tok, "{spec:?}");
                }
                other => panic!("{spec:?} must be BadSpec, got {other:?}"),
            }
        }
        // Largest legal period still parses and generates.
        let ok = format!("burst:rate=1000,on=1,off={}", MAX_MCYCLES - 1);
        let spec = ArrivalSpec::parse(&ok).unwrap();
        assert!(ArrivalGen::new(spec, 1, 0).unwrap().next_arrival().is_some());
    }

    #[test]
    fn directly_constructed_bad_specs_error_instead_of_panicking() {
        // Satellite 3: a Diurnal spec built without `parse` (so without
        // the `.max(8)` clamp) used to divide by zero in rate_segment.
        for (spec, tok) in [
            (
                ArrivalSpec::Diurnal { rate_milli: 1000, mult: 2, period_mcycles: 4 },
                "period=4",
            ),
            (
                ArrivalSpec::Burst { rate_milli: 1000, mult: 2, on_mcycles: 0, off_mcycles: 4 },
                "on=0",
            ),
            (
                ArrivalSpec::Burst { rate_milli: 1000, mult: 2, on_mcycles: 4, off_mcycles: 0 },
                "off=0",
            ),
        ] {
            match ArrivalGen::new(spec.clone(), 1, 0) {
                Err(SimError::BadSpec { token, .. }) => assert_eq!(token, tok, "{spec:?}"),
                other => panic!("{spec:?} must be BadSpec, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_canonical_parse_round_trips_over_generated_specs() {
        // Fuzz-style round trip: generated specs (including extreme but
        // legal durations) must satisfy
        // parse(canonical(spec)) == spec, and canonical must be a fixed
        // point. splitmix64 keeps it deterministic.
        let mut s = SplitMix::new(0xfeed_beef, 9);
        for i in 0..2_000u64 {
            let rate_milli = s.next_u64() % 1_000_000 + 1;
            let mult = s.next_u64() % 16 + 1;
            let spec = match i % 3 {
                0 => ArrivalSpec::Poisson { rate_milli },
                1 => {
                    let on = s.next_u64() % (MAX_MCYCLES / 2 - 1) + 1;
                    let off = s.next_u64() % (MAX_MCYCLES / 2 - 1) + 1;
                    ArrivalSpec::Burst { rate_milli, mult, on_mcycles: on, off_mcycles: off }
                }
                _ => {
                    let period = s.next_u64() % (MAX_MCYCLES - 8) + 8;
                    ArrivalSpec::Diurnal { rate_milli, mult, period_mcycles: period }
                }
            };
            spec.validate().unwrap();
            let canon = spec.canonical();
            let back = ArrivalSpec::parse(&canon)
                .unwrap_or_else(|e| panic!("canonical {canon:?} must re-parse: {e}"));
            assert_eq!(back, spec, "round trip through {canon:?}");
            assert_eq!(back.canonical(), canon, "canonical must be a fixed point");
        }
    }
}
