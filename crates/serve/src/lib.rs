//! Open-loop serve mode: thousands of simulated client sessions issuing
//! queries against one long-lived engine instance, under a seeded
//! arrival process on the *model clock* — so a serve run is a pure
//! function of its spec and replays bit-identically.
//!
//! Batch sweeps measure mean cycles per trial; this crate asks the
//! production question instead: what happens to p99 latency — and to
//! the engine itself — when arrivals are bursty and the offered load
//! exceeds capacity? The robustness core is the admission pipeline in
//! front of the engine:
//!
//! * bounded per-tenant queues with backpressure ([`driver`]),
//! * token-bucket admission control (integer milli-tokens),
//! * per-query deadlines with cooperative cancellation at phase
//!   boundaries — abandoned queries charge the cycles they burned,
//! * a load-shedding policy ladder (reject newest → reject over-quota
//!   tenants → degrade to sampled answers) driven by queue depth and
//!   telescoping per-epoch counters,
//! * per-tenant circuit breakers reusing
//!   [`nqp_core::runner::RetryPolicy`]'s backoff schedule.
//!
//! Latency is recorded in a fixed-bucket log-scale integer histogram
//! ([`histogram::LatencyHistogram`]) — no floats anywhere on the serve
//! hot path — and reported as p50/p95/p99/p99.9 plus per-tenant SLO
//! attainment and shed/timeout/degraded counts ([`report`]).
//!
//! The engine itself is represented by per-class *calibrated profiles*:
//! each (configuration, query class, health) pair is run once through
//! the real simulator and its per-phase cycle costs captured; the serve
//! loop is then a deterministic discrete-event simulation over those
//! profiles, which is what lets one run drive thousands of sessions
//! without paying a full engine simulation per query. Determinism
//! argument: arrivals, admission decisions, service times, and the
//! clock itself are all integer functions of the seed — DESIGN.md §4f.
//! Because calibration runs the real engine, `SimConfig::shards` (the
//! CLI's `--shards N`, DESIGN.md §4h) flows through it too: the
//! calibrated profiles — and therefore every serve report — are
//! byte-identical at every shard count. Spec parsing is total:
//! malformed or overflow-prone `--arrivals`/`--outage`/`--advisor`
//! values surface as typed [`nqp_sim::SimError::BadSpec`] errors at
//! parse time ([`arrival`]), never a panic mid-run.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arrival;
pub mod driver;
pub mod histogram;
pub mod report;
pub mod spec;

pub use arrival::{ArrivalGen, ArrivalSpec};
pub use driver::{run_cells, run_serve};
pub use histogram::LatencyHistogram;
pub use report::{CellStats, EpochRow, ServeReport, Session, TenantStats};
pub use spec::{CellInput, ClassProfile, OutageSpec, ServeAdvisor, ServeOutcome, ServeSpec};
