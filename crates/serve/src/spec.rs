//! Serve-run specification: everything a cell needs to be a pure
//! function of its inputs.

use crate::arrival::ArrivalSpec;
use nqp_sim::{SimError, SimResult};

/// Cycles per Mcycle — spec durations are given in Mcycles.
pub const MCYCLE: u64 = 1_000_000;

/// Calibrated cost profile for one query class under one engine
/// configuration. Captured once from a real simulator run (per-phase
/// cycles from the trace spans); the serve loop replays it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassProfile {
    /// Query class name (e.g. `w1`).
    pub name: String,
    /// Per-phase `(label, cycles)` under healthy hardware.
    pub healthy: Vec<(String, u64)>,
    /// Per-phase costs while a node is offline (post-evacuation).
    pub degraded: Vec<(String, u64)>,
    /// Pages the engine evacuates when the outage hits mid-serve.
    pub evacuated_pages: u64,
}

impl ClassProfile {
    /// Total healthy service cycles.
    #[must_use]
    pub fn healthy_cycles(&self) -> u64 {
        self.healthy.iter().map(|(_, c)| *c).sum()
    }
}

/// A planned node outage inside the serve window, parsed from
/// `--outage T1..T2:node=N` (times in Mcycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageSpec {
    /// Outage onset, Mcycles.
    pub start_mcycles: u64,
    /// Recovery, Mcycles.
    pub end_mcycles: u64,
    /// Which NUMA node goes dark.
    pub node: usize,
}

impl OutageSpec {
    /// Parse `T1..T2:node=N`.
    pub fn parse(s: &str) -> SimResult<OutageSpec> {
        let bad = || SimError::Harness {
            what: format!("malformed --outage spec `{s}` (expected T1..T2:node=N, Mcycles)"),
        };
        let (range, node) = s.split_once(':').ok_or_else(bad)?;
        let node = node.strip_prefix("node=").ok_or_else(bad)?;
        let (t1, t2) = range.split_once("..").ok_or_else(bad)?;
        let start_mcycles: u64 = t1.trim().parse().map_err(|_| bad())?;
        let end_mcycles: u64 = t2.trim().parse().map_err(|_| bad())?;
        let node: usize = node.trim().parse().map_err(|_| bad())?;
        if end_mcycles <= start_mcycles {
            return Err(bad());
        }
        Ok(OutageSpec { start_mcycles, end_mcycles, node })
    }

    /// Canonical form (round-trips through [`OutageSpec::parse`]).
    #[must_use]
    pub fn canonical(&self) -> String {
        format!("{}..{}:node={}", self.start_mcycles, self.end_mcycles, self.node)
    }
}

/// What happened to one session, end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Completed at full fidelity within its deadline.
    Completed,
    /// Completed at full fidelity but past its deadline (SLO miss).
    Late,
    /// Completed as a sampled (degraded) answer under ladder level 3.
    Degraded,
    /// Abandoned at a phase boundary after its deadline passed.
    Timeout,
    /// Rejected before admission (queue full).
    ShedQueue,
    /// Rejected because its tenant exceeded fair share under pressure.
    ShedQuota,
    /// Rejected by its tenant's open circuit breaker.
    ShedBreaker,
}

impl ServeOutcome {
    /// Short stable label used in traces and session dumps.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ServeOutcome::Completed => "completed",
            ServeOutcome::Late => "late",
            ServeOutcome::Degraded => "degraded",
            ServeOutcome::Timeout => "timeout",
            ServeOutcome::ShedQueue => "shed-queue",
            ServeOutcome::ShedQuota => "shed-quota",
            ServeOutcome::ShedBreaker => "shed-breaker",
        }
    }
}

/// Full specification of one serve run — the driver is a pure function
/// of this struct plus the class profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSpec {
    /// Number of simulated tenants.
    pub tenants: usize,
    /// Serve window length, Mcycles.
    pub duration_mcycles: u64,
    /// Aggregate arrival process across all tenants.
    pub arrivals: ArrivalSpec,
    /// Concurrent service lanes (engine admission width).
    pub lanes: usize,
    /// Bounded per-tenant queue capacity.
    pub queue_cap: usize,
    /// Token-bucket capacity per tenant (whole tokens).
    pub bucket_cap: u64,
    /// Token refill rate per tenant, milli-tokens per Mcycle.
    pub refill_milli_per_mcycle: u64,
    /// Per-query deadline, Mcycles from arrival. Also the SLO target.
    pub deadline_mcycles: u64,
    /// Consecutive rejections that trip a tenant's circuit breaker.
    pub breaker_threshold: u64,
    /// Telescoping-counter epoch length, Mcycles.
    pub epoch_mcycles: u64,
    /// Optional mid-serve node outage.
    pub outage: Option<OutageSpec>,
    /// Seed for arrivals and tenant/class assignment.
    pub seed: u64,
}

impl ServeSpec {
    /// Validation used by the CLI empty-spec gate: a spec that can
    /// never produce work is an error, and one that would produce an
    /// unbounded amount of it is too.
    pub fn validate(&self) -> SimResult<()> {
        let harness = |what: String| SimError::Harness { what };
        if self.tenants == 0 {
            return Err(harness("serve spec is empty: 0 tenants".into()));
        }
        if self.duration_mcycles == 0 {
            return Err(harness("serve spec is empty: 0 duration".into()));
        }
        if self.arrivals.base_rate_milli() == 0 {
            return Err(harness("serve spec is empty: arrival rate 0".into()));
        }
        if self.lanes == 0 || self.queue_cap == 0 {
            return Err(harness("serve spec needs at least 1 lane and queue slot".into()));
        }
        if self.epoch_mcycles == 0 {
            return Err(harness("serve epoch must be nonzero".into()));
        }
        // Expected arrivals at peak rate, capped to keep a typo from
        // turning into a multi-minute spin.
        let expected =
            self.arrivals.peak_rate_milli() as u128 * self.duration_mcycles as u128 / 1000;
        if expected > 4_000_000 {
            return Err(harness(format!(
                "serve spec would generate ~{expected} arrivals (cap 4000000); \
                 lower the rate or duration"
            )));
        }
        Ok(())
    }
}

/// One serve cell: a named engine configuration plus the spec it runs
/// under. `run_cells` calibrates profiles per cell via a caller-supplied
/// closure, so this crate never depends on the workload layer.
#[derive(Debug, Clone)]
pub struct CellInput {
    /// Engine-configuration name (e.g. `tuned (+flags)`).
    pub config: String,
    /// The serve spec (usually shared across cells).
    pub spec: ServeSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServeSpec {
        ServeSpec {
            tenants: 4,
            duration_mcycles: 10,
            arrivals: ArrivalSpec::Poisson { rate_milli: 20_000 },
            lanes: 2,
            queue_cap: 8,
            bucket_cap: 8,
            refill_milli_per_mcycle: 4000,
            deadline_mcycles: 5,
            breaker_threshold: 8,
            epoch_mcycles: 2,
            outage: None,
            seed: 42,
        }
    }

    #[test]
    fn outage_spec_round_trips() {
        let o = OutageSpec::parse("12..20:node=1").unwrap();
        assert_eq!(o, OutageSpec { start_mcycles: 12, end_mcycles: 20, node: 1 });
        assert_eq!(OutageSpec::parse(&o.canonical()).unwrap(), o);
        for bad in ["", "12..20", "20..12:node=1", "12:node=1", "a..b:node=1"] {
            assert!(OutageSpec::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn empty_specs_fail_validation() {
        assert!(spec().validate().is_ok());
        let mut s = spec();
        s.tenants = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.duration_mcycles = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.arrivals = ArrivalSpec::Poisson { rate_milli: 0 };
        assert!(s.validate().is_err());
        let mut s = spec();
        s.duration_mcycles = 1_000_000_000;
        assert!(s.validate().is_err(), "runaway arrival counts are rejected");
    }
}
