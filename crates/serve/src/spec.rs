//! Serve-run specification: everything a cell needs to be a pure
//! function of its inputs.

use crate::arrival::ArrivalSpec;
use nqp_sim::{SimError, SimResult};

/// Cycles per Mcycle — spec durations are given in Mcycles.
pub const MCYCLE: u64 = 1_000_000;

/// Calibrated cost profile for one query class under one engine
/// configuration. Captured once from a real simulator run (per-phase
/// cycles from the trace spans); the serve loop replays it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassProfile {
    /// Query class name (e.g. `w1`).
    pub name: String,
    /// Per-phase `(label, cycles)` under healthy hardware.
    pub healthy: Vec<(String, u64)>,
    /// Per-phase costs while a node is offline (post-evacuation).
    pub degraded: Vec<(String, u64)>,
    /// Pages the engine evacuates when the outage hits mid-serve.
    pub evacuated_pages: u64,
}

impl ClassProfile {
    /// Total healthy service cycles.
    #[must_use]
    pub fn healthy_cycles(&self) -> u64 {
        self.healthy.iter().map(|(_, c)| *c).sum()
    }
}

/// A planned node outage inside the serve window, parsed from
/// `--outage T1..T2:node=N` (times in Mcycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageSpec {
    /// Outage onset, Mcycles.
    pub start_mcycles: u64,
    /// Recovery, Mcycles.
    pub end_mcycles: u64,
    /// Which NUMA node goes dark.
    pub node: usize,
}

impl OutageSpec {
    /// Parse `T1..T2:node=N`. Errors are typed [`SimError::BadSpec`]
    /// carrying the offending token verbatim, so the CLI error names
    /// exactly what to fix — truncated and garbage input never panics.
    pub fn parse(s: &str) -> SimResult<OutageSpec> {
        let bad = |token: &str, why: &str| SimError::BadSpec {
            flag: "--outage".to_string(),
            token: token.to_string(),
            why: format!("{why} (expected T1..T2:node=N, Mcycles)"),
        };
        let (range, node) =
            s.split_once(':').ok_or_else(|| bad(s, "missing `:node=N`"))?;
        let node = node
            .strip_prefix("node=")
            .ok_or_else(|| bad(node, "expected `node=N`"))?;
        let (t1, t2) = range
            .split_once("..")
            .ok_or_else(|| bad(range, "expected a `T1..T2` window"))?;
        let start_mcycles: u64 =
            t1.trim().parse().map_err(|_| bad(t1, "bad window start"))?;
        let end_mcycles: u64 =
            t2.trim().parse().map_err(|_| bad(t2, "bad window end"))?;
        let node: usize = node.trim().parse().map_err(|_| bad(node, "bad node id"))?;
        if end_mcycles <= start_mcycles {
            return Err(bad(range, "the window must end after it starts"));
        }
        Ok(OutageSpec { start_mcycles, end_mcycles, node })
    }

    /// Canonical form (round-trips through [`OutageSpec::parse`]).
    #[must_use]
    pub fn canonical(&self) -> String {
        format!("{}..{}:node={}", self.start_mcycles, self.end_mcycles, self.node)
    }
}

/// Engine-side runtime advisor for a serve run, parsed from
/// `--advisor static|online[:rearm=N]`.
///
/// A mid-serve outage evacuates the dark node's pages onto the
/// survivors; when the node returns, nothing moves them back. Under
/// [`ServeAdvisor::Static`] that placement residue persists — service
/// keeps paying the degraded per-phase costs for the rest of the run.
/// Under [`ServeAdvisor::Online`] the epoch-driven controller's fault
/// circuit breaker ([`nqp_advisor::CircuitBreaker`]) freezes during
/// the outage, re-arms after `rearm_after` consecutive quiet epochs,
/// and the re-arm epoch re-homes the evacuated pages — healthy costs
/// resume from the next dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeAdvisor {
    /// No runtime re-tuning: outage placement residue persists.
    #[default]
    Static,
    /// Guarded re-tuning behind the fault circuit breaker.
    Online {
        /// Quiet epochs required after the outage before the breaker
        /// re-arms and the re-home runs.
        rearm_after: u64,
    },
}

impl ServeAdvisor {
    /// Parse `static` or `online[:rearm=N]`. Errors are typed
    /// [`SimError::BadSpec`] naming the offending token.
    pub fn parse(s: &str) -> SimResult<ServeAdvisor> {
        let bad = |token: &str, why: &str| SimError::BadSpec {
            flag: "--advisor".to_string(),
            token: token.to_string(),
            why: format!("{why} (expected static or online[:rearm=N])"),
        };
        let (kind, rest) = match s.split_once(':') {
            Some((k, r)) => (k.trim(), Some(r)),
            None => (s.trim(), None),
        };
        match kind {
            "static" => match rest {
                Some(r) => Err(bad(r, "static takes no parameters")),
                None => Ok(ServeAdvisor::Static),
            },
            "online" => {
                let rearm_after = match rest {
                    Some(r) => {
                        let v = r
                            .strip_prefix("rearm=")
                            .ok_or_else(|| bad(r, "unknown parameter"))?;
                        v.trim().parse().map_err(|_| bad(v, "bad rearm count"))?
                    }
                    None => 2,
                };
                Ok(ServeAdvisor::Online { rearm_after })
            }
            other => Err(bad(other, "unknown advisor mode")),
        }
    }

    /// Canonical form (round-trips through [`ServeAdvisor::parse`]).
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            ServeAdvisor::Static => "static".to_string(),
            ServeAdvisor::Online { rearm_after } => format!("online:rearm={rearm_after}"),
        }
    }
}

/// What happened to one session, end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Completed at full fidelity within its deadline.
    Completed,
    /// Completed at full fidelity but past its deadline (SLO miss).
    Late,
    /// Completed as a sampled (degraded) answer under ladder level 3.
    Degraded,
    /// Abandoned at a phase boundary after its deadline passed.
    Timeout,
    /// Rejected before admission (queue full).
    ShedQueue,
    /// Rejected because its tenant exceeded fair share under pressure.
    ShedQuota,
    /// Rejected by its tenant's open circuit breaker.
    ShedBreaker,
}

impl ServeOutcome {
    /// Short stable label used in traces and session dumps.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ServeOutcome::Completed => "completed",
            ServeOutcome::Late => "late",
            ServeOutcome::Degraded => "degraded",
            ServeOutcome::Timeout => "timeout",
            ServeOutcome::ShedQueue => "shed-queue",
            ServeOutcome::ShedQuota => "shed-quota",
            ServeOutcome::ShedBreaker => "shed-breaker",
        }
    }
}

/// Full specification of one serve run — the driver is a pure function
/// of this struct plus the class profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSpec {
    /// Number of simulated tenants.
    pub tenants: usize,
    /// Serve window length, Mcycles.
    pub duration_mcycles: u64,
    /// Aggregate arrival process across all tenants.
    pub arrivals: ArrivalSpec,
    /// Concurrent service lanes (engine admission width).
    pub lanes: usize,
    /// Bounded per-tenant queue capacity.
    pub queue_cap: usize,
    /// Token-bucket capacity per tenant (whole tokens).
    pub bucket_cap: u64,
    /// Token refill rate per tenant, milli-tokens per Mcycle.
    pub refill_milli_per_mcycle: u64,
    /// Per-query deadline, Mcycles from arrival. Also the SLO target.
    pub deadline_mcycles: u64,
    /// Consecutive rejections that trip a tenant's circuit breaker.
    pub breaker_threshold: u64,
    /// Telescoping-counter epoch length, Mcycles.
    pub epoch_mcycles: u64,
    /// Optional mid-serve node outage.
    pub outage: Option<OutageSpec>,
    /// Runtime advisor mode (outage recovery behaviour).
    pub advisor: ServeAdvisor,
    /// Seed for arrivals and tenant/class assignment.
    pub seed: u64,
}

impl ServeSpec {
    /// Validation used by the CLI empty-spec gate: a spec that can
    /// never produce work is an error, and one that would produce an
    /// unbounded amount of it is too.
    pub fn validate(&self) -> SimResult<()> {
        let harness = |what: String| SimError::Harness { what };
        if self.tenants == 0 {
            return Err(harness("serve spec is empty: 0 tenants".into()));
        }
        if self.duration_mcycles == 0 {
            return Err(harness("serve spec is empty: 0 duration".into()));
        }
        if self.arrivals.base_rate_milli() == 0 {
            return Err(harness("serve spec is empty: arrival rate 0".into()));
        }
        if self.lanes == 0 || self.queue_cap == 0 {
            return Err(harness("serve spec needs at least 1 lane and queue slot".into()));
        }
        if self.epoch_mcycles == 0 {
            return Err(harness("serve epoch must be nonzero".into()));
        }
        // Expected arrivals at peak rate, capped to keep a typo from
        // turning into a multi-minute spin.
        let expected =
            self.arrivals.peak_rate_milli() as u128 * self.duration_mcycles as u128 / 1000;
        if expected > 4_000_000 {
            return Err(harness(format!(
                "serve spec would generate ~{expected} arrivals (cap 4000000); \
                 lower the rate or duration"
            )));
        }
        Ok(())
    }
}

/// One serve cell: a named engine configuration plus the spec it runs
/// under. `run_cells` calibrates profiles per cell via a caller-supplied
/// closure, so this crate never depends on the workload layer.
#[derive(Debug, Clone)]
pub struct CellInput {
    /// Engine-configuration name (e.g. `tuned (+flags)`).
    pub config: String,
    /// The serve spec (usually shared across cells).
    pub spec: ServeSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServeSpec {
        ServeSpec {
            tenants: 4,
            duration_mcycles: 10,
            arrivals: ArrivalSpec::Poisson { rate_milli: 20_000 },
            lanes: 2,
            queue_cap: 8,
            bucket_cap: 8,
            refill_milli_per_mcycle: 4000,
            deadline_mcycles: 5,
            breaker_threshold: 8,
            epoch_mcycles: 2,
            outage: None,
            advisor: ServeAdvisor::default(),
            seed: 42,
        }
    }

    #[test]
    fn outage_spec_round_trips() {
        let o = OutageSpec::parse("12..20:node=1").unwrap();
        assert_eq!(o, OutageSpec { start_mcycles: 12, end_mcycles: 20, node: 1 });
        assert_eq!(OutageSpec::parse(&o.canonical()).unwrap(), o);
        for bad in ["", "12..20", "20..12:node=1", "12:node=1", "a..b:node=1"] {
            assert!(OutageSpec::parse(bad).is_err(), "{bad:?}");
        }
    }

    /// Satellite gate: truncated and garbage `--outage` input yields a
    /// typed error naming the offending token — never a panic.
    #[test]
    fn outage_errors_name_the_offending_token() {
        let token = |s: &str| match OutageSpec::parse(s).unwrap_err() {
            SimError::BadSpec { flag, token, .. } => {
                assert_eq!(flag, "--outage");
                token
            }
            other => panic!("expected BadSpec, got {other}"),
        };
        assert_eq!(token("12..20"), "12..20", "missing node clause");
        assert_eq!(token("12..20:core=1"), "core=1", "wrong clause keyword");
        assert_eq!(token("12..junk:node=1"), "junk", "garbage window end");
        assert_eq!(token("oops..20:node=1"), "oops", "garbage window start");
        assert_eq!(token("12..20:node=x"), "x", "garbage node id");
        assert_eq!(token("20..12:node=1"), "20..12", "inverted window");
        assert_eq!(token(""), "", "empty spec is truncated input, not a panic");
    }

    #[test]
    fn advisor_spec_round_trips_and_rejects_garbage() {
        assert_eq!(ServeAdvisor::parse("static").unwrap(), ServeAdvisor::Static);
        assert_eq!(
            ServeAdvisor::parse("online").unwrap(),
            ServeAdvisor::Online { rearm_after: 2 }
        );
        let o = ServeAdvisor::parse("online:rearm=5").unwrap();
        assert_eq!(o, ServeAdvisor::Online { rearm_after: 5 });
        assert_eq!(ServeAdvisor::parse(&o.canonical()).unwrap(), o);
        assert_eq!(ServeAdvisor::Static.canonical(), "static");
        for (bad, tok) in [
            ("offline", "offline"),
            ("online:rearm=x", "x"),
            ("online:x=2", "x=2"),
            ("static:rearm=2", "rearm=2"),
            ("", ""),
        ] {
            match ServeAdvisor::parse(bad).unwrap_err() {
                SimError::BadSpec { flag, token, .. } => {
                    assert_eq!(flag, "--advisor");
                    assert_eq!(token, tok, "{bad:?}");
                }
                other => panic!("expected BadSpec for {bad:?}, got {other}"),
            }
        }
    }

    #[test]
    fn empty_specs_fail_validation() {
        assert!(spec().validate().is_ok());
        let mut s = spec();
        s.tenants = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.duration_mcycles = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.arrivals = ArrivalSpec::Poisson { rate_milli: 0 };
        assert!(s.validate().is_err());
        let mut s = spec();
        s.duration_mcycles = 1_000_000_000;
        assert!(s.validate().is_err(), "runaway arrival counts are rejected");
    }
}
