//! Fixed-bucket log-scale latency histogram — integer-only.
//!
//! Values below 16 get exact buckets; above that, each power-of-two
//! octave is split into 8 sub-buckets (relative error ≤ 12.5%), the
//! same shape HdrHistogram uses at 3 significant bits. Recording is a
//! shift, a mask, and an add — no floats, no allocation after
//! construction — so it sits on the serve hot path without perturbing
//! determinism or speed.

/// Buckets: 16 exact + 8 per octave for octaves 4..=63.
const EXACT: usize = 16;
const SUBS: usize = 8;
const NBUCKETS: usize = EXACT + (64 - 4) * SUBS;

/// Log-scale integer histogram of cycle counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; NBUCKETS], total: 0, max: 0 }
    }

    fn bucket_of(v: u64) -> usize {
        if v < EXACT as u64 {
            v as usize
        } else {
            let o = 63 - v.leading_zeros() as usize; // o >= 4
            let sub = ((v >> (o - 3)) & 7) as usize;
            EXACT + (o - 4) * SUBS + sub
        }
    }

    /// Upper bound (inclusive) of a bucket — the value reported for
    /// quantiles that land in it.
    fn bucket_upper(idx: usize) -> u64 {
        if idx < EXACT {
            idx as u64
        } else {
            let o = (idx - EXACT) / SUBS + 4;
            let sub = ((idx - EXACT) % SUBS) as u64;
            // Subtract 1 before adding the sub-bucket span: the top
            // sub-bucket of octave 63 bounds at exactly u64::MAX, and
            // the naive `2^o + span - 1` order overflows there.
            ((1u64 << o) - 1).saturating_add((sub + 1) << (o - 3))
        }
    }

    /// Record one latency observation (in cycles).
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q_num/q_den` quantile as a bucket upper bound, clamped to
    /// the recorded max. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q_num: u64, q_den: u64) -> u64 {
        if self.total == 0 || q_den == 0 {
            return 0;
        }
        // rank = ceil(total * q), at least 1.
        let rank = ((self.total as u128 * q_num as u128).div_ceil(q_den as u128) as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// p50 in cycles.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    /// p95 in cycles.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(95, 100)
    }

    /// p99 in cycles.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// p99.9 in cycles.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(999, 1000)
    }

    /// Non-empty buckets as `(index, count)` pairs — the journal form.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuild a histogram from journal form. `max` is stored alongside
    /// because buckets only bound it.
    #[must_use]
    pub fn from_buckets(buckets: &[(usize, u64)], max: u64) -> Self {
        let mut h = Self::new();
        for &(i, c) in buckets {
            if i < NBUCKETS {
                h.counts[i] = c;
                h.total += c;
            }
        }
        h.max = max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 16);
        assert_eq!(h.quantile(1, 16), 0);
        assert_eq!(h.quantile(8, 16), 7);
        assert_eq!(h.quantile(16, 16), 15);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value maps to a bucket whose upper bound is >= it and
        // within 12.5% relative error.
        for v in [16u64, 17, 100, 1023, 1024, 65_535, 1_000_000, u64::MAX / 2] {
            let idx = LatencyHistogram::bucket_of(v);
            let upper = LatencyHistogram::bucket_upper(idx);
            assert!(upper >= v, "upper({idx})={upper} < {v}");
            assert!(upper - v <= v / 8 + 1, "error too large for {v}: {upper}");
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        // p50 ≈ 50_000, p99 ≈ 99_000; log buckets allow 12.5% slack.
        let p50 = h.p50();
        assert!((45_000..=57_000).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((90_000..=100_000).contains(&p99), "p99={p99}");
        assert_eq!(h.max(), 100_000);
        assert!(h.p999() <= h.max());
    }

    #[test]
    fn journal_round_trip_preserves_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 900, 17_000, 250_000, 250_000, 1_000_000_000] {
            h.record(v);
        }
        let back = LatencyHistogram::from_buckets(&h.nonzero_buckets(), h.max());
        assert_eq!(back, h);
        assert_eq!(back.p99(), h.p99());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn recording_u64_max_does_not_overflow() {
        // Regression: the top sub-bucket of octave 63 used to compute
        // 2^63 + 8*2^60 = 2^64 before subtracting 1 — a debug-build
        // panic (and a release-build wrap to 0) the .min(max) clamp in
        // quantile() only masked.
        let idx = LatencyHistogram::bucket_of(u64::MAX);
        assert_eq!(idx, NBUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_upper(idx), u64::MAX);
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.p999(), u64::MAX);
        // Mixed with small values the tail still reports the top.
        h.record(1);
        h.record(2);
        assert_eq!(h.p999(), u64::MAX);
        assert!(h.p50() <= 2);
    }

    #[test]
    fn bucket_bounds_contain_every_value_across_the_full_range() {
        // Property sweep over the whole u64 range: every bucket's
        // bounds must be exact partitions (lower = previous upper + 1,
        // bucket_of maps both endpoints back to the bucket), and a
        // deterministic fuzz of arbitrary values must always land in a
        // bucket whose bounds contain them.
        let mut prev_upper: Option<u64> = None;
        for idx in 0..NBUCKETS {
            let upper = LatencyHistogram::bucket_upper(idx);
            let lower = prev_upper.map_or(0, |p| p + 1);
            assert!(upper >= lower, "bucket {idx}: upper {upper} < lower {lower}");
            assert_eq!(LatencyHistogram::bucket_of(lower), idx, "lower bound of {idx}");
            assert_eq!(LatencyHistogram::bucket_of(upper), idx, "upper bound of {idx}");
            prev_upper = Some(upper);
        }
        // The last bucket must reach the top of the range exactly.
        assert_eq!(prev_upper, Some(u64::MAX));

        // splitmix64 fuzz: 100k arbitrary values across the range.
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for _ in 0..100_000 {
            let v = next();
            let idx = LatencyHistogram::bucket_of(v);
            let upper = LatencyHistogram::bucket_upper(idx);
            let lower = if idx == 0 { 0 } else { LatencyHistogram::bucket_upper(idx - 1) + 1 };
            assert!(lower <= v && v <= upper, "{v} outside bucket {idx}: [{lower}, {upper}]");
        }
    }
}
