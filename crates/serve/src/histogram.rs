//! Fixed-bucket log-scale latency histogram — integer-only.
//!
//! Values below 16 get exact buckets; above that, each power-of-two
//! octave is split into 8 sub-buckets (relative error ≤ 12.5%), the
//! same shape HdrHistogram uses at 3 significant bits. Recording is a
//! shift, a mask, and an add — no floats, no allocation after
//! construction — so it sits on the serve hot path without perturbing
//! determinism or speed.

/// Buckets: 16 exact + 8 per octave for octaves 4..=63.
const EXACT: usize = 16;
const SUBS: usize = 8;
const NBUCKETS: usize = EXACT + (64 - 4) * SUBS;

/// Log-scale integer histogram of cycle counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; NBUCKETS], total: 0, max: 0 }
    }

    fn bucket_of(v: u64) -> usize {
        if v < EXACT as u64 {
            v as usize
        } else {
            let o = 63 - v.leading_zeros() as usize; // o >= 4
            let sub = ((v >> (o - 3)) & 7) as usize;
            EXACT + (o - 4) * SUBS + sub
        }
    }

    /// Upper bound (inclusive) of a bucket — the value reported for
    /// quantiles that land in it.
    fn bucket_upper(idx: usize) -> u64 {
        if idx < EXACT {
            idx as u64
        } else {
            let o = (idx - EXACT) / SUBS + 4;
            let sub = ((idx - EXACT) % SUBS) as u64;
            (1u64 << o) + (sub + 1) * (1u64 << (o - 3)) - 1
        }
    }

    /// Record one latency observation (in cycles).
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q_num/q_den` quantile as a bucket upper bound, clamped to
    /// the recorded max. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q_num: u64, q_den: u64) -> u64 {
        if self.total == 0 || q_den == 0 {
            return 0;
        }
        // rank = ceil(total * q), at least 1.
        let rank = ((self.total as u128 * q_num as u128).div_ceil(q_den as u128) as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// p50 in cycles.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    /// p95 in cycles.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(95, 100)
    }

    /// p99 in cycles.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// p99.9 in cycles.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(999, 1000)
    }

    /// Non-empty buckets as `(index, count)` pairs — the journal form.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuild a histogram from journal form. `max` is stored alongside
    /// because buckets only bound it.
    #[must_use]
    pub fn from_buckets(buckets: &[(usize, u64)], max: u64) -> Self {
        let mut h = Self::new();
        for &(i, c) in buckets {
            if i < NBUCKETS {
                h.counts[i] = c;
                h.total += c;
            }
        }
        h.max = max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 16);
        assert_eq!(h.quantile(1, 16), 0);
        assert_eq!(h.quantile(8, 16), 7);
        assert_eq!(h.quantile(16, 16), 15);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value maps to a bucket whose upper bound is >= it and
        // within 12.5% relative error.
        for v in [16u64, 17, 100, 1023, 1024, 65_535, 1_000_000, u64::MAX / 2] {
            let idx = LatencyHistogram::bucket_of(v);
            let upper = LatencyHistogram::bucket_upper(idx);
            assert!(upper >= v, "upper({idx})={upper} < {v}");
            assert!(upper - v <= v / 8 + 1, "error too large for {v}: {upper}");
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        // p50 ≈ 50_000, p99 ≈ 99_000; log buckets allow 12.5% slack.
        let p50 = h.p50();
        assert!((45_000..=57_000).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((90_000..=100_000).contains(&p99), "p99={p99}");
        assert_eq!(h.max(), 100_000);
        assert!(h.p999() <= h.max());
    }

    #[test]
    fn journal_round_trip_preserves_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 900, 17_000, 250_000, 250_000, 1_000_000_000] {
            h.record(v);
        }
        let back = LatencyHistogram::from_buckets(&h.nonzero_buckets(), h.max());
        assert_eq!(back, h);
        assert_eq!(back.p99(), h.p99());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }
}
