//! Machine specifications: the hardware parameters of Table II that the
//! simulator consumes.

use crate::graph::{NodeId, Topology};

/// Identifier of a hardware thread (logical CPU) on a machine.
///
/// Hardware threads are numbered `0..total_hw_threads()`, grouped by node:
/// node `n` owns threads `n * threads_per_node .. (n + 1) * threads_per_node`.
pub type CoreId = usize;

/// Last-level-cache parameters for one NUMA node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSpec {
    /// LLC capacity per node, in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes (64 on every machine in the paper).
    pub line_bytes: u64,
    /// Latency of an LLC hit, in model cycles.
    pub hit_cycles: u64,
}

impl CacheSpec {
    /// Number of cache lines the LLC can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// TLB capacities for one page size, mirroring the "4KB TLB Capacity" and
/// "2MB TLB Capacity" rows of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbSpec {
    /// L1 TLB entries for this page size.
    pub l1_entries: u64,
    /// L2 TLB entries for this page size (0 when the machine has none).
    pub l2_entries: u64,
}

impl TlbSpec {
    /// Total translations that can be cached across both levels.
    pub fn total_entries(&self) -> u64 {
        self.l1_entries + self.l2_entries
    }

    /// Bytes of address space covered by the TLB at the given page size.
    pub fn reach_bytes(&self, page_bytes: u64) -> u64 {
        self.total_entries() * page_bytes
    }
}

/// Memory tier of one NUMA node's local memory.
///
/// Following *Emulating Hybrid Memory on NUMA Hardware* (PAPERS.md), a
/// slow tier (NVM DIMM bank or CXL memory expander) is modelled as a
/// NUMA node whose memory is slower than DRAM by constant factors:
/// asymmetric read/write latency multipliers applied on top of the
/// topology's hop-distance factor, plus a bandwidth derating on the
/// node's memory controller. A slow-tier node is usually also
/// *memory-only* (no cores), expressed separately by
/// [`MachineSpec::memory_only_nodes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemTier {
    /// Ordinary DRAM — every factor is 1.0, so an all-DRAM machine is
    /// bit-identical to one with no tier annotations at all.
    Dram,
    /// NVM / CXL-attached memory.
    SlowTier {
        /// Read latency multiplier relative to DRAM (>= 1.0).
        read_factor: f64,
        /// Write latency multiplier relative to DRAM. NVM writes are
        /// far slower than reads, so typically `write > read`.
        write_factor: f64,
        /// Fraction of DRAM controller bandwidth available (0 < f <= 1).
        bandwidth_factor: f64,
    },
}

impl MemTier {
    /// Whether this tier is slower than DRAM.
    pub fn is_slow(&self) -> bool {
        matches!(self, MemTier::SlowTier { .. })
    }

    /// Read latency multiplier (1.0 for DRAM).
    pub fn read_factor(&self) -> f64 {
        match self {
            MemTier::Dram => 1.0,
            MemTier::SlowTier { read_factor, .. } => *read_factor,
        }
    }

    /// Write latency multiplier (1.0 for DRAM).
    pub fn write_factor(&self) -> f64 {
        match self {
            MemTier::Dram => 1.0,
            MemTier::SlowTier { write_factor, .. } => *write_factor,
        }
    }

    /// Memory-controller bandwidth derating (1.0 for DRAM).
    pub fn bandwidth_factor(&self) -> f64 {
        match self {
            MemTier::Dram => 1.0,
            MemTier::SlowTier { bandwidth_factor, .. } => *bandwidth_factor,
        }
    }
}

/// Full specification of one of the evaluation machines.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Short name: `"A"`, `"B"`, `"C"`, or a custom label.
    pub name: String,
    /// Marketing model of the per-socket CPU, for reporting.
    pub cpu_model: String,
    /// Core clock in MHz (scales compute cost relative to memory cost).
    pub cpu_mhz: u64,
    /// The node/link graph with its latency tiers.
    pub topology: Topology,
    /// Hardware threads per NUMA node.
    pub threads_per_node: usize,
    /// Physical cores per NUMA node (differs from threads under SMT).
    pub cores_per_node: usize,
    /// Per-node last-level cache.
    pub llc: CacheSpec,
    /// TLB capacity for 4 KB pages.
    pub tlb_4k: TlbSpec,
    /// TLB capacity for 2 MB pages.
    pub tlb_2m: TlbSpec,
    /// Memory capacity per node, in bytes.
    pub mem_per_node_bytes: u64,
    /// DRAM latency of a local access in model cycles (before NUMA factor).
    pub dram_latency_cycles: u64,
    /// Per-node memory-controller bandwidth, in cache lines per cycle.
    ///
    /// Contention sets in when concurrent demand exceeds this.
    pub controller_lines_per_cycle: f64,
    /// Per-link interconnect bandwidth, in cache lines per cycle.
    pub link_lines_per_cycle: f64,
    /// Memory tier of each node's local memory, indexed by node id.
    /// Empty means every node is plain [`MemTier::Dram`] (all existing
    /// machines), which keeps the common case allocation-free.
    pub mem_tiers: Vec<MemTier>,
    /// Number of *trailing* nodes that contribute memory but no cores
    /// (CXL expanders, NVM banks behind their own home agent). Compute
    /// nodes are `0..num_nodes - memory_only_nodes`; threads are never
    /// scheduled on the tail.
    pub memory_only_nodes: usize,
    /// Memory capacity of each slow-tier node, overriding
    /// `mem_per_node_bytes` there. Slow tiers are usually much larger
    /// than the DRAM in front of them — that asymmetry is the whole
    /// point of tiering.
    pub slow_mem_per_node_bytes: Option<u64>,
}

impl MachineSpec {
    /// Nodes that have cores (can run threads). Memory-only nodes are
    /// the trailing `memory_only_nodes` ids, so compute nodes are
    /// always the prefix `0..compute_nodes()`.
    pub fn compute_nodes(&self) -> usize {
        self.topology.num_nodes().saturating_sub(self.memory_only_nodes)
    }

    /// Total hardware threads across all *compute* nodes (memory-only
    /// nodes contribute none).
    pub fn total_hw_threads(&self) -> usize {
        self.threads_per_node * self.compute_nodes()
    }

    /// Total physical cores across all compute nodes.
    pub fn total_cores(&self) -> usize {
        self.cores_per_node * self.compute_nodes()
    }

    /// Memory tier of `node`'s local memory.
    pub fn tier_of(&self, node: NodeId) -> MemTier {
        self.mem_tiers.get(node).copied().unwrap_or(MemTier::Dram)
    }

    /// Whether `node`'s memory is slower than DRAM.
    pub fn is_slow_tier(&self, node: NodeId) -> bool {
        self.tier_of(node).is_slow()
    }

    /// Whether any node carries a slow memory tier.
    pub fn has_slow_tier(&self) -> bool {
        self.mem_tiers.iter().any(MemTier::is_slow)
    }

    /// Memory capacity of `node`, in bytes. Slow-tier nodes use
    /// `slow_mem_per_node_bytes` when set.
    pub fn mem_bytes_of_node(&self, node: NodeId) -> u64 {
        match self.slow_mem_per_node_bytes {
            Some(bytes) if self.is_slow_tier(node) => bytes,
            _ => self.mem_per_node_bytes,
        }
    }

    /// Total memory across all nodes, in bytes.
    pub fn total_mem_bytes(&self) -> u64 {
        (0..self.topology.num_nodes())
            .map(|n| self.mem_bytes_of_node(n))
            .sum()
    }

    /// The NUMA node that owns hardware thread `core`.
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        debug_assert!(core < self.total_hw_threads());
        core / self.threads_per_node
    }

    /// The hardware threads living on `node`, in id order.
    pub fn cores_of_node(&self, node: NodeId) -> std::ops::Range<CoreId> {
        let start = node * self.threads_per_node;
        start..start + self.threads_per_node
    }

    /// Latency factor between the nodes of two cores.
    pub fn core_latency_factor(&self, a: CoreId, b: CoreId) -> f64 {
        self.topology
            .latency_factor(self.node_of_core(a), self.node_of_core(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::fully_connected;

    fn spec() -> MachineSpec {
        MachineSpec {
            name: "T".into(),
            cpu_model: "Testor 9000".into(),
            cpu_mhz: 2000,
            topology: fully_connected(4, vec![1.0, 1.5]).unwrap(),
            threads_per_node: 8,
            cores_per_node: 4,
            llc: CacheSpec { size_bytes: 1 << 20, line_bytes: 64, hit_cycles: 40 },
            tlb_4k: TlbSpec { l1_entries: 64, l2_entries: 512 },
            tlb_2m: TlbSpec { l1_entries: 32, l2_entries: 0 },
            mem_per_node_bytes: 1 << 30,
            dram_latency_cycles: 200,
            controller_lines_per_cycle: 0.5,
            link_lines_per_cycle: 0.25,
            mem_tiers: vec![],
            memory_only_nodes: 0,
            slow_mem_per_node_bytes: None,
        }
    }

    /// The test spec plus a fifth, memory-only NVM node.
    fn tiered_spec() -> MachineSpec {
        let mut m = spec();
        m.topology = fully_connected(5, vec![1.0, 1.5]).unwrap();
        m.mem_tiers = vec![
            MemTier::Dram,
            MemTier::Dram,
            MemTier::Dram,
            MemTier::Dram,
            MemTier::SlowTier { read_factor: 3.0, write_factor: 8.0, bandwidth_factor: 0.25 },
        ];
        m.memory_only_nodes = 1;
        m.slow_mem_per_node_bytes = Some(8 << 30);
        m
    }

    #[test]
    fn core_to_node_mapping_is_block_wise() {
        let m = spec();
        assert_eq!(m.total_hw_threads(), 32);
        assert_eq!(m.node_of_core(0), 0);
        assert_eq!(m.node_of_core(7), 0);
        assert_eq!(m.node_of_core(8), 1);
        assert_eq!(m.node_of_core(31), 3);
        assert_eq!(m.cores_of_node(2), 16..24);
    }

    #[test]
    fn totals() {
        let m = spec();
        assert_eq!(m.total_cores(), 16);
        assert_eq!(m.total_mem_bytes(), 4 << 30);
    }

    #[test]
    fn tlb_reach_scales_with_page_size() {
        let m = spec();
        assert_eq!(m.tlb_4k.total_entries(), 576);
        assert_eq!(m.tlb_4k.reach_bytes(4096), 576 * 4096);
        // 2 MB pages: fewer entries, far larger reach.
        assert!(m.tlb_2m.reach_bytes(2 << 20) > m.tlb_4k.reach_bytes(4096));
    }

    #[test]
    fn cache_line_count() {
        let m = spec();
        assert_eq!(m.llc.num_lines(), (1 << 20) / 64);
    }

    #[test]
    fn core_latency_factor_uses_topology() {
        let m = spec();
        assert_eq!(m.core_latency_factor(0, 7), 1.0); // same node
        assert_eq!(m.core_latency_factor(0, 8), 1.5); // one hop
    }

    #[test]
    fn untied_machine_defaults_to_dram_everywhere() {
        let m = spec();
        assert!(!m.has_slow_tier());
        assert_eq!(m.compute_nodes(), 4);
        for n in 0..4 {
            assert_eq!(m.tier_of(n), MemTier::Dram);
            assert_eq!(m.tier_of(n).read_factor(), 1.0);
            assert_eq!(m.tier_of(n).write_factor(), 1.0);
            assert_eq!(m.tier_of(n).bandwidth_factor(), 1.0);
            assert_eq!(m.mem_bytes_of_node(n), 1 << 30);
        }
    }

    #[test]
    fn memory_only_nodes_have_no_threads() {
        let m = tiered_spec();
        assert_eq!(m.topology.num_nodes(), 5);
        assert_eq!(m.compute_nodes(), 4);
        // Threads and cores count compute nodes only.
        assert_eq!(m.total_hw_threads(), 32);
        assert_eq!(m.total_cores(), 16);
        // The last valid core still maps to the last compute node.
        assert_eq!(m.node_of_core(31), 3);
    }

    #[test]
    fn slow_tier_factors_and_capacity() {
        let m = tiered_spec();
        assert!(m.has_slow_tier());
        assert!(!m.is_slow_tier(0) && m.is_slow_tier(4));
        let t = m.tier_of(4);
        assert_eq!(t.read_factor(), 3.0);
        assert_eq!(t.write_factor(), 8.0);
        assert_eq!(t.bandwidth_factor(), 0.25);
        // The slow node is big, the DRAM nodes keep their own size.
        assert_eq!(m.mem_bytes_of_node(4), 8 << 30);
        assert_eq!(m.mem_bytes_of_node(0), 1 << 30);
        assert_eq!(m.total_mem_bytes(), (4 << 30) + (8 << 30));
    }
}
