//! Machine specifications: the hardware parameters of Table II that the
//! simulator consumes.

use crate::graph::{NodeId, Topology};

/// Identifier of a hardware thread (logical CPU) on a machine.
///
/// Hardware threads are numbered `0..total_hw_threads()`, grouped by node:
/// node `n` owns threads `n * threads_per_node .. (n + 1) * threads_per_node`.
pub type CoreId = usize;

/// Last-level-cache parameters for one NUMA node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSpec {
    /// LLC capacity per node, in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes (64 on every machine in the paper).
    pub line_bytes: u64,
    /// Latency of an LLC hit, in model cycles.
    pub hit_cycles: u64,
}

impl CacheSpec {
    /// Number of cache lines the LLC can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// TLB capacities for one page size, mirroring the "4KB TLB Capacity" and
/// "2MB TLB Capacity" rows of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbSpec {
    /// L1 TLB entries for this page size.
    pub l1_entries: u64,
    /// L2 TLB entries for this page size (0 when the machine has none).
    pub l2_entries: u64,
}

impl TlbSpec {
    /// Total translations that can be cached across both levels.
    pub fn total_entries(&self) -> u64 {
        self.l1_entries + self.l2_entries
    }

    /// Bytes of address space covered by the TLB at the given page size.
    pub fn reach_bytes(&self, page_bytes: u64) -> u64 {
        self.total_entries() * page_bytes
    }
}

/// Full specification of one of the evaluation machines.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Short name: `"A"`, `"B"`, `"C"`, or a custom label.
    pub name: String,
    /// Marketing model of the per-socket CPU, for reporting.
    pub cpu_model: String,
    /// Core clock in MHz (scales compute cost relative to memory cost).
    pub cpu_mhz: u64,
    /// The node/link graph with its latency tiers.
    pub topology: Topology,
    /// Hardware threads per NUMA node.
    pub threads_per_node: usize,
    /// Physical cores per NUMA node (differs from threads under SMT).
    pub cores_per_node: usize,
    /// Per-node last-level cache.
    pub llc: CacheSpec,
    /// TLB capacity for 4 KB pages.
    pub tlb_4k: TlbSpec,
    /// TLB capacity for 2 MB pages.
    pub tlb_2m: TlbSpec,
    /// Memory capacity per node, in bytes.
    pub mem_per_node_bytes: u64,
    /// DRAM latency of a local access in model cycles (before NUMA factor).
    pub dram_latency_cycles: u64,
    /// Per-node memory-controller bandwidth, in cache lines per cycle.
    ///
    /// Contention sets in when concurrent demand exceeds this.
    pub controller_lines_per_cycle: f64,
    /// Per-link interconnect bandwidth, in cache lines per cycle.
    pub link_lines_per_cycle: f64,
}

impl MachineSpec {
    /// Total hardware threads across all nodes.
    pub fn total_hw_threads(&self) -> usize {
        self.threads_per_node * self.topology.num_nodes()
    }

    /// Total physical cores across all nodes.
    pub fn total_cores(&self) -> usize {
        self.cores_per_node * self.topology.num_nodes()
    }

    /// Total memory across all nodes, in bytes.
    pub fn total_mem_bytes(&self) -> u64 {
        self.mem_per_node_bytes * self.topology.num_nodes() as u64
    }

    /// The NUMA node that owns hardware thread `core`.
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        debug_assert!(core < self.total_hw_threads());
        core / self.threads_per_node
    }

    /// The hardware threads living on `node`, in id order.
    pub fn cores_of_node(&self, node: NodeId) -> std::ops::Range<CoreId> {
        let start = node * self.threads_per_node;
        start..start + self.threads_per_node
    }

    /// Latency factor between the nodes of two cores.
    pub fn core_latency_factor(&self, a: CoreId, b: CoreId) -> f64 {
        self.topology
            .latency_factor(self.node_of_core(a), self.node_of_core(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::fully_connected;

    fn spec() -> MachineSpec {
        MachineSpec {
            name: "T".into(),
            cpu_model: "Testor 9000".into(),
            cpu_mhz: 2000,
            topology: fully_connected(4, vec![1.0, 1.5]).unwrap(),
            threads_per_node: 8,
            cores_per_node: 4,
            llc: CacheSpec { size_bytes: 1 << 20, line_bytes: 64, hit_cycles: 40 },
            tlb_4k: TlbSpec { l1_entries: 64, l2_entries: 512 },
            tlb_2m: TlbSpec { l1_entries: 32, l2_entries: 0 },
            mem_per_node_bytes: 1 << 30,
            dram_latency_cycles: 200,
            controller_lines_per_cycle: 0.5,
            link_lines_per_cycle: 0.25,
        }
    }

    #[test]
    fn core_to_node_mapping_is_block_wise() {
        let m = spec();
        assert_eq!(m.total_hw_threads(), 32);
        assert_eq!(m.node_of_core(0), 0);
        assert_eq!(m.node_of_core(7), 0);
        assert_eq!(m.node_of_core(8), 1);
        assert_eq!(m.node_of_core(31), 3);
        assert_eq!(m.cores_of_node(2), 16..24);
    }

    #[test]
    fn totals() {
        let m = spec();
        assert_eq!(m.total_cores(), 16);
        assert_eq!(m.total_mem_bytes(), 4 << 30);
    }

    #[test]
    fn tlb_reach_scales_with_page_size() {
        let m = spec();
        assert_eq!(m.tlb_4k.total_entries(), 576);
        assert_eq!(m.tlb_4k.reach_bytes(4096), 576 * 4096);
        // 2 MB pages: fewer entries, far larger reach.
        assert!(m.tlb_2m.reach_bytes(2 << 20) > m.tlb_4k.reach_bytes(4096));
    }

    #[test]
    fn cache_line_count() {
        let m = spec();
        assert_eq!(m.llc.num_lines(), (1 << 20) / 64);
    }

    #[test]
    fn core_latency_factor_uses_topology() {
        let m = spec();
        assert_eq!(m.core_latency_factor(0, 7), 1.0); // same node
        assert_eq!(m.core_latency_factor(0, 8), 1.5); // one hop
    }
}
