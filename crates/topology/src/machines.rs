//! Presets for the three evaluation machines of the paper (Table II,
//! Figure 1), plus a tiny UMA machine for tests.
//!
//! Cycle-level parameters (`dram_latency_cycles`, bandwidth in lines per
//! cycle) are model values derived from each machine's memory clock and
//! interconnect transfer rate; they preserve the *ordering and ratios*
//! between the machines, which is what the paper's cross-machine
//! comparisons (Figure 5d, Figure 6) depend on.

use crate::builders::{fully_connected, twisted_ladder};
use crate::machine::{CacheSpec, MachineSpec, MemTier, TlbSpec};

const KB: u64 = 1024;
const MB: u64 = 1024 * KB;
const GB: u64 = 1024 * MB;

/// Machine A: 8× AMD Opteron 8220 (2.8 GHz), twisted-ladder topology,
/// 16 GB/node, 800 MHz memory, 2 GT/s HyperTransport.
///
/// The slowest memory subsystem and deepest topology of the three — NUMA
/// effects are largest here, which is why the paper runs most single-machine
/// experiments on it.
pub fn machine_a() -> MachineSpec {
    MachineSpec {
        name: "A".into(),
        cpu_model: "8x AMD Opteron 8220".into(),
        cpu_mhz: 2800,
        topology: twisted_ladder(vec![1.0, 1.2, 1.4, 1.6])
            .expect("machine A topology is statically valid"),
        threads_per_node: 2,
        cores_per_node: 2,
        llc: CacheSpec { size_bytes: 2 * MB, line_bytes: 64, hit_cycles: 40 },
        tlb_4k: TlbSpec { l1_entries: 32, l2_entries: 512 },
        tlb_2m: TlbSpec { l1_entries: 8, l2_entries: 0 },
        mem_per_node_bytes: 16 * GB,
        dram_latency_cycles: 320,
        controller_lines_per_cycle: 0.0035,
        link_lines_per_cycle: 0.008,
        mem_tiers: vec![],
        memory_only_nodes: 0,
        slow_mem_per_node_bytes: None,
    }
}

/// Machine B: 4× Intel Xeon E7520 (2.1 GHz), fully connected, 16 GB/node,
/// 1600 MHz memory, 4.8 GT/s QPI.
///
/// Local and remote latency are nearly equal (1.0 vs 1.1), so placement
/// matters least here — the paper measures only ~7% improvement from
/// tuning on this machine.
pub fn machine_b() -> MachineSpec {
    MachineSpec {
        name: "B".into(),
        cpu_model: "4x Intel Xeon E7520".into(),
        cpu_mhz: 2100,
        topology: fully_connected(4, vec![1.0, 1.1])
            .expect("machine B topology is statically valid"),
        threads_per_node: 8,
        cores_per_node: 4,
        llc: CacheSpec { size_bytes: 18 * MB, line_bytes: 64, hit_cycles: 45 },
        tlb_4k: TlbSpec { l1_entries: 64, l2_entries: 512 },
        tlb_2m: TlbSpec { l1_entries: 32, l2_entries: 0 },
        mem_per_node_bytes: 16 * GB,
        dram_latency_cycles: 240,
        controller_lines_per_cycle: 0.020,
        link_lines_per_cycle: 0.035,
        mem_tiers: vec![],
        memory_only_nodes: 0,
        slow_mem_per_node_bytes: None,
    }
}

/// Machine C: 4× Intel Xeon E7-4850 v4 (2.1 GHz), fully connected,
/// 768 GB/node (3 TB total), 2400 MHz memory, 8 GT/s QPI.
///
/// Modern hardware with the steepest remote penalty (2.1×): fast local
/// memory makes remote accesses *relatively* much more expensive.
pub fn machine_c() -> MachineSpec {
    MachineSpec {
        name: "C".into(),
        cpu_model: "4x Intel Xeon E7-4850 v4".into(),
        cpu_mhz: 2100,
        topology: fully_connected(4, vec![1.0, 2.1])
            .expect("machine C topology is statically valid"),
        threads_per_node: 16,
        cores_per_node: 8,
        llc: CacheSpec { size_bytes: 40 * MB, line_bytes: 64, hit_cycles: 50 },
        tlb_4k: TlbSpec { l1_entries: 64, l2_entries: 1536 },
        tlb_2m: TlbSpec { l1_entries: 32, l2_entries: 1536 },
        mem_per_node_bytes: 768 * GB,
        dram_latency_cycles: 180,
        controller_lines_per_cycle: 0.045,
        link_lines_per_cycle: 0.080,
        mem_tiers: vec![],
        memory_only_nodes: 0,
        slow_mem_per_node_bytes: None,
    }
}

/// A single-node uniform-memory machine; the control case used by tests to
/// check that NUMA-specific effects vanish when there is only one node.
pub fn uma_single_node() -> MachineSpec {
    MachineSpec {
        name: "UMA".into(),
        cpu_model: "1x Generic".into(),
        cpu_mhz: 2000,
        topology: crate::graph::Topology::new("uma-1", 1, vec![], vec![1.0])
            .expect("single-node topology is statically valid"),
        threads_per_node: 8,
        cores_per_node: 8,
        llc: CacheSpec { size_bytes: 8 * MB, line_bytes: 64, hit_cycles: 40 },
        tlb_4k: TlbSpec { l1_entries: 64, l2_entries: 512 },
        tlb_2m: TlbSpec { l1_entries: 32, l2_entries: 0 },
        mem_per_node_bytes: 32 * GB,
        dram_latency_cycles: 200,
        controller_lines_per_cycle: 0.030,
        link_lines_per_cycle: 0.030,
        mem_tiers: vec![],
        memory_only_nodes: 0,
        slow_mem_per_node_bytes: None,
    }
}

/// A small 4-node NUMA testbed: a scaled-down machine whose LLC and
/// memory-controller bandwidth are tiny, so cache-capacity misses,
/// remote-latency penalties, and controller rooflines all appear at
/// test-sized working sets (hundreds of KB instead of tens of MB).
/// Used by the phase-shift workload tests and the online-advisor
/// gates; not a paper machine.
pub fn numa_small() -> MachineSpec {
    MachineSpec {
        name: "S".into(),
        cpu_model: "4x Scaled Testbed".into(),
        cpu_mhz: 2000,
        topology: fully_connected(4, vec![1.0, 2.0])
            .expect("testbed topology is statically valid"),
        threads_per_node: 2,
        cores_per_node: 2,
        llc: CacheSpec { size_bytes: 64 * KB, line_bytes: 64, hit_cycles: 40 },
        tlb_4k: TlbSpec { l1_entries: 32, l2_entries: 256 },
        tlb_2m: TlbSpec { l1_entries: 8, l2_entries: 0 },
        mem_per_node_bytes: 64 * MB,
        dram_latency_cycles: 300,
        controller_lines_per_cycle: 0.004,
        link_lines_per_cycle: 0.012,
        mem_tiers: vec![],
        memory_only_nodes: 0,
        slow_mem_per_node_bytes: None,
    }
}

/// Machine B plus a CXL memory expander: a fifth, memory-only node
/// behind the fabric whose memory is ~2.5× slower to read, ~3.5× slower
/// to write, and delivers half the controller bandwidth — the CXL 1.1
/// direct-attach profile of *Emulating Hybrid Memory on NUMA Hardware*.
///
/// Like `numa_small`, this is a scaled *emulation testbed*, not a paper
/// machine: each DRAM node keeps only a sliver of capacity (8 MB) so
/// test-sized working sets overflow DRAM and spill onto the expander,
/// which holds the bulk of the machine's memory (16 GB). That makes the
/// no-daemon baseline ("all data on the slow tier") reachable at test
/// scale, which is what the tiering study measures against.
pub fn machine_b_cxl() -> MachineSpec {
    MachineSpec {
        name: "B_CXL".into(),
        cpu_model: "4x Intel Xeon E7520 + CXL expander".into(),
        cpu_mhz: 2100,
        topology: fully_connected(5, vec![1.0, 1.1])
            .expect("machine B+CXL topology is statically valid"),
        threads_per_node: 8,
        cores_per_node: 4,
        llc: CacheSpec { size_bytes: 18 * MB, line_bytes: 64, hit_cycles: 45 },
        tlb_4k: TlbSpec { l1_entries: 64, l2_entries: 512 },
        tlb_2m: TlbSpec { l1_entries: 32, l2_entries: 0 },
        mem_per_node_bytes: 8 * MB,
        dram_latency_cycles: 240,
        controller_lines_per_cycle: 0.020,
        link_lines_per_cycle: 0.035,
        mem_tiers: vec![
            MemTier::Dram,
            MemTier::Dram,
            MemTier::Dram,
            MemTier::Dram,
            MemTier::SlowTier { read_factor: 2.5, write_factor: 3.5, bandwidth_factor: 0.5 },
        ],
        memory_only_nodes: 1,
        slow_mem_per_node_bytes: Some(16 * GB),
    }
}

/// The `numa_small` testbed plus an NVM bank as a fifth, memory-only
/// node: Optane-like asymmetry (reads 3× DRAM, writes 8×, a quarter of
/// the bandwidth). DRAM nodes shrink to 2 MB each so even the smallest
/// test workloads overflow into the 1 GB NVM node; used by the tier
/// daemon's unit gates, not by the paper study.
pub fn numa_small_nvm() -> MachineSpec {
    MachineSpec {
        name: "S_NVM".into(),
        cpu_model: "4x Scaled Testbed + NVM".into(),
        cpu_mhz: 2000,
        topology: fully_connected(5, vec![1.0, 2.0])
            .expect("testbed+NVM topology is statically valid"),
        threads_per_node: 2,
        cores_per_node: 2,
        llc: CacheSpec { size_bytes: 64 * KB, line_bytes: 64, hit_cycles: 40 },
        tlb_4k: TlbSpec { l1_entries: 32, l2_entries: 256 },
        tlb_2m: TlbSpec { l1_entries: 8, l2_entries: 0 },
        mem_per_node_bytes: 2 * MB,
        dram_latency_cycles: 300,
        controller_lines_per_cycle: 0.004,
        link_lines_per_cycle: 0.012,
        mem_tiers: vec![
            MemTier::Dram,
            MemTier::Dram,
            MemTier::Dram,
            MemTier::Dram,
            MemTier::SlowTier { read_factor: 3.0, write_factor: 8.0, bandwidth_factor: 0.25 },
        ],
        memory_only_nodes: 1,
        slow_mem_per_node_bytes: Some(GB),
    }
}

/// All three paper machines, in Table II order, plus the tiered
/// B+CXL encoding the tiering study runs on.
pub fn paper_machines() -> Vec<MachineSpec> {
    vec![machine_a(), machine_b(), machine_c(), machine_b_cxl()]
}

/// Every name `by_name` accepts, in display order — the list CLI
/// errors print when an unknown machine is requested.
pub const MACHINE_NAMES: &[&str] =
    &["A", "B", "C", "S", "UMA", "machine_b_cxl", "numa_small_nvm"];

/// Look a machine up by name (`"A"`, `"B"`, `"C"`, `"S"`, `"UMA"`,
/// `"machine_b_cxl"`/`"B_CXL"`, `"numa_small_nvm"`/`"S_NVM"`,
/// case-insensitive). Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<MachineSpec> {
    match name.to_ascii_uppercase().as_str() {
        "A" => Some(machine_a()),
        "B" => Some(machine_b()),
        "C" => Some(machine_c()),
        "UMA" => Some(uma_single_node()),
        "S" => Some(numa_small()),
        "B_CXL" | "MACHINE_B_CXL" => Some(machine_b_cxl()),
        "S_NVM" | "NUMA_SMALL_NVM" => Some(numa_small_nvm()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_a_matches_table2() {
        let a = machine_a();
        assert_eq!(a.topology.num_nodes(), 8);
        assert_eq!(a.total_hw_threads(), 16);
        assert_eq!(a.total_cores(), 16);
        assert_eq!(a.topology.latency_tiers(), &[1.0, 1.2, 1.4, 1.6]);
        assert_eq!(a.total_mem_bytes(), 128 * GB);
        assert_eq!(a.llc.size_bytes, 2 * MB);
    }

    #[test]
    fn machine_b_matches_table2() {
        let b = machine_b();
        assert_eq!(b.topology.num_nodes(), 4);
        assert_eq!(b.total_hw_threads(), 32);
        assert_eq!(b.total_cores(), 16);
        assert_eq!(b.topology.latency_tiers(), &[1.0, 1.1]);
        assert_eq!(b.total_mem_bytes(), 64 * GB);
    }

    #[test]
    fn machine_c_matches_table2() {
        let c = machine_c();
        assert_eq!(c.topology.num_nodes(), 4);
        assert_eq!(c.total_hw_threads(), 64);
        assert_eq!(c.total_cores(), 32);
        assert_eq!(c.topology.latency_tiers(), &[1.0, 2.1]);
        assert_eq!(c.total_mem_bytes(), 3 * 1024 * GB);
        // Machine C is the only one with a second-level 2 MB TLB.
        assert_eq!(c.tlb_2m.l2_entries, 1536);
    }

    #[test]
    fn remote_penalty_ordering_b_flattest_c_steepest() {
        let (a, b, c) = (machine_a(), machine_b(), machine_c());
        let worst = |m: &crate::machine::MachineSpec| {
            *m.topology
                .latency_tiers()
                .last()
                .expect("tiers are non-empty")
        };
        assert!(worst(&b) < worst(&a));
        assert!(worst(&a) < worst(&c));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("a").map(|m| m.name), Some("A".into()));
        assert_eq!(by_name("C").map(|m| m.name), Some("C".into()));
        assert!(by_name("Z").is_none());
        assert_eq!(by_name("machine_b_cxl").map(|m| m.name), Some("B_CXL".into()));
        assert_eq!(by_name("b_cxl").map(|m| m.name), Some("B_CXL".into()));
        assert_eq!(by_name("NUMA_SMALL_NVM").map(|m| m.name), Some("S_NVM".into()));
        // Every advertised name resolves.
        for name in MACHINE_NAMES {
            assert!(by_name(name).is_some(), "{name} should resolve");
        }
    }

    #[test]
    fn tiered_machines_are_memory_only_tails() {
        for m in [machine_b_cxl(), numa_small_nvm()] {
            assert_eq!(m.topology.num_nodes(), 5);
            assert_eq!(m.compute_nodes(), 4, "{}", m.name);
            assert!(m.is_slow_tier(4) && !m.is_slow_tier(0));
            // The slow tier holds (nearly) all of the machine's memory.
            assert!(m.mem_bytes_of_node(4) > 100 * m.mem_bytes_of_node(0));
            // Base machine thread counts are unchanged by the expander.
            let base = if m.name == "B_CXL" { machine_b() } else { numa_small() };
            assert_eq!(m.total_hw_threads(), base.total_hw_threads());
        }
    }

    #[test]
    fn uma_has_no_remote_tier() {
        let u = uma_single_node();
        assert_eq!(u.topology.diameter(), 0);
        assert_eq!(u.topology.mean_latency_from(0), 1.0);
    }
}
