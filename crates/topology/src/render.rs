//! ASCII rendering of a topology, used by the Table II / Figure 1 bench
//! target to print machine layouts.

use crate::graph::Topology;

/// Render a topology as an adjacency summary plus hop-distance matrix.
///
/// ```
/// use nqp_topology::{fully_connected, render_ascii};
/// let t = fully_connected(3, vec![1.0, 1.1]).unwrap();
/// let s = render_ascii(&t);
/// assert!(s.contains("fully-connected-3"));
/// assert!(s.contains("node 0: 1 2"));
/// ```
pub fn render_ascii(topology: &Topology) -> String {
    let n = topology.num_nodes();
    let mut out = String::new();
    out.push_str(&format!(
        "{} ({} nodes, diameter {})\n",
        topology.name(),
        n,
        topology.diameter()
    ));
    for node in 0..n {
        let neighbors: Vec<String> = {
            let mut ns = topology.neighbors(node).to_vec();
            ns.sort_unstable();
            ns.iter().map(|m| m.to_string()).collect()
        };
        out.push_str(&format!("node {node}: {}\n", neighbors.join(" ")));
    }
    out.push_str("hop matrix:\n     ");
    for b in 0..n {
        out.push_str(&format!("{b:>3}"));
    }
    out.push('\n');
    for a in 0..n {
        out.push_str(&format!("  {a:>3}"));
        for b in 0..n {
            out.push_str(&format!("{:>3}", topology.hops(a, b)));
        }
        out.push('\n');
    }
    out.push_str(&format!("latency tiers: {:?}\n", topology.latency_tiers()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::twisted_ladder;

    #[test]
    fn renders_every_node_row() {
        let t = twisted_ladder(vec![1.0, 1.2, 1.4, 1.6]).unwrap();
        let s = render_ascii(&t);
        for node in 0..8 {
            assert!(s.contains(&format!("node {node}:")), "missing node {node} in:\n{s}");
        }
        assert!(s.contains("latency tiers"));
    }
}
