//! NUMA topology modelling.
//!
//! A NUMA system is a graph of *nodes* (a processor package plus its local
//! memory) joined by *interconnect links*. Everything the rest of the
//! workspace needs to reason about — how far apart two nodes are, how much
//! a remote access costs relative to a local one, how many hardware threads
//! live on each node — is derived from the [`Topology`] graph and the
//! [`MachineSpec`] that wraps it.
//!
//! The crate ships the three machines evaluated in the paper (Table II /
//! Figure 1) as presets:
//!
//! * [`machines::machine_a`] — 8× AMD Opteron 8220, *twisted ladder*
//!   topology, four latency tiers (1.0 / 1.2 / 1.4 / 1.6).
//! * [`machines::machine_b`] — 4× Intel Xeon E7520, fully connected,
//!   nearly flat latency (1.0 / 1.1).
//! * [`machines::machine_c`] — 4× Intel Xeon E7-4850 v4, fully connected,
//!   steep remote penalty (1.0 / 2.1).
//!
//! ```
//! use nqp_topology::machines;
//!
//! let a = machines::machine_a();
//! assert_eq!(a.topology.num_nodes(), 8);
//! // The twisted ladder needs at most 3 hops between any two nodes.
//! assert!(a.topology.diameter() <= 3);
//! ```

mod builders;
mod graph;
mod machine;
pub mod machines;
mod render;

pub use builders::{fully_connected, mesh, ring, twisted_ladder};
pub use graph::{NodeId, Topology, TopologyError};
pub use machine::{CacheSpec, CoreId, MachineSpec, MemTier, TlbSpec};
pub use render::render_ascii;
