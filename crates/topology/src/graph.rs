//! The NUMA node graph and its derived distance/latency matrices.

use std::collections::VecDeque;
use std::fmt;

/// Identifier of a NUMA node (socket + its local memory).
pub type NodeId = usize;

/// Errors produced while constructing or validating a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The topology has zero nodes.
    Empty,
    /// A link references a node outside `0..num_nodes`.
    LinkOutOfRange { a: NodeId, b: NodeId, num_nodes: usize },
    /// A link connects a node to itself.
    SelfLink(NodeId),
    /// The graph is not connected; the contained node is unreachable from node 0.
    Disconnected(NodeId),
    /// `latency_tiers` is missing an entry for the given hop distance.
    MissingLatencyTier { hops: usize, tiers: usize },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology must contain at least one node"),
            TopologyError::LinkOutOfRange { a, b, num_nodes } => {
                write!(f, "link ({a}, {b}) references a node >= {num_nodes}")
            }
            TopologyError::SelfLink(n) => write!(f, "node {n} is linked to itself"),
            TopologyError::Disconnected(n) => {
                write!(f, "node {n} is unreachable from node 0")
            }
            TopologyError::MissingLatencyTier { hops, tiers } => write!(
                f,
                "no latency tier for {hops}-hop distance (only {tiers} tiers supplied)"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected graph of NUMA nodes plus the relative memory latency of
/// each hop distance.
///
/// `latency_tiers[h]` is the latency of an access that crosses `h`
/// interconnect hops, *relative to a local access* (`latency_tiers[0]`,
/// conventionally `1.0`). These are the "Relative NUMA Node Memory
/// Latency" rows of Table II in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    num_nodes: usize,
    links: Vec<(NodeId, NodeId)>,
    adjacency: Vec<Vec<NodeId>>,
    /// `hops[a][b]` = minimum number of interconnect hops between a and b.
    hops: Vec<Vec<usize>>,
    latency_tiers: Vec<f64>,
    name: String,
}

impl Topology {
    /// Build a topology from an explicit link list.
    ///
    /// `latency_tiers` must contain one entry per possible hop distance,
    /// starting with the local latency at index 0. The graph must be
    /// connected and free of self-links.
    pub fn new(
        name: impl Into<String>,
        num_nodes: usize,
        links: Vec<(NodeId, NodeId)>,
        latency_tiers: Vec<f64>,
    ) -> Result<Self, TopologyError> {
        if num_nodes == 0 {
            return Err(TopologyError::Empty);
        }
        let mut adjacency = vec![Vec::new(); num_nodes];
        for &(a, b) in &links {
            if a >= num_nodes || b >= num_nodes {
                return Err(TopologyError::LinkOutOfRange { a, b, num_nodes });
            }
            if a == b {
                return Err(TopologyError::SelfLink(a));
            }
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        let hops = all_pairs_hops(num_nodes, &adjacency)?;
        let diameter = hops
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0);
        if latency_tiers.len() <= diameter {
            return Err(TopologyError::MissingLatencyTier {
                hops: diameter,
                tiers: latency_tiers.len(),
            });
        }
        Ok(Topology {
            num_nodes,
            links,
            adjacency,
            hops,
            latency_tiers,
            name: name.into(),
        })
    }

    /// Human-readable topology name, e.g. `"twisted-ladder-8"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of NUMA nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The undirected link list as supplied at construction.
    pub fn links(&self) -> &[(NodeId, NodeId)] {
        &self.links
    }

    /// Nodes directly connected to `node`.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node]
    }

    /// Minimum interconnect hops between `a` and `b` (0 when `a == b`).
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        self.hops[a][b]
    }

    /// Largest hop distance between any pair of nodes.
    pub fn diameter(&self) -> usize {
        self.hops
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Relative memory latency between `a` and `b` (1.0 = local access).
    pub fn latency_factor(&self, a: NodeId, b: NodeId) -> f64 {
        self.latency_tiers[self.hops(a, b)]
    }

    /// The configured latency tiers, indexed by hop count.
    pub fn latency_tiers(&self) -> &[f64] {
        &self.latency_tiers
    }

    /// Mean latency factor from `from` to all nodes (including itself),
    /// i.e. the expected cost multiplier of a uniformly interleaved access.
    pub fn mean_latency_from(&self, from: NodeId) -> f64 {
        let total: f64 = (0..self.num_nodes)
            .map(|to| self.latency_factor(from, to))
            .sum();
        total / self.num_nodes as f64
    }

    /// All nodes sorted by distance from `from` (closest first, stable by id).
    ///
    /// Useful for fallback allocation: First Touch spills to the nearest
    /// node with free memory.
    pub fn nodes_by_distance(&self, from: NodeId) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.num_nodes).collect();
        nodes.sort_by_key(|&n| (self.hops(from, n), n));
        nodes
    }

    /// Shortest path from `a` to `b` as a list of nodes, inclusive of both
    /// endpoints. Used to charge interconnect-link utilisation along the
    /// route of a remote access.
    pub fn shortest_path(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        if a == b {
            return vec![a];
        }
        // BFS storing predecessors.
        let mut pred = vec![usize::MAX; self.num_nodes];
        let mut queue = VecDeque::new();
        queue.push_back(a);
        pred[a] = a;
        while let Some(n) = queue.pop_front() {
            if n == b {
                break;
            }
            for &m in &self.adjacency[n] {
                if pred[m] == usize::MAX {
                    pred[m] = n;
                    queue.push_back(m);
                }
            }
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            cur = pred[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }
}

/// BFS from every node; errors if the graph is disconnected.
fn all_pairs_hops(
    num_nodes: usize,
    adjacency: &[Vec<NodeId>],
) -> Result<Vec<Vec<usize>>, TopologyError> {
    let mut all = Vec::with_capacity(num_nodes);
    for start in 0..num_nodes {
        let mut dist = vec![usize::MAX; num_nodes];
        dist[start] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            for &m in &adjacency[n] {
                if dist[m] == usize::MAX {
                    dist[m] = dist[n] + 1;
                    queue.push_back(m);
                }
            }
        }
        if let Some(unreachable) = dist.iter().position(|&d| d == usize::MAX) {
            return Err(TopologyError::Disconnected(unreachable));
        }
        all.push(dist);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Topology {
        Topology::new("line-3", 3, vec![(0, 1), (1, 2)], vec![1.0, 1.2, 1.5]).unwrap()
    }

    #[test]
    fn hops_are_symmetric_and_zero_on_diagonal() {
        let t = line3();
        for a in 0..3 {
            assert_eq!(t.hops(a, a), 0);
            for b in 0..3 {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn line_distances() {
        let t = line3();
        assert_eq!(t.hops(0, 2), 2);
        assert_eq!(t.diameter(), 2);
        assert_eq!(t.latency_factor(0, 2), 1.5);
        assert_eq!(t.latency_factor(1, 1), 1.0);
    }

    #[test]
    fn duplicate_links_are_deduplicated() {
        let t = Topology::new("dup", 2, vec![(0, 1), (1, 0), (0, 1)], vec![1.0, 1.1]).unwrap();
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(1), &[0]);
    }

    #[test]
    fn empty_topology_is_rejected() {
        assert_eq!(
            Topology::new("e", 0, vec![], vec![1.0]).unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn self_link_is_rejected() {
        assert_eq!(
            Topology::new("s", 2, vec![(1, 1)], vec![1.0]).unwrap_err(),
            TopologyError::SelfLink(1)
        );
    }

    #[test]
    fn out_of_range_link_is_rejected() {
        let err = Topology::new("o", 2, vec![(0, 5)], vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            TopologyError::LinkOutOfRange { a: 0, b: 5, num_nodes: 2 }
        );
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let err = Topology::new("d", 3, vec![(0, 1)], vec![1.0, 1.1]).unwrap_err();
        assert_eq!(err, TopologyError::Disconnected(2));
    }

    #[test]
    fn missing_latency_tier_is_rejected() {
        let err = Topology::new("m", 3, vec![(0, 1), (1, 2)], vec![1.0, 1.2]).unwrap_err();
        assert_eq!(err, TopologyError::MissingLatencyTier { hops: 2, tiers: 2 });
    }

    #[test]
    fn single_node_topology_is_valid() {
        let t = Topology::new("uma", 1, vec![], vec![1.0]).unwrap();
        assert_eq!(t.diameter(), 0);
        assert_eq!(t.latency_factor(0, 0), 1.0);
        assert_eq!(t.shortest_path(0, 0), vec![0]);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let t = line3();
        let p = t.shortest_path(0, 2);
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&2));
        assert_eq!(p.len(), t.hops(0, 2) + 1);
    }

    #[test]
    fn nodes_by_distance_starts_with_self() {
        let t = line3();
        assert_eq!(t.nodes_by_distance(2), vec![2, 1, 0]);
    }

    #[test]
    fn mean_latency_averages_tiers() {
        let t = line3();
        // From node 1: local 1.0, plus two 1-hop neighbours at 1.2.
        let expected = (1.0 + 1.2 + 1.2) / 3.0;
        assert!((t.mean_latency_from(1) - expected).abs() < 1e-12);
    }
}
