//! Constructors for common NUMA interconnect shapes.

use crate::graph::{NodeId, Topology, TopologyError};

/// Every node linked to every other node — the quad-socket Intel layout of
/// Machines B and C (Figure 1b / 1c).
pub fn fully_connected(
    num_nodes: usize,
    latency_tiers: Vec<f64>,
) -> Result<Topology, TopologyError> {
    let mut links = Vec::new();
    for a in 0..num_nodes {
        for b in (a + 1)..num_nodes {
            links.push((a, b));
        }
    }
    Topology::new(format!("fully-connected-{num_nodes}"), num_nodes, links, latency_tiers)
}

/// A ring of nodes — each node linked to its two neighbours.
pub fn ring(num_nodes: usize, latency_tiers: Vec<f64>) -> Result<Topology, TopologyError> {
    let mut links = Vec::new();
    for a in 0..num_nodes {
        links.push((a, (a + 1) % num_nodes));
    }
    Topology::new(format!("ring-{num_nodes}"), num_nodes, links, latency_tiers)
}

/// A `width × height` grid, each node linked to its orthogonal neighbours.
pub fn mesh(
    width: usize,
    height: usize,
    latency_tiers: Vec<f64>,
) -> Result<Topology, TopologyError> {
    let id = |x: usize, y: usize| -> NodeId { y * width + x };
    let mut links = Vec::new();
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                links.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < height {
                links.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    Topology::new(format!("mesh-{width}x{height}"), width * height, links, latency_tiers)
}

/// The eight-socket AMD *twisted ladder* of Machine A (Figure 1a).
///
/// Each Opteron package has three HyperTransport links. The ladder's two
/// rails run 0-2-4-6 and 1-3-5-7, rungs join the rails, and the "twist"
/// (diagonal links in the middle of the ladder) shortens the worst-case
/// route so the diameter is 3 hops, giving the four latency tiers of
/// Table II (1.0 / 1.2 / 1.4 / 1.6).
pub fn twisted_ladder(latency_tiers: Vec<f64>) -> Result<Topology, TopologyError> {
    // Link list mirrors the figure: rails, end rungs, and crossed middle.
    let links = vec![
        // left rail
        (0, 2),
        (2, 4),
        (4, 6),
        // right rail
        (1, 3),
        (3, 5),
        (5, 7),
        // end rungs
        (0, 1),
        (6, 7),
        // the twist: diagonals crossing the middle of the ladder
        (2, 5),
        (3, 4),
    ];
    Topology::new("twisted-ladder-8", 8, links, latency_tiers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_has_diameter_one() {
        let t = fully_connected(4, vec![1.0, 1.1]).unwrap();
        assert_eq!(t.diameter(), 1);
        assert_eq!(t.links().len(), 6);
        for n in 0..4 {
            assert_eq!(t.neighbors(n).len(), 3);
        }
    }

    #[test]
    fn ring_diameter_is_half() {
        let t = ring(6, vec![1.0, 1.2, 1.4, 1.6]).unwrap();
        assert_eq!(t.diameter(), 3);
        assert_eq!(t.hops(0, 3), 3);
        assert_eq!(t.hops(0, 5), 1);
    }

    #[test]
    fn mesh_distances_are_manhattan() {
        let t = mesh(3, 2, vec![1.0, 1.1, 1.2, 1.3]).unwrap();
        assert_eq!(t.num_nodes(), 6);
        // (0,0) -> (2,1): 3 hops.
        assert_eq!(t.hops(0, 5), 3);
    }

    #[test]
    fn twisted_ladder_matches_machine_a_shape() {
        let t = twisted_ladder(vec![1.0, 1.2, 1.4, 1.6]).unwrap();
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.diameter(), 3);
        // Every Opteron has exactly 3 coherent HyperTransport links used
        // for the fabric... except the figure's layout gives the four
        // middle sockets 3 links and the corner sockets 2.
        let degrees: Vec<usize> = (0..8).map(|n| t.neighbors(n).len()).collect();
        assert!(degrees.iter().all(|&d| d == 2 || d == 3));
        // Four distinct latency tiers exist (0..=3 hops all occur).
        let mut seen = [false; 4];
        for a in 0..8 {
            for b in 0..8 {
                seen[t.hops(a, b)] = true;
            }
        }
        assert_eq!(seen, [true; 4]);
    }
}
