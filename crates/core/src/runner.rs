//! The fallible, retrying trial harness and the sweep supervisor.
//!
//! Real NUMA experiments fail in mundane ways: `numactl --membind` dies
//! with ENOMEM when a node fills, a batch scheduler preempts the run, a
//! machine's interconnect throttles — or a whole node drops out. The
//! harness mirrors how the paper's measurement scripts cope: each
//! `(configuration, trial)` pair runs a fallible workload, *transient*
//! faults are retried with exponential backoff (the backoff cycles are
//! charged to the trial), and every other fault is recorded as the
//! trial's [`Outcome`] so a sweep always completes with a full per-trial
//! table instead of dying on its first unlucky configuration.
//!
//! On top of the per-trial harness sits a **supervisor**
//! ([`sweep_supervised`]): a watchdog budget for configurations that
//! forgot to set one, a global retry budget, a circuit breaker that
//! stops retrying a configuration after K consecutive faulted trials,
//! resume from a set of already-completed cells (the trial journal, see
//! [`crate::journal`]), and an interruption bound (`max_cells`) whose
//! partial report still renders — partial-result salvage.
//!
//! Trials are deterministic and independent, so the grid also runs in
//! parallel: [`crate::executor::sweep_parallel`] fans configurations
//! across a scoped worker pool and produces byte-identical
//! table/CSV/JSON output (see that module for the determinism
//! argument).

use crate::experiment::TuningConfig;
use nqp_query::WorkloadEnv;
use nqp_sim::{SimError, SimResult};

/// How one trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The workload completed (possibly after transient-fault retries).
    Ok,
    /// The workload completed, but on a degraded machine: a node went
    /// offline mid-trial and its pages were evacuated. The cycles are
    /// real but not comparable to healthy trials.
    Degraded,
    /// The trial exceeded its cycle budget.
    Timeout,
    /// A node or machine ran out of memory under a strict policy.
    Oom,
    /// Any other simulation fault (injected failure, invalid mapping,
    /// a strict `Bind` to an offline node).
    Faulted,
}

impl Outcome {
    /// Fixed-width label for result tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Degraded => "degraded",
            Outcome::Timeout => "timeout",
            Outcome::Oom => "oom",
            Outcome::Faulted => "faulted",
        }
    }

    /// Inverse of [`Outcome::label`] (journal decoding).
    #[must_use]
    pub fn parse(label: &str) -> Option<Outcome> {
        match label {
            "ok" => Some(Outcome::Ok),
            "degraded" => Some(Outcome::Degraded),
            "timeout" => Some(Outcome::Timeout),
            "oom" => Some(Outcome::Oom),
            "faulted" => Some(Outcome::Faulted),
            _ => None,
        }
    }

    /// Classify a terminal error.
    #[must_use]
    pub fn of_error(e: &SimError) -> Outcome {
        match e {
            SimError::Timeout { .. } | SimError::DeadlineExceeded { .. } => Outcome::Timeout,
            SimError::OutOfMemory { .. } => Outcome::Oom,
            _ => Outcome::Faulted,
        }
    }

    /// The trial produced cycles (healthy or degraded).
    #[must_use]
    pub fn completed(self) -> bool {
        matches!(self, Outcome::Ok | Outcome::Degraded)
    }
}

/// What a fallible workload closure hands back for one attempt.
///
/// Plain-`u64` closures convert via `From`, so most workloads just
/// return cycles; fault-aware ones also report degradation (node-offline
/// survival) and the evacuation traffic it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrialMeasurement {
    /// Workload execution cycles.
    pub cycles: u64,
    /// The trial survived a node outage (results are from a smaller
    /// machine than configured).
    pub degraded: bool,
    /// 4 KB pages evacuated off dying nodes during the trial.
    pub evacuated_pages: u64,
}

impl From<u64> for TrialMeasurement {
    fn from(cycles: u64) -> Self {
        TrialMeasurement { cycles, degraded: false, evacuated_pages: 0 }
    }
}

/// Bounded retry with exponential backoff for transient faults.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts).
    pub max_retries: u32,
    /// Cycles charged before retry `k` (doubling per retry):
    /// `backoff_base_cycles << k`.
    pub backoff_base_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, backoff_base_cycles: 10_000 }
    }
}

impl RetryPolicy {
    /// A harness that never retries (every fault is terminal).
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, backoff_base_cycles: 0 }
    }

    /// Retries allowed after the first attempt.
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Base backoff charge (doubled per retry by
    /// [`RetryPolicy::backoff_cycles`]).
    #[must_use]
    pub fn backoff_base_cycles(&self) -> u64 {
        self.backoff_base_cycles
    }

    /// Backoff cycles charged before retry `attempt`, saturating at
    /// `u64::MAX` once the doubling schedule would overflow the shift.
    /// With `--retries 64`+ and a persistent transient fault, the naive
    /// `base << attempt` panics in debug builds and wraps to a
    /// near-zero backoff in release; saturation keeps the schedule
    /// monotone instead.
    #[must_use]
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        let base = self.backoff_base_cycles;
        if base == 0 {
            return 0;
        }
        if attempt > base.leading_zeros() {
            u64::MAX
        } else {
            base << attempt
        }
    }
}

/// Sweep-level robustness knobs layered over the per-trial
/// [`RetryPolicy`] by [`sweep_supervised`].
#[derive(Debug, Clone, Default)]
pub struct SupervisorPolicy {
    /// Per-trial transient-fault retry policy.
    pub retry: RetryPolicy,
    /// Watchdog: a cycle budget applied to configurations that do not
    /// set `trial_budget_cycles` themselves, so no cell can hang the
    /// sweep. Deterministic (simulated cycles, not wall clock).
    pub watchdog_budget_cycles: Option<u64>,
    /// Total retries the whole sweep may consume; once spent, every
    /// remaining fault is terminal on its first attempt.
    pub global_retry_budget: Option<u32>,
    /// Circuit breaker: after this many *consecutive* `Faulted` trials
    /// of one configuration, its remaining trials run without retries
    /// (the configuration is systematically broken — stop paying for
    /// backoff).
    pub breaker_threshold: Option<u32>,
    /// Stop after running this many new cells (resumed cells are free).
    /// The report is marked interrupted; completed cells still render —
    /// this is also how tests and the smoke script simulate a crash.
    pub max_cells: Option<usize>,
}

/// The record of one `(configuration, trial)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The configuration's display name.
    pub config: String,
    /// Trial index within the configuration.
    pub trial: usize,
    /// How the trial ended.
    pub outcome: Outcome,
    /// Workload cycles plus retry backoff, when the trial completed.
    pub cycles: Option<u64>,
    /// Attempts consumed (1 when no fault was retried).
    pub attempts: u32,
    /// 4 KB pages evacuated off dying nodes (degraded trials).
    pub evacuated_pages: u64,
    /// The terminal error of a failed trial.
    pub error: Option<SimError>,
}

impl TrialRecord {
    /// Did the trial end cleanly (no fault, no degradation)?
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.outcome == Outcome::Ok
    }

    /// Did the trial produce cycles (clean or degraded)?
    #[must_use]
    pub fn completed(&self) -> bool {
        self.outcome.completed()
    }
}

/// Every trial of every configuration in a sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// All trial records, grouped by configuration in sweep order.
    pub trials: Vec<TrialRecord>,
    /// The sweep stopped early (`max_cells`); the table covers only the
    /// cells that ran — salvage, not a full result.
    pub interrupted: bool,
}

impl SweepReport {
    /// Successful (clean) trials.
    #[must_use]
    pub fn succeeded(&self) -> usize {
        self.trials.iter().filter(|t| t.succeeded()).count()
    }

    /// Configuration names for which *every* trial failed to complete —
    /// the condition under which a sweep as a whole is considered failed
    /// (matching `nqp-cli`'s exit code). Degraded trials count as
    /// completed: a config that survives a node outage is not dead.
    #[must_use]
    pub fn failed_configs(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for t in &self.trials {
            if !names.contains(&t.config.as_str()) {
                names.push(&t.config);
            }
        }
        names
            .into_iter()
            .filter(|name| {
                self.trials
                    .iter()
                    .filter(|t| t.config == *name)
                    .all(|t| !t.completed())
            })
            .collect()
    }

    /// Mean cycles over a configuration's *clean* (`Ok`) trials, if any
    /// made it. `Degraded` trials ran on a smaller machine after a node
    /// evacuation — folding them in would skew config comparisons, so
    /// they are excluded here and reported separately by
    /// [`SweepReport::mean_cycles_degraded`].
    #[must_use]
    pub fn mean_cycles(&self, config: &str) -> Option<u64> {
        self.mean_of(config, Outcome::Ok)
    }

    /// Mean cycles over a configuration's `Degraded` trials — the
    /// salvage number for grids where a node outage left no clean
    /// trials. Real data, but from fewer nodes than configured; never
    /// mix it with [`SweepReport::mean_cycles`].
    #[must_use]
    pub fn mean_cycles_degraded(&self, config: &str) -> Option<u64> {
        self.mean_of(config, Outcome::Degraded)
    }

    fn mean_of(&self, config: &str, outcome: Outcome) -> Option<u64> {
        let ok: Vec<u64> = self
            .trials
            .iter()
            .filter(|t| t.config == config && t.outcome == outcome)
            .filter_map(|t| t.cycles)
            .collect();
        if ok.is_empty() {
            None
        } else {
            Some(ok.iter().sum::<u64>() / ok.len() as u64)
        }
    }

    /// Render the per-trial outcome table (the EXPERIMENTS.md format).
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::from("config                      trial outcome  attempts cycles\n");
        for t in &self.trials {
            let cycles = match t.cycles {
                Some(c) => c.to_string(),
                None => match &t.error {
                    Some(e) => format!("- ({e})"),
                    None => "-".into(),
                },
            };
            out.push_str(&format!(
                "{:<27} {:>5} {:<8} {:>8} {}\n",
                t.config, t.trial, t.outcome.label(), t.attempts, cycles
            ));
        }
        out
    }

    /// Render the sweep as CSV (header + one row per trial). Fields that
    /// may contain commas or quotes are quoted with doubled quotes.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out =
            String::from("config,trial,outcome,attempts,cycles,evacuated_pages,error\n");
        for t in &self.trials {
            let cycles = t.cycles.map(|c| c.to_string()).unwrap_or_default();
            let error = t.error.as_ref().map(|e| e.to_string()).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                field(&t.config),
                t.trial,
                t.outcome.label(),
                t.attempts,
                cycles,
                t.evacuated_pages,
                field(&error)
            ));
        }
        out
    }

    /// Render the sweep as a JSON array of trial objects (the same
    /// object shape the trial journal records, minus its envelope).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, t) in self.trials.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            out.push_str(&crate::journal::record_fields_json(t));
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }
}

/// Run one fallible trial under `cfg`, retrying transient faults.
///
/// The workload closure receives the environment (with
/// `SimConfig::fault_attempt` set to the current attempt number, which
/// is how a deterministic [`nqp_sim::FaultPlan`] distinguishes a retry
/// from the original run) and the trial index, and returns the
/// workload's execution cycles. Backoff cycles for retried attempts are
/// added to the recorded total, the way wall-clock timers in real
/// harnesses keep counting across `numactl` re-invocations.
pub fn run_trial<F>(
    cfg: &TuningConfig,
    threads: usize,
    trial: usize,
    policy: &RetryPolicy,
    workload: &mut F,
) -> TrialRecord
where
    F: FnMut(&WorkloadEnv, usize) -> SimResult<u64>,
{
    run_trial_measured(cfg, threads, trial, policy, None, &mut |env, t| {
        workload(env, t).map(TrialMeasurement::from)
    })
}

/// [`run_trial`] for workloads that report a full [`TrialMeasurement`]
/// (degradation flags and evacuation metrics), with an optional watchdog
/// budget applied when the configuration has none of its own.
pub fn run_trial_measured<F>(
    cfg: &TuningConfig,
    threads: usize,
    trial: usize,
    policy: &RetryPolicy,
    watchdog_budget_cycles: Option<u64>,
    workload: &mut F,
) -> TrialRecord
where
    F: FnMut(&WorkloadEnv, usize) -> SimResult<TrialMeasurement>,
{
    let mut attempt = 0u32;
    let mut backoff = 0u64;
    loop {
        let mut env = cfg.env(threads);
        env.sim = env.sim.with_fault_attempt(attempt);
        if env.sim.trial_budget_cycles.is_none() {
            if let Some(budget) = watchdog_budget_cycles {
                env.sim = env.sim.with_trial_budget(budget);
            }
        }
        match workload(&env, trial) {
            Ok(m) => {
                return TrialRecord {
                    config: cfg.name.clone(),
                    trial,
                    outcome: if m.degraded { Outcome::Degraded } else { Outcome::Ok },
                    cycles: Some(m.cycles.saturating_add(backoff)),
                    attempts: attempt + 1,
                    evacuated_pages: m.evacuated_pages,
                    error: None,
                }
            }
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                backoff = backoff.saturating_add(policy.backoff_cycles(attempt));
                attempt += 1;
            }
            Err(e) => {
                return TrialRecord {
                    config: cfg.name.clone(),
                    trial,
                    outcome: Outcome::of_error(&e),
                    cycles: None,
                    attempts: attempt + 1,
                    evacuated_pages: 0,
                    error: Some(e),
                }
            }
        }
    }
}

/// Sweep `trials` trials of each configuration, recording every
/// outcome. The sweep itself never fails: a configuration whose trials
/// all fault is reported by [`SweepReport::failed_configs`], and
/// degradation is graceful — later configurations still run.
pub fn sweep<F>(
    configs: &[TuningConfig],
    threads: usize,
    trials: usize,
    policy: &RetryPolicy,
    mut workload: F,
) -> SweepReport
where
    F: FnMut(&WorkloadEnv, usize) -> SimResult<u64>,
{
    let supervisor = SupervisorPolicy { retry: policy.clone(), ..Default::default() };
    sweep_supervised(configs, threads, trials, &supervisor, &[], &mut |_| {}, |env, t| {
        workload(env, t).map(TrialMeasurement::from)
    })
}

/// The supervised sweep: grid order is `configs × trials`, and for each
/// cell, in order —
///
/// 1. a matching record in `resume` (same config name and trial index)
///    is adopted verbatim without re-running the workload; its retries
///    still count against the global budget and its outcome still feeds
///    the circuit breaker, so a resumed sweep and an uninterrupted one
///    make identical supervision decisions;
/// 2. otherwise the cell runs under the watchdog/retry policy and the
///    fresh record is handed to `sink` (the journal append hook) before
///    the sweep moves on;
/// 3. once `max_cells` *new* cells have run, the sweep stops and the
///    report is marked [`SweepReport::interrupted`].
///
/// Because trials are deterministic functions of `(config, trial,
/// attempt)`, the final table of killed-then-resumed and uninterrupted
/// sweeps is bit-identical — the property `tests/resume.rs` pins.
pub fn sweep_supervised<F>(
    configs: &[TuningConfig],
    threads: usize,
    trials: usize,
    policy: &SupervisorPolicy,
    resume: &[TrialRecord],
    sink: &mut dyn FnMut(&TrialRecord),
    mut workload: F,
) -> SweepReport
where
    F: FnMut(&WorkloadEnv, usize) -> SimResult<TrialMeasurement>,
{
    let mut report = SweepReport::default();
    let mut retries_left = policy.global_retry_budget;
    let mut cells_run = 0usize;
    'grid: for cfg in configs {
        let mut consecutive_faulted = 0u32;
        for trial in 0..trials {
            let resumed = resume
                .iter()
                .find(|r| r.config == cfg.name && r.trial == trial)
                .cloned();
            let record = match resumed {
                Some(r) => r,
                None => {
                    if policy.max_cells.is_some_and(|m| cells_run >= m) {
                        report.interrupted = true;
                        break 'grid;
                    }
                    cells_run += 1;
                    let breaker_open = policy
                        .breaker_threshold
                        .is_some_and(|k| consecutive_faulted >= k);
                    let mut retry = if breaker_open {
                        RetryPolicy::none()
                    } else {
                        policy.retry.clone()
                    };
                    if let Some(left) = retries_left {
                        retry.max_retries = retry.max_retries.min(left);
                    }
                    let r = run_trial_measured(
                        cfg,
                        threads,
                        trial,
                        &retry,
                        policy.watchdog_budget_cycles,
                        &mut workload,
                    );
                    sink(&r);
                    r
                }
            };
            if let Some(left) = retries_left.as_mut() {
                *left = left.saturating_sub(record.attempts.saturating_sub(1));
            }
            if record.outcome == Outcome::Faulted {
                consecutive_faulted += 1;
            } else {
                consecutive_faulted = 0;
            }
            report.trials.push(record);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_topology::machines;

    fn cfg() -> TuningConfig {
        TuningConfig::tuned(machines::machine_b())
    }

    #[test]
    fn transient_faults_retry_and_charge_backoff() {
        let policy = RetryPolicy { max_retries: 2, backoff_base_cycles: 100 };
        let mut calls = 0u32;
        let rec = run_trial(&cfg(), 4, 0, &policy, &mut |env, _| {
            calls += 1;
            if env.sim.fault_attempt < 2 {
                Err(SimError::InjectedAllocFault { region: 1, attempt: env.sim.fault_attempt })
            } else {
                Ok(5_000)
            }
        });
        assert_eq!(calls, 3, "two transient faults then success");
        assert_eq!(rec.outcome, Outcome::Ok);
        assert_eq!(rec.attempts, 3);
        // 5_000 + backoff (100 << 0) + (100 << 1).
        assert_eq!(rec.cycles, Some(5_300));
    }

    #[test]
    fn terminal_faults_classify_without_retry() {
        let policy = RetryPolicy::default();
        for (err, want) in [
            (SimError::Timeout { budget_cycles: 10, elapsed_cycles: 20 }, Outcome::Timeout),
            (SimError::OutOfMemory { node: 1, requested_pages: 4 }, Outcome::Oom),
            (SimError::InvalidMapping { addr: 0 }, Outcome::Faulted),
            (SimError::NodeOffline { node: 2 }, Outcome::Faulted),
        ] {
            let mut calls = 0u32;
            let rec = run_trial(&cfg(), 4, 0, &policy, &mut |_, _| {
                calls += 1;
                Err(err.clone())
            });
            assert_eq!(calls, 1, "{err:?} must not retry");
            assert_eq!(rec.outcome, want);
            assert!(rec.cycles.is_none());
        }
    }

    #[test]
    fn retries_are_bounded() {
        let policy = RetryPolicy { max_retries: 2, backoff_base_cycles: 1 };
        let mut calls = 0u32;
        let rec = run_trial(&cfg(), 4, 0, &policy, &mut |_, _| {
            calls += 1;
            Err(SimError::InjectedAllocFault { region: 0, attempt: 0 })
        });
        assert_eq!(calls, 3, "initial + 2 retries");
        assert_eq!(rec.outcome, Outcome::Faulted);
        assert_eq!(rec.attempts, 3);
    }

    #[test]
    fn huge_retry_counts_saturate_backoff_instead_of_overflowing() {
        // `--retries 80` with a fault that never clears: the naive
        // `base << attempt` shifts by >= 64 and panics in debug builds.
        let policy = RetryPolicy { max_retries: 80, backoff_base_cycles: 10_000 };
        let mut calls = 0u32;
        let rec = run_trial(&cfg(), 4, 0, &policy, &mut |_, _| {
            calls += 1;
            Err(SimError::InjectedAllocFault { region: 0, attempt: 0 })
        });
        assert_eq!(calls, 81, "initial attempt + 80 retries");
        assert_eq!(rec.attempts, 81);
        assert_eq!(rec.outcome, Outcome::Faulted);

        // When the fault eventually clears, the charged backoff is
        // saturated, not wrapped back down to a tiny number.
        let rec = run_trial(&cfg(), 4, 0, &policy, &mut |env, _| {
            if env.sim.fault_attempt < 70 {
                Err(SimError::InjectedAllocFault { region: 0, attempt: env.sim.fault_attempt })
            } else {
                Ok(1_000)
            }
        });
        assert_eq!(rec.outcome, Outcome::Ok);
        assert_eq!(rec.attempts, 71);
        assert_eq!(rec.cycles, Some(u64::MAX), "backoff saturates at u64::MAX");
    }

    #[test]
    fn backoff_schedule_is_monotone_to_saturation() {
        let p = RetryPolicy { max_retries: 100, backoff_base_cycles: 1 };
        assert_eq!(p.backoff_cycles(0), 1);
        assert_eq!(p.backoff_cycles(63), 1 << 63);
        assert_eq!(p.backoff_cycles(64), u64::MAX);
        let p = RetryPolicy { max_retries: 100, backoff_base_cycles: 3 };
        assert_eq!(p.backoff_cycles(62), 3 << 62);
        assert_eq!(p.backoff_cycles(63), u64::MAX);
        let p = RetryPolicy { max_retries: 100, backoff_base_cycles: 0 };
        assert_eq!(p.backoff_cycles(99), 0, "zero base never charges backoff");
    }

    #[test]
    fn mean_cycles_excludes_degraded_trials() {
        let configs = vec![cfg().named("wounded")];
        let report = sweep_supervised(
            &configs,
            4,
            3,
            &SupervisorPolicy::default(),
            &[],
            &mut |_| {},
            |_, trial| {
                Ok(TrialMeasurement {
                    cycles: if trial == 2 { 1_000_000 } else { 1_000 },
                    degraded: trial == 2,
                    evacuated_pages: 0,
                })
            },
        );
        // The degraded trial ran on a smaller machine; its million
        // cycles must not pollute the clean mean.
        assert_eq!(report.mean_cycles("wounded"), Some(1_000));
        assert_eq!(report.mean_cycles_degraded("wounded"), Some(1_000_000));
        // A config with only degraded trials has no clean mean at all.
        let report = sweep_supervised(
            &configs,
            4,
            1,
            &SupervisorPolicy::default(),
            &[],
            &mut |_| {},
            |_, _| Ok(TrialMeasurement { cycles: 5, degraded: true, evacuated_pages: 1 }),
        );
        assert_eq!(report.mean_cycles("wounded"), None);
        assert_eq!(report.mean_cycles_degraded("wounded"), Some(5));
    }

    #[test]
    fn sweep_degrades_gracefully_and_flags_dead_configs() {
        let configs = vec![cfg().named("healthy"), cfg().named("doomed")];
        let report = sweep(&configs, 4, 3, &RetryPolicy::none(), |env, trial| {
            if env.sim.fault_plan.is_none() && trial == 1 {
                // One flaky trial in the healthy config.
                return Err(SimError::Timeout { budget_cycles: 1, elapsed_cycles: 2 });
            }
            Ok(1_000)
        });
        // "doomed" would need a fault plan to fail here; with this
        // workload only trial 1 of each config times out.
        assert_eq!(report.trials.len(), 6);
        assert_eq!(report.succeeded(), 4);
        assert!(!report.interrupted);
        assert!(report.failed_configs().is_empty());
        assert_eq!(report.mean_cycles("healthy"), Some(1_000));

        let report = sweep(&configs[1..], 4, 2, &RetryPolicy::none(), |_, _| {
            Err(SimError::OutOfMemory { node: 0, requested_pages: 1 })
        });
        assert_eq!(report.failed_configs(), vec!["doomed"]);
        assert_eq!(report.mean_cycles("doomed"), None);
        let table = report.table();
        assert!(table.contains("oom"), "table shows outcomes:\n{table}");
    }

    #[test]
    fn degraded_trials_complete_but_are_distinguishable() {
        let configs = vec![cfg().named("wounded")];
        let supervisor = SupervisorPolicy::default();
        let report =
            sweep_supervised(&configs, 4, 2, &supervisor, &[], &mut |_| {}, |_, trial| {
                Ok(TrialMeasurement {
                    cycles: 9_000,
                    degraded: trial == 1,
                    evacuated_pages: if trial == 1 { 128 } else { 0 },
                })
            });
        assert_eq!(report.trials[0].outcome, Outcome::Ok);
        assert_eq!(report.trials[1].outcome, Outcome::Degraded);
        assert!(report.trials[1].completed() && !report.trials[1].succeeded());
        assert_eq!(report.trials[1].evacuated_pages, 128);
        assert!(report.failed_configs().is_empty(), "degraded != dead");
        let table = report.table();
        assert!(table.contains("degraded"), "{table}");
        let csv = report.to_csv();
        assert!(csv.contains("wounded,1,degraded,1,9000,128,"), "{csv}");
        let json = report.to_json();
        assert!(json.contains("\"outcome\":\"degraded\""), "{json}");
        assert!(json.contains("\"evacuated_pages\":128"), "{json}");
    }

    #[test]
    fn watchdog_budget_applies_only_without_config_budget() {
        let supervisor = SupervisorPolicy {
            watchdog_budget_cycles: Some(42),
            ..Default::default()
        };
        let mut seen = Vec::new();
        sweep_supervised(
            &[cfg().named("nobudget"), cfg().named("budget").with_trial_budget(7)],
            4,
            1,
            &supervisor,
            &[],
            &mut |_| {},
            |env, _| {
                seen.push(env.sim.trial_budget_cycles);
                Ok(TrialMeasurement::from(1))
            },
        );
        assert_eq!(seen, vec![Some(42), Some(7)]);
    }

    #[test]
    fn circuit_breaker_stops_retrying_broken_configs() {
        let supervisor = SupervisorPolicy {
            retry: RetryPolicy { max_retries: 3, backoff_base_cycles: 1 },
            breaker_threshold: Some(2),
            ..Default::default()
        };
        let configs = vec![cfg().named("broken")];
        let report =
            sweep_supervised(&configs, 4, 4, &supervisor, &[], &mut |_| {}, |_, _| {
                // Transient error that never clears: each trial burns all
                // its retries until the breaker opens.
                Err(SimError::InjectedAllocFault { region: 0, attempt: 0 })
            });
        let attempts: Vec<u32> = report.trials.iter().map(|t| t.attempts).collect();
        assert_eq!(attempts, vec![4, 4, 1, 1], "breaker opens after 2 faulted trials");
    }

    #[test]
    fn global_retry_budget_is_shared_across_cells() {
        let supervisor = SupervisorPolicy {
            retry: RetryPolicy { max_retries: 5, backoff_base_cycles: 1 },
            global_retry_budget: Some(7),
            ..Default::default()
        };
        let configs = vec![cfg().named("flaky")];
        let report =
            sweep_supervised(&configs, 4, 3, &supervisor, &[], &mut |_| {}, |_, _| {
                Err(SimError::InjectedAllocFault { region: 0, attempt: 0 })
            });
        let attempts: Vec<u32> = report.trials.iter().map(|t| t.attempts).collect();
        // 5 retries, then 2 remaining, then none.
        assert_eq!(attempts, vec![6, 3, 1]);
    }

    #[test]
    fn max_cells_interrupts_and_resume_completes_identically() {
        let configs = vec![cfg().named("a"), cfg().named("b")];
        let run = |supervisor: &SupervisorPolicy, resume: &[TrialRecord]| {
            let mut journal = Vec::new();
            let report = sweep_supervised(
                &configs,
                4,
                2,
                supervisor,
                resume,
                &mut |r| journal.push(r.clone()),
                |env, trial| Ok(TrialMeasurement::from(env.sim.seed + trial as u64)),
            );
            (report, journal)
        };
        let full = run(&SupervisorPolicy::default(), &[]).0;
        assert!(!full.interrupted);

        let interrupted_policy =
            SupervisorPolicy { max_cells: Some(3), ..Default::default() };
        let (partial, journal) = run(&interrupted_policy, &[]);
        assert!(partial.interrupted);
        assert_eq!(partial.trials.len(), 3, "salvage covers completed cells");
        assert_eq!(journal.len(), 3);

        let (resumed, fresh) = run(&SupervisorPolicy::default(), &journal);
        assert_eq!(fresh.len(), 1, "only the missing cell re-runs");
        assert_eq!(resumed.table(), full.table(), "bit-identical final table");
    }
}
