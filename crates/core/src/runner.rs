//! The fallible, retrying trial harness.
//!
//! Real NUMA experiments fail in mundane ways: `numactl --membind` dies
//! with ENOMEM when a node fills, a batch scheduler preempts the run, a
//! machine's interconnect throttles. The harness mirrors how the
//! paper's measurement scripts cope: each `(configuration, trial)` pair
//! runs a fallible workload, *transient* faults are retried with
//! exponential backoff (the backoff cycles are charged to the trial),
//! and every other fault is recorded as the trial's [`Outcome`] so a
//! sweep always completes with a full per-trial table instead of dying
//! on its first unlucky configuration.

use crate::experiment::TuningConfig;
use nqp_query::WorkloadEnv;
use nqp_sim::{SimError, SimResult};

/// How one trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The workload completed (possibly after transient-fault retries).
    Ok,
    /// The trial exceeded its cycle budget.
    Timeout,
    /// A node or machine ran out of memory under a strict policy.
    Oom,
    /// Any other simulation fault (injected failure, invalid mapping).
    Faulted,
}

impl Outcome {
    /// Fixed-width label for result tables.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Timeout => "timeout",
            Outcome::Oom => "oom",
            Outcome::Faulted => "faulted",
        }
    }

    /// Classify a terminal error.
    pub fn of_error(e: &SimError) -> Outcome {
        match e {
            SimError::Timeout { .. } => Outcome::Timeout,
            SimError::OutOfMemory { .. } => Outcome::Oom,
            _ => Outcome::Faulted,
        }
    }
}

/// Bounded retry with exponential backoff for transient faults.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts).
    pub max_retries: u32,
    /// Cycles charged before retry `k` (doubling per retry):
    /// `backoff_base_cycles << k`.
    pub backoff_base_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, backoff_base_cycles: 10_000 }
    }
}

impl RetryPolicy {
    /// A harness that never retries (every fault is terminal).
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, backoff_base_cycles: 0 }
    }
}

/// The record of one `(configuration, trial)` cell.
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// The configuration's display name.
    pub config: String,
    /// Trial index within the configuration.
    pub trial: usize,
    /// How the trial ended.
    pub outcome: Outcome,
    /// Workload cycles plus retry backoff, when the trial succeeded.
    pub cycles: Option<u64>,
    /// Attempts consumed (1 when no fault was retried).
    pub attempts: u32,
    /// The terminal error of a failed trial.
    pub error: Option<SimError>,
}

impl TrialRecord {
    /// Did the trial end with a result?
    pub fn succeeded(&self) -> bool {
        self.outcome == Outcome::Ok
    }
}

/// Every trial of every configuration in a sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// All trial records, grouped by configuration in sweep order.
    pub trials: Vec<TrialRecord>,
}

impl SweepReport {
    /// Successful trials.
    pub fn succeeded(&self) -> usize {
        self.trials.iter().filter(|t| t.succeeded()).count()
    }

    /// Configuration names for which *every* trial failed — the
    /// condition under which a sweep as a whole is considered failed
    /// (matching `nqp-cli`'s exit code).
    pub fn failed_configs(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for t in &self.trials {
            if !names.contains(&t.config.as_str()) {
                names.push(&t.config);
            }
        }
        names
            .into_iter()
            .filter(|name| {
                self.trials
                    .iter()
                    .filter(|t| t.config == *name)
                    .all(|t| !t.succeeded())
            })
            .collect()
    }

    /// Mean successful cycles of a configuration, if any trial made it.
    pub fn mean_cycles(&self, config: &str) -> Option<u64> {
        let ok: Vec<u64> = self
            .trials
            .iter()
            .filter(|t| t.config == config)
            .filter_map(|t| t.cycles)
            .collect();
        if ok.is_empty() {
            None
        } else {
            Some(ok.iter().sum::<u64>() / ok.len() as u64)
        }
    }

    /// Render the per-trial outcome table (the EXPERIMENTS.md format).
    pub fn table(&self) -> String {
        let mut out = String::from("config                      trial outcome  attempts cycles\n");
        for t in &self.trials {
            let cycles = match t.cycles {
                Some(c) => c.to_string(),
                None => match &t.error {
                    Some(e) => format!("- ({e})"),
                    None => "-".into(),
                },
            };
            out.push_str(&format!(
                "{:<27} {:>5} {:<8} {:>8} {}\n",
                t.config, t.trial, t.outcome.label(), t.attempts, cycles
            ));
        }
        out
    }
}

/// Run one fallible trial under `cfg`, retrying transient faults.
///
/// The workload closure receives the environment (with
/// `SimConfig::fault_attempt` set to the current attempt number, which
/// is how a deterministic [`nqp_sim::FaultPlan`] distinguishes a retry
/// from the original run) and the trial index, and returns the
/// workload's execution cycles. Backoff cycles for retried attempts are
/// added to the recorded total, the way wall-clock timers in real
/// harnesses keep counting across `numactl` re-invocations.
pub fn run_trial<F>(
    cfg: &TuningConfig,
    threads: usize,
    trial: usize,
    policy: &RetryPolicy,
    workload: &mut F,
) -> TrialRecord
where
    F: FnMut(&WorkloadEnv, usize) -> SimResult<u64>,
{
    let mut attempt = 0u32;
    let mut backoff = 0u64;
    loop {
        let mut env = cfg.env(threads);
        env.sim = env.sim.with_fault_attempt(attempt);
        match workload(&env, trial) {
            Ok(cycles) => {
                return TrialRecord {
                    config: cfg.name.clone(),
                    trial,
                    outcome: Outcome::Ok,
                    cycles: Some(cycles + backoff),
                    attempts: attempt + 1,
                    error: None,
                }
            }
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                backoff += policy.backoff_base_cycles << attempt;
                attempt += 1;
            }
            Err(e) => {
                return TrialRecord {
                    config: cfg.name.clone(),
                    trial,
                    outcome: Outcome::of_error(&e),
                    cycles: None,
                    attempts: attempt + 1,
                    error: Some(e),
                }
            }
        }
    }
}

/// Sweep `trials` trials of each configuration, recording every
/// outcome. The sweep itself never fails: a configuration whose trials
/// all fault is reported by [`SweepReport::failed_configs`], and
/// degradation is graceful — later configurations still run.
pub fn sweep<F>(
    configs: &[TuningConfig],
    threads: usize,
    trials: usize,
    policy: &RetryPolicy,
    mut workload: F,
) -> SweepReport
where
    F: FnMut(&WorkloadEnv, usize) -> SimResult<u64>,
{
    let mut report = SweepReport::default();
    for cfg in configs {
        for trial in 0..trials {
            report
                .trials
                .push(run_trial(cfg, threads, trial, policy, &mut workload));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqp_topology::machines;

    fn cfg() -> TuningConfig {
        TuningConfig::tuned(machines::machine_b())
    }

    #[test]
    fn transient_faults_retry_and_charge_backoff() {
        let policy = RetryPolicy { max_retries: 2, backoff_base_cycles: 100 };
        let mut calls = 0u32;
        let rec = run_trial(&cfg(), 4, 0, &policy, &mut |env, _| {
            calls += 1;
            if env.sim.fault_attempt < 2 {
                Err(SimError::InjectedAllocFault { region: 1, attempt: env.sim.fault_attempt })
            } else {
                Ok(5_000)
            }
        });
        assert_eq!(calls, 3, "two transient faults then success");
        assert_eq!(rec.outcome, Outcome::Ok);
        assert_eq!(rec.attempts, 3);
        // 5_000 + backoff (100 << 0) + (100 << 1).
        assert_eq!(rec.cycles, Some(5_300));
    }

    #[test]
    fn terminal_faults_classify_without_retry() {
        let policy = RetryPolicy::default();
        for (err, want) in [
            (SimError::Timeout { budget_cycles: 10, elapsed_cycles: 20 }, Outcome::Timeout),
            (SimError::OutOfMemory { node: 1, requested_pages: 4 }, Outcome::Oom),
            (SimError::InvalidMapping { addr: 0 }, Outcome::Faulted),
        ] {
            let mut calls = 0u32;
            let rec = run_trial(&cfg(), 4, 0, &policy, &mut |_, _| {
                calls += 1;
                Err(err.clone())
            });
            assert_eq!(calls, 1, "{err:?} must not retry");
            assert_eq!(rec.outcome, want);
            assert!(rec.cycles.is_none());
        }
    }

    #[test]
    fn retries_are_bounded() {
        let policy = RetryPolicy { max_retries: 2, backoff_base_cycles: 1 };
        let mut calls = 0u32;
        let rec = run_trial(&cfg(), 4, 0, &policy, &mut |_, _| {
            calls += 1;
            Err(SimError::InjectedAllocFault { region: 0, attempt: 0 })
        });
        assert_eq!(calls, 3, "initial + 2 retries");
        assert_eq!(rec.outcome, Outcome::Faulted);
        assert_eq!(rec.attempts, 3);
    }

    #[test]
    fn sweep_degrades_gracefully_and_flags_dead_configs() {
        let configs = vec![cfg().named("healthy"), cfg().named("doomed")];
        let report = sweep(&configs, 4, 3, &RetryPolicy::none(), |env, trial| {
            if env.sim.fault_plan.is_none() && trial == 1 {
                // One flaky trial in the healthy config.
                return Err(SimError::Timeout { budget_cycles: 1, elapsed_cycles: 2 });
            }
            Ok(1_000)
        });
        // "doomed" would need a fault plan to fail here; with this
        // workload only trial 1 of each config times out.
        assert_eq!(report.trials.len(), 6);
        assert_eq!(report.succeeded(), 4);
        assert!(report.failed_configs().is_empty());
        assert_eq!(report.mean_cycles("healthy"), Some(1_000));

        let report = sweep(&configs[1..], 4, 2, &RetryPolicy::none(), |_, _| {
            Err(SimError::OutOfMemory { node: 0, requested_pages: 1 })
        });
        assert_eq!(report.failed_configs(), vec!["doomed"]);
        assert_eq!(report.mean_cycles("doomed"), None);
        let table = report.table();
        assert!(table.contains("oom"), "table shows outcomes:\n{table}");
    }
}
