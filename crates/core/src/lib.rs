// Harness-path code must surface faults, never panic on them: unwrap()
// and expect() are denied outside tests (enforced by scripts/check.sh).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! The paper's contribution as a library: systematic, application-
//! agnostic NUMA tuning.
//!
//! * [`advisor`] — the Figure 10 decision flowchart as an executable
//!   function: describe your workload and environment, get back an
//!   ordered [`TuningPlan`].
//! * [`experiment`] — the experiment runner used by every bench target:
//!   sweeps [`TuningConfig`]s over workloads and reports speedups.
//!
//! ```
//! use nqp_core::advisor::{advise, WorkloadProfile};
//!
//! let profile = WorkloadProfile {
//!     threads_managed: false,
//!     memory_bandwidth_bound: true,
//!     superuser: true,
//!     memory_placement_defined: false,
//!     allocation_heavy: true,
//!     free_memory_constrained: false,
//! };
//! let plan = advise(&profile);
//! assert!(plan.disable_autonuma && plan.disable_thp);
//! ```

pub mod advisor;
pub mod executor;
pub mod experiment;
pub mod journal;
pub mod runner;

pub use advisor::{advise, TuningPlan, WorkloadProfile};
pub use executor::sweep_parallel;
pub use experiment::{speedup, AdvisorMode, ExperimentResult, TuningConfig};
pub use journal::{
    grid_fingerprint, read_journal, JournalContents, JournalWriter, JOURNAL_VERSION,
};
pub use runner::{
    run_trial, run_trial_measured, sweep, sweep_supervised, Outcome, RetryPolicy,
    SupervisorPolicy, SweepReport, TrialMeasurement, TrialRecord,
};
