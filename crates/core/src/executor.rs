//! The parallel sweep executor: `sweep_supervised`'s grid, fanned
//! across a scoped worker pool, with the same bytes out.
//!
//! The paper's methodology is a large Cartesian sweep (allocator ×
//! placement × policy × THP) whose trials are deterministic and
//! independent, so the grid parallelises — but only if the supervision
//! semantics stay deterministic. Three decisions make that hold:
//!
//! * **Per-config worker affinity.** The unit of work handed to a
//!   worker is a whole configuration, not a cell: every trial of one
//!   configuration runs on one worker, in trial order. The circuit
//!   breaker and the `fault_attempt` retry loop are per-config state
//!   walked in trial order, so their decisions are identical to the
//!   serial path no matter how configs interleave across workers.
//! * **Deterministic retry quota.** The serial path spends
//!   `SupervisorPolicy::global_retry_budget` in grid order; under
//!   parallel scheduling that order does not exist, so the budget
//!   becomes a per-config quota of `ceil(budget / configs)` fixed
//!   before any worker starts. Admission decisions then depend only on
//!   the config's own trial history — never on scheduling order — and
//!   `sweep_parallel(jobs=k)` produces the same report for every `k`.
//!   (When the budget never binds — the common case — the parallel
//!   report is bit-identical to the serial one; when it binds, the two
//!   paths ration differently and DESIGN.md §4c documents the split.)
//! * **Completion-order journal, grid-order report.** A single
//!   journal-writer thread receives finished [`TrialRecord`]s over a
//!   channel and hands them to the sink in completion order — resume
//!   matching is by `(config, trial)`, so an out-of-order journal
//!   resumes correctly, serial or parallel. The in-memory
//!   [`SweepReport`] is assembled in grid order from per-config result
//!   slots, so `table()`/`to_csv()`/`to_json()` are byte-identical to
//!   a serial run of the same grid.
//!
//! `max_cells` admission (which cells run, which are adopted from
//! `resume`, where the grid is truncated) is computed up front by
//! replaying the serial path's bookkeeping, so an interrupted parallel
//! run journals exactly the cells an interrupted serial run would.

use crate::experiment::TuningConfig;
use crate::runner::{
    run_trial_measured, Outcome, RetryPolicy, SupervisorPolicy, SweepReport,
    TrialMeasurement, TrialRecord,
};
use nqp_query::WorkloadEnv;
use nqp_sim::SimResult;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, PoisonError};

/// One cell of the admission plan: either adopt a journaled record
/// verbatim or run the workload.
#[derive(Debug)]
struct CellPlan {
    trial: usize,
    resumed: Option<TrialRecord>,
}

/// All admitted cells of one configuration, in trial order.
#[derive(Debug)]
struct ConfigPlan<'a> {
    cfg: &'a TuningConfig,
    cells: Vec<CellPlan>,
}

/// Replay the serial path's admission bookkeeping up front: resumed
/// cells are free, fresh cells count against `max_cells`, and the first
/// over-budget fresh cell truncates the grid (later cells — resumed or
/// not — are excluded from the report, exactly like the serial
/// `break 'grid`). Returns the per-config plans and the interrupted
/// flag.
fn admission_plan<'a>(
    configs: &'a [TuningConfig],
    trials: usize,
    policy: &SupervisorPolicy,
    resume: &[TrialRecord],
) -> (Vec<ConfigPlan<'a>>, bool) {
    let mut plans: Vec<ConfigPlan<'a>> = Vec::with_capacity(configs.len());
    let mut cells_run = 0usize;
    let mut interrupted = false;
    'grid: for cfg in configs {
        let mut cells = Vec::with_capacity(trials);
        for trial in 0..trials {
            let resumed = resume
                .iter()
                .find(|r| r.config == cfg.name && r.trial == trial)
                .cloned();
            if resumed.is_none() {
                if policy.max_cells.is_some_and(|m| cells_run >= m) {
                    interrupted = true;
                    if !cells.is_empty() {
                        plans.push(ConfigPlan { cfg, cells });
                    }
                    break 'grid;
                }
                cells_run += 1;
            }
            cells.push(CellPlan { trial, resumed });
        }
        plans.push(ConfigPlan { cfg, cells });
    }
    (plans, interrupted)
}

/// Run every admitted cell of one configuration, in trial order, with
/// the per-config supervision state (circuit breaker, retry quota).
/// Fresh records are sent to the journal-writer channel as they finish.
fn run_config<F>(
    plan: &ConfigPlan<'_>,
    threads: usize,
    policy: &SupervisorPolicy,
    quota: Option<u32>,
    workload: &F,
    fresh: &mpsc::Sender<TrialRecord>,
) -> Vec<TrialRecord>
where
    F: Fn(&WorkloadEnv, usize) -> SimResult<TrialMeasurement> + Sync,
{
    let mut out = Vec::with_capacity(plan.cells.len());
    let mut retries_left = quota;
    let mut consecutive_faulted = 0u32;
    for cell in &plan.cells {
        let record = match &cell.resumed {
            Some(r) => r.clone(),
            None => {
                let breaker_open = policy
                    .breaker_threshold
                    .is_some_and(|k| consecutive_faulted >= k);
                let mut retry = if breaker_open {
                    RetryPolicy::none()
                } else {
                    policy.retry.clone()
                };
                if let Some(left) = retries_left {
                    retry.max_retries = retry.max_retries.min(left);
                }
                let r = run_trial_measured(
                    plan.cfg,
                    threads,
                    cell.trial,
                    &retry,
                    policy.watchdog_budget_cycles,
                    &mut |env, t| workload(env, t),
                );
                // A send only fails if the writer thread died; its
                // panic propagates when the scope joins, so the error
                // carries no extra information here.
                let _ = fresh.send(r.clone());
                r
            }
        };
        if let Some(left) = retries_left.as_mut() {
            *left = left.saturating_sub(record.attempts.saturating_sub(1));
        }
        if record.outcome == Outcome::Faulted {
            consecutive_faulted += 1;
        } else {
            consecutive_faulted = 0;
        }
        out.push(record);
    }
    out
}

/// [`crate::runner::sweep_supervised`], fanned across `jobs` scoped
/// workers. Each configuration's trials stay on one worker in trial
/// order; `sink` (the journal append hook) runs on a dedicated writer
/// thread and observes records in completion order; the returned
/// report is in grid order, byte-identical (table/CSV/JSON) to a
/// serial run of the same grid — see the module docs for the
/// determinism argument and the one semantic difference
/// (`global_retry_budget` becomes a per-config quota of
/// `ceil(budget / configs)`).
///
/// `jobs == 0` is treated as 1; `jobs` above the config count is
/// clamped (a worker's unit of work is a whole configuration).
// Mirrors sweep_supervised's seven parameters plus `jobs`; grouping
// them would diverge the two call shapes for no clarity gain.
#[allow(clippy::too_many_arguments)]
pub fn sweep_parallel<F>(
    configs: &[TuningConfig],
    threads: usize,
    trials: usize,
    policy: &SupervisorPolicy,
    resume: &[TrialRecord],
    jobs: usize,
    sink: &mut (dyn FnMut(&TrialRecord) + Send),
    workload: F,
) -> SweepReport
where
    F: Fn(&WorkloadEnv, usize) -> SimResult<TrialMeasurement> + Sync,
{
    let (plans, interrupted) = admission_plan(configs, trials, policy, resume);
    let quota = policy
        .global_retry_budget
        .map(|b| b.div_ceil(configs.len().max(1) as u32));
    let jobs = jobs.clamp(1, plans.len().max(1));

    // One result slot per configuration: workers fill their claimed
    // slots, the report is reassembled in grid order below.
    let results: Vec<Mutex<Vec<TrialRecord>>> =
        plans.iter().map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<TrialRecord>();
        // The single journal writer: completion-order appends, one
        // thread, so the sink needs Send but not Sync.
        s.spawn(move || {
            for rec in rx {
                sink(&rec);
            }
        });
        let plans = &plans;
        let results = &results;
        let next = &next;
        let workload = &workload;
        for _ in 0..jobs {
            let tx = tx.clone();
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(plan) = plans.get(i) else { break };
                let recs = run_config(plan, threads, policy, quota, workload, &tx);
                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = recs;
            });
        }
        // Drop the original sender so the writer thread's receive loop
        // ends once every worker has finished and dropped its clone.
        drop(tx);
    });

    let mut report = SweepReport { trials: Vec::new(), interrupted };
    for slot in results {
        report
            .trials
            .extend(slot.into_inner().unwrap_or_else(PoisonError::into_inner));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::sweep_supervised;
    use nqp_sim::SimError;
    use nqp_topology::machines;

    fn cfg(name: &str) -> TuningConfig {
        TuningConfig::tuned(machines::machine_b()).named(name)
    }

    fn grid(n: usize) -> Vec<TuningConfig> {
        (0..n).map(|i| cfg(&format!("cfg-{i}"))).collect()
    }

    /// Deterministic workload: cycles depend on (config seed, trial),
    /// with a transient fault on trial 1 that clears after one retry.
    fn workload(env: &WorkloadEnv, trial: usize) -> nqp_sim::SimResult<TrialMeasurement> {
        if trial == 1 && env.sim.fault_attempt == 0 {
            return Err(SimError::InjectedAllocFault { region: 0, attempt: 0 });
        }
        Ok(TrialMeasurement::from(env.sim.seed + 100 * trial as u64))
    }

    #[test]
    fn parallel_report_matches_serial_for_every_job_count() {
        let configs = grid(5);
        let policy = SupervisorPolicy {
            retry: RetryPolicy { max_retries: 2, backoff_base_cycles: 10 },
            ..Default::default()
        };
        let serial =
            sweep_supervised(&configs, 4, 3, &policy, &[], &mut |_| {}, workload);
        for jobs in [0, 1, 2, 7, 64] {
            let parallel = sweep_parallel(
                &configs,
                4,
                3,
                &policy,
                &[],
                jobs,
                &mut |_| {},
                workload,
            );
            assert_eq!(parallel.trials, serial.trials, "jobs={jobs}");
            assert_eq!(parallel.table(), serial.table());
            assert_eq!(parallel.to_csv(), serial.to_csv());
            assert_eq!(parallel.to_json(), serial.to_json());
        }
    }

    #[test]
    fn sink_sees_every_fresh_cell_exactly_once() {
        let configs = grid(3);
        let policy = SupervisorPolicy::default();
        let mut seen: Vec<(String, usize)> = Vec::new();
        let report = sweep_parallel(
            &configs,
            4,
            2,
            &policy,
            &[],
            3,
            &mut |r| seen.push((r.config.clone(), r.trial)),
            workload,
        );
        assert_eq!(report.trials.len(), 6);
        seen.sort();
        let mut want: Vec<(String, usize)> = report
            .trials
            .iter()
            .map(|t| (t.config.clone(), t.trial))
            .collect();
        want.sort();
        assert_eq!(seen, want, "completion-order journal covers the whole grid");
    }

    #[test]
    fn resumed_cells_are_adopted_not_rerun_and_not_journaled() {
        let configs = grid(2);
        let policy = SupervisorPolicy::default();
        let full = sweep_parallel(&configs, 4, 2, &policy, &[], 2, &mut |_| {}, workload);
        let resume: Vec<TrialRecord> = full.trials[..3].to_vec();
        let mut fresh = Vec::new();
        let resumed = sweep_parallel(
            &configs,
            4,
            2,
            &policy,
            &resume,
            2,
            &mut |r| fresh.push(r.clone()),
            workload,
        );
        assert_eq!(fresh.len(), 1, "only the missing cell re-runs");
        assert_eq!(resumed.trials, full.trials);
    }

    #[test]
    fn max_cells_truncates_exactly_like_the_serial_path() {
        let configs = grid(3);
        for max in 0..=6 {
            let policy = SupervisorPolicy { max_cells: Some(max), ..Default::default() };
            let serial =
                sweep_supervised(&configs, 4, 2, &policy, &[], &mut |_| {}, workload);
            let parallel = sweep_parallel(
                &configs,
                4,
                2,
                &policy,
                &[],
                2,
                &mut |_| {},
                workload,
            );
            assert_eq!(parallel.trials, serial.trials, "max_cells={max}");
            assert_eq!(parallel.interrupted, serial.interrupted);
        }
    }

    #[test]
    fn retry_quota_is_deterministic_across_job_counts() {
        // Budget 5 over 2 configs -> quota ceil(5/2) = 3 per config,
        // independent of which worker runs first.
        let configs = grid(2);
        let policy = SupervisorPolicy {
            retry: RetryPolicy { max_retries: 10, backoff_base_cycles: 1 },
            global_retry_budget: Some(5),
            ..Default::default()
        };
        let fail = |_: &WorkloadEnv, _: usize| -> nqp_sim::SimResult<TrialMeasurement> {
            Err(SimError::InjectedAllocFault { region: 0, attempt: 0 })
        };
        let reference =
            sweep_parallel(&configs, 4, 2, &policy, &[], 1, &mut |_| {}, fail);
        let attempts: Vec<u32> = reference.trials.iter().map(|t| t.attempts).collect();
        // Each config independently: 3 retries on trial 0, quota spent,
        // then first-attempt-only on trial 1.
        assert_eq!(attempts, vec![4, 1, 4, 1]);
        for jobs in [2, 7] {
            let r = sweep_parallel(&configs, 4, 2, &policy, &[], jobs, &mut |_| {}, fail);
            assert_eq!(r.trials, reference.trials, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_grid_yields_an_empty_report() {
        let report = sweep_parallel(
            &[],
            4,
            3,
            &SupervisorPolicy::default(),
            &[],
            4,
            &mut |_| {},
            workload,
        );
        assert!(report.trials.is_empty());
        assert!(!report.interrupted);
    }
}
