//! The write-ahead trial journal: crash-safe sweep state as append-only
//! JSONL.
//!
//! A sweep is hours of compute whose unit of progress is one
//! `(configuration, trial)` cell. The journal makes that progress
//! durable: before the sweep moves past a cell, its [`TrialRecord`] is
//! appended as one JSON line and fsync'd, so a crash, OOM-kill, or
//! Ctrl-C loses at most the cell in flight. `sweep --resume <journal>`
//! replays the journal, skips every recorded cell, and — because trials
//! are deterministic functions of `(config, trial, attempt)` — produces
//! a final table bit-identical to an uninterrupted run.
//!
//! # Format
//!
//! Line 1 is a header; every further line is one trial record:
//!
//! ```text
//! {"v":1,"kind":"header","fp":"<16-hex grid fingerprint>","grid":"<description>"}
//! {"v":1,"kind":"trial","fp":"<fingerprint>","config":"tuned","trial":0,
//!  "outcome":"ok","attempts":1,"cycles":123,"evacuated_pages":0,"error":null}
//! ```
//!
//! The fingerprint hashes the requested grid (configs × trials ×
//! workload parameters); resuming against a journal whose fingerprint
//! does not match the requested sweep is an error — mixing cells from
//! different grids would silently corrupt the table. A torn tail (a
//! record cut mid-line by the crash — either missing its newline or
//! unparseable as the last line) is discarded on read and truncated on
//! append, so the interrupted cell simply re-runs.
//!
//! Records are hand-serialised: the schema is small, owned by this
//! crate, and DESIGN.md §5 keeps serde out of the workspace.

use crate::runner::{Outcome, TrialRecord};
use nqp_sim::SimError;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

/// Journal schema version (the `v` field of every line).
pub const JOURNAL_VERSION: u64 = 1;

/// 16-hex-digit fingerprint of a sweep grid description (FNV-1a 64 with
/// a splitmix finalizer). Stable across runs and platforms.
#[must_use]
pub fn grid_fingerprint(desc: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in desc.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    format!("{h:016x}")
}

/// Append-only journal handle; one fsync per record.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    fingerprint: String,
}

impl JournalWriter {
    /// Start a fresh journal at `path` (truncating any existing file),
    /// writing and syncing the header line.
    pub fn create(path: &Path, fingerprint: &str, grid_desc: &str) -> io::Result<Self> {
        let mut file = File::create(path)?;
        let line = format!(
            "{{\"v\":{JOURNAL_VERSION},\"kind\":\"header\",\"fp\":\"{}\",\"grid\":\"{}\"}}\n",
            esc(fingerprint),
            esc(grid_desc)
        );
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        Ok(JournalWriter { file, fingerprint: fingerprint.to_string() })
    }

    /// Open an existing journal for resumption: read it back (discarding
    /// a torn tail), truncate the file to the last intact record, and
    /// return the writer positioned for appending plus the recovered
    /// contents.
    pub fn append_to(path: &Path) -> io::Result<(Self, JournalContents)> {
        let contents = read_journal(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(contents.valid_len)?;
        file.seek(SeekFrom::End(0))?;
        let writer =
            JournalWriter { file, fingerprint: contents.fingerprint.clone() };
        Ok((writer, contents))
    }

    /// The grid fingerprint this journal was created for.
    #[must_use]
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Append one trial record and fsync it — the write-ahead step that
    /// makes the cell durable.
    pub fn record(&mut self, rec: &TrialRecord) -> io::Result<()> {
        self.append_kind("trial", &record_fields_json(rec))
    }

    /// Append one record of an arbitrary kind (e.g. `serve-cell`) with
    /// caller-supplied JSON fields (no braces, no envelope), fsync'd.
    /// The envelope (`v`, `kind`, `fp`) is owned here so every journal
    /// line stays resumable and fingerprint-checked.
    pub fn append_kind(&mut self, kind: &str, fields_json: &str) -> io::Result<()> {
        let line = format!(
            "{{\"v\":{JOURNAL_VERSION},\"kind\":\"{}\",\"fp\":\"{}\",{}}}\n",
            esc(kind),
            esc(&self.fingerprint),
            fields_json
        );
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// Like [`JournalWriter::append_to`], but recovers records of *any*
    /// kind as parsed objects instead of decoding trial records — the
    /// resume path for journals owned by other crates (serve cells).
    pub fn append_raw_to(path: &Path) -> io::Result<(Self, RawJournal)> {
        let contents = read_journal_raw(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(contents.valid_len)?;
        file.seek(SeekFrom::End(0))?;
        let writer =
            JournalWriter { file, fingerprint: contents.fingerprint.clone() };
        Ok((writer, contents))
    }
}

/// Everything recovered from a journal file.
#[derive(Debug, Clone)]
pub struct JournalContents {
    /// The grid fingerprint from the header.
    pub fingerprint: String,
    /// The human-readable grid description from the header.
    pub grid_desc: String,
    /// Intact trial records, in append order.
    pub records: Vec<TrialRecord>,
    /// A torn tail (crash mid-append) was discarded.
    pub torn: bool,
    /// File length in bytes up to the last intact record (the append
    /// point after truncating the torn tail).
    valid_len: u64,
}

/// Read a journal back. The last line is allowed to be torn (missing
/// newline or unparseable) and is silently discarded; corruption
/// anywhere *before* the tail is an `InvalidData` error, as is a trial
/// record whose fingerprint does not match the header.
pub fn read_journal(path: &Path) -> io::Result<JournalContents> {
    let data = std::fs::read(path)?;
    let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);

    // Split into complete (newline-terminated) lines with byte offsets.
    let mut lines: Vec<(usize, &str)> = Vec::new();
    let mut torn = false;
    let mut start = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            let line = std::str::from_utf8(&data[start..i])
                .map_err(|_| bad(format!("journal is not UTF-8 at byte {start}")))?;
            lines.push((start, line));
            start = i + 1;
        }
    }
    if start < data.len() {
        torn = true; // Tail without a newline: crash mid-append.
    }
    let mut valid_len = start as u64;

    let Some(&(_, header_line)) = lines.first() else {
        return Err(bad("journal has no header line".to_string()));
    };
    let header = parse_json_obj(header_line)
        .ok_or_else(|| bad("journal header is not valid JSON".to_string()))?;
    if get_str(&header, "kind") != Some("header") {
        return Err(bad("journal's first line is not a header".to_string()));
    }
    match get_num(&header, "v") {
        Some(JOURNAL_VERSION) => {}
        v => return Err(bad(format!("unsupported journal version {v:?}"))),
    }
    let fingerprint = get_str(&header, "fp")
        .ok_or_else(|| bad("journal header has no fingerprint".to_string()))?
        .to_string();
    let grid_desc = get_str(&header, "grid").unwrap_or_default().to_string();

    let mut records = Vec::new();
    for (idx, &(offset, line)) in lines.iter().enumerate().skip(1) {
        let last = idx == lines.len() - 1;
        let parsed = parse_json_obj(line).and_then(|obj| {
            if get_str(&obj, "kind") != Some("trial")
                || get_num(&obj, "v") != Some(JOURNAL_VERSION)
                || get_str(&obj, "fp") != Some(fingerprint.as_str())
            {
                return None;
            }
            record_from_obj(&obj)
        });
        match parsed {
            Some(rec) => records.push(rec),
            None if last && !torn => {
                // An unparseable final line is a torn write too (e.g. a
                // partial record that happens to end in a newline from
                // pre-crash buffered data).
                torn = true;
                valid_len = offset as u64;
            }
            None if last => {
                valid_len = offset as u64;
            }
            None => {
                return Err(bad(format!(
                    "corrupt journal record on line {}",
                    idx + 1
                )));
            }
        }
    }
    Ok(JournalContents { fingerprint, grid_desc, records, torn, valid_len })
}

/// A journal recovered without decoding records: each body line is the
/// parsed object (envelope fields included), tagged with its `kind`.
#[derive(Debug, Clone)]
pub struct RawJournal {
    /// The grid fingerprint from the header.
    pub fingerprint: String,
    /// The human-readable grid description from the header.
    pub grid_desc: String,
    /// Intact body records as `(kind, fields)`, in append order.
    pub records: Vec<(String, Vec<(String, JVal)>)>,
    /// A torn tail (crash mid-append) was discarded.
    pub torn: bool,
    /// File length in bytes up to the last intact record.
    valid_len: u64,
}

/// Read a journal of arbitrary record kinds. Envelope validation (UTF-8
/// lines, header first, version, per-line fingerprint match) and
/// torn-tail semantics are identical to [`read_journal`]; record bodies
/// are returned as parsed objects for the owning crate to decode.
pub fn read_journal_raw(path: &Path) -> io::Result<RawJournal> {
    let data = std::fs::read(path)?;
    let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);

    let mut lines: Vec<(usize, &str)> = Vec::new();
    let mut torn = false;
    let mut start = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            let line = std::str::from_utf8(&data[start..i])
                .map_err(|_| bad(format!("journal is not UTF-8 at byte {start}")))?;
            lines.push((start, line));
            start = i + 1;
        }
    }
    if start < data.len() {
        torn = true;
    }
    let mut valid_len = start as u64;

    let Some(&(_, header_line)) = lines.first() else {
        return Err(bad("journal has no header line".to_string()));
    };
    let header = parse_json_obj(header_line)
        .ok_or_else(|| bad("journal header is not valid JSON".to_string()))?;
    if get_str(&header, "kind") != Some("header") {
        return Err(bad("journal's first line is not a header".to_string()));
    }
    match get_num(&header, "v") {
        Some(JOURNAL_VERSION) => {}
        v => return Err(bad(format!("unsupported journal version {v:?}"))),
    }
    let fingerprint = get_str(&header, "fp")
        .ok_or_else(|| bad("journal header has no fingerprint".to_string()))?
        .to_string();
    let grid_desc = get_str(&header, "grid").unwrap_or_default().to_string();

    let mut records = Vec::new();
    for (idx, &(offset, line)) in lines.iter().enumerate().skip(1) {
        let last = idx == lines.len() - 1;
        let parsed = parse_json_obj(line).and_then(|obj| {
            if get_num(&obj, "v") != Some(JOURNAL_VERSION)
                || get_str(&obj, "fp") != Some(fingerprint.as_str())
            {
                return None;
            }
            let kind = get_str(&obj, "kind")?.to_string();
            Some((kind, obj))
        });
        match parsed {
            Some(rec) => records.push(rec),
            None if last => {
                // An unparseable final line is a torn write too.
                torn = true;
                valid_len = offset as u64;
            }
            None => {
                return Err(bad(format!(
                    "corrupt journal record on line {}",
                    idx + 1
                )));
            }
        }
    }
    Ok(RawJournal { fingerprint, grid_desc, records, torn, valid_len })
}

/// The shared body of a trial-record JSON object (no braces, no journal
/// envelope) — used by journal lines and `SweepReport::to_json`.
#[must_use]
pub fn record_fields_json(t: &TrialRecord) -> String {
    let cycles = t.cycles.map_or_else(|| "null".to_string(), |c| c.to_string());
    let error = t.error.as_ref().map_or_else(|| "null".to_string(), error_json);
    format!(
        "\"config\":\"{}\",\"trial\":{},\"outcome\":\"{}\",\"attempts\":{},\
         \"cycles\":{},\"evacuated_pages\":{},\"error\":{}",
        esc(&t.config),
        t.trial,
        t.outcome.label(),
        t.attempts,
        cycles,
        t.evacuated_pages,
        error
    )
}

/// Serialise a `SimError` structurally so it round-trips exactly — the
/// outcome table renders errors, and a resumed table must be
/// bit-identical to an uninterrupted one.
fn error_json(e: &SimError) -> String {
    match e {
        SimError::OutOfMemory { node, requested_pages } => format!(
            "{{\"tag\":\"oom\",\"node\":{node},\"requested_pages\":{requested_pages}}}"
        ),
        SimError::InvalidMapping { addr } => {
            format!("{{\"tag\":\"invalid-mapping\",\"addr\":{addr}}}")
        }
        SimError::InjectedAllocFault { region, attempt } => format!(
            "{{\"tag\":\"alloc-fault\",\"region\":{region},\"attempt\":{attempt}}}"
        ),
        SimError::Timeout { budget_cycles, elapsed_cycles } => format!(
            "{{\"tag\":\"timeout\",\"budget_cycles\":{budget_cycles},\
             \"elapsed_cycles\":{elapsed_cycles}}}"
        ),
        SimError::DeadlineExceeded { deadline_cycles, elapsed_cycles } => format!(
            "{{\"tag\":\"deadline\",\"deadline_cycles\":{deadline_cycles},\
             \"elapsed_cycles\":{elapsed_cycles}}}"
        ),
        SimError::NodeOffline { node } => {
            format!("{{\"tag\":\"node-offline\",\"node\":{node}}}")
        }
        SimError::Harness { what } => {
            format!("{{\"tag\":\"harness\",\"what\":\"{}\"}}", esc(what))
        }
        SimError::BadSpec { flag, token, why } => format!(
            "{{\"tag\":\"bad-spec\",\"flag\":\"{}\",\"token\":\"{}\",\"why\":\"{}\"}}",
            esc(flag),
            esc(token),
            esc(why)
        ),
    }
}

fn error_from_obj(obj: &[(String, JVal)]) -> Option<SimError> {
    let num = |k: &str| get_num(obj, k);
    match get_str(obj, "tag")? {
        "oom" => Some(SimError::OutOfMemory {
            node: num("node")? as usize,
            requested_pages: num("requested_pages")?,
        }),
        "invalid-mapping" => Some(SimError::InvalidMapping { addr: num("addr")? }),
        "alloc-fault" => Some(SimError::InjectedAllocFault {
            region: num("region")?,
            attempt: num("attempt")? as u32,
        }),
        "timeout" => Some(SimError::Timeout {
            budget_cycles: num("budget_cycles")?,
            elapsed_cycles: num("elapsed_cycles")?,
        }),
        "deadline" => Some(SimError::DeadlineExceeded {
            deadline_cycles: num("deadline_cycles")?,
            elapsed_cycles: num("elapsed_cycles")?,
        }),
        "node-offline" => Some(SimError::NodeOffline { node: num("node")? as usize }),
        "harness" => Some(SimError::Harness { what: get_str(obj, "what")?.to_string() }),
        "bad-spec" => Some(SimError::BadSpec {
            flag: get_str(obj, "flag")?.to_string(),
            token: get_str(obj, "token")?.to_string(),
            why: get_str(obj, "why")?.to_string(),
        }),
        _ => None,
    }
}

fn record_from_obj(obj: &[(String, JVal)]) -> Option<TrialRecord> {
    let cycles = match get(obj, "cycles")? {
        JVal::Num(n) => Some(*n),
        JVal::Null => None,
        _ => return None,
    };
    let error = match get(obj, "error")? {
        JVal::Obj(o) => Some(error_from_obj(o)?),
        JVal::Null => None,
        _ => return None,
    };
    Some(TrialRecord {
        config: get_str(obj, "config")?.to_string(),
        trial: get_num(obj, "trial")? as usize,
        outcome: Outcome::parse(get_str(obj, "outcome")?)?,
        cycles,
        attempts: get_num(obj, "attempts")? as u32,
        evacuated_pages: get_num(obj, "evacuated_pages")?,
        error,
    })
}

/// JSON string escaping for the subset journal lines emit.
#[must_use]
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

// ---- minimal JSON scanner ------------------------------------------
//
// Objects of strings / unsigned integers / bools / null, shallow
// arrays, and a few nesting levels. Enough for the self-owned journal
// schemas (trial records here, serve cells in `nqp-serve`); rejects
// everything else. Public so sibling crates can round-trip their own
// journal lines without pulling in a JSON dependency (DESIGN.md §5).

/// A parsed JSON value from the journal scanner.
#[derive(Debug, Clone, PartialEq)]
pub enum JVal {
    /// A JSON string.
    Str(String),
    /// An unsigned integer (the only number form journals emit).
    Num(u64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An object, in source field order.
    Obj(Vec<(String, JVal)>),
    /// An array.
    Arr(Vec<JVal>),
}

/// Field lookup in a parsed object.
#[must_use]
pub fn get<'a>(obj: &'a [(String, JVal)], key: &str) -> Option<&'a JVal> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// String-typed field lookup.
#[must_use]
pub fn get_str<'a>(obj: &'a [(String, JVal)], key: &str) -> Option<&'a str> {
    match get(obj, key)? {
        JVal::Str(s) => Some(s),
        _ => None,
    }
}

/// Integer-typed field lookup.
#[must_use]
pub fn get_num(obj: &[(String, JVal)], key: &str) -> Option<u64> {
    match get(obj, key)? {
        JVal::Num(n) => Some(*n),
        _ => None,
    }
}

/// Parse one line as a JSON object; `None` on any syntax error or
/// trailing garbage.
#[must_use]
pub fn parse_json_obj(line: &str) -> Option<Vec<(String, JVal)>> {
    let b = line.as_bytes();
    let mut i = 0usize;
    let v = parse_value(b, &mut i, 0)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return None;
    }
    match v {
        JVal::Obj(o) => Some(o),
        _ => None,
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\r' | b'\n') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize, depth: u32) -> Option<JVal> {
    if depth > 4 {
        return None;
    }
    skip_ws(b, i);
    match b.get(*i)? {
        b'{' => parse_obj(b, i, depth),
        b'[' => parse_arr(b, i, depth),
        b'"' => parse_string(b, i).map(JVal::Str),
        b'0'..=b'9' => parse_num(b, i).map(JVal::Num),
        b't' => parse_lit(b, i, "true").then_some(JVal::Bool(true)),
        b'f' => parse_lit(b, i, "false").then_some(JVal::Bool(false)),
        b'n' => parse_lit(b, i, "null").then_some(JVal::Null),
        _ => None,
    }
}

fn parse_arr(b: &[u8], i: &mut usize, depth: u32) -> Option<JVal> {
    if b.get(*i) != Some(&b'[') {
        return None;
    }
    *i += 1;
    let mut items = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Some(JVal::Arr(items));
    }
    loop {
        items.push(parse_value(b, i, depth + 1)?);
        skip_ws(b, i);
        match b.get(*i)? {
            b',' => *i += 1,
            b']' => {
                *i += 1;
                return Some(JVal::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str) -> bool {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        true
    } else {
        false
    }
}

fn parse_num(b: &[u8], i: &mut usize) -> Option<u64> {
    let start = *i;
    while *i < b.len() && b[*i].is_ascii_digit() {
        *i += 1;
    }
    if *i == start {
        return None;
    }
    std::str::from_utf8(&b[start..*i]).ok()?.parse().ok()
}

fn parse_string(b: &[u8], i: &mut usize) -> Option<String> {
    if b.get(*i) != Some(&b'"') {
        return None;
    }
    *i += 1;
    let mut out = Vec::new();
    loop {
        match *b.get(*i)? {
            b'"' => {
                *i += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *i += 1;
                match *b.get(*i)? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = b.get(*i + 1..*i + 5)?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).ok()?,
                            16,
                        )
                        .ok()?;
                        let c = char::from_u32(code)?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *i += 4;
                    }
                    _ => return None,
                }
                *i += 1;
            }
            c => {
                out.push(c);
                *i += 1;
            }
        }
    }
}

fn parse_obj(b: &[u8], i: &mut usize, depth: u32) -> Option<JVal> {
    if b.get(*i) != Some(&b'{') {
        return None;
    }
    *i += 1;
    let mut fields = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Some(JVal::Obj(fields));
    }
    loop {
        skip_ws(b, i);
        let key = parse_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return None;
        }
        *i += 1;
        let value = parse_value(b, i, depth + 1)?;
        fields.push((key, value));
        skip_ws(b, i);
        match b.get(*i)? {
            b',' => *i += 1,
            b'}' => {
                *i += 1;
                return Some(JVal::Obj(fields));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "nqp-journal-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn rec(config: &str, trial: usize, error: Option<SimError>) -> TrialRecord {
        let outcome = error.as_ref().map_or(Outcome::Ok, Outcome::of_error);
        TrialRecord {
            config: config.to_string(),
            trial,
            outcome,
            cycles: error.is_none().then_some(1234 + trial as u64),
            attempts: 2,
            evacuated_pages: 7,
            error,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = grid_fingerprint("machine=B threads=8 trials=3");
        assert_eq!(a, grid_fingerprint("machine=B threads=8 trials=3"));
        assert_eq!(a.len(), 16);
        assert_ne!(a, grid_fingerprint("machine=B threads=8 trials=4"));
    }

    #[test]
    fn every_error_variant_round_trips() {
        let errors = [
            SimError::OutOfMemory { node: 3, requested_pages: 512 },
            SimError::InvalidMapping { addr: 0xdead_beef },
            SimError::InjectedAllocFault { region: 9, attempt: 2 },
            SimError::Timeout { budget_cycles: 10, elapsed_cycles: 20 },
            SimError::NodeOffline { node: 1 },
            SimError::Harness { what: "weird \"quoted\"\npath\\x".to_string() },
        ];
        for e in errors {
            let json = error_json(&e);
            let obj = parse_json_obj(&json).unwrap();
            assert_eq!(error_from_obj(&obj), Some(e.clone()), "{json}");
        }
    }

    #[test]
    fn journal_round_trips_records() {
        let path = temp_path("roundtrip");
        let fp = grid_fingerprint("grid");
        let mut w = JournalWriter::create(&path, &fp, "grid desc, with comma").unwrap();
        let records = vec![
            rec("tuned", 0, None),
            rec("tuned", 1, Some(SimError::OutOfMemory { node: 0, requested_pages: 1 })),
            rec("os \"default\"", 0, Some(SimError::NodeOffline { node: 2 })),
        ];
        for r in &records {
            w.record(r).unwrap();
        }
        drop(w);
        let back = read_journal(&path).unwrap();
        assert_eq!(back.fingerprint, fp);
        assert_eq!(back.grid_desc, "grid desc, with comma");
        assert!(!back.torn);
        assert_eq!(back.records, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated_on_append() {
        let path = temp_path("torn");
        let fp = grid_fingerprint("g");
        let mut w = JournalWriter::create(&path, &fp, "g").unwrap();
        w.record(&rec("a", 0, None)).unwrap();
        w.record(&rec("a", 1, None)).unwrap();
        drop(w);
        // Tear the last record mid-line.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 9]).unwrap();

        let (mut w, contents) = JournalWriter::append_to(&path).unwrap();
        assert!(contents.torn, "truncated tail must be detected");
        assert_eq!(contents.records.len(), 1, "torn record is discarded");
        assert_eq!(contents.records[0].trial, 0);
        // Appending after recovery lands on a clean line boundary.
        w.record(&rec("a", 1, None)).unwrap();
        drop(w);
        let back = read_journal(&path).unwrap();
        assert!(!back.torn);
        assert_eq!(back.records.len(), 2);
        assert_eq!(back.records[1].trial, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_before_the_tail_is_an_error() {
        let path = temp_path("corrupt");
        let fp = grid_fingerprint("g");
        let mut w = JournalWriter::create(&path, &fp, "g").unwrap();
        w.record(&rec("a", 0, None)).unwrap();
        w.record(&rec("a", 1, None)).unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!("{}\nnot json at all\n{}\n", lines[0], lines[2]);
        std::fs::write(&path, mangled).unwrap();
        let err = read_journal(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_mismatch_in_records_is_an_error() {
        let path = temp_path("fpmix");
        let mut w = JournalWriter::create(&path, "aaaa", "g").unwrap();
        w.record(&rec("a", 0, None)).unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        let swapped = text.replacen("\"fp\":\"aaaa\"", "\"fp\":\"bbbb\"", 2);
        // Both header and record now say bbbb... make ONLY the record
        // mismatch by rewriting just the second occurrence.
        let header_fixed = swapped.replacen("\"fp\":\"bbbb\"", "\"fp\":\"aaaa\"", 1);
        std::fs::write(&path, header_fixed).unwrap();
        // The mismatching record is the last line → treated as torn and
        // discarded rather than fatal.
        let back = read_journal(&path).unwrap();
        assert!(back.torn);
        assert!(back.records.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_or_bad_header_is_an_error() {
        let path = temp_path("hdr");
        std::fs::write(&path, "").unwrap();
        assert!(read_journal(&path).is_err(), "empty journal has no header");
        std::fs::write(&path, "{\"v\":1,\"kind\":\"trial\"}\n").unwrap();
        assert!(read_journal(&path).is_err(), "first line must be a header");
        std::fs::write(&path, "{\"v\":99,\"kind\":\"header\",\"fp\":\"x\"}\n").unwrap();
        assert!(read_journal(&path).is_err(), "unknown version must be rejected");
        std::fs::remove_file(&path).ok();
    }
}
