//! The Figure 10 decision flowchart, re-exported from [`nqp_advisor`].
//!
//! The flowchart moved into its own crate when the **online** advisor
//! arrived (the epoch-driven [`nqp_advisor::OnlineController`] uses the
//! same flowchart as its candidate generator, and lives below `core` in
//! the dependency order so the simulator hook can be installed without
//! a cycle). This module keeps the historical
//! `nqp_core::advisor::{advise, WorkloadProfile, TuningPlan}` paths
//! working.

pub use nqp_advisor::flowchart::*;
